//! `csspgo_diff` — the stale-profile matcher and cross-build differential
//! analyzer.
//!
//! Two modes:
//!
//! * **Scenario mode** (default): for each shipped workload, collect a
//!   probe profile on the clean build, then replay every drift scenario
//!   from [`csspgo::workloads::drift`] (comment drift, CFG-changing drift,
//!   function renames) against it. Each scenario runs the anchor-based
//!   matcher ([`csspgo::core::stalematch`]), emits the `SM` lints, and is
//!   summarized in a match-quality report: matched/fuzzy/dropped probes,
//!   recovered-weight fractions, rename adoptions, and an
//!   inference-quality section (repair effort plus `PF` flow findings
//!   before/after min-cost-flow inference).
//! * **Train mode** (`--train N`): chain N cumulative releases through
//!   [`drift::release_chain`] (split/merge refactors, feature flags,
//!   dependency bumps, renames, comment and CFG churn) and match each
//!   release against the *release-0* profile — the match-quality decay
//!   curve a never-refreshed profile suffers across a release train
//!   (the static-analysis companion to the `release_train` bench).
//! * **File mode** (`--profile` + `--source`): match a saved profile — a
//!   probe-profile JSON or a `csspgo-stream-snapshot` text — against a
//!   freshly compiled source file.
//!
//! ```text
//! csspgo_diff --json diff-report.json
//! csspgo_diff --workload ad_ranker --scenario change_cfg
//! csspgo_diff --train 5 --workload ad_finder
//! csspgo_diff --profile probe.json --source new_version.src
//! ```
//!
//! Exits nonzero iff any diagnostic reaches `Deny` severity; with the
//! default policy that is the matcher-invariant lints (`SM002`/`SM003`),
//! which must never fire.

use csspgo::analysis::{
    inference_quality, provenance_breakdown, Analyzer, DiffReport, Policy, ScenarioReport,
};
use csspgo::codegen::{lower_module, CodegenConfig};
use csspgo::core::pipeline::{BatchSource, PipelineConfig, ProfileSource};
use csspgo::core::profile::ProbeProfile;
use csspgo::core::shard::{sharded_context_profile, sharded_range_counts};
use csspgo::core::stalematch::MatchConfig;
use csspgo::core::tailcall::TailCallGraph;
use csspgo::core::{textprof, Workload};
use csspgo::ir::Module;
use csspgo::sim::{Machine, SimConfig};
use csspgo::workloads::drift;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("csspgo_diff: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        r#"csspgo_diff — stale-profile matcher & differential profile analyzer

USAGE:
  csspgo_diff [--workload <name>] [--scenario <name,...>] [--scale <f>]
              [--deny <lint,...|all>] [--allow <lint,...|all>] [--json <file>]
  csspgo_diff --train <n> [--workload <name>] [--scale <f>] [--json <file>]
  csspgo_diff --profile <probe.json|snapshot.txt> --source <file> [--json <file>]

Scenarios: insert_comments, insert_body_comments, change_cfg, rename.
Default runs every scenario over every shipped workload at --scale 0.05.
--train chains <n> cumulative releases (drift::release_chain) and matches
each against the release-0 profile: the decay curve of a never-refreshed
profile across a release train.
Exits 1 if any denied lint fires (default policy: the SM002/SM003 matcher
invariants), 2 on usage errors."#
    );
}

/// A named source mutator: one shipped drift scenario.
type Scenario = (&'static str, fn(&Workload) -> String);

/// The shipped drift scenarios: name → source mutator.
fn scenarios() -> Vec<Scenario> {
    vec![
        ("insert_comments", |w| drift::insert_comments(&w.source)),
        ("insert_body_comments", |w| {
            drift::insert_body_comments(&w.source)
        }),
        ("change_cfg", |w| drift::change_cfg(&w.source)),
        // Rename ONE non-entry function (the realistic refactor): its GUID
        // vanishes and must be rename-matched by anchor similarity, while
        // its callers keep their CFG shape but drift their call anchors
        // (`SM004`).
        ("rename", rename_one),
    ]
}

/// Renames one non-entry function of the workload, keeping the rest. The
/// target is the function with the most calls to other defined functions:
/// rename matching needs call anchors as evidence, so renaming a leaf
/// would be undetectable by construction.
fn rename_one(w: &Workload) -> String {
    let names: Vec<&str> = w
        .source
        .lines()
        .filter_map(|l| l.strip_prefix("fn "))
        .filter_map(|rest| rest.split('(').next())
        .map(str::trim)
        .collect();
    let mut calls: Vec<(usize, &str)> = Vec::new();
    let mut current: Option<&str> = None;
    for line in w.source.lines() {
        if let Some(rest) = line.strip_prefix("fn ") {
            current = rest.split('(').next().map(str::trim);
            calls.push((0, current.unwrap_or("")));
            continue;
        }
        if let (Some(cur), Some(slot)) = (current, calls.last_mut()) {
            slot.0 += names
                .iter()
                .filter(|n| **n != cur)
                .map(|n| line.matches(&format!("{n}(")).count())
                .sum::<usize>();
        }
    }
    let target = calls
        .iter()
        .filter(|(_, n)| *n != w.entry)
        .max_by_key(|(c, _)| *c)
        .map(|&(_, n)| n);
    let keep: Vec<&str> = names
        .iter()
        .filter(|n| Some(**n) != target)
        .copied()
        .collect();
    drift::rename_functions(&w.source, &keep)
}

fn run(args: &[String]) -> Result<bool, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return Ok(true);
    }

    let mut policy = Policy::default();
    for v in multi_value(args, "--deny")? {
        policy.deny.extend(v.split(',').map(str::to_string));
    }
    for v in multi_value(args, "--allow")? {
        policy.allow.extend(v.split(',').map(str::to_string));
    }
    policy.validate()?;
    let json_out = opt_value(args, "--json")?;
    let match_cfg = MatchConfig::default();

    let mut analyzer = Analyzer::new(policy);
    let mut report = DiffReport::new();

    let profile_file = opt_value(args, "--profile")?;
    let source_file = opt_value(args, "--source")?;
    match (profile_file, source_file) {
        (Some(pf), Some(sf)) => {
            let profile = load_profile(&pf)?;
            let src = std::fs::read_to_string(&sf).map_err(|e| format!("reading {sf}: {e}"))?;
            let module = probed_module(&src, &sf)?;
            let before = analyzer.report().diagnostics.len();
            let outcome = analyzer.analyze_stale_match(&sf, &module, &profile, &match_cfg);
            let diags = analyzer.report().diagnostics[before..].to_vec();
            report.scenarios.push(
                ScenarioReport::from_outcome("file", &sf, &outcome, diags)
                    .with_inference_quality(inference_quality(&module, &profile))
                    .with_provenance(provenance_breakdown(&module, &profile)),
            );
        }
        (None, None) => {
            let only = opt_value(args, "--workload")?;
            let scale: f64 = match opt_value(args, "--scale")? {
                Some(s) => s.parse().map_err(|_| format!("bad --scale `{s}`"))?,
                None => 0.05,
            };
            let wanted = match opt_value(args, "--scenario")? {
                Some(s) => s.split(',').map(str::to_string).collect(),
                None => Vec::new(),
            };
            for (name, _) in wanted.iter().map(|s| (s.as_str(), ())) {
                if !scenarios().iter().any(|(n, _)| *n == name) {
                    return Err(format!("unknown scenario `{name}`"));
                }
            }

            let train: Option<usize> = match opt_value(args, "--train")? {
                Some(n) => Some(n.parse().map_err(|_| format!("bad --train `{n}`"))?),
                None => None,
            };
            if train.is_some() && !wanted.is_empty() {
                return Err("--train and --scenario are mutually exclusive".into());
            }

            let mut workloads = csspgo::workloads::server_workloads();
            if let Some(name) = &only {
                workloads.retain(|w| &w.name == name);
                if workloads.is_empty() {
                    return Err(format!("unknown workload `{name}`"));
                }
            }
            for workload in &workloads {
                let scaled = workload.scaled(scale);
                match train {
                    Some(n) => train_workload(&scaled, n, &match_cfg, &mut analyzer, &mut report)
                        .map_err(|e| format!("{}: {e}", workload.name))?,
                    None => diff_workload(&scaled, &wanted, &match_cfg, &mut analyzer, &mut report)
                        .map_err(|e| format!("{}: {e}", workload.name))?,
                }
            }
        }
        _ => return Err("--profile and --source must be given together".into()),
    }

    print_summary(&report);
    let lint_report = analyzer.into_report();
    print!("{}", lint_report.render_human());
    if let Some(path) = json_out {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote JSON report to {path}");
    }
    Ok(!lint_report.has_denied())
}

/// Collects a probe profile on the clean build of `workload`, then matches
/// it against each drifted rebuild.
fn diff_workload(
    workload: &Workload,
    wanted: &[String],
    match_cfg: &MatchConfig,
    analyzer: &mut Analyzer,
    report: &mut DiffReport,
) -> Result<(), String> {
    let profile = collect_probe_profile(workload)?;
    for (name, mutate) in scenarios() {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == name) {
            continue;
        }
        let drifted_src = mutate(workload);
        let module = probed_module(&drifted_src, &workload.name)?;
        let unit = format!("{}/{}", workload.name, name);
        let before = analyzer.report().diagnostics.len();
        let outcome = analyzer.analyze_stale_match(&unit, &module, &profile, match_cfg);
        let diags = analyzer.report().diagnostics[before..].to_vec();
        report.scenarios.push(
            ScenarioReport::from_outcome(name, &workload.name, &outcome, diags)
                .with_inference_quality(inference_quality(&module, &profile))
                .with_provenance(provenance_breakdown(&module, &profile)),
        );
    }
    Ok(())
}

/// Collects the release-0 probe profile, then matches every cumulative
/// release of an `n`-release train against it — each row is one more
/// release of accumulated churn the matcher must absorb without a
/// refresh.
fn train_workload(
    workload: &Workload,
    n: usize,
    match_cfg: &MatchConfig,
    analyzer: &mut Analyzer,
    report: &mut DiffReport,
) -> Result<(), String> {
    let profile = collect_probe_profile(workload)?;
    let keep = [workload.entry.as_str()];
    for (i, (mutator, source)) in drift::release_chain(&workload.source, n, &keep)
        .into_iter()
        .enumerate()
    {
        let scenario = format!("train-r{}-{mutator}", i + 1);
        let module = probed_module(&source, &workload.name)?;
        let unit = format!("{}/{scenario}", workload.name);
        let before = analyzer.report().diagnostics.len();
        let outcome = analyzer.analyze_stale_match(&unit, &module, &profile, match_cfg);
        let diags = analyzer.report().diagnostics[before..].to_vec();
        report.scenarios.push(
            ScenarioReport::from_outcome(&scenario, &workload.name, &outcome, diags)
                .with_inference_quality(inference_quality(&module, &profile))
                .with_provenance(provenance_breakdown(&module, &profile)),
        );
    }
    Ok(())
}

/// Compiles `src` and inserts pseudo-probes (the fresh-build side of the
/// match).
fn probed_module(src: &str, name: &str) -> Result<Module, String> {
    let mut module = csspgo::lang::compile(src, name).map_err(|e| e.to_string())?;
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    Ok(module)
}

/// Runs the full CSSPGO collection pipeline on the clean build — like
/// `csspgo_lint`'s stage 3, except cold contexts are *not* trimmed: the
/// differential analyzer wants maximum call-edge fidelity (trimming merges
/// cold contexts into base profiles, discarding exactly the call anchors
/// that rename matching aligns on), and it runs offline where profile size
/// does not matter.
fn collect_probe_profile(workload: &Workload) -> Result<ProbeProfile, String> {
    let config = PipelineConfig::default();
    let mut module = probed_module(&workload.source, &workload.name)?;
    csspgo::opt::run_pipeline(&mut module, &config.opt);
    let binary = lower_module(&module, &CodegenConfig::default());
    let sim_cfg = SimConfig {
        lbr_size: config.lbr_size,
        pebs: config.pebs,
        sample_period: config.sample_period,
        seed: config.seed,
        max_steps: config.max_steps,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(&binary, sim_cfg);
    for (name, values) in &workload.setup {
        machine.set_global(name, values);
    }
    let samples = BatchSource
        .collect(&mut machine, workload)
        .map_err(|e| e.to_string())?;
    let rc = sharded_range_counts(&binary, &samples, config.ingest_shards);
    let tail_graph = TailCallGraph::build(&binary, &rc);
    let unwound =
        sharded_context_profile(&binary, Some(&tail_graph), &samples, config.ingest_shards);
    let mut ctx_profile = unwound.profile;
    let checksums = binary
        .funcs
        .iter()
        .filter_map(|f| f.probe_checksum.map(|c| (f.guid, c)))
        .collect();
    ctx_profile.set_checksums(&checksums);
    let mut probe_prof = ctx_profile.to_probe_profile();
    for (fidx, c) in rc.entry_counts(&binary) {
        let f = &binary.funcs[fidx as usize];
        probe_prof
            .names
            .entry(f.guid)
            .or_insert_with(|| f.name.clone());
        if let Some(fp) = probe_prof.funcs.get_mut(&f.guid) {
            fp.entry = fp.entry.max(c);
        }
    }
    Ok(probe_prof)
}

/// Loads a saved profile: probe-profile JSON, or the context section of a
/// stream snapshot.
fn load_profile(path: &str) -> Result<ProbeProfile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if text.starts_with("# csspgo-stream-snapshot") {
        let (_, ctx) = textprof::split_snapshot_context(&text)
            .ok_or_else(|| format!("{path}: snapshot has no !context section"))?;
        let ctx_profile = textprof::parse_context(ctx).map_err(|e| e.to_string())?;
        Ok(ctx_profile.to_probe_profile())
    } else {
        textprof::parse_probe_json(&text).map_err(|e| e.to_string())
    }
}

/// One line per scenario: the quality headline plus where the recovered
/// weight came from (sampled/stale-matched/inferred shares).
fn print_summary(report: &DiffReport) {
    println!("| scenario | workload | funcs | matched | recovered | renamed | dropped | stale weight recovered | PF raw→inferred | provenance (smp/stale/inf) |");
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for s in &report.scenarios {
        let pf = s
            .inference_quality
            .as_ref()
            .map(|q| format!("{}→{}", q.pf_findings_raw, q.pf_findings_inferred))
            .unwrap_or_else(|| "-".into());
        let prov = s
            .provenance
            .as_ref()
            .map(|p| {
                format!(
                    "{:.0}%/{:.0}%/{:.0}%",
                    p.sampled_share * 100.0,
                    p.stale_matched_share * 100.0,
                    p.inferred_share * 100.0
                )
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1}% | {pf} | {prov} |",
            s.scenario,
            s.workload,
            s.funcs_total,
            s.checksum_matched,
            s.recovered,
            s.renamed,
            s.dropped,
            s.stale_recovered_fraction * 100.0
        );
    }
}

/// Pulls the (optional, single) value of `--flag`.
fn opt_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

/// Pulls every value of a repeatable `--flag`.
fn multi_value(args: &[String], flag: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            out.push(
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))?,
            );
        }
    }
    Ok(out)
}
