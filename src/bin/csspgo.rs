//! `csspgo` — the command-line driver tying the toolchain together, in the
//! shape of the paper's workflow (`clang` + `perf` + `llvm-profgen`):
//!
//! ```text
//! csspgo compile service.mini -o service.bin --probes
//! csspgo run service.bin --entry serve --args 3,1 --repeat 100 \
//!        --sample-period 199 --samples-out samples.json
//! csspgo profgen service.bin --samples samples.json --format context -o service.prof
//! csspgo pgo service.mini --entry serve --variant csspgo --train 3,1 --eval 4,2
//! ```
//!
//! Everything is file-based: binaries and samples serialize as JSON,
//! profiles as the LLVM-style text formats in
//! [`csspgo::core::textprof`].

use csspgo::codegen::{lower_module, Binary, CodegenConfig};
use csspgo::core::context::ContextProfile;
use csspgo::core::correlate::{dwarf_profile, probe_profile};
use csspgo::core::pipeline::{run_pgo_cycle, PgoVariant, PipelineConfig};
use csspgo::core::ranges::RangeCounts;
use csspgo::core::tailcall::TailCallGraph;
use csspgo::core::textprof;
use csspgo::core::unwind::Unwinder;
use csspgo::core::Workload;
use csspgo::sim::{Machine, Sample, SimConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("profgen") => cmd_profgen(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("pgo") => cmd_pgo(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `csspgo help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("csspgo: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        r#"csspgo — context-sensitive sampling-based PGO toolchain

USAGE:
  csspgo compile <src> -o <out.bin> [--probes] [--instrument] [--no-opt]
  csspgo run <bin> --entry <fn> [--args a,b] [--repeat N]
             [--sample-period N] [--samples-out <file>]
  csspgo profgen <bin> --samples <file> --format flat|probe|context
             [-o <file>]
  csspgo merge --format flat|context <prof1> <prof2> ... [-o <file>]
  csspgo pgo <src> --entry <fn> --variant o2|instr|autofdo|probe|csspgo
             [--train a,b] [--eval a,b] [--repeat N]

Sources are MiniLang (.mini); binaries and samples are JSON; profiles use
the LLVM-style text formats."#
    );
}

/// Pulls `--flag value` out of an argument list.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_args_list(s: &str) -> Result<Vec<i64>, String> {
    if s.is_empty() {
        return Ok(vec![]);
    }
    s.split(',')
        .map(|p| p.trim().parse().map_err(|_| format!("bad argument `{p}`")))
        .collect()
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let src_path = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("compile: missing source file")?;
    let out = opt_value(args, "-o").ok_or("compile: missing -o <out>")?;
    let source =
        std::fs::read_to_string(src_path).map_err(|e| format!("reading {src_path}: {e}"))?;
    let mut module =
        csspgo::lang::compile(&source, src_path).map_err(|e| format!("{src_path}: {e}"))?;
    csspgo::opt::discriminators::run(&mut module);
    if has_flag(args, "--probes") {
        csspgo::opt::probes::run(&mut module);
    }
    if has_flag(args, "--instrument") {
        csspgo::opt::instrument::run(&mut module);
    }
    if !has_flag(args, "--no-opt") {
        csspgo::opt::run_pipeline(&mut module, &csspgo::opt::OptConfig::default());
    }
    let binary = lower_module(&module, &CodegenConfig::default());
    let json = serde_json::to_string(&binary).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} instructions, text {} B, debug {} B, probe metadata {} B",
        binary.len(),
        binary.sections.text,
        binary.sections.debug_line,
        binary.sections.pseudo_probe
    );
    Ok(())
}

fn load_binary(path: &str) -> Result<Binary, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("{path}: not a csspgo binary: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let bin_path = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("run: missing binary")?;
    let entry = opt_value(args, "--entry").ok_or("run: missing --entry")?;
    let call_args = parse_args_list(&opt_value(args, "--args").unwrap_or_default())?;
    let repeat: u64 = opt_value(args, "--repeat")
        .map(|v| v.parse().map_err(|_| "bad --repeat"))
        .transpose()?
        .unwrap_or(1);
    let period: u64 = opt_value(args, "--sample-period")
        .map(|v| v.parse().map_err(|_| "bad --sample-period"))
        .transpose()?
        .unwrap_or(0);

    let binary = load_binary(bin_path)?;
    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: period,
            ..SimConfig::default()
        },
    );
    let mut last = 0;
    for _ in 0..repeat {
        last = machine
            .call(&entry, &call_args)
            .map_err(|e| e.to_string())?;
    }
    let stats = machine.stats();
    println!("result: {last}");
    println!(
        "cycles: {}  instructions: {}  taken: {}  mispredicts: {}  icache misses: {}  samples: {}",
        stats.cycles,
        stats.instructions,
        stats.taken_branches,
        stats.mispredicts,
        stats.icache_misses,
        stats.samples
    );
    if let Some(out) = opt_value(args, "--samples-out") {
        let samples = machine.take_samples();
        let json = serde_json::to_string(&samples).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {} samples to {out}", samples.len());
    }
    Ok(())
}

fn cmd_profgen(args: &[String]) -> Result<(), String> {
    let bin_path = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("profgen: missing binary")?;
    let samples_path = opt_value(args, "--samples").ok_or("profgen: missing --samples")?;
    let format = opt_value(args, "--format").unwrap_or_else(|| "flat".into());
    let binary = load_binary(bin_path)?;
    let samples: Vec<Sample> = {
        let json = std::fs::read_to_string(&samples_path)
            .map_err(|e| format!("reading {samples_path}: {e}"))?;
        serde_json::from_str(&json).map_err(|e| format!("{samples_path}: {e}"))?
    };
    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);

    let text = match format.as_str() {
        "flat" => textprof::write_flat(&dwarf_profile(&binary, &rc)),
        "probe" => textprof::write_probe_json(&probe_profile(&binary, &rc)),
        "context" => {
            let graph = TailCallGraph::build(&binary, &rc);
            let mut profile = ContextProfile::new();
            let mut unwinder = Unwinder::new(&binary, Some(&graph));
            unwinder.unwind_into(&samples, &mut profile);
            for f in &binary.funcs {
                profile.names.insert(f.guid, f.name.clone());
            }
            textprof::write_context(&profile)
        }
        other => return Err(format!("unknown --format `{other}`")),
    };
    match opt_value(args, "-o") {
        Some(out) => {
            std::fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote {out} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let format = opt_value(args, "--format").unwrap_or_else(|| "flat".into());
    let out = opt_value(args, "-o");
    let inputs: Vec<&String> = {
        // Positional arguments: everything not a flag and not a flag value.
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") || *a == "-o" {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    if inputs.len() < 2 {
        return Err("merge: need at least two profiles".into());
    }
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let text = match format.as_str() {
        "flat" => {
            let mut acc = textprof::parse_flat(&read(inputs[0])?)
                .map_err(|e| format!("{}: {e}", inputs[0]))?;
            for p in &inputs[1..] {
                let next = textprof::parse_flat(&read(p)?).map_err(|e| format!("{p}: {e}"))?;
                csspgo::core::merge::merge_flat(&mut acc, &next);
            }
            textprof::write_flat(&acc)
        }
        "context" => {
            let mut acc = textprof::parse_context(&read(inputs[0])?)
                .map_err(|e| format!("{}: {e}", inputs[0]))?;
            for p in &inputs[1..] {
                let next = textprof::parse_context(&read(p)?).map_err(|e| format!("{p}: {e}"))?;
                csspgo::core::merge::merge_context(&mut acc, &next);
            }
            textprof::write_context(&acc)
        }
        other => return Err(format!("unknown --format `{other}`")),
    };
    match out {
        Some(o) => {
            std::fs::write(&o, &text).map_err(|e| format!("writing {o}: {e}"))?;
            println!("wrote {o} ({} bytes)", text.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_pgo(args: &[String]) -> Result<(), String> {
    let src_path = args
        .first()
        .filter(|a| !a.starts_with('-'))
        .ok_or("pgo: missing source file")?;
    let entry = opt_value(args, "--entry").ok_or("pgo: missing --entry")?;
    let variant = match opt_value(args, "--variant").as_deref() {
        Some("o2") => PgoVariant::O2,
        Some("instr") => PgoVariant::Instr,
        Some("autofdo") => PgoVariant::AutoFdo,
        Some("probe") => PgoVariant::CsspgoProbeOnly,
        Some("csspgo") | None => PgoVariant::CsspgoFull,
        Some(other) => return Err(format!("unknown --variant `{other}`")),
    };
    let train = parse_args_list(&opt_value(args, "--train").unwrap_or_default())?;
    let eval = parse_args_list(
        &opt_value(args, "--eval")
            .unwrap_or_else(|| opt_value(args, "--train").unwrap_or_default()),
    )?;
    let repeat: usize = opt_value(args, "--repeat")
        .map(|v| v.parse().map_err(|_| "bad --repeat"))
        .transpose()?
        .unwrap_or(10);

    let source =
        std::fs::read_to_string(src_path).map_err(|e| format!("reading {src_path}: {e}"))?;
    let workload = Workload::new(
        src_path.as_str(),
        source,
        entry,
        vec![train; repeat],
        vec![eval; repeat],
    );
    let config = PipelineConfig::default();
    let outcome = run_pgo_cycle(&workload, variant, &config).map_err(|e| e.to_string())?;
    println!("variant: {}", outcome.variant);
    println!(
        "profiling: {} cycles, {} samples",
        outcome.profiling.cycles, outcome.profiling.samples
    );
    println!(
        "annotation: {} functions, {} stale dropped, {} stale recovered, {} inlines replayed, plan {}",
        outcome.annotate_stats.annotated,
        outcome.annotate_stats.stale_dropped,
        outcome.annotate_stats.stale_recovered,
        outcome.annotate_stats.replayed_inlines,
        outcome.plan_len
    );
    println!(
        "final binary: text {} B (+{} B debug, +{} B probe metadata)",
        outcome.sections.text, outcome.sections.debug_line, outcome.sections.pseudo_probe
    );
    println!(
        "evaluation: {} cycles / {} instructions ({} taken, {} mispredicted, {} icache misses)",
        outcome.eval.cycles,
        outcome.eval.instructions,
        outcome.eval.taken_branches,
        outcome.eval.mispredicts,
        outcome.eval.icache_misses
    );
    Ok(())
}
