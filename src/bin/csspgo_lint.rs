//! `csspgo_lint` — the probe-invariant and profile-integrity analyzer,
//! driven over every shipped workload.
//!
//! For each workload the tool rebuilds the full CSSPGO cycle and lints every
//! stage:
//!
//! 1. the **fresh** probed module (IR verifier, probe invariants,
//!    discriminator discipline),
//! 2. the **optimized** module after the whole pass pipeline (IR verifier,
//!    probe invariants — cloned probes must carry duplication factors),
//! 3. the collected **context profile** (context-tree consistency) and the
//!    flattened **probe profile** (checksum staleness, probe ranges) —
//!    additionally round-tripped through both the text and the binary
//!    (`binprof`) wire formats, which must produce identical findings,
//! 4. the **stale matcher** run over the collected profile (`SM` lints: on
//!    an undrifted build every function must pass through bit-identical,
//!    with no anchor drift and no matcher-invariant violations),
//! 5. the profile-**annotated** module (flow conservation, dominance, and
//!    edge/block reconciliation over the inference-attached edge counts),
//! 6. with `--post-inference`, **drifted** rebuilds of every workload
//!    annotated through stale recovery plus min-cost-flow inference — the
//!    "clean by construction" gate: inferred profiles, including ones
//!    salvaged from drifted sources, must carry zero `PF` findings.
//!
//! ```text
//! csspgo_lint --deny all --post-inference --json report.json
//! csspgo_lint --workload ad_ranker --allow PF001
//! csspgo_lint --list
//! csspgo_lint --explain PP001
//! ```
//!
//! Exits nonzero iff any diagnostic reaches `Deny` severity — `--deny all`
//! over the shipped workloads is the repo's CI gate.

use csspgo::analysis::{explain, render_lint_list, Analyzer, Policy};
use csspgo::codegen::{lower_module, CodegenConfig};
use csspgo::core::annotate::{csspgo_annotate, AnnotateConfig};
use csspgo::core::binprof;
use csspgo::core::pipeline::{BatchSource, PipelineConfig, ProfileSource};
use csspgo::core::shard::{sharded_context_profile, sharded_range_counts};
use csspgo::core::stalematch::{MatchConfig, StaleMatching};
use csspgo::core::tailcall::TailCallGraph;
use csspgo::core::textprof::{parse_probe_json, write_probe_json};
use csspgo::core::Workload;
use csspgo::sim::{Machine, SimConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("csspgo_lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        r#"csspgo_lint — probe-invariant & profile-integrity analyzer

USAGE:
  csspgo_lint [--deny <lint,...|all>] [--allow <lint,...|all>]
              [--workload <name>] [--scale <f>] [--json <file>] [--list]
              [--explain <lint>] [--post-inference]

Lints the full PGO cycle (fresh module, optimized module, counter
placement, collected profiles, annotated module) of every shipped
workload. Lints are named by stable id (PI001) or name
(probe-duplicate-id); `--deny all` escalates every lint to an error.
`--list` prints the registry grouped by family; `--explain <lint>` prints
one lint's extended documentation. `--post-inference` additionally lints
drifted rebuilds annotated through stale recovery + min-cost-flow
inference (inferred profiles must be flow-clean by construction, and
their weight provenance is linted too). Exits 1 if any denied lint
fires, 2 on usage errors."#
    );
}

fn run(args: &[String]) -> Result<bool, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return Ok(true);
    }
    if args.iter().any(|a| a == "--list") {
        print!("{}", render_lint_list());
        return Ok(true);
    }
    if let Some(key) = opt_value(args, "--explain")? {
        let text = explain(&key)
            .ok_or_else(|| format!("unknown lint `{key}` (try --list for the registry)"))?;
        print!("{text}");
        return Ok(true);
    }

    let mut policy = Policy::default();
    for v in multi_value(args, "--deny")? {
        policy.deny.extend(v.split(',').map(str::to_string));
    }
    for v in multi_value(args, "--allow")? {
        policy.allow.extend(v.split(',').map(str::to_string));
    }
    policy.validate()?;

    let only = opt_value(args, "--workload")?;
    let scale: f64 = match opt_value(args, "--scale")? {
        Some(s) => s.parse().map_err(|_| format!("bad --scale `{s}`"))?,
        None => 0.05,
    };
    let json_out = opt_value(args, "--json")?;
    let post_inference = args.iter().any(|a| a == "--post-inference");

    let mut workloads = csspgo::workloads::server_workloads();
    workloads.push(csspgo::workloads::client_compiler());
    if let Some(name) = &only {
        workloads.retain(|w| &w.name == name);
        if workloads.is_empty() {
            return Err(format!("unknown workload `{name}`"));
        }
    }

    let mut analyzer = Analyzer::new(policy);
    for workload in &workloads {
        let scaled = workload.scaled(scale);
        lint_workload(&scaled, post_inference, &mut analyzer)
            .map_err(|e| format!("{}: {e}", workload.name))?;
    }
    let report = analyzer.into_report();

    print!("{}", report.render_human());
    if let Some(path) = json_out {
        std::fs::write(&path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote JSON report to {path}");
    }
    Ok(!report.has_denied())
}

/// Reruns the CSSPGO cycle for one workload, linting each stage.
fn lint_workload(
    workload: &Workload,
    post_inference: bool,
    analyzer: &mut Analyzer,
) -> Result<(), String> {
    let config = PipelineConfig::default();

    // Stage 1: the fresh probed module.
    let mut module =
        csspgo::lang::compile(&workload.source, &workload.name).map_err(|e| e.to_string())?;
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    analyzer.analyze_module(&format!("{}/fresh", workload.name), &module, true);

    // Stage 1b: the spanning-tree counter placement the instrumented
    // variant would emit for this module, certified by the static
    // Kirchhoff prover (`PP` lints) — no execution involved.
    analyzer.analyze_placement(&format!("{}/placement", workload.name), &module);

    // Stage 2: the optimized module, with the optimizer's own inter-pass
    // verifier engaged on top of the final lint sweep.
    let mut optimized = module.clone();
    let opt_cfg = csspgo::opt::OptConfig {
        interpass_verify: true,
        ..config.opt.clone()
    };
    csspgo::opt::run_pipeline(&mut optimized, &opt_cfg);
    analyzer.analyze_module(&format!("{}/optimized", workload.name), &optimized, false);

    // Stage 3: profile collection on the optimized binary, as in production.
    let binary = lower_module(&optimized, &CodegenConfig::default());
    let sim_cfg = SimConfig {
        lbr_size: config.lbr_size,
        pebs: config.pebs,
        sample_period: config.sample_period,
        seed: config.seed,
        max_steps: config.max_steps,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(&binary, sim_cfg);
    for (name, values) in &workload.setup {
        machine.set_global(name, values);
    }
    let samples = BatchSource
        .collect(&mut machine, workload)
        .map_err(|e| e.to_string())?;

    let rc = sharded_range_counts(&binary, &samples, config.ingest_shards);
    let tail_graph = TailCallGraph::build(&binary, &rc);
    let unwound =
        sharded_context_profile(&binary, Some(&tail_graph), &samples, config.ingest_shards);
    let mut ctx_profile = unwound.profile;
    let checksums = binary
        .funcs
        .iter()
        .filter_map(|f| f.probe_checksum.map(|c| (f.guid, c)))
        .collect();
    ctx_profile.set_checksums(&checksums);
    ctx_profile.trim_cold(config.trim_threshold);
    analyzer.analyze_context_profile(&format!("{}/context-profile", workload.name), &ctx_profile);

    let mut probe_prof = ctx_profile.to_probe_profile();
    for (fidx, c) in rc.entry_counts(&binary) {
        let guid = binary.funcs[fidx as usize].guid;
        if let Some(fp) = probe_prof.funcs.get_mut(&guid) {
            fp.entry = fp.entry.max(c);
        }
    }
    analyzer.analyze_probe_profile(
        &format!("{}/probe-profile", workload.name),
        &module,
        &probe_prof,
    );

    // Wire-format equivalence: the same profile loaded back through the
    // text and the binary format must lint identically — a decoder bug
    // that perturbs counts or structure shows up as diverging reports.
    let from_text = parse_probe_json(&write_probe_json(&probe_prof))
        .map_err(|e| format!("text probe round-trip: {e}"))?;
    let from_bin = binprof::decode_probe(&binprof::encode_probe(&probe_prof))
        .map_err(|e| format!("binary probe round-trip: {e}"))?;
    if from_bin != probe_prof {
        return Err("binary probe round-trip is not lossless".into());
    }
    let mut reports = Vec::new();
    for prof in [&from_text, &from_bin] {
        let mut scratch = Analyzer::new(Policy::default());
        scratch.analyze_probe_profile(&format!("{}/probe-profile", workload.name), &module, prof);
        reports.push(scratch.into_report().to_json());
    }
    if reports[0] != reports[1] {
        return Err("text-loaded and binary-loaded profiles lint differently".into());
    }

    // Stage 4: the stale matcher over the just-collected profile. The
    // build has not drifted, so every function must pass through
    // bit-identical with no SM diagnostics — anchor drift or an invariant
    // violation here means the matcher or the probe metadata is broken.
    analyzer.analyze_stale_match(
        &format!("{}/stale-match", workload.name),
        &module,
        &probe_prof,
        &MatchConfig::default(),
    );

    // Stage 5: annotate a fresh module (no inline replay, so block counts
    // stay on the common CFG) and check flow conservation.
    let no_replay = AnnotateConfig {
        inline_budget: 0,
        ..config.annotate
    };
    csspgo_annotate(&mut module, &probe_prof, None, &no_replay);
    analyzer.analyze_flow(&format!("{}/annotated", workload.name), &module);
    analyzer.analyze_provenance(&format!("{}/annotated", workload.name), &module);

    // Stage 6 (--post-inference): annotate drifted rebuilds through stale
    // recovery + inference. Salvaged counts are partial and internally
    // inconsistent before inference; afterwards they must be flow-clean —
    // this is the "clean by construction" acceptance gate.
    if post_inference {
        let scenarios: [(&str, String); 4] = [
            (
                "insert_body_comments",
                csspgo::workloads::drift::insert_body_comments(&workload.source),
            ),
            (
                "change_cfg",
                csspgo::workloads::drift::change_cfg(&workload.source),
            ),
            (
                "insert_statement",
                csspgo::workloads::drift::insert_statement(&workload.source, 1),
            ),
            (
                "delete_statement",
                csspgo::workloads::drift::delete_statement(&workload.source, 1),
            ),
        ];
        for (name, src) in scenarios {
            let mut drifted =
                csspgo::lang::compile(&src, &workload.name).map_err(|e| e.to_string())?;
            csspgo::opt::discriminators::run(&mut drifted);
            csspgo::opt::probes::run(&mut drifted);
            let recover = AnnotateConfig {
                inline_budget: 0,
                stale_matching: StaleMatching::Recover,
                ..config.annotate
            };
            csspgo_annotate(&mut drifted, &probe_prof, None, &recover);
            let unit = format!("{}/post-inference/{name}", workload.name);
            analyzer.analyze_flow(&unit, &drifted);
            // Drift-appropriate provenance thresholds: these rebuilds
            // deliberately invalidate much of the profile, so salvage
            // dominating the module and inference carrying hot functions
            // are expected; only pathological shares (and any structural
            // WP002 source mixing) stay deniable.
            analyzer.analyze_provenance_with(
                &unit,
                &drifted,
                csspgo::analysis::WpTolerance {
                    inferred_majority: 0.75,
                    max_salvaged_share: 0.95,
                    ..csspgo::analysis::WpTolerance::default()
                },
            );
        }
    }
    Ok(())
}

/// Pulls the (optional, single) value of `--flag`.
fn opt_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

/// Pulls every value of a repeatable `--flag`.
fn multi_value(args: &[String], flag: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            out.push(
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))?,
            );
        }
    }
    Ok(out)
}
