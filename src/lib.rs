//! # CSSPGO — context-sensitive sampling-based PGO with pseudo-instrumentation
//!
//! A from-scratch reproduction of the CGO 2024 paper *"Revamping
//! Sampling-Based PGO with Context-Sensitivity and Pseudo-Instrumentation"*
//! (He, Yu, Wang, Oh — Meta).
//!
//! This umbrella crate re-exports the whole stack:
//!
//! * [`lang`] — the MiniLang frontend (lexer → parser → IR lowering),
//! * [`ir`] — the compiler IR with pseudo-probe intrinsics,
//! * [`opt`] — the profile-guided optimizer pipeline,
//! * [`codegen`] — machine-code generation and binary sections,
//! * [`sim`] — the simulated CPU with an LBR/stack-sampling PMU,
//! * [`core`] — the paper's contribution: probe correlation, context
//!   reconstruction (Algorithm 1), the missing-frame inferrer, profile
//!   inference, the pre-inliner (Algorithms 2–3), and end-to-end pipelines,
//! * [`workloads`] — synthetic server/client workloads mirroring the paper's
//!   evaluation set,
//! * [`analysis`] — probe-invariant and profile-integrity lints (the
//!   `csspgo_lint` tool).
//!
//! ## Quickstart
//!
//! ```
//! use csspgo::core::pipeline::{run_pgo_cycle, PgoVariant, PipelineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = csspgo::workloads::ad_finder().scaled(0.05);
//! let cfg = PipelineConfig::default();
//! let outcome = run_pgo_cycle(&workload, PgoVariant::CsspgoFull, &cfg)?;
//! println!("cycles: {}", outcome.eval.cycles);
//! # Ok(())
//! # }
//! ```

pub use csspgo_analysis as analysis;
pub use csspgo_codegen as codegen;
pub use csspgo_core as core;
pub use csspgo_ir as ir;
pub use csspgo_lang as lang;
pub use csspgo_opt as opt;
pub use csspgo_sim as sim;
pub use csspgo_workloads as workloads;
