//! Property tests: randomly generated MiniLang programs must behave
//! identically through every build configuration — plain, fully optimized,
//! probed, and instrumented. This is the whole-toolchain semantics
//! invariant the PGO pipelines rely on.

use csspgo::codegen::{lower_module, CodegenConfig};
use csspgo::sim::{Machine, SimConfig};
use proptest::prelude::*;

/// A tiny structured program generator. Loops are always bounded counters,
/// so every generated program terminates.
#[derive(Debug, Clone)]
enum Stmt {
    Let(usize, Expr),
    Assign(usize, Expr),
    Store(Expr, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
    CallHelper(usize, Expr),
}

#[derive(Debug, Clone)]
enum Expr {
    Const(i8),
    Var(usize),
    Load(Box<Expr>),
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Cmp(&'static str, Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Const),
        (0usize..4).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("&"),
                    Just("|"),
                    Just("^")
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            (
                prop_oneof![Just("<"), Just("<="), Just("=="), Just("!=")],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Cmp(op, Box::new(a), Box::new(b))),
            inner.prop_map(|e| Expr::Load(Box::new(e))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        ((0usize..4), expr_strategy()).prop_map(|(v, e)| Stmt::Let(v, e)),
        ((0usize..4), expr_strategy()).prop_map(|(v, e)| Stmt::Assign(v, e)),
        (expr_strategy(), expr_strategy()).prop_map(|(i, v)| Stmt::Store(i, v)),
        ((0usize..2), expr_strategy()).prop_map(|(h, e)| Stmt::CallHelper(h, e)),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            ((1u8..6), prop::collection::vec(inner, 1..3))
                .prop_map(|(n, body)| Stmt::Loop(n, body)),
        ]
    })
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("({v})"),
        Expr::Var(v) => format!("v{v}"),
        Expr::Load(i) => format!("mem[{} % 64]", render_expr(i)),
        Expr::Bin(op, a, b) => format!("({} {op} {})", render_expr(a), render_expr(b)),
        Expr::Cmp(op, a, b) => format!("({} {op} {})", render_expr(a), render_expr(b)),
    }
}

fn render_stmts(stmts: &[Stmt], depth: usize, counter: &mut usize, out: &mut String) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            Stmt::Let(v, e) | Stmt::Assign(v, e) => {
                out.push_str(&format!("{pad}v{v} = {};\n", render_expr(e)));
            }
            Stmt::Store(i, v) => {
                out.push_str(&format!(
                    "{pad}mem[{} % 64] = {};\n",
                    render_expr(i),
                    render_expr(v)
                ));
            }
            Stmt::If(c, t, e) => {
                out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
                render_stmts(t, depth + 1, counter, out);
                out.push_str(&format!("{pad}}} else {{\n"));
                render_stmts(e, depth + 1, counter, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Loop(n, body) => {
                let c = *counter;
                *counter += 1;
                out.push_str(&format!("{pad}let c{c} = 0;\n"));
                out.push_str(&format!("{pad}while (c{c} < {n}) {{\n"));
                render_stmts(body, depth + 1, counter, out);
                out.push_str(&format!("{pad}    c{c} = c{c} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::CallHelper(h, e) => {
                out.push_str(&format!("{pad}v0 = helper{h}({});\n", render_expr(e)));
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    let mut counter = 0usize;
    render_stmts(stmts, 0, &mut counter, &mut body);
    format!(
        r#"
global mem[64];
fn helper0(x) {{
    if (x % 3 == 0) {{ return x * 2 + 1; }}
    return x - 5;
}}
fn helper1(x) {{
    let i = 0;
    let s = x;
    while (i < 4) {{ s = s + mem[(s + i) % 64]; i = i + 1; }}
    return s;
}}
fn main(a, b) {{
    let v0 = a;
    let v1 = b;
    let v2 = a + b;
    let v3 = a - b;
{body}    return v0 + v1 * 3 + v2 * 5 + v3 * 7 + mem[0] + mem[13];
}}
"#
    )
}

/// Runs `src` under a build configuration, returning outputs for several
/// inputs (or None if the machine hit its budget).
fn run_config(src: &str, probes: bool, instrument: bool, optimize: bool) -> Vec<i64> {
    let mut m = csspgo::lang::compile(src, "prop").expect("generated program compiles");
    csspgo::opt::discriminators::run(&mut m);
    if probes {
        csspgo::opt::probes::run(&mut m);
    }
    if instrument {
        csspgo::opt::instrument::run(&mut m);
    }
    if optimize {
        csspgo::opt::run_pipeline(&mut m, &csspgo::opt::OptConfig::default());
    }
    assert!(
        csspgo::ir::verify::verify_module(&m).is_empty(),
        "valid IR in every configuration"
    );
    let b = lower_module(&m, &CodegenConfig::default());
    let cfg = SimConfig {
        max_steps: 20_000_000,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(&b, cfg);
    let inputs = [(0, 0), (1, 2), (-7, 13), (100, -100), (12345, 678)];
    inputs
        .iter()
        .map(|&(a, b)| machine.call("main", &[a, b]).expect("terminates"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_build_configuration_is_semantics_preserving(
        stmts in prop::collection::vec(stmt_strategy(), 1..6)
    ) {
        let src = render_program(&stmts);
        let reference = run_config(&src, false, false, false);
        prop_assert_eq!(&run_config(&src, false, false, true), &reference, "plain -O2");
        prop_assert_eq!(&run_config(&src, true, false, true), &reference, "probed -O2");
        prop_assert_eq!(&run_config(&src, false, true, true), &reference, "instrumented -O2");
    }
}
