//! Release-train integration tests: the end-to-end drift stack (fleet
//! serving → drift watchdog → stale recovery → MCF inference → canary
//! promotion) validated across successive releases, per the paper's
//! continuous-deployment framing.

use csspgo::core::fleet::FleetConfig;
use csspgo::core::pipeline::PipelineConfig;
use csspgo::core::release_train::{run_release_train, ReleaseSpec, TrainBenchDoc, TrainConfig};
use csspgo::core::stream::StreamConfig;
use csspgo::core::Workload;
use csspgo::workloads::{self, drift, phase_shifted, tenant_traffic_mix};
use std::path::PathBuf;

/// The bench binary's train configuration: drift verdicts at the same
/// threshold `profile_fleet` uses, defaults elsewhere (recover + MCF).
fn train_config() -> TrainConfig {
    let pipeline = PipelineConfig::builder()
        .stream(StreamConfig {
            drift_threshold: 0.8,
            ..StreamConfig::default()
        })
        .build()
        .expect("valid pipeline config");
    let fleet = FleetConfig::builder()
        .pipeline(pipeline)
        .build()
        .expect("valid fleet config");
    TrainConfig {
        fleet,
        ..TrainConfig::default()
    }
}

/// The canonical release lineage for `w` (cumulative mutator chain).
fn releases_for(w: &Workload, n: usize) -> Vec<ReleaseSpec> {
    let keep = [w.entry.as_str()];
    drift::release_chain(&w.source, n, &keep)
        .into_iter()
        .enumerate()
        .map(|(i, (mutator, source))| ReleaseSpec::new(format!("r{}", i + 1), mutator, source))
        .collect()
}

/// The acceptance claim: across a 5-release train on two workloads —
/// a steady tenant-mixed one and a phase-shifted drifting one — the
/// recover+MCF refresh path retains strictly more of the oracle's win
/// train-wide than never refreshing (`stale_matching: Off` on the frozen
/// release-0 profile).
#[test]
fn recover_mcf_train_beats_never_refresh_floor() {
    let cfg = train_config();
    let steady = tenant_traffic_mix(&workloads::ad_finder().scaled(0.25), 7);
    let drifting = phase_shifted(&phase_shifted(&workloads::haas().scaled(0.25), 1), 0);

    for (w, expect_watchdog) in [(&steady, false), (&drifting, true)] {
        let specs = releases_for(w, 5);
        let report = run_release_train(w, &specs, &cfg).expect("train runs");
        assert_eq!(report.releases.len(), 5);
        assert!(
            report.train_retention_pct > report.floor_retention_pct,
            "{}: recover+MCF ({:+.2}%) must retain strictly more than the \
             never-refresh floor ({:+.2}%)",
            report.workload,
            report.train_retention_pct,
            report.floor_retention_pct
        );
        assert!(
            report.promoted >= 1,
            "{}: a healthy train should promote releases",
            report.workload
        );
        if expect_watchdog {
            assert!(
                report.watchdog_fires > 0,
                "{}: the drifting workload must trip the watchdog",
                report.workload
            );
            assert!(report.refreshes > 0, "watchdog fires must drive refreshes");
            let recovered: usize = report.releases.iter().map(|r| r.stale_recovered).sum();
            assert!(
                recovered > 0,
                "{}: refreshes against mutated sources must salvage \
                 checksum-mismatched functions",
                report.workload
            );
        }
        for r in &report.releases {
            assert!(!r.canary.sabotaged, "no sabotage was configured");
            assert!(
                (0.0..=1.0).contains(&r.canary.profile_agreement),
                "profile agreement is a share"
            );
        }
    }
}

/// The canary gate: a corrupted hand-off profile (hot/cold inversion)
/// must be rejected, while the identical release without sabotage is
/// promoted.
#[test]
fn sabotaged_canary_is_rejected_and_clean_twin_promotes() {
    let w = tenant_traffic_mix(&workloads::ad_finder().scaled(0.25), 7);
    let specs = releases_for(&w, 1);

    let clean = run_release_train(&w, &specs, &train_config()).expect("clean train runs");
    assert!(
        clean.releases[0].canary.promoted,
        "the un-sabotaged release must pass the canary gate (pgo {} vs o2 {})",
        clean.releases[0].pgo_cycles, clean.releases[0].o2_cycles
    );

    let cfg = TrainConfig {
        sabotage_release: Some(0),
        ..train_config()
    };
    let sabotaged = run_release_train(&w, &specs, &cfg).expect("sabotaged train runs");
    let rel = &sabotaged.releases[0];
    assert!(rel.canary.sabotaged, "the sabotage hook must be recorded");
    assert!(
        !rel.canary.promoted,
        "a hot/cold-inverted profile must not pass the canary gate \
         (pgo {} vs o2 {}, tolerance {}%)",
        rel.pgo_cycles, rel.o2_cycles, cfg.canary_tolerance_pct
    );
    assert_eq!(sabotaged.rejected, 1);
    assert_eq!(sabotaged.promoted, 0);
}

/// A small fixed-traffic service for the determinism golden: big enough
/// that the structural mutators bite (multi-line functions, a real hot
/// path), small enough to run the train three times in a debug test.
fn golden_workload() -> Workload {
    let src = r#"
fn weigh(x, mode) {
    if (mode == 1) {
        if (x > 0) { return x * 3; }
        return 1;
    }
    if (x > 40) { return x - 40; }
    return 2;
}
fn pass_a(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + weigh(i % 97, 1);
        i = i + 1;
    }
    return s;
}
fn pass_b(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + weigh(i % 61, 2);
        i = i + 1;
    }
    return s;
}
fn main(n) {
    return pass_a(n) + pass_b(n);
}
"#;
    Workload::new(
        "golden_service",
        src,
        "main",
        (0..16).map(|i| vec![120 + i]).collect(),
        (0..8).map(|i| vec![130 + i]).collect(),
    )
}

/// Two identical train runs must serialize byte-identically once timing
/// fields are stripped, and the stripped document is pinned as a golden
/// (re-bless with `BLESS=1 cargo test`).
#[test]
fn train_reports_are_deterministic_and_match_golden() {
    let w = golden_workload();
    let specs = releases_for(&w, 3);
    let cfg = train_config();

    let a = run_release_train(&w, &specs, &cfg).expect("first run");
    let b = run_release_train(&w, &specs, &cfg).expect("second run");
    let a_json = TrainBenchDoc::new(vec![a]).stripped().to_json();
    let b_json = TrainBenchDoc::new(vec![b]).stripped().to_json();
    assert_eq!(
        a_json, b_json,
        "two identical train runs must agree byte-for-byte modulo timing"
    );

    let golden: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "golden",
        "release_train.json",
    ]
    .iter()
    .collect();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden.parent().expect("golden has a parent"))
            .expect("create golden dir");
        std::fs::write(&golden, &a_json).expect("bless golden");
        return;
    }
    let pinned = std::fs::read_to_string(&golden)
        .expect("golden missing — run `BLESS=1 cargo test` to create it");
    assert_eq!(
        a_json, pinned,
        "train report drifted from the golden; if intentional, re-bless \
         with `BLESS=1 cargo test`"
    );
}
