//! Integration tests for Ball–Larus minimal counter placement: the sparse
//! mode must cut counter sites by at least the paper's 30% headline on
//! every server workload, and — because the Kirchhoff reconstruction is
//! exact — produce a bit-identical profile and optimized binary.

use csspgo::core::pipeline::{run_pgo_cycle, PgoVariant, PipelineConfig};
use csspgo::opt::instrument::{self, InstrumentConfig, Placement};
use csspgo::workloads::server_workloads;

/// Counter sites each placement plants in a workload's profiling build.
fn count_sites(source: &str, name: &str, placement: Placement) -> usize {
    let mut module = csspgo::lang::compile(source, name).expect("workload compiles");
    csspgo::opt::discriminators::run(&mut module);
    let map = instrument::run_with(&mut module, &InstrumentConfig { placement });
    map.len()
}

#[test]
fn spanning_tree_cuts_counters_by_thirty_percent_on_every_server_workload() {
    for w in server_workloads() {
        let full = count_sites(&w.source, &w.name, Placement::Full);
        let sparse = count_sites(&w.source, &w.name, Placement::SpanningTree);
        assert!(
            (sparse as f64) <= 0.7 * full as f64,
            "{}: spanning-tree placement kept {sparse} of {full} counters \
             (needs >=30% reduction)",
            w.name
        );
    }
}

#[test]
fn sparse_instrumentation_profile_is_bit_identical_to_full() {
    for w in server_workloads() {
        let w = w.scaled(0.05);
        let cfg = |p: Placement| {
            PipelineConfig::builder()
                .placement(p)
                .build()
                .expect("valid test config")
        };
        let full = run_pgo_cycle(&w, PgoVariant::Instr, &cfg(Placement::Full)).unwrap();
        let sparse = run_pgo_cycle(&w, PgoVariant::Instr, &cfg(Placement::SpanningTree)).unwrap();

        assert!(
            sparse.counter_sites < full.counter_sites,
            "{}: sparse mode must plant fewer counters ({} vs {})",
            w.name,
            sparse.counter_sites,
            full.counter_sites
        );
        assert!(
            sparse.profiling.cycles < full.profiling.cycles,
            "{}: fewer counters must make the profiling run cheaper",
            w.name
        );
        // Exact reconstruction: the annotated profile — and therefore the
        // optimized binary — must be indistinguishable from full mode.
        assert_eq!(
            sparse.quality_counts, full.quality_counts,
            "{}: reconstructed block counts drifted from ground truth",
            w.name
        );
        assert_eq!(
            sparse.eval.cycles, full.eval.cycles,
            "{}: optimized binaries must perform identically",
            w.name
        );
        assert_eq!(
            sparse.eval_result_hash, full.eval_result_hash,
            "{}: behaviour must not change",
            w.name
        );
    }
}
