//! Integration tests for the multi-tenant fleet service: serving several
//! tenants interleaved through one [`FleetService`] must be bit-identical
//! to serving each tenant solo (tenant isolation), and the
//! resident-context cap must bound every tenant-version's store while
//! conserving the weight its evictions fold away.

use csspgo::core::fleet::{FleetBinaries, FleetConfig, FleetService, TenantId, TenantSpec};
use csspgo::core::pipeline::PipelineConfig;
use csspgo::workloads::{self, tenant_traffic_mix};

fn fleet_cfg(resident_cap: usize) -> FleetConfig {
    FleetConfig::builder()
        .pipeline(
            PipelineConfig::builder()
                .sample_period(89)
                .build()
                .expect("valid pipeline config"),
        )
        .epoch_calls(4)
        .resident_cap(resident_cap)
        .build()
        .expect("valid fleet config")
}

/// Two tenants running the same services real fleets would: the same
/// request multisets in tenant-specific arrival orders.
fn two_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::single_version(
            TenantId(0),
            tenant_traffic_mix(&workloads::ad_finder().scaled(0.2), 7),
        ),
        TenantSpec::single_version(
            TenantId(1),
            tenant_traffic_mix(&workloads::ad_ranker().scaled(0.2), 8),
        ),
    ]
}

/// The isolation contract: a tenant's profile out of the interleaved fleet
/// is bit-identical to what solo serving produces — under *and* without a
/// resident cap (eviction is a pure function of the tenant's own stream).
#[test]
fn interleaved_tenants_match_solo_serving_bit_for_bit() {
    for cap in [0, 6] {
        let cfg = fleet_cfg(cap);
        let specs = two_tenants();
        let fleet_bins = FleetBinaries::compile(&specs, &cfg).expect("fleet compiles");
        let mut fleet = FleetService::new(&fleet_bins, cfg.clone());
        let run = fleet.run().expect("fleet serves");
        assert_eq!(run.stats.tenants, 2);

        for spec in &specs {
            let solo_bins =
                FleetBinaries::compile(std::slice::from_ref(spec), &cfg).expect("solo compiles");
            let mut solo = FleetService::new(&solo_bins, cfg.clone());
            solo.run().expect("solo serves");

            let fleet_agg = fleet.aggregator(spec.id, "v0").expect("tenant registered");
            let solo_agg = solo.aggregator(spec.id, "v0").expect("tenant registered");
            assert_eq!(
                fleet_agg.context_profile(),
                solo_agg.context_profile(),
                "tenant {} (cap {cap}) diverged from solo serving",
                spec.id
            );
            assert_eq!(fleet_agg.total_samples(), solo_agg.total_samples());
            assert_eq!(fleet_agg.epochs_sealed(), solo_agg.epochs_sealed());
        }
    }
}

/// The cap contract: capped serving evicts, stays under the cap on every
/// tenant-version, and folds exactly the weight away that uncapped serving
/// keeps resident — totals match bit for bit.
#[test]
fn resident_cap_bounds_every_tenant_and_conserves_weight() {
    let free_cfg = fleet_cfg(0);
    let specs = two_tenants();
    let bins = FleetBinaries::compile(&specs, &free_cfg).expect("fleet compiles");

    let mut free = FleetService::new(&bins, free_cfg);
    free.run().expect("uncapped fleet serves");
    let max_resident = free
        .registry()
        .into_iter()
        .map(|(id, v)| free.aggregator(id, &v).unwrap().resident_contexts())
        .max()
        .unwrap();
    assert!(max_resident > 2, "need a store worth capping");

    let cap = max_resident - 2;
    let mut capped = FleetService::new(&bins, fleet_cfg(cap));
    let run = capped.run().expect("capped fleet serves");
    assert!(
        run.stats.evicted.subtrees > 0,
        "cap {cap} under max residency {max_resident} must evict"
    );

    for (id, version) in capped.registry() {
        let capped_agg = capped.aggregator(id, &version).unwrap();
        let free_agg = free.aggregator(id, &version).unwrap();
        assert!(
            capped_agg.resident_contexts() <= cap,
            "tenant {id} {version}: {} resident over cap {cap}",
            capped_agg.resident_contexts()
        );
        assert_eq!(
            capped_agg.context_profile().total(),
            free_agg.context_profile().total(),
            "tenant {id} {version}: eviction lost weight"
        );
    }
}
