//! Registry ↔ docs sync: every lint in `diag::LINTS` must be documented in
//! DESIGN.md, and every family in `diag::LINT_FAMILIES` must appear in the
//! README's family table. CI enforces the same property by grepping
//! `csspgo_lint --list` output against DESIGN.md, so a lint added without
//! docs fails both locally and in the gate.

use csspgo::analysis::{LINTS, LINT_FAMILIES};
use std::path::Path;

fn repo_file(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_lint_id_and_name_is_documented_in_design() {
    let design = repo_file("DESIGN.md");
    for l in LINTS {
        assert!(
            design.contains(l.id),
            "lint {} missing from DESIGN.md (document it in the family's registry table)",
            l.id
        );
        assert!(
            design.contains(l.name),
            "lint {}'s name `{}` missing from DESIGN.md",
            l.id,
            l.name
        );
    }
}

#[test]
fn every_lint_family_is_in_the_readme_table() {
    let readme = repo_file("README.md");
    for (prefix, _) in LINT_FAMILIES {
        assert!(
            readme.contains(&format!("`{prefix}`")),
            "lint family {prefix} missing from the README family table"
        );
    }
}

#[test]
fn every_lint_has_a_long_form_explanation() {
    for l in LINTS {
        let text = csspgo::analysis::explain(l.id)
            .unwrap_or_else(|| panic!("{} has no --explain text", l.id));
        assert!(
            text.contains(l.name),
            "{}'s explanation must name the lint",
            l.id
        );
    }
}
