//! End-to-end integration tests: every PGO variant, one small service,
//! cross-checked for behavioural equivalence and the paper's quality
//! ordering.

use csspgo::core::overlap::program_overlap;
use csspgo::core::pipeline::{run_pgo_cycle, PgoOutcome, PgoVariant, PipelineConfig};
use csspgo::core::Workload;
use std::collections::HashMap;

fn service() -> Workload {
    let src = r#"
global table[512];
fn weigh(x, mode) {
    if (mode == 1) {
        if (x > 0) { return x * 3; }
        return 1;
    }
    if (x > 40) { return x - 40; }
    return 2;
}
fn pass_a(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + weigh(table[i % 512], 1);
        i = i + 1;
    }
    return s;
}
fn pass_b(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + weigh(table[i % 512], 2);
        i = i + 1;
    }
    return s;
}
fn main(n) {
    if (n % 13 == 0) {
        // rare bulky path
        let a = pass_a(n) * 3;
        let b = pass_b(n) * 5;
        let c = a + b + n * 7;
        return c % 1000003;
    }
    return pass_a(n) + pass_b(n);
}
"#;
    let mut w = Workload::new(
        "service",
        src,
        "main",
        (0..20).map(|i| vec![200 + i]).collect(),
        (0..20).map(|i| vec![210 + i]).collect(),
    );
    w.setup = vec![(
        "table".into(),
        (0..512).map(|i| (i * 31 + 7) % 120 - 20).collect(),
    )];
    w
}

fn run_all() -> HashMap<PgoVariant, PgoOutcome> {
    let w = service();
    let cfg = PipelineConfig::builder()
        .sample_period(67)
        .build()
        .expect("valid test config");
    PgoVariant::ALL
        .iter()
        .map(|&v| (v, run_pgo_cycle(&w, v, &cfg).expect("cycle runs")))
        .collect()
}

#[test]
fn all_variants_agree_on_program_behaviour() {
    let o = run_all();
    let h = o[&PgoVariant::O2].eval_result_hash;
    for v in PgoVariant::ALL {
        assert_eq!(o[&v].eval_result_hash, h, "{v} changed behaviour");
    }
}

#[test]
fn sampling_variants_produce_profiles_and_annotations() {
    let o = run_all();
    for v in [
        PgoVariant::AutoFdo,
        PgoVariant::CsspgoProbeOnly,
        PgoVariant::CsspgoFull,
    ] {
        assert!(o[&v].profiling.samples > 0, "{v} sampled nothing");
        assert!(o[&v].annotate_stats.annotated > 0, "{v} annotated nothing");
        assert_eq!(
            o[&v].annotate_stats.stale_total(),
            0,
            "{v} spuriously stale"
        );
    }
}

#[test]
fn every_pgo_variant_beats_plain_o2() {
    let o = run_all();
    let base = o[&PgoVariant::O2].eval.cycles;
    for v in [
        PgoVariant::Instr,
        PgoVariant::AutoFdo,
        PgoVariant::CsspgoProbeOnly,
        PgoVariant::CsspgoFull,
    ] {
        assert!(
            o[&v].eval.cycles < base,
            "{v} ({}) should beat O2 ({base})",
            o[&v].eval.cycles
        );
    }
}

#[test]
fn probe_metadata_only_in_probed_builds() {
    let o = run_all();
    assert!(o[&PgoVariant::CsspgoFull].profiling_sections.pseudo_probe > 0);
    assert!(
        o[&PgoVariant::CsspgoProbeOnly]
            .profiling_sections
            .pseudo_probe
            > 0
    );
    assert_eq!(o[&PgoVariant::AutoFdo].profiling_sections.pseudo_probe, 0);
    assert_eq!(o[&PgoVariant::Instr].profiling_sections.pseudo_probe, 0);
}

#[test]
fn quality_ordering_matches_table1() {
    let o = run_all();
    let gt = &o[&PgoVariant::Instr].quality_counts;
    let overlap = |v: PgoVariant| program_overlap(&o[&v].quality_counts, gt);
    let instr = overlap(PgoVariant::Instr);
    let full = overlap(PgoVariant::CsspgoFull);
    let auto = overlap(PgoVariant::AutoFdo);
    assert!((instr - 1.0).abs() < 1e-9, "ground truth overlaps itself");
    assert!(full > auto, "CSSPGO {full:.3} must beat AutoFDO {auto:.3}");
    assert!(auto > 0.5, "AutoFDO must still be a usable profile");
}

#[test]
fn instrumented_profiling_run_is_much_slower() {
    let o = run_all();
    let instr = o[&PgoVariant::Instr].profiling.cycles as f64;
    let auto = o[&PgoVariant::AutoFdo].profiling.cycles as f64;
    let probe = o[&PgoVariant::CsspgoFull].profiling.cycles as f64;
    assert!(
        instr / auto > 1.3,
        "instrumentation overhead {:.2}x",
        instr / auto
    );
    assert!(
        (probe / auto - 1.0).abs() < 0.05,
        "pseudo-instrumentation must be near-zero overhead: {:.3}x",
        probe / auto
    );
}

#[test]
fn deterministic_outcomes() {
    let w = service();
    let cfg = PipelineConfig::builder()
        .sample_period(67)
        .build()
        .expect("valid test config");
    let a = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).unwrap();
    let b = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).unwrap();
    assert_eq!(a.eval.cycles, b.eval.cycles);
    assert_eq!(a.eval_result_hash, b.eval_result_hash);
    assert_eq!(a.plan_len, b.plan_len);
    assert_eq!(a.sections.text, b.sections.text);
}
