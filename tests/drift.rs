//! Integration tests for the paper's source-drift story (§III.A).

use csspgo::core::pipeline::{run_pgo_cycle, run_pgo_cycle_drifted, PgoVariant, PipelineConfig};
use csspgo::core::stalematch::{match_stale_profile, MatchConfig, StaleMatching};
use csspgo::workloads::drift;

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .sample_period(101)
        .build()
        .expect("valid test config")
}

#[test]
fn csspgo_is_immune_to_comment_drift() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::insert_body_comments(&w.source);
    let clean = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg()).unwrap();
    let after = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &cfg(), &drifted).unwrap();
    assert_eq!(
        after.annotate_stats.stale_total(),
        0,
        "comments must not look stale"
    );
    assert_eq!(
        clean.eval.cycles, after.eval.cycles,
        "CFG checksums make CSSPGO drift-transparent"
    );
    assert_eq!(clean.eval_result_hash, after.eval_result_hash);
}

#[test]
fn autofdo_profile_degrades_under_comment_drift() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::insert_body_comments(&w.source);
    let clean = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg()).unwrap();
    let after = run_pgo_cycle_drifted(&w, PgoVariant::AutoFdo, &cfg(), &drifted).unwrap();
    // The line-shifted profile mis-applies; the paper observed ~8% loss.
    assert!(
        after.eval.cycles > clean.eval.cycles,
        "expected a drift penalty: clean {} vs drifted {}",
        clean.eval.cycles,
        after.eval.cycles
    );
    assert_eq!(clean.eval_result_hash, after.eval_result_hash);
}

#[test]
fn csspgo_rejects_cfg_changing_drift_via_checksums() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::change_cfg(&w.source);
    let after = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &cfg(), &drifted).unwrap();
    assert!(
        after.annotate_stats.stale_total() > 0,
        "CFG change must be detected as a checksum mismatch"
    );
    assert_eq!(
        after.annotate_stats.stale_recovered, 0,
        "stale matching defaults to off"
    );
}

#[test]
fn stale_matching_recovers_cfg_drift_counts() {
    // The PR 5 acceptance bar: on a shipped CFG-changing drift, the
    // matcher must restore at least 60% of the weight that the checksum
    // gate would otherwise drop, end to end on a *collected* profile.
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::change_cfg(&w.source);

    // Matcher-level weight check on the real collected profile.
    let profile = collect_probe_profile(&w);
    let mut module = csspgo::lang::compile(&drifted, &w.name).unwrap();
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    let outcome = match_stale_profile(&module, &profile, &MatchConfig::default());
    assert!(
        outcome.stale_old_weight() > 0,
        "change_cfg must invalidate checksums"
    );
    assert!(
        outcome.stale_recovered_fraction() >= 0.6,
        "recovered only {:.1}% of stale weight",
        outcome.stale_recovered_fraction() * 100.0
    );

    // Pipeline-level check: the recover path consumes the salvaged counts.
    let recover_cfg = PipelineConfig::builder()
        .sample_period(101)
        .stale_matching(StaleMatching::Recover)
        .build()
        .expect("valid test config");
    let off = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &cfg(), &drifted).unwrap();
    let rec = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &recover_cfg, &drifted).unwrap();
    assert!(rec.annotate_stats.stale_recovered > 0, "nothing salvaged");
    assert!(
        rec.annotate_stats.stale_dropped < off.annotate_stats.stale_dropped,
        "recovery must shrink the dropped set ({} vs {})",
        rec.annotate_stats.stale_dropped,
        off.annotate_stats.stale_dropped
    );
    // Annotation counts steer optimization, never semantics.
    assert_eq!(off.eval_result_hash, rec.eval_result_hash);
}

/// Collects a probe profile on the clean build of `w` — the same pipeline
/// `csspgo_diff` and `csspgo_lint` stage 3 run.
fn collect_probe_profile(w: &csspgo::core::Workload) -> csspgo::core::profile::ProbeProfile {
    use csspgo::core::pipeline::{BatchSource, ProfileSource};
    use csspgo::core::shard::{sharded_context_profile, sharded_range_counts};
    use csspgo::core::tailcall::TailCallGraph;

    let config = cfg();
    let mut module = csspgo::lang::compile(&w.source, &w.name).unwrap();
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    csspgo::opt::run_pipeline(&mut module, &config.opt);
    let binary = csspgo::codegen::lower_module(&module, &config.codegen);
    let sim_cfg = csspgo::sim::SimConfig {
        lbr_size: config.lbr_size,
        pebs: config.pebs,
        sample_period: config.sample_period,
        seed: config.seed,
        max_steps: config.max_steps,
        ..csspgo::sim::SimConfig::default()
    };
    let mut machine = csspgo::sim::Machine::new(&binary, sim_cfg);
    for (name, values) in &w.setup {
        machine.set_global(name, values);
    }
    let samples = BatchSource.collect(&mut machine, w).unwrap();
    let rc = sharded_range_counts(&binary, &samples, config.ingest_shards);
    let tail_graph = TailCallGraph::build(&binary, &rc);
    let unwound =
        sharded_context_profile(&binary, Some(&tail_graph), &samples, config.ingest_shards);
    let mut ctx_profile = unwound.profile;
    let checksums = binary
        .funcs
        .iter()
        .filter_map(|f| f.probe_checksum.map(|c| (f.guid, c)))
        .collect();
    ctx_profile.set_checksums(&checksums);
    let mut probe_prof = ctx_profile.to_probe_profile();
    for (fidx, c) in rc.entry_counts(&binary) {
        let guid = binary.funcs[fidx as usize].guid;
        if let Some(fp) = probe_prof.funcs.get_mut(&guid) {
            fp.entry = fp.entry.max(c);
        }
    }
    probe_prof
}
