//! Integration tests for the paper's source-drift story (§III.A).

use csspgo::core::pipeline::{run_pgo_cycle, run_pgo_cycle_drifted, PgoVariant, PipelineConfig};
use csspgo::workloads::drift;

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .sample_period(101)
        .build()
        .expect("valid test config")
}

#[test]
fn csspgo_is_immune_to_comment_drift() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::insert_body_comments(&w.source);
    let clean = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg()).unwrap();
    let after = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &cfg(), &drifted).unwrap();
    assert_eq!(
        after.annotate_stats.stale, 0,
        "comments must not look stale"
    );
    assert_eq!(
        clean.eval.cycles, after.eval.cycles,
        "CFG checksums make CSSPGO drift-transparent"
    );
    assert_eq!(clean.eval_result_hash, after.eval_result_hash);
}

#[test]
fn autofdo_profile_degrades_under_comment_drift() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::insert_body_comments(&w.source);
    let clean = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg()).unwrap();
    let after = run_pgo_cycle_drifted(&w, PgoVariant::AutoFdo, &cfg(), &drifted).unwrap();
    // The line-shifted profile mis-applies; the paper observed ~8% loss.
    assert!(
        after.eval.cycles > clean.eval.cycles,
        "expected a drift penalty: clean {} vs drifted {}",
        clean.eval.cycles,
        after.eval.cycles
    );
    assert_eq!(clean.eval_result_hash, after.eval_result_hash);
}

#[test]
fn csspgo_rejects_cfg_changing_drift_via_checksums() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::change_cfg(&w.source);
    let after = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &cfg(), &drifted).unwrap();
    assert!(
        after.annotate_stats.stale > 0,
        "CFG change must be detected as a checksum mismatch"
    );
}
