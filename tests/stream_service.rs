//! Integration tests for the streaming service surface: the unified
//! [`run_pgo_cycle_with`] entry point accepting either profile source, and
//! the drift-detection → recompilation hook that keeps a continuously
//! served profile fresh.

use csspgo::core::pipeline::{
    run_pgo_cycle, run_pgo_cycle_drifted, run_pgo_cycle_with, BatchSource, EpochSource, PgoVariant,
    PipelineConfig,
};
use csspgo::core::stream::{StreamAggregator, StreamConfig};
use csspgo::sim::{Machine, SimConfig};
use csspgo::workloads::drift;

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .sample_period(89)
        .build()
        .expect("valid test config")
}

#[test]
fn epoch_source_reproduces_batch_cycle_on_real_workload() {
    let w = csspgo::workloads::ad_finder().scaled(0.2);
    let cfg = cfg();
    let batch = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).unwrap();
    let mut epochs = EpochSource::new(1);
    let streamed =
        run_pgo_cycle_with(&w, PgoVariant::CsspgoFull, &cfg, &mut epochs, &w.source).unwrap();

    assert!(
        epochs.batch_sizes.len() > 1,
        "traffic must actually arrive in multiple epochs"
    );
    assert_eq!(batch.eval_result_hash, streamed.eval_result_hash);
    assert_eq!(batch.eval.cycles, streamed.eval.cycles);
    assert_eq!(batch.sections.text, streamed.sections.text);
    assert_eq!(batch.profiling.samples, streamed.profiling.samples);
    assert_eq!(batch.plan_len, streamed.plan_len);
    assert_eq!(
        batch.context_nodes_after_trim,
        streamed.context_nodes_after_trim
    );
}

#[test]
fn batch_source_is_the_classic_entry_point() {
    let w = csspgo::workloads::ad_finder().scaled(0.2);
    let cfg = cfg();
    let via_wrapper = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg).unwrap();
    let via_unified =
        run_pgo_cycle_with(&w, PgoVariant::AutoFdo, &cfg, &mut BatchSource, &w.source).unwrap();
    assert_eq!(via_wrapper.eval_result_hash, via_unified.eval_result_hash);
    assert_eq!(via_wrapper.eval.cycles, via_unified.eval.cycles);
}

/// The full continuous-serving story: steady traffic folds cleanly, a
/// behaviour shift trips the drift detector, and the stale signal drives a
/// profile refresh through the existing drifted-recompile path.
#[test]
fn stale_epoch_triggers_drifted_recompile() {
    let src = r#"
fn hot_a(x) {
    if (x % 3 == 0) { return x * 2; }
    return x + 1;
}
fn hot_b(x) {
    if (x % 7 == 0) { return x - 5; }
    return x * 3;
}
fn serve(n, mode) {
    let i = 0;
    let s = 0;
    while (i < n) {
        if (mode == 1) { s = s + hot_a(i); }
        if (mode != 1) { s = s + hot_b(i); }
        i = i + 1;
    }
    return s;
}
"#;
    let w = csspgo::core::Workload::new(
        "shifting",
        src,
        "serve",
        vec![vec![900, 1], vec![900, 1]],
        vec![vec![901, 1]],
    );

    // Probed build, served continuously.
    let mut module = csspgo::lang::compile(src, "shifting").unwrap();
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    let binary = csspgo::codegen::lower_module(&module, &csspgo::codegen::CodegenConfig::default());
    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: 31,
            ..SimConfig::default()
        },
    );

    let stream_cfg = StreamConfig {
        drift_threshold: 0.8,
        ..StreamConfig::default()
    };
    let mut agg = StreamAggregator::new(&binary, stream_cfg, 2);

    // Two epochs of steady mode-1 traffic.
    for _ in 0..2 {
        machine.call("serve", &[2000, 1]).unwrap();
        agg.push_batch(machine.take_samples()).unwrap();
        let s = agg.seal_epoch();
        assert!(!s.stale, "steady traffic drifted: overlap {:.3}", s.overlap);
    }
    // Traffic shifts to mode 2: different hot function, profile goes stale.
    machine.call("serve", &[2000, 2]).unwrap();
    agg.push_batch(machine.take_samples()).unwrap();
    let shifted = agg.seal_epoch();
    assert!(
        shifted.stale && agg.is_stale(),
        "behaviour shift must be detected: overlap {:.3}",
        shifted.overlap
    );

    // The stale signal hooks the existing drifted-cycle path: recompile
    // with today's (drifted) source while profiling the old deployment.
    let drifted_src = drift::insert_body_comments(src);
    let refreshed =
        run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &cfg(), &drifted_src).unwrap();
    assert_eq!(
        refreshed.annotate_stats.stale_total(),
        0,
        "probe checksums survive comment-only drift"
    );
    let clean = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg()).unwrap();
    assert_eq!(refreshed.eval_result_hash, clean.eval_result_hash);
}
