//! Integration tests for min-cost-flow profile inference (the "profi"
//! pass, §III.C): inferred profiles are flow-clean by construction, the
//! MCF mode preserves more of the profile's value than the fixpoint
//! heuristic under drift, and stale recovery feeds inference end to end.

use csspgo::analysis::{Analyzer, Policy};
use csspgo::core::annotate::{csspgo_annotate, AnnotateConfig};
use csspgo::core::inference::InferenceMode;
use csspgo::core::pipeline::{run_pgo_cycle_drifted, PgoVariant, PipelineConfig};
use csspgo::core::stalematch::StaleMatching;
use csspgo::workloads::drift;

fn cfg() -> PipelineConfig {
    PipelineConfig::builder()
        .sample_period(101)
        .build()
        .expect("valid test config")
}

fn deny_all() -> Policy {
    let mut policy = Policy::default();
    policy.deny.push("all".to_string());
    policy
}

/// The "clean by construction" gate: a profile annotated through MCF
/// inference — including counts salvaged from drifted sources by stale
/// recovery — must carry zero `PF` findings under `--deny all`.
#[test]
fn mcf_inferred_profiles_are_flow_clean_by_construction() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let profile = collect_probe_profile(&w);
    let mut analyzer = Analyzer::new(deny_all());

    let scenarios = [
        ("clean", w.source.clone()),
        ("change_cfg", drift::change_cfg(&w.source)),
        ("insert_statement", drift::insert_statement(&w.source, 1)),
        ("delete_statement", drift::delete_statement(&w.source, 1)),
    ];
    for (name, src) in scenarios {
        let mut module = csspgo::lang::compile(&src, &w.name).unwrap();
        csspgo::opt::discriminators::run(&mut module);
        csspgo::opt::probes::run(&mut module);
        let config = AnnotateConfig {
            inline_budget: 0,
            stale_matching: StaleMatching::Recover,
            inference: InferenceMode::Mcf,
            ..cfg().annotate
        };
        csspgo_annotate(&mut module, &profile, None, &config);
        analyzer.analyze_flow(&format!("inference/{name}"), &module);
    }
    let report = analyzer.into_report();
    assert!(
        !report.has_denied(),
        "inferred profiles must be flow-clean, found:\n{}",
        report.render_human()
    );
    assert!(
        report.diagnostics.is_empty(),
        "no PF findings of any severity expected post-inference"
    );
}

/// Without inference, the same salvaged drift counts are *not* clean —
/// the gate above is earned by the MCF pass, not vacuous.
#[test]
fn recovered_counts_are_dirty_without_inference() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let profile = collect_probe_profile(&w);
    let mut module = csspgo::lang::compile(&drift::change_cfg(&w.source), &w.name).unwrap();
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    let config = AnnotateConfig {
        inline_budget: 0,
        stale_matching: StaleMatching::Recover,
        inference: InferenceMode::Off,
        ..cfg().annotate
    };
    csspgo_annotate(&mut module, &profile, None, &config);
    let mut analyzer = Analyzer::new(deny_all());
    analyzer.analyze_flow("inference/raw-recovered", &module);
    let report = analyzer.into_report();
    assert!(
        !report.diagnostics.is_empty(),
        "salvaged change_cfg counts should violate flow conservation pre-inference"
    );
}

/// The fig6-style comparison the CI bench gate also runs: on a drifted
/// profile salvaged by stale recovery, MCF inference must retain at least
/// as much of the profile's value (fewer eval cycles) as the local
/// fixpoint heuristic.
#[test]
fn mcf_retains_at_least_as_much_as_heuristic_under_drift() {
    let w = csspgo::workloads::ad_retriever().scaled(0.25);
    let drifted = drift::change_cfg(&w.source);
    let mut outcomes = Vec::new();
    for mode in [InferenceMode::Mcf, InferenceMode::Heuristic] {
        let mut config = cfg();
        config.annotate.stale_matching = StaleMatching::Recover;
        config.annotate.inference = mode;
        outcomes
            .push(run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &config, &drifted).unwrap());
    }
    let (mcf, heuristic) = (&outcomes[0], &outcomes[1]);
    assert!(
        mcf.eval.cycles <= heuristic.eval.cycles,
        "MCF inference must not lose to the heuristic: {} vs {} cycles",
        mcf.eval.cycles,
        heuristic.eval.cycles
    );
    // Inference steers optimization; it must never change semantics.
    assert_eq!(mcf.eval_result_hash, heuristic.eval_result_hash);
}

/// Stale recovery → inference, end to end through the pipeline: the
/// drifted cycle must actually salvage counts AND run inference over
/// them, with the stats threaded into the outcome.
#[test]
fn stale_recovery_feeds_inference_end_to_end() {
    let w = csspgo::workloads::ad_retriever().scaled(0.1);
    let drifted = drift::change_cfg(&w.source);
    let mut config = cfg();
    config.annotate.stale_matching = StaleMatching::Recover;
    config.annotate.inference = InferenceMode::Mcf;
    let o = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &config, &drifted).unwrap();
    assert!(
        o.annotate_stats.stale_recovered > 0,
        "change_cfg drift must trigger recovery"
    );
    let inf = &o.annotate_stats.inference;
    assert!(inf.functions > 0, "inference must run over hot functions");
    assert!(
        inf.counts_adjusted > 0,
        "salvaged counts are inconsistent; MCF must adjust some"
    );
    assert!(inf.flow_moved > 0, "adjustments must move flow");
}

/// Collects a probe profile on the clean build of `w` — the same pipeline
/// `csspgo_diff` and `csspgo_lint` stage 3 run.
fn collect_probe_profile(w: &csspgo::core::Workload) -> csspgo::core::profile::ProbeProfile {
    use csspgo::core::pipeline::{BatchSource, ProfileSource};
    use csspgo::core::shard::{sharded_context_profile, sharded_range_counts};
    use csspgo::core::tailcall::TailCallGraph;

    let config = cfg();
    let mut module = csspgo::lang::compile(&w.source, &w.name).unwrap();
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    csspgo::opt::run_pipeline(&mut module, &config.opt);
    let binary = csspgo::codegen::lower_module(&module, &config.codegen);
    let sim_cfg = csspgo::sim::SimConfig {
        lbr_size: config.lbr_size,
        pebs: config.pebs,
        sample_period: config.sample_period,
        seed: config.seed,
        max_steps: config.max_steps,
        ..csspgo::sim::SimConfig::default()
    };
    let mut machine = csspgo::sim::Machine::new(&binary, sim_cfg);
    for (name, values) in &w.setup {
        machine.set_global(name, values);
    }
    let samples = BatchSource.collect(&mut machine, w).unwrap();
    let rc = sharded_range_counts(&binary, &samples, config.ingest_shards);
    let tail_graph = TailCallGraph::build(&binary, &rc);
    let unwound =
        sharded_context_profile(&binary, Some(&tail_graph), &samples, config.ingest_shards);
    let mut ctx_profile = unwound.profile;
    let checksums = binary
        .funcs
        .iter()
        .filter_map(|f| f.probe_checksum.map(|c| (f.guid, c)))
        .collect();
    ctx_profile.set_checksums(&checksums);
    let mut probe_prof = ctx_profile.to_probe_profile();
    for (fidx, c) in rc.entry_counts(&binary) {
        let guid = binary.funcs[fidx as usize].guid;
        if let Some(fp) = probe_prof.funcs.get_mut(&guid) {
            fp.entry = fp.entry.max(c);
        }
    }
    probe_prof
}
