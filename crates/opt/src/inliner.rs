//! Inlining: the mechanical transform plus the bottom-up (CGSCC-style)
//! inliner.
//!
//! The mechanical [`inline_call`] maintains everything the paper's profile
//! machinery depends on:
//!
//! * cloned instructions get the call site pushed onto their **debug inline
//!   stack** (DWARF-style; feeds AutoFDO symbolization);
//! * cloned pseudo-probes get the call-site **probe** pushed onto their
//!   probe inline stack (feeds CSSPGO probe symbolization);
//! * cloned block counts are scaled by `callsite count / callee entry count`
//!   — the *context-insensitive* scaling of paper Fig. 3a. The
//!   context-sensitive pipeline overwrites these counts with the exact
//!   context slice (Fig. 3b) via the returned block map.
//!
//! The bottom-up inliner mirrors LLVM's CGSCC inliner: callees are visited
//! before callers, decisions are local and cannot be specialized by calling
//! context (the limitation paper §III.B's pre-inliner exists to fix).

use crate::callgraph::CallGraph;
use crate::OptConfig;
use csspgo_ir::debuginfo::InlineSite;
use csspgo_ir::inst::{Inst, InstKind};
use csspgo_ir::probe::{ProbeKind, ProbeSite};
use csspgo_ir::{BlockId, FuncId, Function, Module, VReg};
use std::collections::HashMap;

/// Result of one successful inline.
#[derive(Clone, Debug)]
pub struct InlineResult {
    /// Callee block id → the caller block now holding its clone.
    pub block_map: HashMap<BlockId, BlockId>,
    /// The caller block where execution continues after the inlined body.
    pub cont_block: BlockId,
}

/// Counts "real" instructions (probes excluded — they are metadata-only and
/// must not perturb inline decisions between PGO variants).
pub fn real_size(func: &Function) -> usize {
    func.iter_blocks()
        .flat_map(|(_, b)| &b.insts)
        .filter(|i| !matches!(i.kind, InstKind::PseudoProbe { .. }))
        .count()
}

/// Inlines the call at `(block, inst_idx)` of `caller`.
///
/// Returns `None` (leaving the module untouched) when the instruction is not
/// a direct call, or the callee is the caller itself.
pub fn inline_call(
    module: &mut Module,
    caller: FuncId,
    block: BlockId,
    inst_idx: usize,
) -> Option<InlineResult> {
    let (dst, callee_id, args) = {
        let f = module.func(caller);
        match f.block(block).insts.get(inst_idx)?.kind.clone() {
            InstKind::Call { dst, callee, args } => (dst, callee, args),
            _ => return None,
        }
    };
    if callee_id == caller {
        return None;
    }
    let callee = module.func(callee_id).clone();
    let call_loc = module.func(caller).block(block).insts[inst_idx].loc.clone();

    // The call-site probe (immediately preceding the call), if present: its
    // identity becomes the new frame on cloned probes' inline stacks.
    let call_probe: Option<(FuncId, u32, Vec<ProbeSite>)> = if inst_idx > 0 {
        match &module.func(caller).block(block).insts[inst_idx - 1].kind {
            InstKind::PseudoProbe {
                owner,
                index,
                kind: ProbeKind::Call,
                inline_stack,
                ..
            } => Some((*owner, *index, inline_stack.clone())),
            _ => None,
        }
    } else {
        None
    };

    // Debug-side frame for the call site.
    let debug_site = InlineSite {
        func: if call_loc.scope == FuncId::INVALID {
            caller
        } else {
            call_loc.scope
        },
        line: call_loc.line,
        discriminator: call_loc.discriminator,
    };

    let site_count = module.func(caller).block(block).count;
    let callee_entry_count = callee.entry_count;

    let caller_f = module.func_mut(caller);

    // 1. Split the call block: everything after the call moves to cont.
    let cont = caller_f.add_block();
    {
        let b = caller_f.block_mut(block);
        let tail: Vec<Inst> = b.insts.split_off(inst_idx + 1);
        b.insts.pop(); // remove the call itself
        let cb = caller_f.block_mut(cont);
        cb.insts = tail;
        cb.count = site_count;
    }

    // 2. Clone callee blocks.
    let vreg_base = caller_f.num_vregs() as u32;
    caller_f.reserve_vregs(vreg_base + callee.num_vregs() as u32);
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for (cb, _) in callee.iter_blocks() {
        block_map.insert(cb, caller_f.add_block());
    }

    let scale = |c: Option<u64>| -> Option<u64> {
        match (c, site_count, callee_entry_count) {
            (Some(c), Some(s), Some(e)) if e > 0 => {
                Some((c as u128 * s as u128 / e as u128) as u64)
            }
            (Some(_), Some(s), _) => Some(s), // best effort: assume once per call
            _ => None,
        }
    };

    for (cb, cblock) in callee.iter_blocks() {
        let nb = block_map[&cb];
        let mut insts = Vec::with_capacity(cblock.insts.len());
        for inst in &cblock.insts {
            let mut kind = inst.kind.clone();
            // Remap registers.
            kind.map_uses(|r| csspgo_ir::inst::Operand::Reg(VReg(r.0 + vreg_base)));
            remap_def(&mut kind, vreg_base);
            // Remap block references.
            kind.map_successors(|s| block_map[&s]);
            // Rewrite returns.
            if let InstKind::Ret { value } = &kind {
                let mut new_insts = Vec::new();
                if let Some(d) = dst {
                    let src = value.unwrap_or(csspgo_ir::inst::Operand::Imm(0));
                    new_insts.push(Inst::new(
                        InstKind::Copy { dst: d, src },
                        inst.loc.inlined_at(debug_site),
                    ));
                }
                new_insts.push(Inst::new(
                    InstKind::Br { target: cont },
                    inst.loc.inlined_at(debug_site),
                ));
                insts.extend(new_insts);
                continue;
            }
            // Push the probe-side inline frame.
            if let InstKind::PseudoProbe { inline_stack, .. } = &mut kind {
                if let Some((po, pi, pstack)) = &call_probe {
                    let mut stack = pstack.clone();
                    stack.push(ProbeSite {
                        func: *po,
                        probe_index: *pi,
                    });
                    stack.extend(inline_stack.iter().copied());
                    *inline_stack = stack;
                }
            }
            // Push the debug-side inline frame.
            let loc = inst.loc.inlined_at(debug_site);
            insts.push(Inst::new(kind, loc));
        }
        let nb_ref = caller_f.block_mut(nb);
        nb_ref.insts = insts;
        nb_ref.count = scale(cblock.count);
    }

    // 3. Bind parameters and jump into the inlined entry.
    {
        let b = caller_f.block_mut(block);
        for (i, a) in args.iter().enumerate() {
            b.insts.push(Inst::new(
                InstKind::Copy {
                    dst: VReg(vreg_base + i as u32),
                    src: *a,
                },
                call_loc.clone(),
            ));
        }
        b.insts.push(Inst::new(
            InstKind::Br {
                target: block_map[&callee.entry],
            },
            call_loc,
        ));
    }

    Some(InlineResult {
        block_map,
        cont_block: cont,
    })
}

fn remap_def(kind: &mut InstKind, base: u32) {
    match kind {
        InstKind::Copy { dst, .. }
        | InstKind::Bin { dst, .. }
        | InstKind::Cmp { dst, .. }
        | InstKind::Select { dst, .. }
        | InstKind::Load { dst, .. } => *dst = VReg(dst.0 + base),
        InstKind::Call { dst: Some(d), .. } => *d = VReg(d.0 + base),
        _ => {}
    }
}

/// Caller-size cap: inlining stops growing a function past this many real
/// instructions.
const CALLER_SIZE_CAP: usize = 800;

/// ProfileSummary-style hot-count cutoff: the smallest block count such
/// that blocks at or above it cover 99% of the module's total count mass.
/// Sample-based counts are coverage-scaled, so hotness must be *relative* —
/// an absolute threshold would misclassify at different sampling rates.
pub fn hot_count_cutoff(module: &Module) -> u64 {
    let mut counts: Vec<u64> = module
        .functions
        .iter()
        .flat_map(|f| f.iter_blocks().filter_map(|(_, b)| b.count))
        .filter(|&c| c > 0)
        .collect();
    if counts.is_empty() {
        return u64::MAX; // no profile: nothing is "hot"
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u128 = counts.iter().map(|&c| c as u128).sum();
    let target = total * 99 / 100;
    let mut acc: u128 = 0;
    for &c in &counts {
        acc += c as u128;
        if acc >= target {
            return c.max(1);
        }
    }
    1
}

/// The bottom-up (CGSCC-style) inliner.
///
/// Visits functions callees-first and inlines call sites that are small
/// (always) or hot-and-moderate (with profile). Cannot specialize per
/// calling context — by construction every caller gets the same callee body
/// (paper §III.B's motivating limitation).
pub fn run_bottom_up(module: &mut Module, config: &OptConfig) {
    let cg = CallGraph::build(module);
    let hot_cutoff = hot_count_cutoff(module);
    for caller in cg.bottom_up_order() {
        let mut budget = 64; // bound the number of inlines per function
        'grow: loop {
            if budget == 0 || real_size(module.func(caller)) > CALLER_SIZE_CAP {
                break;
            }
            // Find the next call site worth inlining.
            let mut candidate: Option<(BlockId, usize)> = None;
            {
                let f = module.func(caller);
                'scan: for (bid, b) in f.iter_blocks() {
                    for (i, inst) in b.insts.iter().enumerate() {
                        if let InstKind::Call { callee, .. } = inst.kind {
                            if callee == caller || cg.same_scc(caller, callee) {
                                continue;
                            }
                            let callee_size = real_size(module.func(callee));
                            let site_count = b.count;
                            if should_inline(callee_size, site_count, hot_cutoff, config) {
                                candidate = Some((bid, i));
                                break 'scan;
                            }
                        }
                    }
                }
            }
            match candidate {
                Some((bid, i)) => {
                    inline_call(module, caller, bid, i);
                    budget -= 1;
                }
                None => break 'grow,
            }
        }
    }
}

/// The inline heuristic shared by the bottom-up inliner. A call site is hot
/// when its count reaches the module's relative [`hot_count_cutoff`] (with
/// `config.hot_callsite_count` acting only as an absolute floor).
pub fn should_inline(
    callee_size: usize,
    site_count: Option<u64>,
    hot_cutoff: u64,
    config: &OptConfig,
) -> bool {
    if callee_size <= config.inline_small_size {
        return true;
    }
    match site_count {
        Some(c) => c >= hot_cutoff.max(2) && callee_size <= config.inline_hot_size,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    fn compile(src: &str) -> Module {
        csspgo_lang::compile(src, "t").unwrap()
    }

    /// Interpret the module lightly to check behaviour is preserved.
    /// (A miniature reference interpreter over IR, for tests only.)
    fn eval(module: &Module, func: &str, args: &[i64]) -> i64 {
        fn run(m: &Module, f: FuncId, args: &[i64], depth: usize) -> i64 {
            assert!(depth < 64, "runaway recursion in test interpreter");
            let func = m.func(f);
            let mut regs = vec![0i64; func.num_vregs().max(args.len())];
            regs[..args.len()].copy_from_slice(args);
            let mut globals: Vec<Vec<i64>> = m
                .globals
                .iter()
                .map(|g| {
                    let mut v = g.init.clone();
                    v.resize(g.size, 0);
                    v
                })
                .collect();
            let mut bb = func.entry;
            let mut steps = 0;
            loop {
                steps += 1;
                assert!(steps < 100_000, "test interpreter ran away");
                let block = func.block(bb);
                let mut next: Option<BlockId> = None;
                for inst in &block.insts {
                    use csspgo_ir::inst::Operand as Op;
                    let val = |o: Op, regs: &[i64]| match o {
                        Op::Reg(r) => regs[r.index()],
                        Op::Imm(v) => v,
                    };
                    match &inst.kind {
                        InstKind::Copy { dst, src } => regs[dst.index()] = val(*src, &regs),
                        InstKind::Bin { op, dst, lhs, rhs } => {
                            regs[dst.index()] = op.eval(val(*lhs, &regs), val(*rhs, &regs))
                        }
                        InstKind::Cmp {
                            pred,
                            dst,
                            lhs,
                            rhs,
                        } => regs[dst.index()] = pred.eval(val(*lhs, &regs), val(*rhs, &regs)),
                        InstKind::Select {
                            dst,
                            cond,
                            on_true,
                            on_false,
                        } => {
                            regs[dst.index()] = if val(*cond, &regs) != 0 {
                                val(*on_true, &regs)
                            } else {
                                val(*on_false, &regs)
                            }
                        }
                        InstKind::Load { dst, global, index } => {
                            let g = &globals[global.index()];
                            let i = val(*index, &regs);
                            regs[dst.index()] = if i >= 0 && (i as usize) < g.len() {
                                g[i as usize]
                            } else {
                                0
                            };
                        }
                        InstKind::Store {
                            global,
                            index,
                            value,
                        } => {
                            let i = val(*index, &regs);
                            let v = val(*value, &regs);
                            let g = &mut globals[global.index()];
                            if i >= 0 && (i as usize) < g.len() {
                                g[i as usize] = v;
                            }
                        }
                        InstKind::Call { dst, callee, args } => {
                            let a: Vec<i64> = args.iter().map(|&x| val(x, &regs)).collect();
                            let r = run(m, *callee, &a, depth + 1);
                            if let Some(d) = dst {
                                regs[d.index()] = r;
                            }
                        }
                        InstKind::Ret { value } => {
                            return value.map(|v| val(v, &regs)).unwrap_or(0)
                        }
                        InstKind::Br { target } => next = Some(*target),
                        InstKind::CondBr {
                            cond,
                            then_bb,
                            else_bb,
                        } => {
                            next = Some(if val(*cond, &regs) != 0 {
                                *then_bb
                            } else {
                                *else_bb
                            })
                        }
                        InstKind::Switch {
                            value,
                            cases,
                            default,
                        } => {
                            let v = val(*value, &regs);
                            next = Some(
                                cases
                                    .iter()
                                    .find(|&&(k, _)| k == v)
                                    .map(|&(_, b)| b)
                                    .unwrap_or(*default),
                            );
                        }
                        InstKind::PseudoProbe { .. } | InstKind::CounterIncr { .. } => {}
                    }
                    if next.is_some() {
                        break;
                    }
                }
                bb = next.expect("block fell through without terminator");
            }
        }
        run(module, module.find_function(func).unwrap(), args, 0)
    }

    #[test]
    fn inline_preserves_semantics() {
        let src = r#"
fn helper(x, y) {
    if (x > y) { return x - y; }
    return y - x;
}
fn main(a) {
    let r = helper(a, 10);
    return r * 2;
}
"#;
        let mut m = compile(src);
        let before = eval(&m, "main", &[3]);
        let main = m.find_function("main").unwrap();
        // Find the call.
        let (bid, idx) = {
            let f = m.func(main);
            f.iter_blocks()
                .flat_map(|(b, blk)| {
                    blk.insts
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
                        .map(move |(i, _)| (b, i))
                })
                .next()
                .unwrap()
        };
        let res = inline_call(&mut m, main, bid, idx).expect("inlined");
        assert_eq!(verify_module(&m), vec![]);
        assert_eq!(eval(&m, "main", &[3]), before);
        assert_eq!(eval(&m, "main", &[42]), 64);
        assert!(!res.block_map.is_empty());
    }

    #[test]
    fn inline_pushes_debug_inline_stack() {
        let src = "fn h(x) { return x + 1; }\nfn main(a) { return h(a); }";
        let mut m = compile(src);
        let main = m.find_function("main").unwrap();
        let entry = m.func(main).entry;
        inline_call(&mut m, main, entry, 0).unwrap();
        let f = m.func(main);
        let inlined: Vec<_> = f
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| !i.loc.inline_stack.is_empty())
            .collect();
        assert!(
            !inlined.is_empty(),
            "inlined instructions must carry frames"
        );
        for i in &inlined {
            assert_eq!(i.loc.inline_stack[0].func, main);
            assert_eq!(i.loc.inline_stack[0].line, 2); // call site line
        }
    }

    #[test]
    fn inline_pushes_probe_inline_stack() {
        let src = "fn h(x) { return x + 1; }\nfn main(a) { return h(a); }";
        let mut m = compile(src);
        crate::probes::run(&mut m);
        let main = m.find_function("main").unwrap();
        let h = m.find_function("h").unwrap();
        // The call is now preceded by a call probe; find its index.
        let (bid, idx) = {
            let f = m.func(main);
            f.iter_blocks()
                .flat_map(|(b, blk)| {
                    blk.insts
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| matches!(i.kind, InstKind::Call { .. }))
                        .map(move |(i, _)| (b, i))
                })
                .next()
                .unwrap()
        };
        inline_call(&mut m, main, bid, idx).unwrap();
        assert_eq!(verify_module(&m), vec![]);
        let f = m.func(main);
        // h's block probe must now appear with a 1-frame probe stack rooted
        // at main's call-site probe.
        let mut found = false;
        for (_, b) in f.iter_blocks() {
            for i in &b.insts {
                if let InstKind::PseudoProbe {
                    owner,
                    inline_stack,
                    ..
                } = &i.kind
                {
                    if *owner == h {
                        found = true;
                        assert_eq!(inline_stack.len(), 1);
                        assert_eq!(inline_stack[0].func, main);
                    }
                }
            }
        }
        assert!(found, "inlined probes of h must survive");
    }

    #[test]
    fn inline_scales_counts_context_insensitively() {
        // callee entry count 100, two blocks 100/40; callsite count 10
        // => scaled 10 and 4 (paper Fig. 3a behaviour).
        let src = "fn h(x) { if (x > 0) { return 1; } return 0; }\nfn main(a) { return h(a); }";
        let mut m = compile(src);
        let h = m.find_function("h").unwrap();
        let main = m.find_function("main").unwrap();
        m.functions[h.index()].entry_count = Some(100);
        let hids: Vec<BlockId> = m.func(h).iter_blocks().map(|(b, _)| b).collect();
        for (i, bid) in hids.iter().enumerate() {
            m.functions[h.index()].block_mut(*bid).count = Some(if i == 0 { 100 } else { 40 });
        }
        let mids: Vec<BlockId> = m.func(main).iter_blocks().map(|(b, _)| b).collect();
        for bid in mids {
            m.functions[main.index()].block_mut(bid).count = Some(10);
        }
        let entry = m.func(main).entry;
        let res = inline_call(&mut m, main, entry, 0).unwrap();
        let f = m.func(main);
        let entry_clone = res.block_map[&m.func(h).entry];
        assert_eq!(f.block(entry_clone).count, Some(10));
        let other = res.block_map.iter().find(|(k, _)| {
            **k != m.func(h).entry && f.block(*res.block_map.get(k).unwrap()).count == Some(4)
        });
        assert!(other.is_some(), "a block scaled 40*10/100 = 4 must exist");
    }

    #[test]
    fn bottom_up_inlines_small_chain() {
        let src = r#"
fn leaf(x) { return x * 2; }
fn mid(x) { return leaf(x) + 1; }
fn main(a) { return mid(a); }
"#;
        let mut m = compile(src);
        let before = eval(&m, "main", &[5]);
        run_bottom_up(&mut m, &OptConfig::default());
        crate::simplify::run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
        assert_eq!(eval(&m, "main", &[5]), before);
        // main should no longer contain calls.
        let main = m.find_function("main").unwrap();
        let has_call = m
            .func(main)
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .any(|i| matches!(i.kind, InstKind::Call { .. }));
        assert!(!has_call, "small chain should be fully inlined");
    }

    #[test]
    fn recursion_is_never_inlined() {
        let src = "fn f(x) { if (x > 0) { return f(x - 1) + 1; } return 0; }";
        let mut m = compile(src);
        run_bottom_up(&mut m, &OptConfig::default());
        assert_eq!(verify_module(&m), vec![]);
        assert_eq!(eval(&m, "f", &[5]), 5);
    }

    #[test]
    fn cold_large_callee_not_inlined() {
        // A callee bigger than inline_small_size at a cold call site stays.
        let big_body: String = (0..30).map(|i| format!("    s = s + x * {i};\n")).collect();
        let src = format!(
            "fn big(x) {{ let s = 0;\n{big_body}    return s; }}\nfn main(a) {{ return big(a); }}"
        );
        let mut m = compile(&src);
        // Annotate cold counts.
        let main = m.find_function("main").unwrap();
        let ids: Vec<BlockId> = m.func(main).iter_blocks().map(|(b, _)| b).collect();
        for bid in ids {
            m.functions[main.index()].block_mut(bid).count = Some(1);
        }
        let cfg = OptConfig::default();
        run_bottom_up(&mut m, &cfg);
        let has_call = m
            .func(main)
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .any(|i| matches!(i.kind, InstKind::Call { .. }));
        assert!(has_call, "cold large callee must not be inlined");
    }
}
