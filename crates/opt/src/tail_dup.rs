//! Tail duplication: copies small join blocks into their unconditional
//! predecessors.
//!
//! This is the pipeline's representative **code duplication** transform
//! (paper §III.A, "Code Duplication"): a source line's instructions now
//! exist at several binary locations with *equal discriminators*, so the
//! debug-info MAX heuristic under-counts them, while duplicated pseudo-probes
//! are summed exactly.

use crate::OptConfig;
use csspgo_ir::inst::InstKind;
use csspgo_ir::{cfg, BlockId, Module};

/// Runs tail duplication on every function.
pub fn run(module: &mut Module, config: &OptConfig) {
    for func in &mut module.functions {
        // Optionally blocked by probes (high-accuracy probe tuning).
        if config.probe.block_jump_threading && func.probe_checksum.is_some() {
            continue;
        }
        run_function(func, config.tail_dup_max_insts);
    }
}

fn real_len(insts: &[csspgo_ir::Inst]) -> usize {
    insts
        .iter()
        .filter(|i| !matches!(i.kind, InstKind::PseudoProbe { .. }))
        .count()
}

/// Duplicates eligible join blocks into predecessors ending in an
/// unconditional branch. Returns the number of duplications performed.
pub fn run_function(func: &mut csspgo_ir::Function, max_insts: usize) -> usize {
    let mut duplicated = 0;
    let ids: Vec<BlockId> = func.iter_blocks().map(|(id, _)| id).collect();
    for j in ids {
        if j == func.entry || func.block(j).dead {
            continue;
        }
        {
            let bj = func.block(j);
            if real_len(&bj.insts) > max_insts {
                continue;
            }
            // Don't duplicate call sites or self-loops.
            if bj
                .insts
                .iter()
                .any(|i| matches!(i.kind, InstKind::Call { .. }))
            {
                continue;
            }
            if bj.successors().contains(&j) {
                continue;
            }
        }
        let preds = cfg::predecessors(func);
        let plist = preds[j.index()].clone();
        if plist.len() < 2 {
            continue;
        }
        // Duplicate into predecessors that reach j by unconditional branch.
        let targets: Vec<BlockId> = plist
            .into_iter()
            .filter(|&p| {
                p != j
                    && matches!(
                        func.block(p).terminator().map(|t| &t.kind),
                        Some(InstKind::Br { target }) if *target == j
                    )
            })
            .collect();
        if !targets.is_empty() {
            // j's probes will co-exist in each absorbing predecessor plus
            // (at most) the original block: raise their duplication factors
            // so per-copy profile counts stay summable. The bound is
            // conservative — if j ends up unreachable it is removed below
            // and the factor remains a valid upper bound.
            let copies = targets.len() as u32 + 1;
            for inst in &mut func.block_mut(j).insts {
                if let InstKind::PseudoProbe { factor, .. } = &mut inst.kind {
                    *factor = factor.saturating_mul(copies);
                }
            }
        }
        let mut absorbed = 0u64;
        let mut any = false;
        for p in targets {
            let j_insts = func.block(j).insts.clone();
            let pb = func.block_mut(p);
            pb.insts.pop(); // drop `br j`
            pb.insts.extend(j_insts);
            absorbed += func.block(p).count.unwrap_or(0);
            any = true;
            duplicated += 1;
        }
        if any {
            // Profile maintenance: j keeps only the flow still reaching it.
            if let Some(c) = func.block(j).count {
                func.block_mut(j).count = Some(c.saturating_sub(absorbed));
            }
            cfg::remove_unreachable(func);
        }
    }
    duplicated
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    /// Two if-arms joining into a tiny return block (line 9).
    const SRC: &str = r#"
fn f(a) {
    let r = 0;
    if (a > 0) {
        r = a;
    } else {
        r = 0 - a;
    }
    return r + 1;
}
"#;

    #[test]
    fn duplicates_join_into_both_arms() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let f = &mut m.functions[0];
        let n = run_function(f, 4);
        assert!(n >= 2, "both arms should absorb the join, got {n}");
        assert_eq!(verify_module(&m), vec![]);
        let rets = m.functions[0]
            .iter_blocks()
            .filter(|(_, b)| matches!(b.terminator().map(|t| &t.kind), Some(InstKind::Ret { .. })))
            .count();
        assert!(rets >= 2, "return duplicated into both arms");
    }

    #[test]
    fn duplicated_lines_share_discriminators() {
        // This is the deliberate debug-info decay: copies are
        // indistinguishable to line-based correlation.
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::discriminators::run(&mut m);
        run_function(&mut m.functions[0], 4);
        let f = &m.functions[0];
        let mut copies: Vec<(usize, u32)> = Vec::new();
        for (bid, b) in f.iter_blocks() {
            for i in &b.insts {
                if i.loc.line == 9 {
                    copies.push((bid.index(), i.loc.discriminator));
                }
            }
        }
        let blocks: std::collections::HashSet<usize> = copies.iter().map(|&(b, _)| b).collect();
        let discs: std::collections::HashSet<u32> = copies.iter().map(|&(_, d)| d).collect();
        assert!(
            blocks.len() >= 2,
            "line must exist in 2+ blocks: {copies:?}"
        );
        assert_eq!(
            discs.len(),
            1,
            "copies share a discriminator (MAX-heuristic trap)"
        );
    }

    #[test]
    fn counts_maintained() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let f = &mut m.functions[0];
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        for bid in &ids {
            f.block_mut(*bid).count = Some(50);
        }
        let join = ids
            .iter()
            .rev()
            .find(|&&b| {
                matches!(
                    f.block(b).terminator().map(|t| &t.kind),
                    Some(InstKind::Ret { .. })
                )
            })
            .copied()
            .unwrap();
        f.block_mut(join).count = Some(100);
        run_function(f, 4);
        if !f.block(join).dead {
            assert_eq!(f.block(join).count, Some(0));
        }
    }

    #[test]
    fn call_blocks_not_duplicated() {
        let src = r#"
fn g() { return 1; }
fn f(a) {
    let r = 0;
    if (a > 0) { r = 1; } else { r = 2; }
    return g() + r;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        let fid = m.find_function("f").unwrap();
        let n = run_function(&mut m.functions[fid.index()], 8);
        assert_eq!(n, 0, "join containing a call must not be duplicated");
    }

    #[test]
    fn probes_duplicate_along_with_code() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        let before: usize = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::PseudoProbe { .. }))
            .count();
        run_function(&mut m.functions[0], 6);
        let after: usize = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::PseudoProbe { .. }))
            .count();
        assert!(after >= before, "duplicated probes must persist (summable)");
    }
}
