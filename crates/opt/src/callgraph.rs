//! Static call graph with Tarjan SCCs and bottom-up ordering.

use csspgo_ir::inst::InstKind;
use csspgo_ir::{FuncId, Module};
use std::collections::HashSet;

/// A static call graph over a module's functions.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Deduplicated callee list per function.
    pub callees: Vec<Vec<FuncId>>,
    /// SCC index per function; SCCs are numbered in *reverse topological*
    /// order (callees' SCCs get lower numbers than callers').
    pub scc: Vec<usize>,
    /// Number of SCCs.
    pub num_sccs: usize,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let n = module.functions.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for func in &module.functions {
            let mut seen = HashSet::new();
            for (_, block) in func.iter_blocks() {
                for inst in &block.insts {
                    if let InstKind::Call { callee, .. } = inst.kind {
                        if seen.insert(callee) {
                            callees[func.id.index()].push(callee);
                        }
                    }
                }
            }
        }
        let (scc, num_sccs) = tarjan(&callees, n);
        CallGraph {
            callees,
            scc,
            num_sccs,
        }
    }

    /// Whether `a` and `b` are mutually recursive (same SCC).
    pub fn same_scc(&self, a: FuncId, b: FuncId) -> bool {
        self.scc[a.index()] == self.scc[b.index()]
    }

    /// Functions in bottom-up order: callees before callers.
    pub fn bottom_up_order(&self) -> Vec<FuncId> {
        let mut order: Vec<FuncId> = (0..self.callees.len()).map(FuncId::from_index).collect();
        order.sort_by_key(|f| self.scc[f.index()]);
        order
    }

    /// Functions in top-down order: callers before callees.
    pub fn top_down_order(&self) -> Vec<FuncId> {
        let mut order = self.bottom_up_order();
        order.reverse();
        order
    }
}

/// Iterative Tarjan SCC. Returns (scc index per node, number of SCCs), with
/// SCCs numbered so that every edge `u -> v` (u caller, v callee) has
/// `scc[v] <= scc[u]` — i.e. reverse-topological numbering.
fn tarjan(adj: &[Vec<FuncId>], n: usize) -> (Vec<usize>, usize) {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
        visited: bool,
    }
    let mut st = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut scc = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    for start in 0..n {
        if st[start].visited {
            continue;
        }
        // Explicit DFS stack: (node, next child position).
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        st[start].visited = true;
        st[start].index = next_index;
        st[start].lowlink = next_index;
        next_index += 1;
        stack.push(start);
        st[start].on_stack = true;

        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci].index();
                *ci += 1;
                if !st[w].visited {
                    st[w].visited = true;
                    st[w].index = next_index;
                    st[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    st[w].on_stack = true;
                    dfs.push((w, 0));
                } else if st[w].on_stack {
                    st[v].lowlink = st[v].lowlink.min(st[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = st[v].lowlink;
                    st[parent].lowlink = st[parent].lowlink.min(low);
                }
                if st[v].lowlink == st[v].index {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        st[w].on_stack = false;
                        scc[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    (scc, next_scc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> (Module, CallGraph) {
        let m = csspgo_lang::compile(src, "t").unwrap();
        let g = CallGraph::build(&m);
        (m, g)
    }

    #[test]
    fn bottom_up_puts_callees_first() {
        let (m, g) = graph("fn a() { return b(); } fn b() { return c(); } fn c() { return 1; }");
        let order = g.bottom_up_order();
        let pos = |name: &str| {
            let id = m.find_function(name).unwrap();
            order.iter().position(|&f| f == id).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn mutual_recursion_shares_scc() {
        let (m, g) =
            graph("fn a(x) { return b(x); } fn b(x) { return a(x); } fn c() { return a(1); }");
        let a = m.find_function("a").unwrap();
        let b = m.find_function("b").unwrap();
        let c = m.find_function("c").unwrap();
        assert!(g.same_scc(a, b));
        assert!(!g.same_scc(a, c));
        // c calls into the SCC, so the SCC is "below" c.
        assert!(g.scc[a.index()] < g.scc[c.index()]);
    }

    #[test]
    fn self_recursion_is_its_own_scc() {
        let (m, g) = graph("fn f(x) { if (x > 0) { return f(x - 1); } return 0; }");
        let f = m.find_function("f").unwrap();
        assert!(g.same_scc(f, f));
        assert_eq!(g.num_sccs, 1);
    }

    #[test]
    fn callees_deduplicated() {
        let (m, g) = graph("fn g() { return 1; } fn f() { return g() + g(); }");
        let f = m.find_function("f").unwrap();
        assert_eq!(g.callees[f.index()].len(), 1);
    }
}
