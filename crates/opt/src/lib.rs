//! The optimizer pipeline.
//!
//! Passes are ordinary functions over [`csspgo_ir::Module`] (or single
//! functions). They fall into three groups:
//!
//! * **Anchoring passes**, run on fresh IR before anything else:
//!   [`discriminators`] (DWARF-style duplicate-line discriminators),
//!   [`probes`] (pseudo-probe insertion, paper §III.A) and [`instrument`]
//!   (traditional counter instrumentation).
//! * **Mid-level transformations** that both consume and *maintain* profile
//!   annotation (paper §II.B): [`simplify`], [`tail_dup`], [`licm`],
//!   [`inliner`], [`unroll`], [`tailmerge`], [`ifconvert`].
//! * **Late layout passes** driven purely by profile: [`layout`] (ext-TSP
//!   block ordering + hot/cold function splitting).
//!
//! Profile-quality damage is *deliberately realistic*: tail merge destroys
//! per-block counts for debug-info correlation but is blocked by distinct
//! probes; tail duplication and unrolling duplicate debug lines (the MAX
//! heuristic then under-counts) while duplicated probes are summed
//! correctly.

pub mod callgraph;
pub mod discriminators;
pub mod ifconvert;
pub mod inliner;
pub mod instrument;
pub mod layout;
pub mod licm;
pub mod probes;
pub mod simplify;
pub mod sink;
pub mod strip;
pub mod tail_dup;
pub mod tailmerge;
pub mod unroll;

use csspgo_ir::probe::ProbeConfig;
use csspgo_ir::Module;
use serde::{Deserialize, Serialize};

/// Tuning knobs for the whole pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OptConfig {
    /// How strongly probes block optimizations.
    pub probe: ProbeConfig,
    /// Callee size (instructions) below which calls are always inlined.
    pub inline_small_size: usize,
    /// Callee size limit for hot call sites.
    pub inline_hot_size: usize,
    /// Call-site count at or above which a call site counts as hot.
    pub hot_callsite_count: u64,
    /// Loop unroll factor.
    pub unroll_factor: u32,
    /// Maximum loop body size (instructions) eligible for unrolling.
    pub unroll_max_body: usize,
    /// Maximum block size (instructions) eligible for tail duplication.
    pub tail_dup_max_insts: usize,
    /// Block count at or below which a block is placed in the cold section.
    pub cold_count_threshold: u64,
    pub enable_tail_dup: bool,
    pub enable_licm: bool,
    pub enable_sink: bool,
    pub enable_inline: bool,
    pub enable_unroll: bool,
    pub enable_tail_merge: bool,
    pub enable_if_convert: bool,
    pub enable_layout: bool,
    pub enable_split: bool,
    /// Run the IR verifier and probe-invariant checker after every pass in
    /// [`run_pipeline`], panicking (with every finding) on the first pass
    /// that breaks an invariant. Defaults to on in debug builds, off in
    /// release; release users opt in via `PipelineConfig`.
    pub interpass_verify: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            probe: ProbeConfig::default(),
            inline_small_size: 14,
            inline_hot_size: 80,
            hot_callsite_count: 32,
            unroll_factor: 4,
            unroll_max_body: 14,
            tail_dup_max_insts: 4,
            cold_count_threshold: 0,
            enable_tail_dup: true,
            enable_licm: true,
            enable_sink: true,
            enable_inline: true,
            enable_unroll: true,
            enable_tail_merge: true,
            enable_if_convert: true,
            enable_layout: true,
            enable_split: true,
            interpass_verify: cfg!(debug_assertions),
        }
    }
}

/// Checks IR well-formedness and probe invariants after a pipeline pass,
/// panicking with *all* findings if anything is broken. `stage` names the
/// pass that just ran so the report points at the culprit.
///
/// This is the pipeline's safety net against silent probe corruption — the
/// failure mode the paper attributes to stale debug info, recreated here any
/// time a cloning pass forgets to raise duplication factors or an inliner
/// change mangles probe inline stacks.
pub fn verify_after_pass(module: &Module, stage: &str) {
    let ir_errors = csspgo_ir::verify::verify_module(module);
    let probe_issues = csspgo_ir::probe_verify::check_module(module);
    if ir_errors.is_empty() && probe_issues.is_empty() {
        return;
    }
    let mut report = format!(
        "inter-pass verification failed after `{stage}` ({} IR error(s), {} probe issue(s))",
        ir_errors.len(),
        probe_issues.len()
    );
    for e in &ir_errors {
        report.push_str("\n  ");
        report.push_str(&e.to_string());
    }
    for i in &probe_issues {
        report.push_str("\n  ");
        report.push_str(&i.to_string());
    }
    panic!("{report}");
}

/// Runs the mid-level + late pipeline on an (optionally annotated) module.
///
/// Anchoring passes (probes/discriminators/instrumentation) and the
/// top-down sample-loader inliner are *not* included: the PGO driver in
/// `csspgo-core` sequences those explicitly around profile annotation.
pub fn run_pipeline(module: &mut Module, config: &OptConfig) {
    let checkpoint = |module: &Module, stage: &str| {
        if config.interpass_verify {
            verify_after_pass(module, stage);
        }
    };
    checkpoint(module, "input");
    // Passes maintain block counts ("profile maintenance") but not the
    // edge-count annotation inference attaches, nor the per-block
    // provenance tags — drop both rather than let a transformed CFG carry
    // stale annotations.
    for f in &mut module.functions {
        f.edge_counts = None;
        f.count_provenance = None;
    }
    simplify::run(module);
    checkpoint(module, "simplify");
    if config.enable_tail_dup {
        tail_dup::run(module, config);
        simplify::run(module);
        checkpoint(module, "tail_dup");
    }
    if config.enable_licm {
        licm::run(module, config);
        checkpoint(module, "licm");
    }
    if config.enable_sink {
        sink::run(module, config);
        checkpoint(module, "sink");
    }
    if config.enable_inline {
        inliner::run_bottom_up(module, config);
        simplify::run(module);
        checkpoint(module, "inline");
    }
    if config.enable_unroll {
        unroll::run(module, config);
        simplify::run(module);
        checkpoint(module, "unroll");
    }
    if config.enable_tail_merge {
        tailmerge::run(module);
        checkpoint(module, "tailmerge");
    }
    if config.enable_if_convert {
        ifconvert::run(module, config);
        simplify::run(module);
        checkpoint(module, "ifconvert");
    }
    if config.enable_layout {
        layout::run(module, config);
        checkpoint(module, "layout");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_enabled() {
        let c = OptConfig::default();
        assert!(c.enable_inline && c.enable_layout && c.enable_tail_merge);
        assert!(c.inline_small_size < c.inline_hot_size);
    }

    #[test]
    fn pipeline_preserves_validity_on_real_program() {
        let src = r#"
global acc[4];
fn helper(x) {
    if (x > 10) { return x - 10; }
    return x;
}
fn work(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    acc[0] = s;
    return s;
}
fn main(n) {
    return work(n);
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        run_pipeline(&mut m, &OptConfig::default());
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }

    #[test]
    fn interpass_verify_accepts_probed_modules() {
        let src = "fn g(x) { return x + 1; } fn f(n) { let i = 0; while (i < n) { i = i + g(i); } return i; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        discriminators::run(&mut m);
        probes::run(&mut m);
        let cfg = OptConfig {
            interpass_verify: true,
            ..OptConfig::default()
        };
        run_pipeline(&mut m, &cfg);
        assert_eq!(csspgo_ir::probe_verify::check_module(&m), vec![]);
    }

    #[test]
    #[should_panic(expected = "inter-pass verification failed")]
    fn verify_after_pass_reports_corruption() {
        let mut m = csspgo_lang::compile("fn f(x) { return x; }", "t").unwrap();
        probes::run(&mut m);
        // Corrupt: duplicate the entry block probe without a factor.
        let probe = m.functions[0].blocks[0].insts[0].clone();
        m.functions[0].blocks[0].insts.insert(0, probe);
        verify_after_pass(&m, "test");
    }
}
