//! The optimizer pipeline.
//!
//! Passes are ordinary functions over [`csspgo_ir::Module`] (or single
//! functions). They fall into three groups:
//!
//! * **Anchoring passes**, run on fresh IR before anything else:
//!   [`discriminators`] (DWARF-style duplicate-line discriminators),
//!   [`probes`] (pseudo-probe insertion, paper §III.A) and [`instrument`]
//!   (traditional counter instrumentation).
//! * **Mid-level transformations** that both consume and *maintain* profile
//!   annotation (paper §II.B): [`simplify`], [`tail_dup`], [`licm`],
//!   [`inliner`], [`unroll`], [`tailmerge`], [`ifconvert`].
//! * **Late layout passes** driven purely by profile: [`layout`] (ext-TSP
//!   block ordering + hot/cold function splitting).
//!
//! Profile-quality damage is *deliberately realistic*: tail merge destroys
//! per-block counts for debug-info correlation but is blocked by distinct
//! probes; tail duplication and unrolling duplicate debug lines (the MAX
//! heuristic then under-counts) while duplicated probes are summed
//! correctly.

pub mod callgraph;
pub mod discriminators;
pub mod ifconvert;
pub mod inliner;
pub mod instrument;
pub mod layout;
pub mod licm;
pub mod probes;
pub mod simplify;
pub mod sink;
pub mod strip;
pub mod tail_dup;
pub mod tailmerge;
pub mod unroll;

use csspgo_ir::probe::ProbeConfig;
use csspgo_ir::Module;
use serde::{Deserialize, Serialize};

/// Tuning knobs for the whole pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OptConfig {
    /// How strongly probes block optimizations.
    pub probe: ProbeConfig,
    /// Callee size (instructions) below which calls are always inlined.
    pub inline_small_size: usize,
    /// Callee size limit for hot call sites.
    pub inline_hot_size: usize,
    /// Call-site count at or above which a call site counts as hot.
    pub hot_callsite_count: u64,
    /// Loop unroll factor.
    pub unroll_factor: u32,
    /// Maximum loop body size (instructions) eligible for unrolling.
    pub unroll_max_body: usize,
    /// Maximum block size (instructions) eligible for tail duplication.
    pub tail_dup_max_insts: usize,
    /// Block count at or below which a block is placed in the cold section.
    pub cold_count_threshold: u64,
    pub enable_tail_dup: bool,
    pub enable_licm: bool,
    pub enable_sink: bool,
    pub enable_inline: bool,
    pub enable_unroll: bool,
    pub enable_tail_merge: bool,
    pub enable_if_convert: bool,
    pub enable_layout: bool,
    pub enable_split: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            probe: ProbeConfig::default(),
            inline_small_size: 14,
            inline_hot_size: 80,
            hot_callsite_count: 32,
            unroll_factor: 4,
            unroll_max_body: 14,
            tail_dup_max_insts: 4,
            cold_count_threshold: 0,
            enable_tail_dup: true,
            enable_licm: true,
            enable_sink: true,
            enable_inline: true,
            enable_unroll: true,
            enable_tail_merge: true,
            enable_if_convert: true,
            enable_layout: true,
            enable_split: true,
        }
    }
}

/// Runs the mid-level + late pipeline on an (optionally annotated) module.
///
/// Anchoring passes (probes/discriminators/instrumentation) and the
/// top-down sample-loader inliner are *not* included: the PGO driver in
/// `csspgo-core` sequences those explicitly around profile annotation.
pub fn run_pipeline(module: &mut Module, config: &OptConfig) {
    simplify::run(module);
    if config.enable_tail_dup {
        tail_dup::run(module, config);
        simplify::run(module);
    }
    if config.enable_licm {
        licm::run(module, config);
    }
    if config.enable_sink {
        sink::run(module, config);
    }
    if config.enable_inline {
        inliner::run_bottom_up(module, config);
        simplify::run(module);
    }
    if config.enable_unroll {
        unroll::run(module, config);
        simplify::run(module);
    }
    if config.enable_tail_merge {
        tailmerge::run(module);
    }
    if config.enable_if_convert {
        ifconvert::run(module, config);
        simplify::run(module);
    }
    if config.enable_layout {
        layout::run(module, config);
    }
    debug_assert!(
        csspgo_ir::verify::verify_module(module).is_ok(),
        "pipeline produced invalid IR: {:?}",
        csspgo_ir::verify::verify_module(module)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_enabled() {
        let c = OptConfig::default();
        assert!(c.enable_inline && c.enable_layout && c.enable_tail_merge);
        assert!(c.inline_small_size < c.inline_hot_size);
    }

    #[test]
    fn pipeline_preserves_validity_on_real_program() {
        let src = r#"
global acc[4];
fn helper(x) {
    if (x > 10) { return x - 10; }
    return x;
}
fn work(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    acc[0] = s;
    return s;
}
fn main(n) {
    return work(n);
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        run_pipeline(&mut m, &OptConfig::default());
        csspgo_ir::verify::verify_module(&m).unwrap();
    }
}
