//! Sinking (LLVM's `MachineSink` analogue): moves pure computations from a
//! block into the *sole successor block that uses them*, so work leaves
//! paths that do not need it.
//!
//! This is one of the three optimizations the paper names in its probe
//! tuning ("we fine-tune a few critical optimizations, including if-convert,
//! machine sink and instruction scheduling, to be unblocked by
//! pseudo-probe"): with [`ProbeConfig::block_code_motion`](csspgo_ir::probe::ProbeConfig::block_code_motion) unset the pass
//! moves code freely past probes; set, probed functions are left alone.
//!
//! Like LICM, sinking is a debug-info decay source: the sunk instruction
//! keeps its line, which now executes at the successor's frequency.

use crate::OptConfig;
use csspgo_ir::inst::{InstKind, Operand};
use csspgo_ir::{cfg, BlockId, Function, Module, VReg};
use std::collections::{HashMap, HashSet};

/// Runs sinking on every function.
pub fn run(module: &mut Module, config: &OptConfig) {
    for func in &mut module.functions {
        if config.probe.block_code_motion && func.probe_checksum.is_some() {
            continue;
        }
        run_function(func);
    }
}

/// Sinks eligible instructions; returns how many moved.
pub fn run_function(func: &mut Function) -> usize {
    let mut moved_total = 0;
    // A few rounds: sinking can enable further sinking.
    for _ in 0..3 {
        let moved = sink_round(func);
        moved_total += moved;
        if moved == 0 {
            break;
        }
    }
    moved_total
}

fn sink_round(func: &mut Function) -> usize {
    let preds = cfg::predecessors(func);

    // Where is each register used? (block set; terminators count.)
    let mut use_blocks: HashMap<VReg, HashSet<BlockId>> = HashMap::new();
    let mut def_blocks: HashMap<VReg, HashSet<BlockId>> = HashMap::new();
    for (bid, block) in func.iter_blocks() {
        for inst in &block.insts {
            for op in inst.kind.uses() {
                if let Operand::Reg(r) = op {
                    use_blocks.entry(r).or_default().insert(bid);
                }
            }
            if let Some(d) = inst.kind.def() {
                def_blocks.entry(d).or_default().insert(bid);
            }
        }
    }

    let ids: Vec<BlockId> = func.iter_blocks().map(|(b, _)| b).collect();
    let mut moved = 0;
    for bid in ids {
        let succs = cfg::successors(func, bid);
        if succs.len() < 2 {
            continue; // sinking only pays when some successor skips the work
        }
        let mut i = 0;
        while i < func.block(bid).insts.len() {
            let inst = &func.block(bid).insts[i];
            let sinkable = matches!(
                &inst.kind,
                InstKind::Copy { .. }
                    | InstKind::Bin { .. }
                    | InstKind::Cmp { .. }
                    | InstKind::Select { .. }
            );
            let Some(dst) = inst.kind.def() else {
                i += 1;
                continue;
            };
            if !sinkable
                // Defined exactly once (non-SSA safety).
                || def_blocks.get(&dst).map(|s| s.len()).unwrap_or(0) != 1
                // Not used in its own block (including the terminator).
                || use_blocks.get(&dst).map(|s| s.contains(&bid)).unwrap_or(false)
            {
                i += 1;
                continue;
            }
            // All uses in exactly one successor, which must have no other
            // predecessor (otherwise the value could be read on a path that
            // skipped the def).
            let users = use_blocks.get(&dst).cloned().unwrap_or_default();
            if users.len() != 1 {
                i += 1;
                continue;
            }
            let target = *users.iter().next().expect("one user block");
            if !succs.contains(&target) || preds[target.index()].as_slice() != [bid] {
                i += 1;
                continue;
            }
            // The operands must not be redefined between here and the use —
            // conservatively: not defined in the target block before use and
            // not defined later in this block. Cheap approximation: operands
            // must be defined only once in the whole function.
            let operands_stable = inst.kind.uses().iter().all(|op| match op {
                Operand::Imm(_) => true,
                Operand::Reg(r) => def_blocks.get(r).map(|s| s.len()).unwrap_or(0) <= 1,
            });
            if !operands_stable {
                i += 1;
                continue;
            }
            let inst = func.block_mut(bid).insts.remove(i);
            func.block_mut(target).insts.insert(0, inst);
            moved += 1;
            // Maps are stale for dst now; conservatively finish the block.
            break;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `x * 37` is only needed on the rare path.
    const SRC: &str = r#"
fn f(a) {
    let expensive = a * 37 + 11;
    if (a % 100 == 0) {
        return expensive;
    }
    return a;
}
"#;

    #[test]
    fn sinks_work_onto_the_using_path() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let n = run_function(&mut m.functions[0]);
        assert!(n >= 1, "the multiply chain should sink");
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
        // The entry block must no longer contain the multiply.
        let f = &m.functions[0];
        let entry_has_mul = f.block(f.entry).insts.iter().any(|i| {
            matches!(
                i.kind,
                InstKind::Bin {
                    op: csspgo_ir::BinOp::Mul,
                    ..
                }
            )
        });
        assert!(!entry_has_mul, "{f}");
    }

    #[test]
    fn values_used_on_both_paths_stay() {
        let src = r#"
fn f(a) {
    let v = a * 3;
    if (a > 0) { return v; }
    return v + 1;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        assert_eq!(run_function(&mut m.functions[0]), 0);
    }

    #[test]
    fn semantics_preserved() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let b0 = csspgo_codegen::lower_module(&m, &csspgo_codegen::CodegenConfig::default());
        run_function(&mut m.functions[0]);
        let b1 = csspgo_codegen::lower_module(&m, &csspgo_codegen::CodegenConfig::default());
        for arg in [0i64, 7, 100, 300, -100] {
            let mut m0 = csspgo_sim::Machine::new(&b0, csspgo_sim::SimConfig::default());
            let mut m1 = csspgo_sim::Machine::new(&b1, csspgo_sim::SimConfig::default());
            assert_eq!(
                m0.call("f", &[arg]).unwrap(),
                m1.call("f", &[arg]).unwrap(),
                "arg {arg}"
            );
        }
    }

    #[test]
    fn probe_blocking_respected() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        let mut config = OptConfig::default();
        config.probe.block_code_motion = true;
        let before = format!("{}", m.functions[0]);
        run(&mut m, &config);
        assert_eq!(before, format!("{}", m.functions[0]));
    }

    #[test]
    fn probes_do_not_block_in_low_overhead_mode() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        let config = OptConfig::default();
        run(&mut m, &config);
        // Sinking should still have happened (may need simplify first to
        // expose the pattern; accept either but verify validity).
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }
}
