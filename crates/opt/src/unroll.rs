//! Loop unrolling of small loops.
//!
//! Two shapes are handled:
//!
//! * **self-loops** — a single block branching back to itself (do-while);
//! * **while-shaped loops** — a header testing the condition plus a single
//!   body block branching back to the header.
//!
//! Unrolling replicates the body (and, for while-shapes, the header test)
//! `factor` times, re-testing the exit condition between copies, so
//! semantics are preserved for any trip count. It is the second **code
//! duplication** transform: copies keep their source lines and
//! discriminators (breaking MAX-heuristic correlation for debug-info-based
//! PGO) while duplicated probes remain summable.
//!
//! Profile maintenance divides the loop counts across the copies.

use crate::OptConfig;
use csspgo_ir::inst::InstKind;
use csspgo_ir::{cfg, BlockId, Function, Module};

/// Runs unrolling on every function.
pub fn run(module: &mut Module, config: &OptConfig) {
    for func in &mut module.functions {
        run_function(func, config.unroll_factor, config.unroll_max_body);
    }
}

fn real_len(insts: &[csspgo_ir::Inst]) -> usize {
    insts
        .iter()
        .filter(|i| !matches!(i.kind, InstKind::PseudoProbe { .. }))
        .count()
}

/// Multiplies the duplication factor of every probe in `insts` by `k`: each
/// probe now co-exists with `k` times as many copies of itself. Applied to
/// the original *and* every clone, keeping probe counts summable.
fn scale_probe_factors(insts: &mut [csspgo_ir::Inst], k: u32) {
    for inst in insts {
        if let InstKind::PseudoProbe { factor, .. } = &mut inst.kind {
            *factor = factor.saturating_mul(k);
        }
    }
}

fn has_call(func: &Function, b: BlockId) -> bool {
    func.block(b)
        .insts
        .iter()
        .any(|i| matches!(i.kind, InstKind::Call { .. }))
}

/// Unrolls eligible loops; returns the number of loops unrolled.
pub fn run_function(func: &mut Function, factor: u32, max_body: usize) -> usize {
    if factor < 2 {
        return 0;
    }
    let mut unrolled = 0;
    unrolled += unroll_self_loops(func, factor, max_body);
    unrolled += unroll_while_loops(func, factor, max_body);
    unrolled
}

/// Case A: a block branching back to itself.
fn unroll_self_loops(func: &mut Function, factor: u32, max_body: usize) -> usize {
    let mut unrolled = 0;
    let ids: Vec<BlockId> = func.iter_blocks().map(|(id, _)| id).collect();
    for b in ids {
        if func.block(b).dead {
            continue;
        }
        let loops_on_true = match func.block(b).terminator().map(|t| &t.kind) {
            Some(InstKind::CondBr {
                then_bb, else_bb, ..
            }) => {
                if *then_bb == b && *else_bb != b {
                    true
                } else if *else_bb == b && *then_bb != b {
                    false
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        if real_len(&func.block(b).insts) > max_body || has_call(func, b) {
            continue;
        }

        scale_probe_factors(&mut func.block_mut(b).insts, factor);
        let body = func.block(b).insts.clone();
        let per_copy = func.block(b).count.map(|c| c / factor as u64);
        let mut chain = vec![b];
        for _ in 1..factor {
            let nb = func.add_block();
            func.block_mut(nb).insts = body.clone();
            func.block_mut(nb).count = per_copy;
            chain.push(nb);
        }
        func.block_mut(b).count = per_copy;

        for (i, &cur) in chain.iter().enumerate() {
            let next = chain[(i + 1) % chain.len()];
            let term = func
                .block_mut(cur)
                .terminator_mut()
                .expect("loop block has terminator");
            if let InstKind::CondBr {
                then_bb, else_bb, ..
            } = &mut term.kind
            {
                if loops_on_true {
                    *then_bb = next;
                } else {
                    *else_bb = next;
                }
            }
        }
        unrolled += 1;
    }
    unrolled
}

/// Case B: header `H: condbr c, B, X` (either polarity) + body `B: ...; br H`
/// where `B`'s only predecessor is `H`.
fn unroll_while_loops(func: &mut Function, factor: u32, max_body: usize) -> usize {
    let mut unrolled = 0;
    let ids: Vec<BlockId> = func.iter_blocks().map(|(id, _)| id).collect();
    for h in ids {
        if func.block(h).dead {
            continue;
        }
        let (body, body_on_true) = match func.block(h).terminator().map(|t| &t.kind) {
            Some(InstKind::CondBr {
                then_bb, else_bb, ..
            }) => {
                // The body is whichever successor branches straight back.
                let is_body = |b: BlockId| {
                    b != h
                        && !func.block(b).dead
                        && matches!(
                            func.block(b).terminator().map(|t| &t.kind),
                            Some(InstKind::Br { target }) if *target == h
                        )
                };
                if is_body(*then_bb) && *else_bb != *then_bb {
                    (*then_bb, true)
                } else if is_body(*else_bb) && *else_bb != *then_bb {
                    (*else_bb, false)
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        let preds = cfg::predecessors(func);
        if preds[body.index()].as_slice() != [h] {
            continue;
        }
        let total_size = real_len(&func.block(h).insts) + real_len(&func.block(body).insts);
        if total_size > max_body || has_call(func, h) || has_call(func, body) {
            continue;
        }

        scale_probe_factors(&mut func.block_mut(h).insts, factor);
        scale_probe_factors(&mut func.block_mut(body).insts, factor);
        let h_insts = func.block(h).insts.clone();
        let b_insts = func.block(body).insts.clone();
        let h_per = func.block(h).count.map(|c| c / factor as u64);
        let b_per = func.block(body).count.map(|c| c / factor as u64);

        // Build copies: (H_i, B_i) for i in 1..factor.
        let mut headers = vec![h];
        let mut bodies = vec![body];
        for _ in 1..factor {
            let nh = func.add_block();
            func.block_mut(nh).insts = h_insts.clone();
            func.block_mut(nh).count = h_per;
            let nb = func.add_block();
            func.block_mut(nb).insts = b_insts.clone();
            func.block_mut(nb).count = b_per;
            headers.push(nh);
            bodies.push(nb);
        }
        func.block_mut(h).count = h_per;
        func.block_mut(body).count = b_per;

        let n = factor as usize;
        for i in 0..n {
            // H_i's body edge goes to B_i (exit edge unchanged).
            let term = func
                .block_mut(headers[i])
                .terminator_mut()
                .expect("header has terminator");
            if let InstKind::CondBr {
                then_bb, else_bb, ..
            } = &mut term.kind
            {
                if body_on_true {
                    *then_bb = bodies[i];
                } else {
                    *else_bb = bodies[i];
                }
            }
            // B_i jumps to H_{i+1} (wrapping to the original header).
            let term = func
                .block_mut(bodies[i])
                .terminator_mut()
                .expect("body has terminator");
            if let InstKind::Br { target } = &mut term.kind {
                *target = headers[(i + 1) % n];
            }
        }
        unrolled += 1;
    }
    unrolled
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    const SRC: &str = r#"
fn f(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
"#;

    fn prepared() -> Module {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::simplify::run(&mut m);
        m
    }

    #[test]
    fn unrolls_while_loop_by_factor() {
        let mut m = prepared();
        let before = m.functions[0].num_live_blocks();
        let n = run_function(&mut m.functions[0], 4, 14);
        assert_eq!(n, 1, "{}", m.functions[0]);
        // factor-1 copies of header and body each.
        assert_eq!(m.functions[0].num_live_blocks(), before + 6);
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn counts_divided_across_copies() {
        let mut m = prepared();
        let f = &mut m.functions[0];
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        for bid in ids {
            f.block_mut(bid).count = Some(400);
        }
        run_function(f, 4, 14);
        let hundreds = m.functions[0]
            .iter_blocks()
            .filter(|(_, b)| b.count == Some(100))
            .count();
        assert_eq!(hundreds, 8, "4 headers + 4 bodies at 400/4 each");
    }

    #[test]
    fn factor_one_is_a_no_op() {
        let mut m = prepared();
        assert_eq!(run_function(&mut m.functions[0], 1, 14), 0);
    }

    #[test]
    fn big_bodies_skipped() {
        let mut m = prepared();
        assert_eq!(run_function(&mut m.functions[0], 4, 2), 0);
    }

    #[test]
    fn loops_with_calls_skipped() {
        let src = r#"
fn g(x) { return x; }
fn f(n) {
    let i = 0;
    while (i < n) {
        i = i + g(1);
    }
    return i;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        crate::simplify::run(&mut m);
        let fid = m.find_function("f").unwrap();
        assert_eq!(run_function(&mut m.functions[fid.index()], 4, 20), 0);
    }

    #[test]
    fn unrolled_ir_still_verifies_under_full_pipeline() {
        let mut m = prepared();
        run_function(&mut m.functions[0], 3, 14);
        crate::simplify::run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn duplicated_lines_keep_same_discriminator() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::discriminators::run(&mut m);
        crate::simplify::run(&mut m);
        run_function(&mut m.functions[0], 4, 14);
        // Line 5 (`while`) now exists in 4 header copies with equal
        // discriminators — the debug-info correlation trap: some
        // (line, discriminator) key is shared by >= 4 distinct blocks.
        let mut blocks_per_disc: std::collections::HashMap<u32, std::collections::HashSet<_>> =
            std::collections::HashMap::new();
        for (bid, b) in m.functions[0].iter_blocks() {
            for i in &b.insts {
                if i.loc.line == 5 {
                    blocks_per_disc
                        .entry(i.loc.discriminator)
                        .or_default()
                        .insert(bid);
                }
            }
        }
        let max_sharing = blocks_per_disc.values().map(|s| s.len()).max().unwrap();
        assert!(
            max_sharing >= 4,
            "expected ambiguous copies, got {blocks_per_disc:?}"
        );
    }
}
