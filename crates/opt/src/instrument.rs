//! Traditional counter instrumentation (instrumentation-based PGO).
//!
//! Inserts a [`InstKind::CounterIncr`] into every basic block. Counters
//! lower to real load/add/store machine instructions, reproducing the
//! run-time overhead the paper measures (73% on HHVM), and distinct counters
//! block code merge exactly as the paper describes ("blocks with probes
//! incrementing different counters cannot be merged").
//!
//! A spanning-tree optimization (Ball–Larus) is deliberately *not*
//! implemented; the paper's comparison point is plain `-fprofile-generate`
//! style instrumentation whose cost "is still unacceptable in some
//! circumstances".

use csspgo_ir::inst::{Inst, InstKind};
use csspgo_ir::{BlockId, FuncId, Module};
use std::collections::HashMap;

/// Maps `(function, block)` to the counter id instrumenting that block.
#[derive(Clone, Debug, Default)]
pub struct CounterMap {
    /// Counter id for each instrumented block.
    pub by_block: HashMap<(FuncId, BlockId), u32>,
}

impl CounterMap {
    /// Total number of counters allocated.
    pub fn len(&self) -> usize {
        self.by_block.len()
    }

    /// Whether no counters were allocated.
    pub fn is_empty(&self) -> bool {
        self.by_block.is_empty()
    }
}

/// Instruments every block of every function; returns the counter map used
/// later to read exact block counts out of the simulator.
pub fn run(module: &mut Module) -> CounterMap {
    let mut map = CounterMap::default();
    for fid in 0..module.functions.len() {
        let func_id = FuncId::from_index(fid);
        let block_ids: Vec<BlockId> = module.functions[fid]
            .iter_blocks()
            .map(|(id, _)| id)
            .collect();
        for bid in block_ids {
            let counter = module.alloc_counter();
            map.by_block.insert((func_id, bid), counter);
            module.functions[fid]
                .block_mut(bid)
                .insts
                .insert(0, Inst::synthetic(InstKind::CounterIncr { counter }));
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_instrumented_with_unique_counter() {
        let mut m = csspgo_lang::compile(
            "fn f(x) { if (x > 0) { return 1; } return 2; } fn g() { return f(1); }",
            "t",
        )
        .unwrap();
        let map = run(&mut m);
        let total_blocks: usize = m.functions.iter().map(|f| f.num_live_blocks()).sum();
        assert_eq!(map.len(), total_blocks);
        assert_eq!(m.num_counters as usize, total_blocks);
        // Each live block starts with its counter.
        for f in &m.functions {
            for (bid, b) in f.iter_blocks() {
                match b.insts[0].kind {
                    InstKind::CounterIncr { counter } => {
                        assert_eq!(map.by_block[&(f.id, bid)], counter);
                    }
                    ref other => panic!("expected counter, got {other}"),
                }
            }
        }
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }
}
