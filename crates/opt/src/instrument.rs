//! Traditional counter instrumentation (instrumentation-based PGO).
//!
//! Counters lower to real load/add/store machine instructions, reproducing
//! the run-time overhead the paper measures (73% on HHVM), and distinct
//! counters block code merge exactly as the paper describes ("blocks with
//! probes incrementing different counters cannot be merged").
//!
//! Two placements are available via [`InstrumentConfig`]:
//!
//! * [`Placement::Full`] — a counter in every basic block, plain
//!   `-fprofile-generate` style (the paper's comparison point);
//! * [`Placement::SpanningTree`] — the Ball–Larus/Knuth minimal placement
//!   planned by [`csspgo_ir::flow::plan_function`]: only co-tree edges of a
//!   max-weight spanning tree are counted, critical edges are split with a
//!   counter-only block, and full block/edge counts are recovered after the
//!   run by Kirchhoff elimination ([`csspgo_ir::flow::reconstruct`]). The
//!   static recoverability prover for this mode lives in
//!   `csspgo_analysis::dataflow` (PP lint family).

use csspgo_ir::flow::{self, CounterHost, FlowEdge};
use csspgo_ir::inst::{Inst, InstKind};
use csspgo_ir::{BlockId, FuncId, Module};
use std::collections::HashMap;

/// Counter placement strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// One counter per basic block.
    #[default]
    Full,
    /// Ball–Larus minimal placement: counters only on co-tree edges of a
    /// max-weight spanning tree of the augmented flow graph.
    SpanningTree,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Full => write!(f, "full"),
            Placement::SpanningTree => write!(f, "spanning_tree"),
        }
    }
}

/// Configuration for the instrumentation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrumentConfig {
    /// Counter placement strategy.
    pub placement: Placement,
}

/// Maps allocated counters back to what they measure.
#[derive(Clone, Debug, Default)]
pub struct CounterMap {
    /// Counter id for each block-hosted counter (full placement, and
    /// full-placement fallbacks of exit-free functions).
    pub by_block: HashMap<(FuncId, BlockId), u32>,
    /// Counter id for each measured flow edge (spanning-tree placement).
    /// The edge refers to the *pre-instrumentation* CFG; split blocks
    /// inserted to host a counter are not part of it.
    pub by_edge: Vec<(FuncId, FlowEdge, u32)>,
    /// The placement that produced this map.
    pub placement: Placement,
}

impl CounterMap {
    /// Total number of counters allocated (equals the number of
    /// `CounterIncr` instructions emitted).
    pub fn len(&self) -> usize {
        self.by_block.len() + self.by_edge.len()
    }

    /// Whether no counters were allocated.
    pub fn is_empty(&self) -> bool {
        self.by_block.is_empty() && self.by_edge.is_empty()
    }
}

/// Instruments every block of every function; returns the counter map used
/// later to read exact block counts out of the simulator.
pub fn run(module: &mut Module) -> CounterMap {
    run_with(module, &InstrumentConfig::default())
}

/// Instruments `module` according to `config`.
pub fn run_with(module: &mut Module, config: &InstrumentConfig) -> CounterMap {
    let mut map = CounterMap {
        placement: config.placement,
        ..CounterMap::default()
    };
    for fid in 0..module.functions.len() {
        match config.placement {
            Placement::Full => instrument_full_function(module, fid, &mut map),
            Placement::SpanningTree => {
                let plan = flow::plan_function(&module.functions[fid]);
                if plan.full_fallback {
                    instrument_full_function(module, fid, &mut map);
                } else {
                    instrument_plan(module, fid, &plan, &mut map);
                }
            }
        }
    }
    map
}

/// Full placement for one function: a counter at the top of every live
/// block.
fn instrument_full_function(module: &mut Module, fid: usize, map: &mut CounterMap) {
    let func_id = FuncId::from_index(fid);
    let block_ids: Vec<BlockId> = module.functions[fid]
        .iter_blocks()
        .map(|(id, _)| id)
        .collect();
    for bid in block_ids {
        let counter = module.alloc_counter();
        map.by_block.insert((func_id, bid), counter);
        module.functions[fid]
            .block_mut(bid)
            .insts
            .insert(0, Inst::synthetic(InstKind::CounterIncr { counter }));
    }
}

/// Materializes a spanning-tree plan: block-hosted counters go at the top
/// of their host; critical edges get a fresh split block holding only the
/// counter and a branch, with the source terminator retargeted. Split
/// blocks are appended, so pre-existing block ids (and the plan's edges)
/// stay valid.
fn instrument_plan(
    module: &mut Module,
    fid: usize,
    plan: &flow::MeasurementPlan,
    map: &mut CounterMap,
) {
    let func_id = FuncId::from_index(fid);
    for site in &plan.counters {
        let counter = module.alloc_counter();
        map.by_edge.push((func_id, site.edge, counter));
        let func = &mut module.functions[fid];
        match site.host {
            CounterHost::Block(host) => {
                func.block_mut(host)
                    .insts
                    .insert(0, Inst::synthetic(InstKind::CounterIncr { counter }));
            }
            CounterHost::Split => {
                let FlowEdge::Cfg { from, to } = site.edge else {
                    unreachable!("only real CFG edges can need a split");
                };
                let split = func.add_block();
                func.block_mut(split).insts = vec![
                    Inst::synthetic(InstKind::CounterIncr { counter }),
                    Inst::synthetic(InstKind::Br { target: to }),
                ];
                // Retarget every parallel occurrence: the flow edge's count
                // is the combined traversal count of the parallel arms.
                if let Some(term) = func.block_mut(from).terminator_mut() {
                    term.kind
                        .map_successors(|t| if t == to { split } else { t });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_instrumented_with_unique_counter() {
        let mut m = csspgo_lang::compile(
            "fn f(x) { if (x > 0) { return 1; } return 2; } fn g() { return f(1); }",
            "t",
        )
        .unwrap();
        let map = run(&mut m);
        let total_blocks: usize = m.functions.iter().map(|f| f.num_live_blocks()).sum();
        assert_eq!(map.len(), total_blocks);
        assert_eq!(m.num_counters as usize, total_blocks);
        // Each live block starts with its counter.
        for f in &m.functions {
            for (bid, b) in f.iter_blocks() {
                match b.insts[0].kind {
                    InstKind::CounterIncr { counter } => {
                        assert_eq!(map.by_block[&(f.id, bid)], counter);
                    }
                    ref other => panic!("expected counter, got {other}"),
                }
            }
        }
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }

    #[test]
    fn spanning_tree_uses_fewer_counters() {
        let src = "fn f(x) { if (x > 0) { return 1; } return 2; } fn g() { return f(1); }";
        let mut full = csspgo_lang::compile(src, "t").unwrap();
        let full_map = run(&mut full);
        let mut sparse = csspgo_lang::compile(src, "t").unwrap();
        let sparse_map = run_with(
            &mut sparse,
            &InstrumentConfig {
                placement: Placement::SpanningTree,
            },
        );
        assert!(sparse_map.len() < full_map.len());
        assert_eq!(sparse_map.len(), sparse.num_counters as usize);
        assert!(sparse_map.by_block.is_empty());
        assert_eq!(csspgo_ir::verify::verify_module(&sparse), vec![]);
    }

    #[test]
    fn split_blocks_host_critical_edge_counters() {
        // while-loop shape: the loop head has two preds and two succs, so
        // some edge around it is critical and needs a split block.
        let src = "fn f(n) { let i = 0; let s = 0; while (i < n) { if (s > 10) { s = s - 1; } i = i + 1; s = s + i; } return s; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        let before_blocks = m.functions[0].blocks.len();
        let map = run_with(
            &mut m,
            &InstrumentConfig {
                placement: Placement::SpanningTree,
            },
        );
        assert!(!map.by_edge.is_empty());
        // Module stays well-formed whether or not a split was needed.
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
        // Every counter occurs exactly once in the instructions.
        let mut seen = std::collections::HashSet::new();
        for f in &m.functions {
            for (_, b) in f.iter_blocks() {
                for inst in &b.insts {
                    if let InstKind::CounterIncr { counter } = inst.kind {
                        assert!(seen.insert(counter), "counter {counter} duplicated");
                    }
                }
            }
        }
        assert_eq!(seen.len(), map.len());
        let _ = before_blocks;
    }
}
