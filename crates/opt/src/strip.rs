//! Dead-function elimination (the linker/LTO's `--gc-sections` analogue).
//!
//! After aggressive inlining, fully-inlined functions keep no callers; a
//! real toolchain drops their standalone bodies at link time. Function ids
//! must stay stable, so dead bodies are replaced with a single `ret 0` stub
//! (zero probes, essentially zero text).
//!
//! This is where selective inlining turns into *binary size*: the paper's
//! Fig. 7 size reductions come from hot-path copies replacing standalone
//! bodies, not from smaller hot code.

use csspgo_ir::inst::{Inst, InstKind, Operand};
use csspgo_ir::{FuncId, Module};
use std::collections::HashSet;

/// Strips functions unreachable from `roots`; returns how many were
/// stripped.
pub fn run(module: &mut Module, roots: &[FuncId]) -> usize {
    let mut live: HashSet<FuncId> = HashSet::new();
    let mut stack: Vec<FuncId> = roots.to_vec();
    for r in roots {
        live.insert(*r);
    }
    while let Some(f) = stack.pop() {
        for (_, block) in module.func(f).iter_blocks() {
            for inst in &block.insts {
                if let InstKind::Call { callee, .. } = inst.kind {
                    if live.insert(callee) {
                        stack.push(callee);
                    }
                }
            }
        }
    }

    let mut stripped = 0;
    for func in &mut module.functions {
        if live.contains(&func.id) {
            continue;
        }
        // Replace the body with a stub.
        for block in &mut func.blocks {
            block.insts.clear();
            block.dead = true;
        }
        let entry = func.entry;
        let b = &mut func.blocks[entry.index()];
        b.dead = false;
        b.count = Some(0);
        b.insts.push(Inst::synthetic(InstKind::Ret {
            value: Some(Operand::Imm(0)),
        }));
        func.layout = None;
        stripped += 1;
    }
    stripped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_functions_become_stubs() {
        let src = r#"
fn used(x) { return x + 1; }
fn unused(x) { return x * 2; }
fn main(a) { return used(a); }
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        let main = m.find_function("main").unwrap();
        let n = run(&mut m, &[main]);
        assert_eq!(n, 1);
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
        let unused = m.find_function("unused").unwrap();
        assert_eq!(m.func(unused).size(), 1, "stubbed to a lone ret");
        let used = m.find_function("used").unwrap();
        assert!(m.func(used).size() > 1, "live function untouched");
    }

    #[test]
    fn recursion_keeps_functions_alive() {
        let src = r#"
fn rec(x) { if (x > 0) { return rec(x - 1); } return 0; }
fn main(a) { return rec(a); }
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        let main = m.find_function("main").unwrap();
        assert_eq!(run(&mut m, &[main]), 0);
    }

    #[test]
    fn stub_still_runs() {
        // Stripping must never break an indirect path that we missed; since
        // MiniLang has no indirect calls, stubs are unreachable — but they
        // must still be valid IR.
        let src = "fn dead() { return 9; } fn main(a) { return a; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        let main = m.find_function("main").unwrap();
        run(&mut m, &[main]);
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }
}
