//! Scalar and CFG cleanup: constant folding, local copy propagation, dead
//! code elimination, and CFG simplification (constant branches, empty-block
//! forwarding, straight-line block merging).
//!
//! Runs to a fixpoint. Profile counts are maintained: merged blocks keep
//! their (equal) counts, forwarded empty blocks are absorbed, and branch
//! folding never changes surviving block counts.

use csspgo_ir::cfg;
use csspgo_ir::inst::{InstKind, Operand};
use csspgo_ir::{BlockId, Function, Module};
use std::collections::{HashMap, HashSet};

/// Runs the full cleanup to fixpoint on every function.
pub fn run(module: &mut Module) {
    for func in &mut module.functions {
        run_function(func);
    }
}

/// Runs the cleanup on one function.
pub fn run_function(func: &mut Function) {
    // Bounded fixpoint; each constituent either changes something or not.
    for _ in 0..16 {
        let mut changed = false;
        changed |= const_fold(func);
        changed |= copy_prop(func);
        changed |= dce(func);
        changed |= cfg_simplify(func);
        if !changed {
            break;
        }
    }
}

/// Folds constant computations and branches. Returns whether anything
/// changed.
pub fn const_fold(func: &mut Function) -> bool {
    let mut changed = false;
    for block in func.blocks.iter_mut().filter(|b| !b.dead) {
        for inst in &mut block.insts {
            let new_kind = match &inst.kind {
                InstKind::Bin { op, dst, lhs, rhs } => match (lhs.as_imm(), rhs.as_imm()) {
                    (Some(a), Some(b)) => Some(InstKind::Copy {
                        dst: *dst,
                        src: Operand::Imm(op.eval(a, b)),
                    }),
                    _ => algebraic_identity(*op, *dst, *lhs, *rhs),
                },
                InstKind::Cmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => match (lhs.as_imm(), rhs.as_imm()) {
                    (Some(a), Some(b)) => Some(InstKind::Copy {
                        dst: *dst,
                        src: Operand::Imm(pred.eval(a, b)),
                    }),
                    _ => None,
                },
                InstKind::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => cond.as_imm().map(|c| InstKind::Copy {
                    dst: *dst,
                    src: if c != 0 { *on_true } else { *on_false },
                }),
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    if then_bb == else_bb {
                        Some(InstKind::Br { target: *then_bb })
                    } else {
                        cond.as_imm().map(|c| InstKind::Br {
                            target: if c != 0 { *then_bb } else { *else_bb },
                        })
                    }
                }
                InstKind::Switch {
                    value,
                    cases,
                    default,
                } => value.as_imm().map(|v| InstKind::Br {
                    target: cases
                        .iter()
                        .find(|&&(k, _)| k == v)
                        .map(|&(_, b)| b)
                        .unwrap_or(*default),
                }),
                _ => None,
            };
            if let Some(k) = new_kind {
                inst.kind = k;
                changed = true;
            }
        }
    }
    changed
}

/// `x+0`, `x*1`, `x*0`, `x-0`, … → copies.
fn algebraic_identity(
    op: csspgo_ir::BinOp,
    dst: csspgo_ir::VReg,
    lhs: Operand,
    rhs: Operand,
) -> Option<InstKind> {
    use csspgo_ir::BinOp::*;
    let copy = |src| Some(InstKind::Copy { dst, src });
    match (op, lhs.as_imm(), rhs.as_imm()) {
        (Add, Some(0), _) => copy(rhs),
        (Add | Sub | Shl | Shr | Or | Xor, _, Some(0)) => copy(lhs),
        (Mul, _, Some(1)) | (Div, _, Some(1)) => copy(lhs),
        (Mul, Some(1), _) => copy(rhs),
        (Mul | And, _, Some(0)) => copy(Operand::Imm(0)),
        (Mul | And, Some(0), _) => copy(Operand::Imm(0)),
        _ => None,
    }
}

/// Local (per-block) copy propagation. Returns whether anything changed.
pub fn copy_prop(func: &mut Function) -> bool {
    let mut changed = false;
    for block in func.blocks.iter_mut().filter(|b| !b.dead) {
        let mut map: HashMap<csspgo_ir::VReg, Operand> = HashMap::new();
        for inst in &mut block.insts {
            // Substitute uses through the current map.
            let before = inst.kind.clone();
            inst.kind.map_uses(|r| {
                let mut cur = Operand::Reg(r);
                let mut fuel = 8;
                while let Operand::Reg(x) = cur {
                    match map.get(&x) {
                        Some(&next) if fuel > 0 => {
                            cur = next;
                            fuel -= 1;
                        }
                        _ => break,
                    }
                }
                cur
            });
            if inst.kind != before {
                changed = true;
            }
            // Update the map with this instruction's def.
            if let Some(d) = inst.kind.def() {
                // Any mapping reading d is now stale.
                map.retain(|_, v| *v != Operand::Reg(d));
                map.remove(&d);
                if let InstKind::Copy { dst, src } = inst.kind {
                    if src != Operand::Reg(dst) {
                        map.insert(dst, src);
                    }
                }
            }
        }
    }
    changed
}

/// Global dead-code elimination of pure instructions whose results are never
/// used. Returns whether anything changed.
pub fn dce(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut used: HashSet<csspgo_ir::VReg> = HashSet::new();
        for block in func.blocks.iter().filter(|b| !b.dead) {
            for inst in &block.insts {
                for op in inst.kind.uses() {
                    if let Operand::Reg(r) = op {
                        used.insert(r);
                    }
                }
            }
        }
        let mut removed = false;
        for block in func.blocks.iter_mut().filter(|b| !b.dead) {
            let before = block.insts.len();
            block.insts.retain(|inst| {
                inst.kind.has_side_effects()
                    || match inst.kind.def() {
                        Some(d) => used.contains(&d),
                        None => true,
                    }
            });
            if block.insts.len() != before {
                removed = true;
            }
        }
        if !removed {
            break;
        }
        changed = true;
    }
    changed
}

/// CFG cleanup: unreachable-block removal, empty-block forwarding and
/// straight-line merging. Returns whether anything changed.
pub fn cfg_simplify(func: &mut Function) -> bool {
    let mut changed = false;
    changed |= cfg::remove_unreachable(func) > 0;

    // Forward branches through blocks that contain only `br target`.
    // Blocks holding probes or counters are kept (their execution frequency
    // is meaningful).
    loop {
        let mut forwarded = false;
        let ids: Vec<BlockId> = func.iter_blocks().map(|(id, _)| id).collect();
        for bid in ids {
            if bid == func.entry {
                continue;
            }
            let target = {
                let b = func.block(bid);
                if b.insts.len() != 1 {
                    continue;
                }
                match b.insts[0].kind {
                    InstKind::Br { target } if target != bid => target,
                    _ => continue,
                }
            };
            // Retarget every edge pointing at bid.
            let mut any = false;
            for other in func.blocks.iter_mut().filter(|b| !b.dead) {
                if let Some(term) = other.terminator_mut() {
                    let before = term.kind.clone();
                    term.kind
                        .map_successors(|s| if s == bid { target } else { s });
                    if term.kind != before {
                        any = true;
                    }
                }
            }
            if any {
                forwarded = true;
            }
        }
        changed |= forwarded;
        changed |= cfg::remove_unreachable(func) > 0;
        if !forwarded {
            break;
        }
    }

    // Merge straight-line pairs: B -> C where C's only predecessor is B.
    loop {
        let preds = cfg::predecessors(func);
        let mut merged = false;
        let ids: Vec<BlockId> = func.iter_blocks().map(|(id, _)| id).collect();
        for bid in ids {
            let target = match func.block(bid).terminator() {
                Some(t) => match t.kind {
                    InstKind::Br { target } => target,
                    _ => continue,
                },
                None => continue,
            };
            if target == bid || target == func.entry {
                continue;
            }
            if preds[target.index()].as_slice() != [bid] {
                continue;
            }
            // Splice C into B.
            let mut c_insts = std::mem::take(&mut func.block_mut(target).insts);
            let c_count = func.block_mut(target).count;
            func.block_mut(target).dead = true;
            let b = func.block_mut(bid);
            b.insts.pop(); // drop `br target`
            b.insts.append(&mut c_insts);
            if b.count.is_none() {
                b.count = c_count;
            }
            merged = true;
            break; // predecessor table is stale; recompute
        }
        changed |= merged;
        if !merged {
            break;
        }
    }

    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    fn compile(src: &str) -> Module {
        csspgo_lang::compile(src, "t").unwrap()
    }

    #[test]
    fn folds_constant_arithmetic_to_constant_return() {
        let mut m = compile("fn f() { let x = 2 + 3; let y = x * 4; return y; }");
        run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
        let f = &m.functions[0];
        let term = f.block(f.entry).terminator().unwrap();
        assert!(
            matches!(
                term.kind,
                InstKind::Ret {
                    value: Some(Operand::Imm(20))
                }
            ),
            "got {}",
            term.kind
        );
    }

    #[test]
    fn folds_constant_branch_and_removes_dead_arm() {
        let mut m = compile("fn f() { if (1 < 2) { return 10; } return 20; }");
        run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
        let f = &m.functions[0];
        // Everything should collapse into the entry returning 10.
        let term = f.block(f.entry).terminator().unwrap();
        assert!(
            matches!(
                term.kind,
                InstKind::Ret {
                    value: Some(Operand::Imm(10))
                }
            ),
            "got {}",
            term.kind
        );
        assert_eq!(f.num_live_blocks(), 1);
    }

    #[test]
    fn dce_removes_unused_pure_code_but_keeps_calls() {
        let mut m =
            compile("fn g() { return 1; } fn f(a) { let x = a * 3; let y = g(); return a; }");
        run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
        let f = &m.functions[1];
        let kinds: Vec<_> = f
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .map(|i| i.kind.clone())
            .collect();
        assert!(
            !kinds.iter().any(|k| matches!(k, InstKind::Bin { .. })),
            "x computation should be dead: {kinds:?}"
        );
        assert!(
            kinds.iter().any(|k| matches!(k, InstKind::Call { .. })),
            "call has side effects and must stay"
        );
    }

    #[test]
    fn merges_straight_line_blocks() {
        let mut m = compile("fn f(a) { let x = a + 1; if (1) { x = x + 2; } return x; }");
        run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
        assert_eq!(m.functions[0].num_live_blocks(), 1);
    }

    #[test]
    fn probes_block_empty_block_forwarding() {
        let mut m = compile("fn f(a) { if (a > 0) { return 1; } return 2; }");
        crate::probes::run(&mut m);
        let before = m.functions[0].num_live_blocks();
        run(&mut m);
        assert_eq!(verify_module(&m), vec![]);
        // Blocks hold probes, so nothing can be forwarded away or merged
        // into a straight line that drops a probe.
        let probes: usize = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::PseudoProbe { .. }))
            .count();
        assert!(probes >= before, "probes must survive simplification");
    }

    #[test]
    fn switch_on_constant_folds() {
        let mut m = compile("fn f() { switch (2) { case 1 { return 10; } case 2 { return 20; } default { return 0; } } }");
        run(&mut m);
        let f = &m.functions[0];
        let term = f.block(f.entry).terminator().unwrap();
        assert!(matches!(
            term.kind,
            InstKind::Ret {
                value: Some(Operand::Imm(20))
            }
        ));
    }

    #[test]
    fn algebraic_identities_fold() {
        let mut m =
            compile("fn f(a) { let x = a + 0; let y = x * 1; let z = y * 0; return y + z; }");
        run(&mut m);
        let f = &m.functions[0];
        let term = f.block(f.entry).terminator().unwrap();
        // y + 0 == a; so `ret a`.
        assert!(
            matches!(
                term.kind,
                InstKind::Ret {
                    value: Some(Operand::Reg(csspgo_ir::VReg(0)))
                }
            ),
            "got {}",
            term.kind
        );
    }

    #[test]
    fn copy_prop_respects_redefinition() {
        // x = a; a = 5; return x  => must return the old a, not 5.
        let mut m = compile("fn f(a) { let x = a; a = 5; return x; }");
        run(&mut m);
        let f = &m.functions[0];
        let term = f.block(f.entry).terminator().unwrap();
        // Correctness check: must NOT be Imm(5).
        assert!(
            !matches!(
                term.kind,
                InstKind::Ret {
                    value: Some(Operand::Imm(5))
                }
            ),
            "copy propagation across redefinition is wrong: {}",
            term.kind
        );
    }
}
