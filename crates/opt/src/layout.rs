//! Profile-guided block layout (ext-TSP style chain merging) and hot/cold
//! function splitting.
//!
//! The paper enables Ext-TSP block layout [Newell & Pupyrev] and function
//! splitting for *every* PGO variant, so layout quality is a pure function
//! of profile quality — which is exactly what the evaluation measures.
//!
//! The algorithm here is the greedy chain-merging core of ext-TSP: blocks
//! start as singleton chains; chains merge along the heaviest CFG edges when
//! the edge connects a chain tail to a chain head (creating fall-through);
//! remaining chains order by hotness density. Branch *inversion* is then
//! implicit: the code generator emits the conditional jump toward whichever
//! successor is not the fall-through.

use crate::OptConfig;
use csspgo_ir::function::BlockLayout;
use csspgo_ir::{cfg, BlockId, Function, Module};
use std::collections::HashMap;

/// Computes layout (and optionally splitting) for every function.
pub fn run(module: &mut Module, config: &OptConfig) {
    for func in &mut module.functions {
        let layout = compute_layout(func, config);
        func.layout = Some(layout);
    }
}

/// Estimated CFG edge weights from block counts: each block's count is
/// distributed over its successors proportionally to the successors' own
/// counts (uniform when the successors are uncounted).
pub fn edge_weights(func: &Function) -> HashMap<(BlockId, BlockId), u64> {
    let mut weights = HashMap::new();
    for (bid, block) in func.iter_blocks() {
        let succs = cfg::successors(func, bid);
        if succs.is_empty() {
            continue;
        }
        let b_count = block.count.unwrap_or(0);
        let succ_counts: Vec<u64> = succs
            .iter()
            .map(|s| func.block(*s).count.unwrap_or(0))
            .collect();
        let total: u64 = succ_counts.iter().sum();
        for (i, &s) in succs.iter().enumerate() {
            let w = if total > 0 {
                (b_count as u128 * succ_counts[i] as u128 / total as u128) as u64
            } else {
                b_count / succs.len() as u64
            };
            weights.insert((bid, s), w);
        }
    }
    weights
}

/// The ext-TSP objective for a given block order: fall-through edges score
/// their full weight, short forward jumps a fraction, everything else less.
/// Used by tests and the layout-quality bench.
pub fn ext_tsp_score(func: &Function, order: &[BlockId]) -> f64 {
    let pos: HashMap<BlockId, usize> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let weights = edge_weights(func);
    let mut score = 0.0;
    for (&(from, to), &w) in &weights {
        let (Some(&pf), Some(&pt)) = (pos.get(&from), pos.get(&to)) else {
            continue;
        };
        let w = w as f64;
        if pt == pf + 1 {
            score += w; // fall-through
        } else if pt > pf && pt - pf <= 8 {
            score += 0.1 * w; // short forward jump
        } else {
            score += 0.05 * w; // backward / long jump
        }
    }
    score
}

/// Greedy chain merging + hot/cold splitting for one function.
pub fn compute_layout(func: &Function, config: &OptConfig) -> BlockLayout {
    let live: Vec<BlockId> = cfg::reverse_post_order(func);
    let has_profile = live.iter().any(|b| func.block(*b).count.is_some());

    // Without a profile: RPO order, no splitting (the -O2 baseline).
    if !has_profile {
        let mut all: Vec<BlockId> = live;
        // RPO misses nothing live (unreachable were removed by simplify),
        // but be safe and append stragglers in id order.
        for (b, _) in func.iter_blocks() {
            if !all.contains(&b) {
                all.push(b);
            }
        }
        return BlockLayout {
            hot: all,
            cold: vec![],
        };
    }

    // Chain merging on edge weights.
    let weights = edge_weights(func);
    let mut edges: Vec<(u64, BlockId, BlockId)> = weights
        .iter()
        .filter(|((f, t), _)| f != t)
        .map(|(&(f, t), &w)| (w, f, t))
        .collect();
    // Heaviest first; deterministic tiebreak.
    edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut all_blocks: Vec<BlockId> = func.iter_blocks().map(|(b, _)| b).collect();
    // Keep RPO-ish determinism: order as in `live`, stragglers after.
    all_blocks.sort_by_key(|b| live.iter().position(|x| x == b).unwrap_or(usize::MAX));

    let mut chain_of: HashMap<BlockId, usize> = HashMap::new();
    let mut chains: Vec<Vec<BlockId>> = Vec::new();
    for &b in &all_blocks {
        chain_of.insert(b, chains.len());
        chains.push(vec![b]);
    }
    for (w, from, to) in edges {
        if w == 0 {
            break;
        }
        let cf = chain_of[&from];
        let ct = chain_of[&to];
        if cf == ct {
            continue;
        }
        // Merge only tail(cf) -> head(ct), and never place a block before
        // the entry's chain head.
        if *chains[cf].last().expect("non-empty chain") != from
            || *chains[ct].first().expect("non-empty chain") != to
        {
            continue;
        }
        if chains[ct].first() == Some(&func.entry) {
            continue;
        }
        // Do not glue a chain onto the head of a much hotter chain: a cold
        // predecessor in front of a hot loop head lands inside the cycle
        // and breaks its fall-through (classic ext-TSP avoids this via its
        // gain function).
        let max_internal = |c: &[BlockId]| -> u64 {
            c.windows(2)
                .map(|p| weights.get(&(p[0], p[1])).copied().unwrap_or(0))
                .max()
                .unwrap_or(0)
        };
        if w.saturating_mul(16) < max_internal(&chains[ct]) {
            continue;
        }
        let moved = std::mem::take(&mut chains[ct]);
        for &b in &moved {
            chain_of.insert(b, cf);
        }
        chains[cf].extend(moved);
    }

    // Rotate chains that close a cycle so the chain ends in a block whose
    // loop-closing branch is *conditional* (the instruction exists anyway):
    // ending a cycle with an unconditional `br` wastes the fall-through
    // elision on the hottest edge. The rotation score is the fall-through
    // weight gained minus the weight of a trailing unconditional jump.
    for chain in chains.iter_mut() {
        if chain.len() < 2 || chain.contains(&func.entry) {
            continue;
        }
        let edge_w = |a: BlockId, b: BlockId| weights.get(&(a, b)).copied().unwrap_or(0) as i128;
        // Executed-cost of an ordering: an unconditional branch to a
        // non-adjacent block costs an executed jump plus a front-end bubble
        // (2·w); a conditional branch costs a bubble for whichever side is
        // not the fall-through, plus an extra jump instruction when
        // *neither* side falls through.
        let cost_of = |order: &[BlockId]| -> i128 {
            let mut cost: i128 = 0;
            for (i, &b) in order.iter().enumerate() {
                let next = order.get(i + 1).copied();
                match func.block(b).terminator().map(|t| &t.kind) {
                    Some(csspgo_ir::inst::InstKind::Br { target }) if next != Some(*target) => {
                        cost += 2 * edge_w(b, *target);
                    }
                    Some(csspgo_ir::inst::InstKind::CondBr {
                        then_bb, else_bb, ..
                    }) => {
                        if next != Some(*then_bb) {
                            cost += edge_w(b, *then_bb);
                        }
                        if next != Some(*else_bb) {
                            cost += edge_w(b, *else_bb);
                        }
                        if next != Some(*then_bb) && next != Some(*else_bb) {
                            cost += edge_w(b, *else_bb); // the extra Jmp
                        }
                    }
                    _ => {}
                }
            }
            cost
        };
        let len = chain.len();
        let mut best = 0usize;
        let mut best_cost = cost_of(chain);
        for r in 1..len {
            let rotated: Vec<BlockId> = chain[r..]
                .iter()
                .chain(chain[..r].iter())
                .copied()
                .collect();
            let c = cost_of(&rotated);
            if c < best_cost {
                best_cost = c;
                best = r;
            }
        }
        if best != 0 {
            chain.rotate_left(best);
        }
    }

    // Order chains: entry chain first, then by hotness density.
    let mut chain_ids: Vec<usize> = (0..chains.len())
        .filter(|&i| !chains[i].is_empty())
        .collect();
    let density = |i: usize| -> u64 {
        let total: u64 = chains[i]
            .iter()
            .map(|b| func.block(*b).count.unwrap_or(0))
            .sum();
        total / chains[i].len() as u64
    };
    chain_ids.sort_by(|&a, &b| {
        let a_entry = chains[a].first() == Some(&func.entry);
        let b_entry = chains[b].first() == Some(&func.entry);
        b_entry
            .cmp(&a_entry)
            .then(density(b).cmp(&density(a)))
            .then(chains[a][0].cmp(&chains[b][0]))
    });

    let order: Vec<BlockId> = chain_ids.iter().flat_map(|&i| chains[i].clone()).collect();

    // Hot/cold splitting.
    if config.enable_split {
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        for b in order {
            let c = func.block(b).count;
            if b != func.entry && c.map(|c| c <= config.cold_count_threshold).unwrap_or(false) {
                cold.push(b);
            } else {
                hot.push(b);
            }
        }
        BlockLayout { hot, cold }
    } else {
        BlockLayout {
            hot: order,
            cold: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    const SRC: &str = r#"
fn f(a) {
    let r = 0;
    if (a > 0) {
        r = a * 3;
    } else {
        r = a - 100;
    }
    return r;
}
"#;

    /// entry(0), then(1), else(2), join(3) after compile; annotate the hot
    /// path entry->then->join.
    fn annotated() -> Module {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let f = &mut m.functions[0];
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        let counts = [1000u64, 990, 10, 1000];
        for (bid, c) in ids.iter().zip(counts) {
            f.block_mut(*bid).count = Some(c);
        }
        m
    }

    #[test]
    fn hot_successor_becomes_fallthrough() {
        let mut m = annotated();
        run(&mut m, &OptConfig::default());
        assert_eq!(verify_module(&m), vec![]);
        let f = &m.functions[0];
        let layout = f.layout.as_ref().unwrap();
        assert_eq!(layout.hot[0], f.entry);
        // The hot arm (bb1) must directly follow the entry.
        assert_eq!(layout.hot[1], BlockId(1), "layout: {:?}", layout);
    }

    #[test]
    fn splitting_moves_cold_blocks() {
        let mut m = annotated();
        // Make the cold arm count 0 so it is split out.
        m.functions[0].block_mut(BlockId(2)).count = Some(0);
        run(&mut m, &OptConfig::default());
        let layout = m.functions[0].layout.as_ref().unwrap();
        assert!(layout.cold.contains(&BlockId(2)), "layout: {layout:?}");
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn no_profile_keeps_rpo_without_split() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        run(&mut m, &OptConfig::default());
        let layout = m.functions[0].layout.as_ref().unwrap();
        assert!(layout.cold.is_empty());
        assert_eq!(layout.hot[0], m.functions[0].entry);
        assert_eq!(layout.hot.len(), m.functions[0].num_live_blocks());
    }

    #[test]
    fn ext_tsp_score_prefers_fallthrough_order() {
        let m = annotated();
        let f = &m.functions[0];
        let good = vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)];
        let bad = vec![BlockId(0), BlockId(2), BlockId(3), BlockId(1)];
        assert!(ext_tsp_score(f, &good) > ext_tsp_score(f, &bad));
    }

    #[test]
    fn entry_is_always_first() {
        let mut m = annotated();
        // Invert counts so entry would look cold.
        let ids: Vec<BlockId> = m.functions[0].iter_blocks().map(|(b, _)| b).collect();
        for bid in ids {
            m.functions[0].block_mut(bid).count = Some(5);
        }
        m.functions[0].block_mut(BlockId(0)).count = Some(0);
        run(&mut m, &OptConfig::default());
        let layout = m.functions[0].layout.as_ref().unwrap();
        assert_eq!(layout.hot[0], BlockId(0));
        assert_eq!(verify_module(&m), vec![]);
    }
}
