//! DWARF-style discriminator assignment (LLVM's `AddDiscriminators`).
//!
//! When several basic blocks contain instructions attributed to the same
//! source line (short-circuit operators, `for`-style one-liners), line-based
//! profile correlation cannot tell the blocks apart. This pass assigns each
//! *block* a distinct discriminator per duplicated line, exactly like LLVM
//! does before AutoFDO profile use.
//!
//! Note what this pass does **not** do: it runs once on fresh IR, so code
//! duplication performed by *later* passes (tail duplication, unrolling)
//! produces copies sharing one discriminator. That is the paper's §III.A
//! point — "inserting annotation for all possible code duplication in
//! compiler is not practical" — and is where probe-based correlation wins.

use csspgo_ir::Module;
use std::collections::HashMap;

/// Runs discriminator assignment on every function.
pub fn run(module: &mut Module) {
    for func in &mut module.functions {
        // line -> (first block that used it). Blocks after the first get
        // fresh discriminators for that line.
        let mut line_first_block: HashMap<u32, usize> = HashMap::new();
        let mut line_next_disc: HashMap<u32, u32> = HashMap::new();
        let nblocks = func.blocks.len();
        for b in 0..nblocks {
            if func.blocks[b].dead {
                continue;
            }
            // Discriminator for each line within this block (assigned lazily,
            // shared by all insts of that line in the block).
            let mut local: HashMap<u32, u32> = HashMap::new();
            for inst in &mut func.blocks[b].insts {
                let line = inst.loc.line;
                if line == 0 {
                    continue;
                }
                let disc =
                    *local
                        .entry(line)
                        .or_insert_with(|| match line_first_block.get(&line) {
                            None => {
                                line_first_block.insert(line, b);
                                0
                            }
                            Some(&first) if first == b => 0,
                            Some(_) => {
                                let d = line_next_disc.entry(line).or_insert(0);
                                *d += 1;
                                *d
                            }
                        });
                if disc != 0 {
                    inst.loc.discriminator = disc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn blocks_sharing_a_line_get_distinct_discriminators() {
        // `a && b` lowers to several blocks on the same line.
        let mut m = csspgo_lang::compile("fn f(a, b) { return a && b; }", "t").unwrap();
        run(&mut m);
        let f = &m.functions[0];
        // Collect (block, discriminator) per line-1 instruction.
        let mut per_block: Vec<(usize, u32)> = Vec::new();
        for (bid, b) in f.iter_blocks() {
            for i in &b.insts {
                if i.loc.line == 1 {
                    per_block.push((bid.index(), i.loc.discriminator));
                }
            }
        }
        let blocks: HashSet<usize> = per_block.iter().map(|&(b, _)| b).collect();
        assert!(blocks.len() >= 3, "short-circuit should span blocks");
        // Distinct blocks must not all share discriminator 0.
        let discs: HashSet<u32> = per_block.iter().map(|&(_, d)| d).collect();
        assert!(
            discs.len() >= 2,
            "expected distinct discriminators, got {discs:?}"
        );
        // Within one block, one line has one discriminator.
        let mut seen: HashMap<(usize, u32), u32> = HashMap::new();
        for &(b, d) in &per_block {
            if let Some(&prev) = seen.get(&(b, 1)) {
                assert_eq!(prev, d);
            }
            seen.insert((b, 1), d);
        }
    }

    #[test]
    fn single_block_functions_keep_discriminator_zero() {
        let mut m = csspgo_lang::compile("fn f(a) { return a + 1; }", "t").unwrap();
        run(&mut m);
        for (_, b) in m.functions[0].iter_blocks() {
            for i in &b.insts {
                assert_eq!(i.loc.discriminator, 0);
            }
        }
    }

    use std::collections::HashMap;
}
