//! Tail merge: deduplicates identical basic blocks.
//!
//! The pipeline's representative **code merge** transform (paper §III.A,
//! "Code Merge"). Blocks are compared by instruction *kinds only* — source
//! locations are ignored, exactly like machine-level tail merging — so two
//! blocks from different source lines can merge, after which debug-info
//! correlation cannot split the merged execution count back apart.
//!
//! Pseudo-probes and instrumentation counters block merging *automatically*:
//! distinct probe indices / counter ids make the blocks' instruction kinds
//! unequal ("blocks with probes incrementing different counters cannot be
//! merged").

use csspgo_ir::inst::InstKind;
use csspgo_ir::{BlockId, Function, Module};
use std::collections::HashMap;

/// Runs tail merging on every function.
pub fn run(module: &mut Module) {
    for func in &mut module.functions {
        run_function(func);
    }
}

/// Merges identical blocks in `func`; returns how many blocks were merged
/// away.
pub fn run_function(func: &mut Function) -> usize {
    let mut merged = 0;
    loop {
        let mut by_shape: HashMap<Vec<InstKind>, BlockId> = HashMap::new();
        let mut victim: Option<(BlockId, BlockId)> = None; // (survivor, dup)
        for (bid, block) in func.iter_blocks() {
            if bid == func.entry {
                continue;
            }
            // A block branching to itself cannot merge safely with another
            // self-looping block (targets differ once remapped); skip loops.
            if block.successors().contains(&bid) {
                continue;
            }
            let shape: Vec<InstKind> = block.insts.iter().map(|i| i.kind.clone()).collect();
            match by_shape.get(&shape) {
                Some(&first) => {
                    victim = Some((first, bid));
                    break;
                }
                None => {
                    by_shape.insert(shape, bid);
                }
            }
        }
        let Some((survivor, dup)) = victim else { break };
        // Retarget all edges into `dup` to `survivor`.
        for block in func.blocks.iter_mut().filter(|b| !b.dead) {
            if let Some(t) = block.terminator_mut() {
                t.kind
                    .map_successors(|s| if s == dup { survivor } else { s });
            }
        }
        // Profile maintenance: the survivor now executes both flows.
        let dup_count = func.block(dup).count;
        let b = func.block_mut(survivor);
        b.count = match (b.count, dup_count) {
            (Some(a), Some(d)) => Some(a + d),
            (a, None) => a,
            (None, d) => d,
        };
        let d = func.block_mut(dup);
        d.dead = true;
        d.insts.clear();
        merged += 1;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    /// Both arms store the same constant pattern and return — identical
    /// shapes once lowered (distinct lines!).
    const SRC: &str = r#"
global t[4];
fn f(a) {
    if (a > 0) {
        t[0] = 7;
        return 1;
    } else {
        t[0] = 7;
        return 1;
    }
}
"#;

    #[test]
    fn merges_identical_arms() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::simplify::run(&mut m);
        let before = m.functions[0].num_live_blocks();
        let n = run_function(&mut m.functions[0]);
        assert!(n >= 1, "identical arms should merge (had {before} blocks)");
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn merged_counts_are_summed() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::simplify::run(&mut m);
        // Find the two identical arms and annotate.
        let f = &mut m.functions[0];
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        for bid in &ids {
            f.block_mut(*bid).count = Some(30);
        }
        run_function(f);
        let max = f.iter_blocks().filter_map(|(_, b)| b.count).max().unwrap();
        assert_eq!(max, 60, "survivor should hold 30+30");
    }

    #[test]
    fn probes_block_merging() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        crate::simplify::run(&mut m);
        let n = run_function(&mut m.functions[0]);
        assert_eq!(n, 0, "distinct probes must prevent the merge");
    }

    #[test]
    fn counters_block_merging() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::instrument::run(&mut m);
        crate::simplify::run(&mut m);
        let n = run_function(&mut m.functions[0]);
        assert_eq!(n, 0, "distinct counters must prevent the merge");
    }

    #[test]
    fn different_blocks_do_not_merge() {
        let src = r#"
fn f(a) {
    if (a > 0) { return 1; }
    return 2;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        crate::simplify::run(&mut m);
        let n = run_function(&mut m.functions[0]);
        assert_eq!(n, 0);
    }
}
