//! If-conversion: turns tiny diamonds into branch-free `select`s.
//!
//! Pattern:
//!
//! ```text
//!   P: ... condbr c, T, E        P: ... r = select c, sT, sE; br J
//!   T: r = sT; br J        =>    (T, E dead)
//!   E: r = sE; br J
//! ```
//!
//! With profile, *biased* branches are left alone (a predictable branch
//! beats a select); balanced branches convert. This is one of the paper's
//! tuned interactions with pseudo-probes: with
//! [`ProbeConfig::block_if_convert`](csspgo_ir::probe::ProbeConfig::block_if_convert) unset (the low-overhead production
//! tuning) the arm probes are hoisted into `P`, trading a small frequency
//! distortion for zero run-time cost; when set, probed diamonds are skipped
//! entirely.

use crate::OptConfig;
use csspgo_ir::inst::{Inst, InstKind, Operand};
use csspgo_ir::{cfg, BlockId, Function, Module, VReg};

/// Runs if-conversion on every function.
pub fn run(module: &mut Module, config: &OptConfig) {
    for func in &mut module.functions {
        run_function(func, config);
    }
}

/// A decomposed convertible arm: leading probes + single copy + branch.
struct Arm {
    probes: Vec<Inst>,
    dst: VReg,
    src: Operand,
    join: BlockId,
}

fn decompose_arm(func: &Function, bb: BlockId) -> Option<Arm> {
    let insts = &func.block(bb).insts;
    let split = insts
        .iter()
        .position(|i| !matches!(i.kind, InstKind::PseudoProbe { .. }))
        .unwrap_or(insts.len());
    let probes: Vec<Inst> = insts[..split].to_vec();
    match &insts[split..] {
        [copy, br] => match (&copy.kind, &br.kind) {
            (InstKind::Copy { dst, src }, InstKind::Br { target }) => Some(Arm {
                probes,
                dst: *dst,
                src: *src,
                join: *target,
            }),
            _ => None,
        },
        _ => None,
    }
}

/// Converts eligible diamonds; returns the number of conversions.
pub fn run_function(func: &mut Function, config: &OptConfig) -> usize {
    let mut converted = 0;
    loop {
        let preds = cfg::predecessors(func);
        let mut found: Option<(BlockId, BlockId, BlockId)> = None;
        for (p, block) in func.iter_blocks() {
            let Some(InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            }) = block.terminator().map(|t| t.kind.clone())
            else {
                continue;
            };
            let _ = cond;
            if then_bb == else_bb || then_bb == p || else_bb == p {
                continue;
            }
            if preds[then_bb.index()].as_slice() != [p] || preds[else_bb.index()].as_slice() != [p]
            {
                continue;
            }
            let (Some(t_arm), Some(e_arm)) =
                (decompose_arm(func, then_bb), decompose_arm(func, else_bb))
            else {
                continue;
            };
            if t_arm.dst != e_arm.dst || t_arm.join != e_arm.join || t_arm.join == p {
                continue;
            }
            // Sources must not be the destination itself (select reads both).
            if t_arm.src == Operand::Reg(t_arm.dst) || e_arm.src == Operand::Reg(e_arm.dst) {
                continue;
            }
            // Probe blocking (high-accuracy tuning).
            if config.probe.block_if_convert
                && (!t_arm.probes.is_empty() || !e_arm.probes.is_empty())
            {
                continue;
            }
            // Profile heuristic: leave strongly biased branches alone — a
            // well-predicted branch (~bias/14 cycles) beats a select
            // (1-2 cycles) only past roughly 16:1.
            if let (Some(tc), Some(ec)) = (func.block(then_bb).count, func.block(else_bb).count) {
                let (hi, lo) = (tc.max(ec), tc.min(ec));
                if hi > 0 && (lo == 0 || hi / lo.max(1) >= 16) {
                    continue;
                }
            }
            found = Some((p, then_bb, else_bb));
            break;
        }
        let Some((p, t, e)) = found else { break };

        let t_arm = decompose_arm(func, t).expect("checked above");
        let e_arm = decompose_arm(func, e).expect("checked above");
        let join = t_arm.join;
        let InstKind::CondBr { cond, .. } = func.block(p).terminator().expect("condbr").kind else {
            unreachable!()
        };
        let term_loc = func.block(p).terminator().expect("condbr").loc.clone();

        let pb = func.block_mut(p);
        pb.insts.pop(); // condbr
                        // Hoist arm probes (frequency distortion accepted — paper's tuning).
        pb.insts.extend(t_arm.probes);
        pb.insts.extend(e_arm.probes);
        pb.insts.push(Inst::new(
            InstKind::Select {
                dst: t_arm.dst,
                cond,
                on_true: t_arm.src,
                on_false: e_arm.src,
            },
            term_loc.clone(),
        ));
        pb.insts
            .push(Inst::new(InstKind::Br { target: join }, term_loc));
        cfg::remove_unreachable(func);
        converted += 1;
    }
    converted
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    const SRC: &str = r#"
fn f(a) {
    let r = 0;
    if (a > 0) {
        r = 1;
    } else {
        r = 2;
    }
    return r;
}
"#;

    fn count_selects(f: &Function) -> usize {
        f.iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::Select { .. }))
            .count()
    }

    #[test]
    fn converts_balanced_diamond() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let n = run_function(&mut m.functions[0], &OptConfig::default());
        assert_eq!(n, 1);
        assert_eq!(count_selects(&m.functions[0]), 1);
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn biased_branch_kept_with_profile() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let f = &mut m.functions[0];
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        // entry, then, else, join: bias then:else = 99:1.
        for bid in &ids {
            f.block_mut(*bid).count = Some(100);
        }
        f.block_mut(ids[1]).count = Some(99);
        f.block_mut(ids[2]).count = Some(1);
        let n = run_function(f, &OptConfig::default());
        assert_eq!(n, 0, "biased branch must be kept");
    }

    #[test]
    fn balanced_branch_converted_with_profile() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let f = &mut m.functions[0];
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        for bid in &ids {
            f.block_mut(*bid).count = Some(100);
        }
        f.block_mut(ids[1]).count = Some(55);
        f.block_mut(ids[2]).count = Some(45);
        assert_eq!(run_function(f, &OptConfig::default()), 1);
    }

    #[test]
    fn probes_hoisted_in_low_overhead_mode() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        let probes_before: usize = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::PseudoProbe { .. }))
            .count();
        let n = run_function(&mut m.functions[0], &OptConfig::default());
        assert_eq!(n, 1, "low-overhead tuning must not block if-convert");
        let probes_after: usize = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| matches!(i.kind, InstKind::PseudoProbe { .. }))
            .count();
        assert_eq!(
            probes_before, probes_after,
            "arm probes hoisted, not dropped"
        );
    }

    #[test]
    fn probes_block_in_high_accuracy_mode() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        let config = OptConfig {
            probe: csspgo_ir::probe::ProbeConfig::high_accuracy(),
            ..OptConfig::default()
        };
        let n = run_function(&mut m.functions[0], &config);
        assert_eq!(n, 0);
    }
}
