//! Pseudo-probe insertion (paper §III.A).
//!
//! Inserts one *block probe* at the top of every basic block and one *call
//! probe* immediately before every call instruction, on fresh IR "before any
//! aggressive transformations ... so instrumentation can be done on a stable
//! IR". Also computes and records the function's CFG checksum, used later to
//! detect source drift that changed the CFG.

use csspgo_ir::inst::{Inst, InstKind};
use csspgo_ir::probe::{cfg_checksum, ProbeKind};
use csspgo_ir::{Function, Module};

/// Inserts pseudo-probes into every function of `module`.
pub fn run(module: &mut Module) {
    for func in &mut module.functions {
        insert_into_function(func);
    }
}

/// Inserts pseudo-probes into one function and records its CFG checksum.
pub fn insert_into_function(func: &mut Function) {
    debug_assert!(
        func.probe_checksum.is_none(),
        "probes already inserted into {}",
        func.name
    );
    func.probe_checksum = Some(cfg_checksum(func));
    let owner = func.id;
    let block_ids: Vec<_> = func.iter_blocks().map(|(id, _)| id).collect();
    for bid in block_ids {
        // Block probe first.
        let index = func.alloc_probe_index();
        let probe = Inst::synthetic(InstKind::PseudoProbe {
            owner,
            index,
            kind: ProbeKind::Block,
            inline_stack: Vec::new(),
            factor: 1,
        });
        func.block_mut(bid).insts.insert(0, probe);

        // Call probes: scan and insert before each call. Indices must be
        // allocated in program order for determinism.
        let mut i = 0;
        while i < func.block(bid).insts.len() {
            if matches!(func.block(bid).insts[i].kind, InstKind::Call { .. }) {
                let index = func.alloc_probe_index();
                let loc = func.block(bid).insts[i].loc.clone();
                let probe = Inst::new(
                    InstKind::PseudoProbe {
                        owner,
                        index,
                        kind: ProbeKind::Call,
                        inline_stack: Vec::new(),
                        factor: 1,
                    },
                    loc,
                );
                func.block_mut(bid).insts.insert(i, probe);
                i += 2;
            } else {
                i += 1;
            }
        }
    }
}

/// Finds the call-site probe index guarding the call at `inst_idx` in
/// `block`, if probes are present (the probe immediately preceding the call).
pub fn call_probe_before(
    func: &Function,
    block: csspgo_ir::BlockId,
    inst_idx: usize,
) -> Option<u32> {
    if inst_idx == 0 {
        return None;
    }
    match &func.block(block).insts[inst_idx - 1].kind {
        InstKind::PseudoProbe {
            index,
            kind: ProbeKind::Call,
            ..
        } => Some(*index),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::probe::ProbeKind;

    fn probed(src: &str) -> Module {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        run(&mut m);
        m
    }

    #[test]
    fn every_block_gets_a_block_probe() {
        let m = probed("fn f(x) { if (x > 0) { return 1; } return 2; }");
        let f = &m.functions[0];
        for (_, b) in f.iter_blocks() {
            let first = &b.insts[0];
            assert!(
                matches!(
                    first.kind,
                    InstKind::PseudoProbe {
                        kind: ProbeKind::Block,
                        ..
                    }
                ),
                "block must start with a block probe, got {}",
                first.kind
            );
        }
    }

    #[test]
    fn every_call_gets_a_call_probe() {
        let m = probed("fn g() { return 1; } fn f() { return g() + g(); }");
        let f = &m.functions[1];
        for (bid, b) in f.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if matches!(inst.kind, InstKind::Call { .. }) {
                    assert!(
                        call_probe_before(f, bid, i).is_some(),
                        "call without preceding call probe"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_indices_are_unique_per_function() {
        let m = probed("fn g() { return 1; } fn f(x) { if (x > 0) { return g(); } return g(); }");
        for f in &m.functions {
            let mut seen = std::collections::HashSet::new();
            for (_, b) in f.iter_blocks() {
                for inst in &b.insts {
                    if let InstKind::PseudoProbe { index, .. } = inst.kind {
                        assert!(seen.insert(index), "duplicate probe index {index}");
                    }
                }
            }
        }
    }

    #[test]
    fn checksum_recorded() {
        let m = probed("fn f() { return 0; }");
        assert!(m.functions[0].probe_checksum.is_some());
    }

    #[test]
    fn module_still_verifies() {
        let m = probed("fn g(a) { return a; } fn f(x) { return g(x); }");
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }
}
