//! Loop-invariant code motion.
//!
//! Hoists pure, loop-invariant computations (and loads from globals not
//! written inside the loop) into a preheader. Hoisted instructions keep
//! their source lines, so after hoisting a line's copies run at *different*
//! frequencies — the debug-info correlation then takes the MAX (paper
//! §III.A, "Code Duplication" discussion of moved instructions).
//!
//! When `ProbeConfig::block_code_motion` is set, probed functions are left
//! untouched (the paper's high-accuracy tuning where probes behave like
//! stronger barriers).

use crate::OptConfig;
use csspgo_ir::inst::{Inst, InstKind, Operand};
use csspgo_ir::loops::LoopInfo;
use csspgo_ir::{cfg, BlockId, Function, GlobalId, Module, VReg};
use std::collections::{HashMap, HashSet};

/// Runs LICM on every function.
pub fn run(module: &mut Module, config: &OptConfig) {
    for func in &mut module.functions {
        if config.probe.block_code_motion && func.probe_checksum.is_some() {
            continue;
        }
        run_function(func);
    }
}

/// Hoists invariant code in all loops of `func`; returns the number of
/// hoisted instructions.
pub fn run_function(func: &mut Function) -> usize {
    let mut hoisted_total = 0;
    // Recompute loops after each change batch (preheader insertion mutates
    // the CFG); bound iterations for safety.
    for _ in 0..4 {
        let info = LoopInfo::compute(func);
        if info.loops.is_empty() {
            return hoisted_total;
        }
        let mut hoisted_this_round = 0;

        // Innermost-ish first: loops with fewer blocks first.
        let mut loops = info.loops.clone();
        loops.sort_by_key(|l| l.blocks.len());

        for l in &loops {
            // Facts about the loop body.
            let mut defs_in_loop: HashMap<VReg, usize> = HashMap::new();
            let mut stored_globals: HashSet<GlobalId> = HashSet::new();
            let mut has_call = false;
            for &b in &l.blocks {
                for inst in &func.block(b).insts {
                    if let Some(d) = inst.kind.def() {
                        *defs_in_loop.entry(d).or_insert(0) += 1;
                    }
                    match inst.kind {
                        InstKind::Store { global, .. } => {
                            stored_globals.insert(global);
                        }
                        InstKind::Call { .. } => has_call = true,
                        _ => {}
                    }
                }
            }

            let invariant_op = |op: Operand, defs: &HashMap<VReg, usize>| match op {
                Operand::Imm(_) => true,
                Operand::Reg(r) => !defs.contains_key(&r),
            };

            // Collect hoistable instructions (single static def of their
            // register inside the loop, invariant operands, pure — or an
            // invariant load when the loop has no stores to that global and
            // no calls).
            let mut to_hoist: Vec<(BlockId, usize)> = Vec::new();
            for &b in &l.blocks {
                for (i, inst) in func.block(b).insts.iter().enumerate() {
                    let hoistable = match &inst.kind {
                        InstKind::Bin { dst, lhs, rhs, .. }
                        | InstKind::Cmp { dst, lhs, rhs, .. } => {
                            defs_in_loop.get(dst) == Some(&1)
                                && invariant_op(*lhs, &defs_in_loop)
                                && invariant_op(*rhs, &defs_in_loop)
                        }
                        InstKind::Load { dst, global, index } => {
                            !has_call
                                && !stored_globals.contains(global)
                                && defs_in_loop.get(dst) == Some(&1)
                                && invariant_op(*index, &defs_in_loop)
                        }
                        _ => false,
                    };
                    if hoistable {
                        to_hoist.push((b, i));
                    }
                }
            }
            if to_hoist.is_empty() {
                continue;
            }

            let preheader = ensure_preheader(func, l.header, &l.blocks);
            let Some(ph) = preheader else { continue };

            // Remove (in reverse index order per block) and append to the
            // preheader, preserving original relative order.
            let mut moved: Vec<Inst> = Vec::new();
            let mut by_block: HashMap<BlockId, Vec<usize>> = HashMap::new();
            for (b, i) in &to_hoist {
                by_block.entry(*b).or_default().push(*i);
            }
            // Deterministic block order.
            let mut blocks: Vec<BlockId> = by_block.keys().copied().collect();
            blocks.sort();
            for b in blocks {
                let mut idxs = by_block.remove(&b).expect("collected above");
                idxs.sort_unstable();
                let mut batch = Vec::with_capacity(idxs.len());
                for &i in idxs.iter().rev() {
                    batch.push(func.block_mut(b).insts.remove(i));
                }
                batch.reverse(); // keep original order within the block
                moved.extend(batch);
            }
            hoisted_this_round += moved.len();
            let phb = func.block_mut(ph);
            let term = phb.insts.pop().expect("preheader has terminator");
            phb.insts.extend(moved);
            phb.insts.push(term);
        }

        hoisted_total += hoisted_this_round;
        if hoisted_this_round == 0 {
            break;
        }
    }
    hoisted_total
}

/// Returns the loop preheader, creating one if needed: the unique edge
/// source into `header` from outside the loop. Returns `None` if the header
/// is the function entry (no predecessor to hoist into).
fn ensure_preheader(
    func: &mut Function,
    header: BlockId,
    loop_blocks: &HashSet<BlockId>,
) -> Option<BlockId> {
    if header == func.entry {
        return None;
    }
    let preds = cfg::predecessors(func);
    let outside: Vec<BlockId> = preds[header.index()]
        .iter()
        .copied()
        .filter(|p| !loop_blocks.contains(p))
        .collect();
    if outside.is_empty() {
        return None;
    }
    // An existing preheader: single outside pred whose only successor is the
    // header.
    if outside.len() == 1 {
        let p = outside[0];
        if cfg::successors(func, p) == vec![header] {
            return Some(p);
        }
    }
    // Create one.
    let ph = func.add_block();
    let header_count = func.block(header).count;
    let back_count: u64 = preds[header.index()]
        .iter()
        .filter(|p| loop_blocks.contains(p))
        .map(|p| func.block(*p).count.unwrap_or(0))
        .sum();
    func.block_mut(ph)
        .insts
        .push(Inst::synthetic(InstKind::Br { target: header }));
    func.block_mut(ph).count = header_count.map(|h| h.saturating_sub(back_count));
    for p in outside {
        if let Some(t) = func.block_mut(p).terminator_mut() {
            t.kind.map_successors(|s| if s == header { ph } else { s });
        }
    }
    Some(ph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::verify::verify_module;

    const SRC: &str = r#"
global cfgv[4];
fn f(n, k) {
    let i = 0;
    let s = 0;
    while (i < n) {
        let c = k * 7;
        let limit = cfgv[0];
        s = s + c + limit;
        i = i + 1;
    }
    return s;
}
"#;

    #[test]
    fn hoists_invariant_mul_and_load() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let n = run_function(&mut m.functions[0]);
        assert!(n >= 2, "expected k*7 and cfgv[0] hoisted, got {n}");
        assert_eq!(verify_module(&m), vec![]);
        // The loop body must no longer contain the multiplication.
        let info = LoopInfo::compute(&m.functions[0]);
        let l = &info.loops[0];
        for &b in &l.blocks {
            for i in &m.functions[0].block(b).insts {
                assert!(
                    !matches!(
                        i.kind,
                        InstKind::Bin {
                            op: csspgo_ir::BinOp::Mul,
                            ..
                        }
                    ),
                    "mul must be hoisted out of the loop"
                );
            }
        }
    }

    #[test]
    fn loads_not_hoisted_past_stores() {
        let src = r#"
global t[4];
fn f(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + t[0];
        t[0] = s;
        i = i + 1;
    }
    return s;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        run_function(&mut m.functions[0]);
        assert_eq!(verify_module(&m), vec![]);
        // The load must still be inside the loop.
        let info = LoopInfo::compute(&m.functions[0]);
        let l = &info.loops[0];
        let in_loop_load = l.blocks.iter().any(|&b| {
            m.functions[0]
                .block(b)
                .insts
                .iter()
                .any(|i| matches!(i.kind, InstKind::Load { .. }))
        });
        assert!(in_loop_load, "load from stored global must not move");
    }

    #[test]
    fn semantics_preserved() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let before = format!("{}", &m.functions[0]);
        run_function(&mut m.functions[0]);
        let after = format!("{}", &m.functions[0]);
        assert_ne!(before, after, "licm should change the IR");
        assert_eq!(verify_module(&m), vec![]);
    }

    #[test]
    fn probe_blocking_respected() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        crate::probes::run(&mut m);
        let mut config = OptConfig::default();
        config.probe.block_code_motion = true;
        let before = format!("{}", &m.functions[0]);
        run(&mut m, &config);
        assert_eq!(
            before,
            format!("{}", &m.functions[0]),
            "motion must be blocked"
        );
    }
}
