//! Probe invariants under cloning passes.
//!
//! `unroll` and `tail_dup` replicate probed blocks, and `tailmerge` merges
//! them back; any composition of the three (in any order, with any tuning)
//! must leave every duplicated probe id covered by duplication factors —
//! the copies' weights (`Σ 1/factor`) may never exceed 1, or the profiler
//! would overcount the probe. Discriminator discipline must hold on fresh
//! IR before any of them run.

use csspgo_ir::probe_verify;
use csspgo_ir::Module;
use csspgo_opt::OptConfig;
use proptest::prelude::*;

/// Loopy, branchy, recursive program: `while` loops feed `unroll`, shared
/// `return` tails feed `tail_dup`/`tailmerge`.
const SRC: &str = r#"
fn collatz(n) {
    let steps = 0;
    while (n > 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}
fn sum(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + collatz(i);
        i = i + 1;
    }
    return s;
}
fn depth(n) {
    if (n <= 0) { return 0; }
    return depth(n - 1) + 1;
}
fn main(n) {
    return sum(n) + depth(n);
}
"#;

fn probed_module() -> Module {
    let mut m = csspgo_lang::compile(SRC, "probeinv").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    m
}

/// Asserts the full probe-invariant battery: no issues at all, which in
/// particular means no duplicate ids without factors and no under-declared
/// factors.
fn assert_probes_sound(m: &Module, what: &str) {
    let issues = probe_verify::check_module(m);
    assert!(
        issues.is_empty(),
        "{what}: {}",
        issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fresh_ir_discriminators_are_sound() {
    let m = probed_module();
    for f in &m.functions {
        let issues = probe_verify::check_discriminators(f);
        assert!(issues.is_empty(), "{}: {issues:?}", f.name);
    }
}

#[test]
fn each_cloning_pass_alone_preserves_probe_invariants() {
    let base = probed_module();
    let config = OptConfig::default();

    let mut m = base.clone();
    csspgo_opt::tail_dup::run(&mut m, &config);
    assert_probes_sound(&m, "tail_dup");

    let mut m = base.clone();
    csspgo_opt::unroll::run(&mut m, &config);
    assert_probes_sound(&m, "unroll");

    let mut m = base.clone();
    csspgo_opt::tailmerge::run(&mut m);
    assert_probes_sound(&m, "tailmerge");
}

#[test]
fn repeated_unrolling_compounds_factors_correctly() {
    // Unrolling twice squares the duplication: every surviving copy's
    // factor must cover the full replication, not just the last round.
    let mut m = probed_module();
    let config = OptConfig::default();
    csspgo_opt::unroll::run(&mut m, &config);
    csspgo_opt::simplify::run(&mut m);
    csspgo_opt::unroll::run(&mut m, &config);
    csspgo_opt::simplify::run(&mut m);
    assert_probes_sound(&m, "unroll twice");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ANY composition of the cloning/merging passes, in ANY order, with
    /// ANY tuning, leaves the probes sound: ids stay unique per inline
    /// context unless covered by duplication factors whose weights sum
    /// to at most 1.
    #[test]
    fn cloning_pass_compositions_never_break_probe_invariants(
        // Sequence of passes: 0 = tail_dup, 1 = unroll, 2 = tailmerge,
        // 3 = simplify (cleanup between clones).
        passes in proptest::collection::vec(0u8..4, 1..8),
        unroll_factor in 2u32..5,
        unroll_max_body in 8usize..64,
        tail_dup_max_insts in 4usize..32,
    ) {
        let config = OptConfig {
            unroll_factor,
            unroll_max_body,
            tail_dup_max_insts,
            ..OptConfig::default()
        };
        let mut m = probed_module();
        for (step, p) in passes.iter().enumerate() {
            let name = match p {
                0 => { csspgo_opt::tail_dup::run(&mut m, &config); "tail_dup" }
                1 => { csspgo_opt::unroll::run(&mut m, &config); "unroll" }
                2 => { csspgo_opt::tailmerge::run(&mut m); "tailmerge" }
                _ => { csspgo_opt::simplify::run(&mut m); "simplify" }
            };
            // Invariants must hold after EVERY step, not just at the end —
            // this is exactly what the pipeline's inter-pass verifier relies
            // on.
            let issues = probe_verify::check_module(&m);
            prop_assert!(
                issues.is_empty(),
                "step {step} ({name}): {issues:?}"
            );
            prop_assert!(csspgo_ir::verify::verify_module(&m).is_empty());
        }
    }
}
