//! Cross-pass integration tests for the optimizer: count maintenance,
//! probe survival, hotness cutoffs and stripping across the whole pipeline.

use csspgo_ir::inst::InstKind;
use csspgo_ir::{BlockId, Module};
use csspgo_opt::inliner::hot_count_cutoff;
use csspgo_opt::OptConfig;

fn compile(src: &str) -> Module {
    csspgo_lang::compile(src, "t").unwrap()
}

#[test]
fn hot_count_cutoff_covers_99_percent_of_mass() {
    let mut m = compile("fn f(a) { if (a > 0) { return 1; } return 2; }");
    // Counts: one dominant block and a long cold tail.
    let f = &mut m.functions[0];
    let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
    f.block_mut(ids[0]).count = Some(100_000);
    for bid in &ids[1..] {
        f.block_mut(*bid).count = Some(1);
    }
    let cutoff = hot_count_cutoff(&m);
    // 99% of the mass is in the 100k block, but reaching 99% requires
    // descending into the tail of 1s — the cutoff lands at 1 (everything
    // executed is "hot" when one block dominates).
    assert!(cutoff <= 100_000, "cutoff {cutoff}");
    assert!(cutoff >= 1);

    // Balanced counts: cutoff close to the common value.
    let f = &mut m.functions[0];
    for bid in &ids {
        f.block_mut(*bid).count = Some(500);
    }
    assert_eq!(hot_count_cutoff(&m), 500);
}

#[test]
fn no_profile_means_nothing_is_hot() {
    let m = compile("fn f(a) { return a; }");
    assert_eq!(hot_count_cutoff(&m), u64::MAX);
}

#[test]
fn probe_count_is_invariant_across_the_pipeline_sum() {
    // The number of *distinct* probe identities (owner, index, stack) can
    // only grow by duplication; none may be dropped by the low-overhead
    // pipeline, because each anchors a block or call site.
    let src = r#"
fn h(x) {
    if (x % 2 == 0) { return x + 1; }
    return x - 1;
}
fn f(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + h(i); i = i + 1; }
    return s;
}
"#;
    let mut m = compile(src);
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    let before: std::collections::HashSet<(u32, u32)> = m
        .functions
        .iter()
        .flat_map(|f| f.iter_blocks().flat_map(|(_, b)| &b.insts))
        .filter_map(|i| match &i.kind {
            InstKind::PseudoProbe { owner, index, .. } => Some((owner.0, *index)),
            _ => None,
        })
        .collect();
    csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
    let after: std::collections::HashSet<(u32, u32)> = m
        .functions
        .iter()
        .flat_map(|f| f.iter_blocks().flat_map(|(_, b)| &b.insts))
        .filter_map(|i| match &i.kind {
            InstKind::PseudoProbe { owner, index, .. } => Some((owner.0, *index)),
            _ => None,
        })
        .collect();
    for id in &before {
        assert!(
            after.contains(id),
            "probe {id:?} vanished from the optimized module"
        );
    }
}

#[test]
fn pipeline_respects_disabled_passes() {
    let src = r#"
fn f(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + i; i = i + 1; }
    return s;
}
"#;
    let mut m = compile(src);
    let cfg = OptConfig {
        enable_unroll: false,
        enable_tail_dup: false,
        enable_if_convert: false,
        enable_layout: false,
        ..OptConfig::default()
    };
    csspgo_opt::run_pipeline(&mut m, &cfg);
    // No layout was computed.
    assert!(m.functions[0].layout.is_none());
    assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
}

#[test]
fn annotated_counts_survive_the_pipeline_on_hot_path() {
    let src = r#"
fn f(a) {
    let r = 0;
    if (a > 0) { r = a * 2; } else { r = 1 - a; }
    return r;
}
"#;
    let mut m = compile(src);
    let ids: Vec<BlockId> = m.functions[0].iter_blocks().map(|(b, _)| b).collect();
    for (i, bid) in ids.iter().enumerate() {
        m.functions[0].block_mut(*bid).count = Some(match i {
            0 => 1000,
            1 => 900,
            2 => 100,
            _ => 1000,
        });
    }
    m.functions[0].entry_count = Some(1000);
    csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
    // Some block must still carry a ~1000 count (the hot path).
    let max = m.functions[0]
        .iter_blocks()
        .filter_map(|(_, b)| b.count)
        .max()
        .unwrap_or(0);
    assert!(max >= 900, "hot count lost in maintenance: {max}");
}

#[test]
fn strip_then_lower_produces_a_runnable_binary() {
    let src = r#"
fn used(x) { return x * 2; }
fn unused_a(x) { return unused_b(x) + 1; }
fn unused_b(x) { return x - 1; }
fn main(n) { return used(n) + 1; }
"#;
    let mut m = compile(src);
    let main = m.find_function("main").unwrap();
    let n = csspgo_opt::strip::run(&mut m, &[main]);
    assert_eq!(n, 2, "both unused functions stripped");
    let b = csspgo_codegen::lower_module(&m, &csspgo_codegen::CodegenConfig::default());
    let mut machine = csspgo_sim::Machine::new(&b, csspgo_sim::SimConfig::default());
    assert_eq!(machine.call("main", &[20]).unwrap(), 41);
}

#[test]
fn full_pipeline_is_idempotent_on_its_own_output() {
    let src = r#"
fn f(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        if (i % 3 == 0) { s = s + 2; } else { s = s + 1; }
        i = i + 1;
    }
    return s;
}
"#;
    let mut m = compile(src);
    csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
    let once = format!("{}", m.functions[0]);
    csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
    let twice = format!("{}", m.functions[0]);
    assert_eq!(once, twice, "second pipeline run must be a fixpoint");
}
