//! Property tests for the fleet's cold-context compaction granule:
//! [`ContextProfile::evict_subtree`] must conserve total sample weight for
//! *any* trie and *any* eviction sequence — evicted subtrees stop costing
//! resident context nodes, but every count they carried survives in the
//! functions' base profiles.

use csspgo_core::context::{ContextProfile, FrameKey};
use proptest::prelude::*;

/// One recorded probe hit: a calling context (outer→inner), the owning
/// function, the probe, and a count. Small GUID/probe domains so paths
/// collide and the trie gets genuinely shared structure.
type Hit = (Vec<(u64, u32)>, u64, u32, u64);

fn hit_strategy() -> BoxedStrategy<Hit> {
    let frame = (1u64..6, 0u32..4);
    (
        proptest::collection::vec(frame, 0..4),
        1u64..6,
        0u32..4,
        1u64..100,
    )
        .boxed()
}

fn build_profile(hits: &[Hit]) -> ContextProfile {
    let mut profile = ContextProfile::new();
    for (path, owner, probe, count) in hits {
        let path: Vec<FrameKey> = path
            .iter()
            .map(|&(guid, probe)| FrameKey { guid, probe })
            .collect();
        profile.add_probe_hit(&path, *owner, *probe, *count);
        profile.add_entry(&path, *owner, 1);
    }
    profile
}

/// Context nodes beyond the per-function base profiles — the quantity the
/// fleet's resident-context cap bounds.
fn resident(profile: &ContextProfile) -> usize {
    profile.node_count() - profile.roots.len()
}

/// Every depth-1 edge currently evictable.
fn edges(profile: &ContextProfile) -> Vec<(u64, u32, u64)> {
    profile
        .roots
        .iter()
        .flat_map(|(&root, node)| {
            node.children
                .keys()
                .map(move |&(probe, callee)| (root, probe, callee))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any eviction sequence conserves the trie total, and each eviction
    /// shrinks residency by exactly the detached node count (folding may
    /// mint base roots, but those are never resident contexts).
    #[test]
    fn eviction_conserves_weight_and_shrinks_residency(
        hits in proptest::collection::vec(hit_strategy(), 1..80),
        picks in proptest::collection::vec(any::<u64>(), 0..20),
    ) {
        let mut profile = build_profile(&hits);
        let total = profile.total();

        for pick in picks {
            let evictable = edges(&profile);
            if evictable.is_empty() {
                break;
            }
            let (root, probe, callee) = evictable[(pick % evictable.len() as u64) as usize];
            let before = resident(&profile);
            let (nodes, weight) = profile
                .evict_subtree(root, probe, callee)
                .expect("edge enumerated from the live trie");
            prop_assert!(nodes >= 1);
            prop_assert_eq!(resident(&profile), before - nodes);
            prop_assert_eq!(profile.total(), total, "weight {} not conserved", weight);
            // The edge is gone: a second eviction is a no-op.
            prop_assert_eq!(profile.evict_subtree(root, probe, callee), None);
        }
    }

    /// Draining every context leaves exactly the base profiles — same
    /// total, zero resident contexts, and the flattened result matches
    /// what the trie itself reports as per-function weight.
    #[test]
    fn full_drain_collapses_to_base_profiles(
        hits in proptest::collection::vec(hit_strategy(), 1..80),
    ) {
        let mut profile = build_profile(&hits);
        let total = profile.total();

        loop {
            let evictable = edges(&profile);
            let Some(&(root, probe, callee)) = evictable.first() else {
                break;
            };
            profile.evict_subtree(root, probe, callee).unwrap();
        }

        prop_assert_eq!(resident(&profile), 0);
        prop_assert_eq!(profile.total(), total);
        prop_assert!(profile.roots.values().all(|n| n.children.is_empty()));
    }
}
