//! Property tests for the core profile machinery: inference conservation,
//! overlap metric axioms, context-trie accounting, and text-format
//! round-trips.

use csspgo_core::context::{ContextProfile, FrameKey};
use csspgo_core::inference::{infer_counts, InferenceMode};
use csspgo_core::overlap::function_overlap;
use csspgo_core::profile::{FlatFuncProfile, FlatProfile, LocKey};
use csspgo_core::textprof;
use csspgo_ir::builder::ModuleBuilder;
use csspgo_ir::inst::{CmpPred, Operand};
use csspgo_ir::probe::function_guid;
use csspgo_ir::{cfg, BlockId, Module, VReg};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random acyclic-ish diamond CFG for inference tests (ret-terminated).
fn build_cfg(n: usize, edges: &[(u8, u8, u8)]) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let f = mb.declare_function("f", 1);
    {
        let mut fb = mb.function_builder(f);
        let entry = fb.entry_block();
        let mut blocks = vec![entry];
        for _ in 1..n {
            blocks.push(fb.add_block());
        }
        for (i, &(kind, a, b)) in edges.iter().enumerate().take(n) {
            fb.switch_to(blocks[i]);
            let t1 = blocks[a as usize % n];
            let t2 = blocks[b as usize % n];
            match kind % 3 {
                0 => fb.ret(Some(Operand::Reg(VReg(0)))),
                1 => fb.br(t1),
                _ => {
                    let c = fb.cmp(CmpPred::Gt, Operand::Reg(VReg(0)), Operand::Imm(i as i64));
                    fb.cond_br(Operand::Reg(c), t1, t2);
                }
            }
        }
    }
    mb.finish()
}

fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>, Vec<u16>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), n..=n),
            prop::collection::vec(any::<u16>(), n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn inference_conserves_flow_at_forward_joins((n, edges, raws) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let mut raw = HashMap::new();
        for (i, &r) in raws.iter().enumerate() {
            raw.insert(BlockId::from_index(i), r as u64);
        }
        let entry_count = 1000u64;
        let rep = infer_counts(f, &raw, entry_count, InferenceMode::Mcf).counts;
        // The entry receives at least the entry flow.
        prop_assert!(rep[&f.entry] >= entry_count, "entry {} < {entry_count}", rep[&f.entry]);
        // No repaired count is absurdly larger than total possible flow
        // (entry * trip-cap); the cap in the inference is 4096.
        for (&b, &c) in &rep {
            prop_assert!(c <= entry_count.saturating_mul(1 << 20), "{b} exploded: {c}");
        }
        // Deterministic.
        let rep2 = infer_counts(f, &raw, entry_count, InferenceMode::Mcf).counts;
        prop_assert_eq!(rep, rep2);
    }

    #[test]
    fn inference_single_successor_chains_conserve((n, edges, raws) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let mut raw = HashMap::new();
        for (i, &r) in raws.iter().enumerate() {
            raw.insert(BlockId::from_index(i), r as u64);
        }
        let rep = infer_counts(f, &raw, 500, InferenceMode::Mcf).counts;
        let preds = cfg::predecessors(f);
        let dom = csspgo_ir::dom::Dominators::compute(f);
        for (b, _) in f.iter_blocks() {
            if !rep.contains_key(&b) {
                continue; // unreachable blocks get no repaired count
            }
            let succs = cfg::successors(f, b);
            // A single-successor *forward* edge to a non-entry block with a
            // single predecessor must carry the full flow (within rounding).
            if succs.len() == 1 {
                let s = succs[0];
                if s != f.entry
                    && rep.contains_key(&s)
                    && preds[s.index()].len() == 1
                    && !dom.dominates(s, b)
                {
                    let diff = rep[&b].abs_diff(rep[&s]);
                    prop_assert!(
                        diff <= 1 + rep[&b] / 100,
                        "chain {b}({}) -> {s}({}) leaks flow",
                        rep[&b],
                        rep[&s]
                    );
                }
            }
        }
    }

    #[test]
    fn overlap_axioms(counts in prop::collection::vec((0u32..8, 0u64..1000), 1..10)) {
        let a: HashMap<BlockId, u64> = counts.iter().map(|&(b, c)| (BlockId(b), c)).collect();
        // Self-overlap is 1 (or trivially for empty/zero profiles).
        let d = function_overlap(&a, &a);
        let total: u64 = a.values().sum();
        if total > 0 {
            prop_assert!((d - 1.0).abs() < 1e-9);
        }
        // Symmetry.
        let b: HashMap<BlockId, u64> = counts
            .iter()
            .map(|&(k, c)| (BlockId(k ^ 1), c / 2 + 1))
            .collect();
        let ab = function_overlap(&a, &b);
        let ba = function_overlap(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        // Bounded.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
    }

    #[test]
    fn context_trie_totals_are_sums(paths in prop::collection::vec(
        (prop::collection::vec((1u64..6, 1u32..9), 0..4), 1u64..6, 1u32..9, 1u64..100),
        1..20
    )) {
        let mut cp = ContextProfile::new();
        let mut expected_total = 0u64;
        for (frames, owner, probe, count) in &paths {
            let path: Vec<FrameKey> = frames
                .iter()
                .map(|&(g, p)| FrameKey { guid: g, probe: p })
                .collect();
            cp.add_probe_hit(&path, *owner, *probe, *count);
            expected_total += count;
        }
        prop_assert_eq!(cp.total(), expected_total);
        // Trimming with threshold 0 never drops counts.
        let before = cp.total();
        cp.trim_cold(0);
        prop_assert_eq!(cp.total(), before);
        // Trimming with a huge threshold merges everything but keeps totals.
        cp.trim_cold(u64::MAX);
        prop_assert_eq!(cp.total(), before);
    }

    #[test]
    fn flat_text_roundtrip(entries in prop::collection::vec(
        (0u32..50, 0u32..4, 1u64..10_000), 1..12
    ), entry in 0u64..1000) {
        let mut p = FlatProfile::default();
        let guid = function_guid("prop_fn");
        p.names.insert(guid, "prop_fn".into());
        let fp = p.funcs.entry(guid).or_default();
        fp.entry = entry;
        for (off, disc, count) in &entries {
            fp.record_max(LocKey { line_offset: *off, discriminator: *disc }, *count);
        }
        fp.recompute_totals();
        let text = textprof::write_flat(&p);
        let back = textprof::parse_flat(&text).unwrap();
        prop_assert_eq!(&p.funcs, &back.funcs, "text:\n{}", text);
    }

    #[test]
    fn nested_flat_text_roundtrip(
        outer in prop::collection::vec((0u32..30, 1u64..1000), 1..6),
        inner in prop::collection::vec((0u32..30, 1u64..1000), 1..6),
        site_off in 0u32..30,
    ) {
        let mut p = FlatProfile::default();
        let main = function_guid("m");
        let callee = function_guid("c");
        p.names.insert(main, "m".into());
        p.names.insert(callee, "c".into());
        let fp = p.funcs.entry(main).or_default();
        for (off, count) in &outer {
            fp.record_max(LocKey { line_offset: *off, discriminator: 0 }, *count);
        }
        let sub: &mut FlatFuncProfile =
            fp.callsite_mut(LocKey { line_offset: site_off, discriminator: 0 }, callee);
        for (off, count) in &inner {
            sub.record_max(LocKey { line_offset: *off, discriminator: 0 }, *count);
        }
        fp.recompute_totals();
        let text = textprof::write_flat(&p);
        let back = textprof::parse_flat(&text).unwrap();
        prop_assert_eq!(&p.funcs, &back.funcs, "text:\n{}", text);
    }
}
