//! Property tests for min-cost-flow profile inference: Kirchhoff
//! conservation on arbitrary corrupted inputs, entry-flow conservation,
//! bit-determinism, and a differential pin of `mcf` against the `heuristic`
//! reference on already-consistent profiles.

use csspgo_core::inference::{infer_counts, InferenceMode};
use csspgo_ir::builder::ModuleBuilder;
use csspgo_ir::inst::{CmpPred, Operand};
use csspgo_ir::{cfg, BlockId, Module, VReg};
use proptest::prelude::*;
use std::collections::HashMap;

/// Random CFG of any shape (cycles, unreachable blocks, multiple or zero
/// exits) — the same generator family as `proptest_core`.
fn build_cfg(n: usize, edges: &[(u8, u8, u8)]) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let f = mb.declare_function("f", 1);
    {
        let mut fb = mb.function_builder(f);
        let entry = fb.entry_block();
        let mut blocks = vec![entry];
        for _ in 1..n {
            blocks.push(fb.add_block());
        }
        for (i, &(kind, a, b)) in edges.iter().enumerate().take(n) {
            fb.switch_to(blocks[i]);
            let t1 = blocks[a as usize % n];
            let t2 = blocks[b as usize % n];
            match kind % 3 {
                0 => fb.ret(Some(Operand::Reg(VReg(0)))),
                1 => fb.br(t1),
                _ => {
                    let c = fb.cmp(CmpPred::Gt, Operand::Reg(VReg(0)), Operand::Imm(i as i64));
                    fb.cond_br(Operand::Reg(c), t1, t2);
                }
            }
        }
    }
    mb.finish()
}

fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>, Vec<u16>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), n..=n),
            prop::collection::vec(any::<u16>(), n..=n),
        )
    })
}

/// Tree-shaped CFG (every block has exactly one predecessor) plus exactly
/// flow-consistent counts derived by splitting the entry flow at each
/// conditional. Trees keep the heuristic's branch-weight signal clean, so
/// the differential bound can be tight.
fn build_consistent_tree(shapes: &[(u8, u8)], entry_flow: u64) -> (Module, HashMap<BlockId, u64>) {
    let budget = shapes.len();
    let mut mb = ModuleBuilder::new("prop");
    let f = mb.declare_function("f", 1);
    let mut flows: Vec<(BlockId, u64)> = Vec::new();
    {
        let mut fb = mb.function_builder(f);
        let entry = fb.entry_block();
        let mut queue = std::collections::VecDeque::from([(entry, entry_flow)]);
        let mut created = 1usize;
        let mut shape_iter = shapes.iter();
        while let Some((b, flow)) = queue.pop_front() {
            flows.push((b, flow));
            fb.switch_to(b);
            let &(kind, frac) = shape_iter.next().unwrap_or(&(0, 0));
            match kind % 3 {
                _ if created >= budget => fb.ret(Some(Operand::Reg(VReg(0)))),
                0 => fb.ret(Some(Operand::Reg(VReg(0)))),
                1 => {
                    let t = fb.add_block();
                    created += 1;
                    fb.br(t);
                    queue.push_back((t, flow));
                }
                _ => {
                    let t1 = fb.add_block();
                    let t2 = fb.add_block();
                    created += 2;
                    let c = fb.cmp(CmpPred::Gt, Operand::Reg(VReg(0)), Operand::Imm(3));
                    fb.cond_br(Operand::Reg(c), t1, t2);
                    let k = flow * u64::from(frac % 101) / 100;
                    queue.push_back((t1, k));
                    queue.push_back((t2, flow - k));
                }
            }
        }
    }
    (mb.finish(), flows.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// On arbitrary CFGs with arbitrary (corrupted) raw counts, whenever
    /// the MCF solver runs it must produce counts and edges that satisfy
    /// Kirchhoff at every reachable block and conserve the entry flow —
    /// and it must be bit-deterministic.
    #[test]
    fn mcf_satisfies_kirchhoff_on_corrupted_inputs((n, edges, raws) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let mut raw = HashMap::new();
        for (i, &r) in raws.iter().enumerate() {
            raw.insert(BlockId::from_index(i), r as u64);
        }
        let entry_count = 1000u64;
        let res = infer_counts(f, &raw, entry_count, InferenceMode::Mcf);

        let order = cfg::reverse_post_order(f);
        let has_exit = order.iter().any(|&b| cfg::successors(f, b).is_empty());
        prop_assert_eq!(
            res.edges.is_some(),
            has_exit,
            "mcf solves iff a reachable exit exists (else heuristic fallback)"
        );

        if let Some(edge_counts) = &res.edges {
            let out_sum = |b: BlockId| -> u64 {
                edge_counts.iter().filter(|e| e.0 == b).map(|e| e.2).sum()
            };
            let in_sum = |b: BlockId| -> u64 {
                edge_counts.iter().filter(|e| e.1 == b).map(|e| e.2).sum()
            };
            for &b in &order {
                let c = res.counts[&b];
                if b == f.entry {
                    prop_assert_eq!(
                        c, entry_count + in_sum(b),
                        "entry = head count + loop back-in flow"
                    );
                } else {
                    prop_assert_eq!(c, in_sum(b), "in-flow at {b:?}");
                }
                if !cfg::successors(f, b).is_empty() {
                    prop_assert_eq!(c, out_sum(b), "out-flow at {b:?}");
                }
            }
        }

        // Bit-deterministic, counts and edges both.
        let res2 = infer_counts(f, &raw, entry_count, InferenceMode::Mcf);
        prop_assert_eq!(res.counts, res2.counts);
        prop_assert_eq!(res.edges, res2.edges);
    }

    /// On already-consistent profiles MCF is a zero-cost no-op: it must
    /// reproduce the input exactly, and the heuristic must stay within a
    /// small relative error of it (the differential pin that keeps the
    /// fallback honest).
    #[test]
    fn mcf_exact_and_heuristic_close_on_consistent_inputs(
        shapes in prop::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        entry_flow in 1u64..50_000,
    ) {
        let (m, consistent) = build_consistent_tree(&shapes, entry_flow);
        let f = &m.functions[0];

        let mcf = infer_counts(f, &consistent, entry_flow, InferenceMode::Mcf);
        prop_assert!(mcf.edges.is_some(), "trees always have exits");
        prop_assert_eq!(mcf.stats.counts_adjusted, 0, "consistent input untouched");
        prop_assert_eq!(mcf.stats.residual_cost, 0);
        for (b, &c) in &consistent {
            prop_assert_eq!(mcf.counts[b], c, "exact at {b:?}");
        }

        let heur = infer_counts(f, &consistent, entry_flow, InferenceMode::Heuristic);
        for (b, &c) in &consistent {
            let h = heur.counts[b];
            prop_assert!(
                h.abs_diff(c) <= c / 20 + 2,
                "heuristic drifted at {b:?}: {h} vs mcf {c}"
            );
        }
    }
}
