//! The streaming aggregation epoch invariant, end to end: folding N epochs
//! incrementally must produce a profile *bit-identical* to one-shot batch
//! ingestion of the concatenated samples — for real simulated traffic
//! (golden test), for arbitrary epoch boundaries over arbitrary sample
//! streams (property test), and across a snapshot→restore→resume cut.

use csspgo_codegen::{lower_module, Binary, CodegenConfig};
use csspgo_core::context::ContextProfile;
use csspgo_core::ranges::RangeCounts;
use csspgo_core::stream::{SnapshotFormat, StreamAggregator, StreamConfig};
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::unwind::Unwinder;
use csspgo_sim::{Machine, Sample, SimConfig};
use proptest::prelude::*;

const SRC: &str = r#"
fn leaf(x) {
    if (x % 5 == 0) { return x * 3; }
    return x - 1;
}
fn mid(x) {
    return leaf(x) + leaf(x + 1);
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + mid(i);
        i = i + 1;
    }
    return s;
}
"#;

fn probed_binary() -> Binary {
    let mut m = csspgo_lang::compile(SRC, "streamprop").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    lower_module(&m, &CodegenConfig::default())
}

/// The batch reference: full-stream RangeCounts + one sequential unwind.
fn batch_reference(
    binary: &Binary,
    graph: &TailCallGraph,
    samples: &[Sample],
) -> (RangeCounts, ContextProfile) {
    let mut rc = RangeCounts::default();
    rc.add_samples(binary, samples);
    let mut profile = ContextProfile::new();
    let mut uw = Unwinder::new(binary, Some(graph));
    uw.unwind_into(samples, &mut profile);
    (rc, profile)
}

fn real_traffic(binary: &Binary) -> Vec<Sample> {
    let mut machine = Machine::new(
        binary,
        SimConfig {
            sample_period: 19,
            ..SimConfig::default()
        },
    );
    for n in [2000i64, 1700, 2300] {
        machine.call("main", &[n]).unwrap();
    }
    machine.take_samples()
}

#[test]
fn golden_incremental_epochs_equal_batch_ingestion() {
    let binary = probed_binary();
    let samples = real_traffic(&binary);
    assert!(samples.len() > 200, "need a substantial stream");

    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);
    let graph = TailCallGraph::build(&binary, &rc);
    let (rc_ref, profile_ref) = batch_reference(&binary, &graph, &samples);

    for (epochs, shards) in [(1usize, 0usize), (3, 1), (5, 4), (11, 3)] {
        let mut agg = StreamAggregator::with_tail_graph(
            &binary,
            StreamConfig::default(),
            shards,
            graph.clone(),
        );
        for batch in samples.chunks(samples.len().div_ceil(epochs)) {
            agg.push_batch(batch.to_vec()).unwrap();
            agg.seal_epoch();
        }
        // Bit-identity, checked on the serialized bytes, not just map equality.
        assert_eq!(
            serde_json::to_string(agg.context_profile()).unwrap(),
            serde_json::to_string(&profile_ref).unwrap(),
            "{epochs} epochs x {shards} shards diverged from batch"
        );
        assert_eq!(agg.range_counts(), &rc_ref);
    }
}

/// A strategy for raw addresses: mostly instruction starts, sometimes
/// arbitrary garbage the ingestion must tolerate (same shape as the
/// sharding property tests).
fn addr_strategy(n_insts: usize) -> BoxedStrategy<u64> {
    let n = n_insts as u64;
    prop_oneof![
        8 => (0..n).prop_map(|i| i),
        1 => any::<u64>(),
    ]
    .boxed()
}

fn resolve(binary: &Binary, raw: u64) -> u64 {
    if (raw as usize) < binary.len() {
        binary.addr_of(raw as usize)
    } else {
        raw
    }
}

type RawSample = (u64, Vec<(u64, u64)>, Vec<u64>);

fn sample_stream_strategy(n_insts: usize) -> BoxedStrategy<Vec<RawSample>> {
    let addr = || addr_strategy(n_insts);
    let lbr = proptest::collection::vec((addr(), addr()), 0..8);
    let stack = proptest::collection::vec(addr(), 0..6);
    proptest::collection::vec((addr(), lbr, stack), 0..120).boxed()
}

fn to_samples(binary: &Binary, raw: &[RawSample]) -> Vec<Sample> {
    raw.iter()
        .enumerate()
        .map(|(i, (pc, lbr, stack))| Sample {
            cycle: i as u64 * 17,
            pc: resolve(binary, *pc),
            lbr: lbr
                .iter()
                .map(|&(f, t)| (resolve(binary, f), resolve(binary, t)))
                .collect(),
            stack: stack.iter().map(|&a| resolve(binary, a)).collect(),
        })
        .collect()
}

/// Splits `samples` at fractional positions (in permille) drawn by
/// proptest, producing arbitrary (possibly empty) epoch batches that
/// concatenate to the stream.
fn split_at_fractions(samples: &[Sample], permille: &[usize]) -> Vec<Vec<Sample>> {
    let mut cuts: Vec<usize> = permille.iter().map(|f| f * samples.len() / 1000).collect();
    cuts.sort_unstable();
    let mut out = Vec::new();
    let mut prev = 0;
    for c in cuts {
        out.push(samples[prev..c].to_vec());
        prev = c;
    }
    out.push(samples[prev..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY sample stream (including garbage addresses and broken
    /// stacks), ANY epoch partition of it, and ANY shard count, the
    /// incrementally folded profile is bit-identical to the batch one.
    #[test]
    fn random_epoch_boundaries_preserve_bit_identity(
        raw in sample_stream_strategy(64),
        fractions in proptest::collection::vec(0usize..1000, 0..6),
        shards in 0usize..5,
    ) {
        let binary = probed_binary();
        let samples = to_samples(&binary, &raw);
        let mut rc = RangeCounts::default();
        rc.add_samples(&binary, &samples);
        let graph = TailCallGraph::build(&binary, &rc);
        let (rc_ref, profile_ref) = batch_reference(&binary, &graph, &samples);

        let mut agg = StreamAggregator::with_tail_graph(
            &binary,
            StreamConfig::default(),
            shards,
            graph.clone(),
        );
        let batches = split_at_fractions(&samples, &fractions);
        let epochs = batches.len();
        for batch in batches {
            agg.push_batch(batch).unwrap();
            agg.seal_epoch();
        }
        prop_assert_eq!(agg.epochs_sealed(), epochs as u64);
        prop_assert_eq!(agg.total_samples(), samples.len() as u64);
        prop_assert_eq!(agg.range_counts(), &rc_ref);
        let incr = serde_json::to_string(agg.context_profile()).unwrap();
        let batch = serde_json::to_string(&profile_ref).unwrap();
        prop_assert_eq!(incr, batch);
    }

    /// Snapshotting at ANY epoch boundary, restoring, and resuming the
    /// remaining epochs lands on the same batch-identical profile.
    #[test]
    fn snapshot_restore_at_random_cut_preserves_bit_identity(
        raw in sample_stream_strategy(64),
        cut_permille in 0usize..1000,
        shards in 0usize..4,
    ) {
        let binary = probed_binary();
        let samples = to_samples(&binary, &raw);
        let mut rc = RangeCounts::default();
        rc.add_samples(&binary, &samples);
        let graph = TailCallGraph::build(&binary, &rc);
        let (rc_ref, profile_ref) = batch_reference(&binary, &graph, &samples);

        let cut = cut_permille * samples.len() / 1000;
        let mut agg = StreamAggregator::with_tail_graph(
            &binary,
            StreamConfig::default(),
            shards,
            graph.clone(),
        );
        agg.push_batch(samples[..cut].to_vec()).unwrap();
        agg.seal_epoch();

        let snap = agg.snapshot_as(SnapshotFormat::Text);
        let mut resumed =
            StreamAggregator::restore_from(&binary, StreamConfig::default(), shards, &snap)
                .unwrap();
        prop_assert_eq!(resumed.total_samples(), cut as u64);
        resumed.push_batch(samples[cut..].to_vec()).unwrap();
        resumed.seal_epoch();

        prop_assert_eq!(resumed.range_counts(), &rc_ref);
        let resumed_json = serde_json::to_string(resumed.context_profile()).unwrap();
        let batch_json = serde_json::to_string(&profile_ref).unwrap();
        prop_assert_eq!(resumed_json, batch_json);
    }
}

/// Regression: a snapshot truncated *exactly* at the `!context` marker (no
/// trailing newline) used to make `restore` index one byte past the end of
/// the text and panic. A fresh aggregator's context section is legitimately
/// empty, so such a snapshot must restore cleanly instead.
#[test]
fn restore_survives_snapshot_truncated_at_context_marker() {
    let binary = probed_binary();
    let agg = StreamAggregator::new(&binary, StreamConfig::default(), 1);
    let snap = String::from_utf8(agg.snapshot_as(SnapshotFormat::Text)).unwrap();

    let cut = snap.find("!context").unwrap() + "!context".len();
    let truncated = &snap.as_bytes()[..cut];
    let restored = StreamAggregator::restore_from(&binary, StreamConfig::default(), 1, truncated)
        .expect("truncation at the marker leaves a valid, empty context section");
    assert_eq!(restored.total_samples(), 0);
    assert_eq!(restored.context_profile().roots.len(), 0);

    // Truncating *before* the marker loses the section entirely and must
    // stay a structured error, not a panic.
    let cut = snap.find("!context").unwrap();
    let err = match StreamAggregator::restore_from(
        &binary,
        StreamConfig::default(),
        1,
        &snap.as_bytes()[..cut],
    ) {
        Ok(_) => panic!("missing !context section must be an error"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("context"),
        "error should name the missing section: {err}"
    );
}
