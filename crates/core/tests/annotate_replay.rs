//! Inline-replay tests for the sample loader: AutoFDO replays the profiling
//! build's nested inline instances; probe-only CSSPGO replays nested probe
//! profiles; full CSSPGO replays exactly the pre-inliner's plan.

use csspgo_core::annotate::{autofdo_annotate, csspgo_annotate, AnnotateConfig};
use csspgo_core::profile::{FlatProfile, LocKey, ProbeProfile};
use csspgo_ir::inst::InstKind;
use csspgo_ir::probe::{cfg_checksum, function_guid};
use csspgo_ir::{InlinePlan, Module, ProbeSite};

const SRC: &str = "fn helper(x) {\n    return x + 1;\n}\nfn main(a) {\n    return helper(a);\n}";

fn fresh(probes: bool) -> Module {
    let mut m = csspgo_lang::compile(SRC, "t").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    if probes {
        csspgo_opt::probes::run(&mut m);
    }
    m
}

fn call_count(m: &Module, name: &str) -> usize {
    let f = m.find_function(name).unwrap();
    m.func(f)
        .iter_blocks()
        .flat_map(|(_, b)| &b.insts)
        .filter(|i| matches!(i.kind, InstKind::Call { .. }))
        .count()
}

#[test]
fn autofdo_replays_nested_inline_instances() {
    let mut m = fresh(false);
    let main_guid = function_guid("main");
    let helper_guid = function_guid("helper");
    let mut profile = FlatProfile::default();
    profile.names.insert(main_guid, "main".into());
    profile.names.insert(helper_guid, "helper".into());
    let fp = profile.funcs.entry(main_guid).or_default();
    fp.entry = 50;
    // The call site is on line 5; `fn main` on line 4 → offset 1. The
    // nested instance says "helper was inlined here in the profiled binary".
    let nested = fp.callsite_mut(
        LocKey {
            line_offset: 1,
            discriminator: 0,
        },
        helper_guid,
    );
    nested.record_max(
        LocKey {
            line_offset: 0,
            discriminator: 0,
        },
        400,
    );
    fp.recompute_totals();

    let stats = autofdo_annotate(&mut m, &profile, &AnnotateConfig::default());
    assert_eq!(stats.replayed_inlines, 1, "nested instance must replay");
    assert_eq!(call_count(&m, "main"), 0, "call gone after replay");
}

#[test]
fn autofdo_does_not_replay_without_nested_profile() {
    let mut m = fresh(false);
    let main_guid = function_guid("main");
    let mut profile = FlatProfile::default();
    profile.names.insert(main_guid, "main".into());
    let fp = profile.funcs.entry(main_guid).or_default();
    fp.record_max(
        LocKey {
            line_offset: 1,
            discriminator: 0,
        },
        400,
    );
    fp.recompute_totals();
    let stats = autofdo_annotate(&mut m, &profile, &AnnotateConfig::default());
    assert_eq!(stats.replayed_inlines, 0);
    assert_eq!(call_count(&m, "main"), 1, "call stays");
}

/// Builds a probe profile matching the fresh probed module's shape, with a
/// nested instance for the call at main's call-site probe.
fn probe_profile_with_nested(m: &Module) -> ProbeProfile {
    let main = m.find_function("main").unwrap();
    let helper = m.find_function("helper").unwrap();
    // Find main's call-site probe index.
    let call_probe = m
        .func(main)
        .iter_blocks()
        .flat_map(|(_, b)| &b.insts)
        .find_map(|i| match &i.kind {
            InstKind::PseudoProbe {
                index,
                kind: csspgo_ir::ProbeKind::Call,
                ..
            } => Some(*index),
            _ => None,
        })
        .expect("main has a call probe");

    let mut profile = ProbeProfile::default();
    profile.names.insert(m.func(main).guid, "main".into());
    profile.names.insert(m.func(helper).guid, "helper".into());
    let fp = profile.funcs.entry(m.func(main).guid).or_default();
    fp.checksum = m
        .func(main)
        .probe_checksum
        .unwrap_or_else(|| cfg_checksum(m.func(main)));
    fp.entry = 50;
    fp.record_sum(1, 500);
    fp.record_sum(call_probe, 500);
    let nested = fp.callsite_mut(call_probe, m.func(helper).guid);
    nested.checksum = m
        .func(helper)
        .probe_checksum
        .unwrap_or_else(|| cfg_checksum(m.func(helper)));
    nested.record_sum(1, 500);
    profile
        .funcs
        .get_mut(&m.func(main).guid)
        .unwrap()
        .recompute_totals();
    profile
}

#[test]
fn probe_only_replays_nested_probe_profiles() {
    let mut m = fresh(true);
    let profile = probe_profile_with_nested(&m);
    let stats = csspgo_annotate(&mut m, &profile, None, &AnnotateConfig::default());
    assert_eq!(stats.stale_total(), 0);
    assert_eq!(stats.replayed_inlines, 1);
    assert_eq!(call_count(&m, "main"), 0);
}

#[test]
fn plan_replay_is_exact_not_heuristic() {
    // With a plan present, nested profiles alone must NOT trigger replay —
    // only the plan's paths do.
    let mut m = fresh(true);
    let profile = probe_profile_with_nested(&m);
    let empty_plan = InlinePlan::new();
    let stats = csspgo_annotate(
        &mut m,
        &profile,
        Some(&empty_plan),
        &AnnotateConfig::default(),
    );
    assert_eq!(stats.replayed_inlines, 0, "empty plan inlines nothing");
    assert_eq!(call_count(&m, "main"), 1);

    // Now with the matching plan path.
    let mut m = fresh(true);
    let main = m.find_function("main").unwrap();
    let call_probe = m
        .func(main)
        .iter_blocks()
        .flat_map(|(_, b)| &b.insts)
        .find_map(|i| match &i.kind {
            InstKind::PseudoProbe {
                index,
                kind: csspgo_ir::ProbeKind::Call,
                ..
            } => Some(*index),
            _ => None,
        })
        .unwrap();
    let mut plan = InlinePlan::new();
    plan.add(vec![ProbeSite {
        func: main,
        probe_index: call_probe,
    }]);
    let stats = csspgo_annotate(&mut m, &profile, Some(&plan), &AnnotateConfig::default());
    assert_eq!(stats.replayed_inlines, 1, "planned path replays");
    assert_eq!(call_count(&m, "main"), 0);
}

#[test]
fn replayed_bodies_receive_context_counts() {
    let mut m = fresh(true);
    let profile = probe_profile_with_nested(&m);
    csspgo_annotate(&mut m, &profile, None, &AnnotateConfig::default());
    // The inlined helper body (cloned blocks) must carry counts derived
    // from the nested profile (500), not be left unannotated.
    let main = m.find_function("main").unwrap();
    let max = m
        .func(main)
        .iter_blocks()
        .filter_map(|(_, b)| b.count)
        .max()
        .unwrap_or(0);
    assert!(max >= 400, "inlined body counts applied: {max}");
}
