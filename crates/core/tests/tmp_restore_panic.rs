use csspgo_codegen::{lower_module, CodegenConfig};
use csspgo_core::stream::{StreamAggregator, StreamConfig};

#[test]
fn truncated_snapshot_ending_at_context_marker() {
    let mut m = csspgo_lang::compile("fn f(n) { return n; }", "t").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    let b = lower_module(&m, &CodegenConfig::default());
    let agg = StreamAggregator::new(&b, StreamConfig::default(), 1);
    let snap = agg.snapshot();
    // Truncate right at the "!context" marker, dropping the trailing newline.
    let cut = snap.find("!context").unwrap() + "!context".len();
    let truncated = &snap[..cut];
    let r = StreamAggregator::restore(&b, StreamConfig::default(), 1, truncated);
    eprintln!("result: {:?}", r.map(|_| ()).err());
}
