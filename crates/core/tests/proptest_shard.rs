//! Property tests for sharded sample ingestion: for *any* sample stream —
//! including garbage addresses, truncated LBRs and broken stacks — the
//! sharded-parallel path must produce profiles byte-identical (same
//! serialized JSON) to the sequential path, for flat/DWARF profiles,
//! probe profiles, and the context trie.

use csspgo_codegen::{lower_module, Binary, CodegenConfig};
use csspgo_core::context::ContextProfile;
use csspgo_core::correlate::{dwarf_profile, probe_profile};
use csspgo_core::ranges::RangeCounts;
use csspgo_core::shard::{sharded_context_profile, sharded_range_counts};
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::unwind::Unwinder;
use csspgo_sim::Sample;
use proptest::prelude::*;

const SRC: &str = r#"
fn leaf(x) {
    if (x % 5 == 0) { return x * 3; }
    return x - 1;
}
fn mid(x) {
    return leaf(x) + leaf(x + 1);
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + mid(i);
        i = i + 1;
    }
    return s;
}
"#;

fn probed_binary() -> Binary {
    let mut m = csspgo_lang::compile(SRC, "shardprop").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    lower_module(&m, &CodegenConfig::default())
}

/// A strategy for raw addresses: mostly instruction starts (mapped from a
/// flat index), sometimes arbitrary garbage the lookup must reject.
fn addr_strategy(n_insts: usize) -> BoxedStrategy<u64> {
    let n = n_insts as u64;
    prop_oneof![
        8 => (0..n).prop_map(|i| i), // resolved to addr_of later
        1 => any::<u64>(),
    ]
    .boxed()
}

/// Resolves the strategy's encoded value: small values are instruction
/// indices, everything else is taken verbatim.
fn resolve(binary: &Binary, raw: u64) -> u64 {
    if (raw as usize) < binary.len() {
        binary.addr_of(raw as usize)
    } else {
        raw
    }
}

/// An unresolved sample: `(pc, lbr pairs, stack)`, all in the encoded
/// address form of [`addr_strategy`].
type RawSample = (u64, Vec<(u64, u64)>, Vec<u64>);

fn sample_stream_strategy(n_insts: usize) -> BoxedStrategy<Vec<RawSample>> {
    let addr = || addr_strategy(n_insts);
    let lbr = proptest::collection::vec((addr(), addr()), 0..8);
    let stack = proptest::collection::vec(addr(), 0..6);
    proptest::collection::vec((addr(), lbr, stack), 0..120).boxed()
}

fn to_samples(binary: &Binary, raw: &[RawSample]) -> Vec<Sample> {
    raw.iter()
        .enumerate()
        .map(|(i, (pc, lbr, stack))| Sample {
            cycle: i as u64 * 17,
            pc: resolve(binary, *pc),
            lbr: lbr
                .iter()
                .map(|&(f, t)| (resolve(binary, f), resolve(binary, t)))
                .collect(),
            stack: stack.iter().map(|&a| resolve(binary, a)).collect(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_flat_and_probe_profiles_byte_identical(
        raw in sample_stream_strategy(64),
        shards in 1usize..9,
    ) {
        let binary = probed_binary();
        let samples = to_samples(&binary, &raw);

        let mut seq = RangeCounts::default();
        seq.add_samples(&binary, &samples);
        let par = sharded_range_counts(&binary, &samples, shards);
        prop_assert_eq!(&par, &seq);

        // Byte-identity of the derived profiles, not just map equality.
        let flat_seq = serde_json::to_string(&dwarf_profile(&binary, &seq)).unwrap();
        let flat_par = serde_json::to_string(&dwarf_profile(&binary, &par)).unwrap();
        prop_assert_eq!(flat_seq, flat_par);

        let probe_seq = serde_json::to_string(&probe_profile(&binary, &seq)).unwrap();
        let probe_par = serde_json::to_string(&probe_profile(&binary, &par)).unwrap();
        prop_assert_eq!(probe_seq, probe_par);
    }

    #[test]
    fn sharded_context_trie_byte_identical(
        raw in sample_stream_strategy(64),
        shards in 1usize..9,
    ) {
        let binary = probed_binary();
        let samples = to_samples(&binary, &raw);
        let mut rc = RangeCounts::default();
        rc.add_samples(&binary, &samples);
        let graph = TailCallGraph::build(&binary, &rc);

        let mut seq = ContextProfile::new();
        let mut uw = Unwinder::new(&binary, Some(&graph));
        uw.unwind_into(&samples, &mut seq);

        let out = sharded_context_profile(&binary, Some(&graph), &samples, shards);
        prop_assert_eq!(&out.profile, &seq);
        prop_assert_eq!(out.infer_stats.recovered, uw.infer_stats.recovered);
        prop_assert_eq!(out.infer_stats.failed, uw.infer_stats.failed);
        prop_assert_eq!(out.broken_stacks, uw.broken_stacks);

        let j_seq = serde_json::to_string(&seq).unwrap();
        let j_par = serde_json::to_string(&out.profile).unwrap();
        prop_assert_eq!(j_seq, j_par);
    }
}
