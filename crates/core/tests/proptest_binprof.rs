//! Property tests for the binary profile wire format (`core::binprof`):
//! encode→decode must be lossless for *arbitrary* context tries (random
//! shapes, counts, checksums, inlined flags), the text and binary formats
//! must interchange losslessly in both directions, and the encoding must
//! be canonical (decode→re-encode is byte-identical). A golden fixture
//! pins the version-1 wire bytes so silent format drift fails CI.

use csspgo_core::binprof::{self, DecodeError};
use csspgo_core::context::{ContextNode, ContextProfile, FrameKey};
use csspgo_core::textprof;
use csspgo_ir::probe::function_guid;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Function-name pool; GUIDs derive from these the way real builds derive
/// them, so the name-keyed text format can round-trip the profile.
const POOL: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    "lambda", "mu",
];

fn guid_of(i: usize) -> u64 {
    function_guid(POOL[i % POOL.len()])
}

/// One profile-building operation: `(path frames, owner, probe, count,
/// entry-or-probe)` with functions as pool indices.
type Op = (Vec<(usize, u32)>, usize, u32, u64, bool);

fn collect_guids(node: &ContextNode, out: &mut BTreeSet<u64>) {
    out.insert(node.guid);
    for child in node.children.values() {
        collect_guids(child, out);
    }
}

/// Random context profiles built through the public trie API: random
/// paths, owners, probe indices and counts, plus entry hits.
fn profile_strategy() -> BoxedStrategy<ContextProfile> {
    let frame = (0usize..12, 0u32..8);
    let path = proptest::collection::vec(frame, 0..5);
    let op = (path, 0usize..12, 0u32..16, 1u64..1_000, any::<bool>());
    proptest::collection::vec(op, 0..60)
        .prop_map(|ops: Vec<Op>| {
            let mut p = ContextProfile::new();
            for (path, owner, probe, count, is_entry) in ops {
                let frames: Vec<FrameKey> = path
                    .into_iter()
                    .map(|(i, probe)| FrameKey {
                        guid: guid_of(i),
                        probe,
                    })
                    .collect();
                if is_entry {
                    p.add_entry(&frames, guid_of(owner), count);
                } else {
                    p.add_probe_hit(&frames, guid_of(owner), probe, count);
                }
            }
            // Exercise the non-default node fields too: checksums from a
            // synthetic table, inlined flags derived from node identity.
            let table: BTreeMap<u64, u64> = (0..POOL.len())
                .map(|i| (guid_of(i), (i as u64 + 1).wrapping_mul(0x9e37)))
                .collect();
            p.set_checksums(&table);
            fn flag(node: &mut ContextNode) {
                node.inlined = node.guid.is_multiple_of(3);
                for child in node.children.values_mut() {
                    flag(child);
                }
            }
            for root in p.roots.values_mut() {
                flag(root);
            }
            // Name every referenced function, as real correlation does —
            // the text format identifies functions by name.
            let mut used = BTreeSet::new();
            for root in p.roots.values() {
                collect_guids(root, &mut used);
            }
            for g in used {
                let name = POOL.iter().find(|n| function_guid(n) == g).unwrap();
                p.names.insert(g, name.to_string());
            }
            p
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode→decode is lossless and the encoding is canonical.
    #[test]
    fn binary_context_roundtrip_lossless(profile in profile_strategy()) {
        let bytes = binprof::encode_context(&profile);
        let back = binprof::decode_context(&bytes).unwrap();
        prop_assert_eq!(&back, &profile);

        let j_in = serde_json::to_string(&profile).unwrap();
        let j_out = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(j_in, j_out);

        // Canonical: a decoded profile re-encodes to the same bytes.
        prop_assert_eq!(binprof::encode_context(&back), bytes);
    }

    /// Text and binary interchange in both directions: whichever format a
    /// profile passes through, it lands on the same canonical bytes.
    #[test]
    fn text_and_binary_formats_interchange(profile in profile_strategy()) {
        let bytes = binprof::encode_context(&profile);

        // binary → text: decoded profile renders the same text.
        let text = textprof::write_context(&profile);
        let via_binary = binprof::decode_context(&bytes).unwrap();
        prop_assert_eq!(textprof::write_context(&via_binary), text.clone());

        // text → binary: parsed profile encodes to the same bytes.
        let via_text = textprof::parse_context(&text).unwrap();
        prop_assert_eq!(&via_text, &profile);
        prop_assert_eq!(binprof::encode_context(&via_text), bytes);
    }
}

/// The fixed profile behind the golden fixture: touches nesting, entry
/// counts, checksums and the inlined flag.
fn golden_profile() -> ContextProfile {
    let mut p = ContextProfile::new();
    let a = FrameKey { guid: 3, probe: 2 };
    let b = FrameKey { guid: 7, probe: 5 };
    p.add_entry(&[], 3, 10);
    p.add_probe_hit(&[a], 7, 1, 400);
    p.add_probe_hit(&[a, b], 9, 6, 25);
    p.add_entry(&[a, b], 9, 3);
    p.add_probe_hit(&[], 3, 0, 1_000_000);
    let table: BTreeMap<u64, u64> = [(3, 0xabc), (7, 0xdef), (9, 0x123)].into_iter().collect();
    p.set_checksums(&table);
    p.roots
        .get_mut(&3)
        .unwrap()
        .children
        .values_mut()
        .for_each(|c| c.inlined = true);
    p
}

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/context_v1.binprof"
);

/// The version-1 wire bytes of [`golden_profile`] are pinned on disk: any
/// byte-level drift of the format must come with a `binprof::VERSION` bump
/// and a deliberate re-bless (`BLESS=1 cargo test`).
#[test]
fn golden_binary_fixture_is_stable() {
    let profile = golden_profile();
    let bytes = binprof::encode_context(&profile);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(FIXTURE, &bytes).unwrap();
    }
    let golden =
        std::fs::read(FIXTURE).expect("golden fixture missing; regenerate with BLESS=1 cargo test");
    assert_eq!(
        bytes, golden,
        "binprof wire bytes drifted from the v1 fixture; bump VERSION and re-bless deliberately"
    );
    assert_eq!(binprof::decode_context(&golden).unwrap(), profile);
}

/// A reader built for version N must reject version N+1 (and garbage)
/// with the right typed error, not misparse it.
#[test]
fn future_version_and_wrong_kind_are_rejected() {
    let bytes = binprof::encode_context(&golden_profile());

    // Bump the little-endian u16 version field after the 8-byte magic.
    let mut newer = bytes.clone();
    newer[8] = newer[8].wrapping_add(1);
    match binprof::decode_context(&newer) {
        Err(DecodeError::Version { found, supported }) => {
            assert_eq!(found, binprof::VERSION + 1);
            assert_eq!(supported, binprof::VERSION);
        }
        other => panic!("expected version rejection, got {other:?}"),
    }

    // A context payload is not a probe payload.
    match binprof::decode_probe(&bytes) {
        Err(DecodeError::Kind { .. }) => {}
        other => panic!("expected kind rejection, got {other:?}"),
    }

    // Corrupted magic.
    let mut bad = bytes;
    bad[0] ^= 0xff;
    assert_eq!(
        binprof::decode_context(&bad).unwrap_err(),
        DecodeError::BadMagic
    );
}
