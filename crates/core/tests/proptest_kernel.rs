//! Property tests for the correlation-kernel overhaul: for *any* sample
//! stream — garbage addresses, truncated LBRs, broken stacks, heavy
//! duplication — the batched fast path (sample dedup + hash-consed
//! context-trie interning) and the sharded fan-out on top of it must be
//! **bit-identical** to the per-sample BTreeMap reference, down to the
//! serialized JSON and every diagnostic counter.

use csspgo_codegen::{lower_module, Binary, CodegenConfig};
use csspgo_core::context::ContextProfile;
use csspgo_core::ranges::RangeCounts;
use csspgo_core::shard::sharded_context_profile;
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::unwind::{Hit, Unwinder};
use csspgo_sim::Sample;
use proptest::prelude::*;

const SRC: &str = r#"
fn leaf(x) {
    if (x % 5 == 0) { return x * 3; }
    return x - 1;
}
fn mid(x) {
    return leaf(x) + leaf(x + 1);
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + mid(i);
        i = i + 1;
    }
    return s;
}
"#;

fn probed_binary() -> Binary {
    let mut m = csspgo_lang::compile(SRC, "kernelprop").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    lower_module(&m, &CodegenConfig::default())
}

/// A strategy for raw addresses: mostly instruction starts (mapped from a
/// flat index), sometimes arbitrary garbage the lookup must reject.
fn addr_strategy(n_insts: usize) -> BoxedStrategy<u64> {
    let n = n_insts as u64;
    prop_oneof![
        8 => (0..n).prop_map(|i| i), // resolved to addr_of later
        1 => any::<u64>(),
    ]
    .boxed()
}

fn resolve(binary: &Binary, raw: u64) -> u64 {
    if (raw as usize) < binary.len() {
        binary.addr_of(raw as usize)
    } else {
        raw
    }
}

/// An unresolved sample: `(pc, lbr pairs, stack)`.
type RawSample = (u64, Vec<(u64, u64)>, Vec<u64>);

/// Sample streams with deliberately *few* distinct shapes, so the batched
/// path's dedup actually collapses repeats (the regime it optimizes for).
fn duplicated_stream_strategy(n_insts: usize) -> BoxedStrategy<Vec<Sampleish>> {
    let addr = || addr_strategy(n_insts);
    let lbr = proptest::collection::vec((addr(), addr()), 0..6);
    let stack = proptest::collection::vec(addr(), 0..5);
    let shapes = proptest::collection::vec((addr(), lbr, stack), 1..12);
    // Pick each sample from the small shape pool by index, so the stream
    // contains many exact repeats in arbitrary interleavings.
    (shapes, proptest::collection::vec(any::<usize>(), 0..150))
        .prop_map(|(shapes, picks)| {
            picks
                .into_iter()
                .map(|ix| shapes[ix % shapes.len()].clone())
                .collect()
        })
        .boxed()
}

type Sampleish = RawSample;

fn to_samples(binary: &Binary, raw: &[RawSample]) -> Vec<Sample> {
    raw.iter()
        .enumerate()
        .map(|(i, (pc, lbr, stack))| Sample {
            cycle: i as u64 * 17,
            pc: resolve(binary, *pc),
            lbr: lbr
                .iter()
                .map(|&(f, t)| (resolve(binary, f), resolve(binary, t)))
                .collect(),
            stack: stack.iter().map(|&a| resolve(binary, a)).collect(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batched (dedup + interned trie) ≡ per-sample materialized hits
    /// ≡ per-sample sink path, including every diagnostic counter.
    #[test]
    fn batched_and_interned_match_per_sample_reference(
        raw in duplicated_stream_strategy(64),
    ) {
        let binary = probed_binary();
        let samples = to_samples(&binary, &raw);
        let mut rc = RangeCounts::default();
        rc.add_samples(&binary, &samples);
        let graph = TailCallGraph::build(&binary, &rc);

        // Reference 1: materialized per-sample hits into the BTreeMap trie.
        let mut from_hits = ContextProfile::new();
        let mut uw_hits = Unwinder::new(&binary, Some(&graph));
        for s in &samples {
            for hit in uw_hits.unwind(s) {
                match hit {
                    Hit::Probe { path, owner, index } => {
                        from_hits.add_probe_hit(&path, owner, index, 1)
                    }
                    Hit::Entry { path, owner } => from_hits.add_entry(&path, owner, 1),
                }
            }
        }

        // Reference 2: the streaming per-sample sink path.
        let mut from_sink = ContextProfile::new();
        let mut uw_sink = Unwinder::new(&binary, Some(&graph));
        uw_sink.unwind_into(&samples, &mut from_sink);

        // Candidate: dedup + hash-consed trie.
        let mut uw_batched = Unwinder::new(&binary, Some(&graph));
        let batched = uw_batched.unwind_batched(&samples);

        prop_assert_eq!(&from_sink, &from_hits);
        prop_assert_eq!(&batched, &from_hits);
        for uw in [&uw_sink, &uw_batched] {
            prop_assert_eq!(uw.infer_stats.recovered, uw_hits.infer_stats.recovered);
            prop_assert_eq!(uw.infer_stats.failed, uw_hits.infer_stats.failed);
            prop_assert_eq!(uw.broken_stacks, uw_hits.broken_stacks);
        }

        // Bit-identity, not just logical equality.
        let j_ref = serde_json::to_string(&from_hits).unwrap();
        let j_batched = serde_json::to_string(&batched).unwrap();
        prop_assert_eq!(j_ref, j_batched);
    }

    /// The sharded fan-out over the batched kernel stays bit-identical to
    /// the reference for random shard counts on duplicated streams.
    #[test]
    fn sharded_batched_kernel_byte_identical(
        raw in duplicated_stream_strategy(64),
        shards in 1usize..9,
    ) {
        let binary = probed_binary();
        let samples = to_samples(&binary, &raw);
        let mut rc = RangeCounts::default();
        rc.add_samples(&binary, &samples);
        let graph = TailCallGraph::build(&binary, &rc);

        let mut seq = ContextProfile::new();
        let mut uw = Unwinder::new(&binary, Some(&graph));
        uw.unwind_into(&samples, &mut seq);

        let out = sharded_context_profile(&binary, Some(&graph), &samples, shards);
        prop_assert_eq!(&out.profile, &seq);
        prop_assert_eq!(out.infer_stats.recovered, uw.infer_stats.recovered);
        prop_assert_eq!(out.infer_stats.failed, uw.infer_stats.failed);
        prop_assert_eq!(out.broken_stacks, uw.broken_stacks);

        let j_seq = serde_json::to_string(&seq).unwrap();
        let j_par = serde_json::to_string(&out.profile).unwrap();
        prop_assert_eq!(j_seq, j_par);
    }
}
