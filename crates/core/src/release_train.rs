//! Release-train orchestration: end-to-end drift validation across
//! successive releases.
//!
//! Production PGO is not one stale profile against one new build — it is
//! a *train* of releases with live traffic flowing the whole time, each
//! release inheriting the previous release's profile until a refresh
//! lands. This module rolls a workload through N successive source
//! versions while a [`FleetService`] serves traffic continuously, and per
//! release measures where the live-profile build lands between two
//! anchors:
//!
//! * the **oracle** — a fresh profile collected on the new source itself
//!   (`run_pgo_cycle(CsspgoFull)`), the best any refresh could do;
//! * the **floor** — the release-0 profile applied with
//!   `stale_matching: Off`, i.e. never refreshing and dropping every
//!   checksum-mismatched function, the paper's source-drift failure mode.
//!
//! The per-release **pgo** point is built from the *live* stable-version
//! profile ([`crate::stream::StreamAggregator::context_snapshot`] →
//! pre-inliner →
//! binprof hand-off → [`csspgo_annotate`] under the configured
//! stale-matching + inference modes), so the whole
//! stream/stalematch/inference stack is on the measured path. Retention
//! is reported signed against the `-O2` baseline:
//! `(o2 − x) / (o2 − oracle) × 100`.
//!
//! Each release also runs **canary evaluation**: the stable and candidate
//! binaries register as two versions of one tenant with
//! [`TrafficShare::Split`] halves of the train stream, their per-version
//! profiles are compared ([`probe_weights`] overlap), and the candidate
//! is promoted only if its eval cycles stay within tolerance of the
//! same source's `-O2` build — the gate targets *profile-induced*
//! regressions, not intentional source-side slowdowns — *and* its eval
//! results hash-match that `-O2` reference.
//! A seeded sabotage hook corrupts the hand-off profile of one release so
//! tests can assert the gate actually gates.

use crate::annotate::{csspgo_annotate, AnnotateConfig};
use crate::binprof;
use crate::context::FrameKey;
use crate::fleet::{
    FleetBinaries, FleetConfig, FleetError, FleetEvent, FleetService, TenantId, TenantSpec,
    TrafficShare, VersionSpec,
};
use crate::inference::InferenceMode;
use crate::pipeline::{evaluate, run_pgo_cycle, PgoVariant, PipelineConfig, PipelineError};
use crate::preinline::{run_preinliner, to_inline_plan};
use crate::profile::{ProbeFuncProfile, ProbeProfile};
use crate::stalematch::StaleMatching;
use crate::stream::{probe_weights, weight_overlap};
use crate::workload::Workload;
use csspgo_codegen::lower_module;
use serde::Serialize;
use std::time::Instant;

/// Schema tag of `BENCH_release_train.json`.
pub const TRAIN_SCHEMA: &str = "csspgo-train-v1";

/// One release in a train: a label, the mutator that produced it, and the
/// cumulative source (see `csspgo_workloads::drift::release_chain`).
#[derive(Clone, Debug)]
pub struct ReleaseSpec {
    /// Unique release label (`r1`, `r2`, …).
    pub label: String,
    /// Name of the mutation this release applied (for reporting).
    pub mutator: String,
    /// Full MiniLang source of this release.
    pub source: String,
}

impl ReleaseSpec {
    /// A release spec from its three parts.
    pub fn new(
        label: impl Into<String>,
        mutator: impl Into<String>,
        source: impl Into<String>,
    ) -> Self {
        ReleaseSpec {
            label: label.into(),
            mutator: mutator.into(),
            source: source.into(),
        }
    }
}

/// Train-harness knobs.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// The fleet service every release serves traffic through. Its
    /// `pipeline.stream.drift_threshold` decides when the watchdog fires.
    pub fleet: FleetConfig,
    /// Canary gate: the candidate is promoted only if its eval cycles are
    /// ≤ `same-source -O2 × (1 + tolerance/100)` — the profile must not
    /// make the build meaningfully slower than not profiling at all.
    pub canary_tolerance_pct: f64,
    /// Stale-matching mode of the live-profile candidate build (the
    /// "pgo" curve). The floor always uses [`StaleMatching::Off`].
    pub refresh_matching: StaleMatching,
    /// Inference mode of both the candidate and floor builds.
    pub refresh_inference: InferenceMode,
    /// Diurnal phase length in releases: release `i` rotates the train
    /// stream by `((i+1) mod period) / period` of its length, so the hot
    /// context mix shifts between releases. `0` disables rotation.
    pub diurnal_period: usize,
    /// Corrupts the profile handed to this release's candidate build
    /// (hot/cold inversion, inline plan dropped) — the canary gate must
    /// reject it.
    pub sabotage_release: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            fleet: FleetConfig::default(),
            canary_tolerance_pct: 5.0,
            refresh_matching: StaleMatching::Recover,
            refresh_inference: InferenceMode::Mcf,
            diurnal_period: 4,
            sabotage_release: None,
        }
    }
}

/// The canary verdict of one release.
#[derive(Clone, Debug, Serialize)]
pub struct CanaryReport {
    /// Whether the candidate was promoted to stable.
    pub promoted: bool,
    /// Eval cycles of the incumbent stable build.
    pub stable_cycles: u64,
    /// Eval cycles of the candidate build.
    pub canary_cycles: u64,
    /// Whether the candidate's eval results hash-matched the `-O2`
    /// reference build of the same source.
    pub behavior_ok: bool,
    /// [`weight_overlap`] of the stable and candidate live profiles over
    /// their split traffic halves (1.0 = identical distributions).
    pub profile_agreement: f64,
    /// Whether this release's hand-off profile was deliberately
    /// corrupted ([`TrainConfig::sabotage_release`]).
    pub sabotaged: bool,
}

/// Everything measured for one release of the train.
#[derive(Clone, Debug, Serialize)]
pub struct ReleaseReport {
    /// Zero-based release index.
    pub release: usize,
    /// Release label.
    pub label: String,
    /// Mutator that produced this release.
    pub mutator: String,
    /// Whether the drift watchdog marked a version stale this release.
    pub watchdog_fired: bool,
    /// Watchdog refreshes that ran through the fleet's bounded queue.
    pub refreshes: usize,
    /// Checksum-mismatched functions dropped across those refreshes.
    pub stale_dropped: usize,
    /// Checksum-mismatched functions the stale matcher salvaged.
    pub stale_recovered: usize,
    /// Eval cycles of the plain `-O2` build of this release's source.
    pub o2_cycles: u64,
    /// Eval cycles of the always-fresh-profile oracle.
    pub oracle_cycles: u64,
    /// Eval cycles of the live-profile candidate build (recover + MCF by
    /// default) — the release train's own operating point.
    pub pgo_cycles: u64,
    /// Eval cycles of the never-refresh floor (release-0 profile,
    /// `stale_matching: Off`).
    pub floor_cycles: u64,
    /// Signed share of the oracle's win over `-O2` the candidate
    /// retained; `None` when the oracle does not beat `-O2`.
    pub retained_pct: Option<f64>,
    /// The floor's retained share, same definition.
    pub floor_retained_pct: Option<f64>,
    /// The canary verdict.
    pub canary: CanaryReport,
    /// Wall time of this release step (timing field; zeroed in goldens).
    pub train_ms: f64,
}

/// The whole train on one workload.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    /// Workload name.
    pub workload: String,
    /// Eval cycles of the release-0 stable build (live v0 profile on the
    /// v0 source) — where the train starts.
    pub baseline_cycles: u64,
    /// Per-release measurements, in train order.
    pub releases: Vec<ReleaseReport>,
    /// Train-wide retention: `Σ(o2 − pgo) / Σ(o2 − oracle) × 100` over
    /// all releases (signed; 0.0 when the oracle never wins).
    pub train_retention_pct: f64,
    /// The never-refresh floor's train-wide retention, same definition.
    pub floor_retention_pct: f64,
    /// Releases the canary gate promoted.
    pub promoted: usize,
    /// Releases the canary gate rejected.
    pub rejected: usize,
    /// Releases on which the drift watchdog fired.
    pub watchdog_fires: usize,
    /// Watchdog refreshes that ran across the train.
    pub refreshes: usize,
}

/// The `BENCH_release_train.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct TrainBenchDoc {
    /// Always [`TRAIN_SCHEMA`].
    pub schema: String,
    /// One train per workload.
    pub trains: Vec<TrainReport>,
}

impl TrainBenchDoc {
    /// Wraps train reports in the versioned document.
    pub fn new(trains: Vec<TrainReport>) -> Self {
        TrainBenchDoc {
            schema: TRAIN_SCHEMA.to_string(),
            trains,
        }
    }

    /// Pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("train report serializes")
    }

    /// A copy with every timing field zeroed — the deterministic portion
    /// two identical runs must agree on byte-for-byte, and what the
    /// golden test pins.
    #[must_use]
    pub fn stripped(&self) -> TrainBenchDoc {
        let mut doc = self.clone();
        for train in &mut doc.trains {
            for rel in &mut train.releases {
                rel.train_ms = 0.0;
            }
        }
        doc
    }
}

/// Rolls `workload` through `releases` with live traffic flowing through
/// a [`FleetService`] the entire train. Per release: the stable and
/// candidate versions split the (diurnally rotated) train stream, the
/// drift watchdog probes on eval traffic and drains its refresh queue,
/// the candidate is built from the stable version's *live* profile, and
/// the canary gate decides promotion. See the module docs for the
/// oracle/floor/pgo definitions.
///
/// # Errors
///
/// Returns [`FleetError::InvalidConfig`] for an empty train or a release
/// label colliding with the incumbent stable label, and propagates any
/// fleet or pipeline failure.
pub fn run_release_train(
    workload: &Workload,
    releases: &[ReleaseSpec],
    cfg: &TrainConfig,
) -> Result<TrainReport, FleetError> {
    if releases.is_empty() {
        return Err(FleetError::InvalidConfig(
            "release train needs at least one release".into(),
        ));
    }
    let pipe = cfg.fleet.pipeline.clone();
    let tenant = TenantId(0);

    // ---- Release 0: serve v0 solo to collect the founding live profile.
    // Refreshes are deliberately not processed — this round only exists
    // to give the train its floor/baseline profile.
    let spec0 = TenantSpec::single_version(tenant, workload.clone());
    let binaries0 = FleetBinaries::compile(std::slice::from_ref(&spec0), &cfg.fleet)?;
    let mut service0 = FleetService::new(&binaries0, cfg.fleet.clone());
    service0.calibrate()?;
    while !service0.is_done() {
        service0.run_round()?;
    }
    service0.drift_probe()?;
    let agg0 = service0.aggregator(tenant, "v0").expect("v0 calibrated");
    let v0_binary = binaries0.binary(tenant, "v0").expect("v0 compiled");
    // Floor assets, frozen for the whole train: context snapshot +
    // pre-inline plan paths + probe profile, all from the v0 live stream.
    let mut floor_ctx = agg0.context_snapshot(pipe.trim_threshold);
    let floor_pre = run_preinliner(&mut floor_ctx, v0_binary, &pipe.preinline);
    let mut floor_probe = floor_ctx.to_probe_profile();
    agg0.backfill_entries(&mut floor_probe);
    let floor_probe = binprof::decode_probe(&binprof::encode_probe(&floor_probe))
        .map_err(|e| FleetError::Pipeline(PipelineError::from(e)))?;

    let live_annotate = AnnotateConfig {
        stale_matching: cfg.refresh_matching,
        inference: cfg.refresh_inference,
        ..pipe.annotate
    };
    let floor_annotate = AnnotateConfig {
        stale_matching: StaleMatching::Off,
        inference: cfg.refresh_inference,
        ..pipe.annotate
    };

    // The train's starting point: v0 optimized from its own live profile.
    let (baseline_cycles, _, _) = build_with_profile(
        workload,
        &workload.source,
        &floor_probe,
        Some(&floor_pre.plan_paths),
        &live_annotate,
        &pipe,
    )?;

    let mut stable_source = workload.source.clone();
    let mut stable_label = "v0".to_string();
    let mut stable_cycles = baseline_cycles;

    let mut reports: Vec<ReleaseReport> = Vec::with_capacity(releases.len());
    let (mut sum_o2, mut sum_oracle, mut sum_pgo, mut sum_floor) = (0u128, 0u128, 0u128, 0u128);

    for (ri, rel) in releases.iter().enumerate() {
        if rel.label == stable_label {
            return Err(FleetError::InvalidConfig(format!(
                "release {ri} label `{}` collides with the incumbent stable label",
                rel.label
            )));
        }
        let step_start = Instant::now();

        // Diurnal traffic: rotate the stream so hot contexts shift
        // between releases (eval traffic stays pinned, so the drift probe
        // compares against a stable reference mix).
        let mut traffic = workload.clone();
        let len = traffic.train_calls.len();
        if cfg.diurnal_period > 0 && len > 0 {
            let offset = ((ri + 1) % cfg.diurnal_period) * len / cfg.diurnal_period;
            traffic.train_calls.rotate_left(offset);
        }

        // Live serving across the release: stable + candidate split the
        // stream; the watchdog's refresh path builds the new source.
        let spec = TenantSpec {
            id: tenant,
            workload: traffic,
            versions: vec![
                VersionSpec::new(stable_label.clone(), stable_source.clone())
                    .with_share(TrafficShare::Split { index: 0, of: 2 }),
                VersionSpec::new(rel.label.clone(), rel.source.clone())
                    .with_share(TrafficShare::Split { index: 1, of: 2 }),
            ],
            refresh_source: Some(rel.source.clone()),
        };
        let binaries = FleetBinaries::compile(std::slice::from_ref(&spec), &cfg.fleet)?;
        let mut service = FleetService::new(&binaries, cfg.fleet.clone());
        let run = service.run()?;

        let watchdog_fired = run.events.iter().any(
            |e| matches!(e, FleetEvent::Epoch(ev) if ev.label == "drift-probe" && ev.summary.stale),
        );
        let (mut stale_dropped, mut stale_recovered) = (0usize, 0usize);
        for e in &run.events {
            if let FleetEvent::Refresh(r) = e {
                stale_dropped += r.stale_dropped;
                stale_recovered += r.stale_recovered;
            }
        }

        // Per-version live profiles: agreement across the split halves,
        // then the candidate build from the *stable* version's profile
        // (the profile a fleet actually has when the release ships).
        let stable_agg = service
            .aggregator(tenant, &stable_label)
            .expect("stable calibrated");
        let canary_agg = service
            .aggregator(tenant, &rel.label)
            .expect("canary calibrated");
        let profile_agreement = round4(weight_overlap(
            &probe_weights(stable_agg.context_profile()),
            &probe_weights(canary_agg.context_profile()),
        ));

        let stable_bin = binaries
            .binary(tenant, &stable_label)
            .expect("stable compiled");
        let mut live_ctx = stable_agg.context_snapshot(pipe.trim_threshold);
        let live_pre = run_preinliner(&mut live_ctx, stable_bin, &pipe.preinline);
        let mut live_probe = live_ctx.to_probe_profile();
        stable_agg.backfill_entries(&mut live_probe);
        let mut live_probe = binprof::decode_probe(&binprof::encode_probe(&live_probe))
            .map_err(|e| FleetError::Pipeline(PipelineError::from(e)))?;
        let sabotaged = cfg.sabotage_release == Some(ri);
        let mut plan_paths: Option<&[Vec<FrameKey>]> = Some(&live_pre.plan_paths);
        if sabotaged {
            corrupt_profile(&mut live_probe);
            plan_paths = None;
        }
        let (pgo_cycles, pgo_hash, _) = build_with_profile(
            workload,
            &rel.source,
            &live_probe,
            plan_paths,
            &live_annotate,
            &pipe,
        )?;

        // Anchors on the new source: plain -O2 and the fresh-profile
        // oracle.
        let mut rel_wl = workload.clone();
        rel_wl.source = rel.source.clone();
        let o2 = run_pgo_cycle(&rel_wl, PgoVariant::O2, &pipe)?;
        let oracle = run_pgo_cycle(&rel_wl, PgoVariant::CsspgoFull, &pipe)?;

        // Never-refresh floor: the frozen v0 profile with matching off.
        let (floor_cycles, _, _) = build_with_profile(
            workload,
            &rel.source,
            &floor_probe,
            Some(&floor_pre.plan_paths),
            &floor_annotate,
            &pipe,
        )?;

        let o2_cycles = o2.eval.cycles;
        let oracle_cycles = oracle.eval.cycles;
        let oracle_win = o2_cycles as f64 - oracle_cycles as f64;
        let retained = |cycles: u64| {
            (oracle_win > 0.0)
                .then(|| round4((o2_cycles as f64 - cycles as f64) / oracle_win * 100.0))
        };
        sum_o2 += u128::from(o2_cycles);
        sum_oracle += u128::from(oracle_cycles);
        sum_pgo += u128::from(pgo_cycles);
        sum_floor += u128::from(floor_cycles);

        // Canary gate, anchored on the *same source's* -O2 build so it
        // catches profile-induced regressions specifically: a release
        // whose source is intentionally slower (new feature) still
        // ships, but a profile that makes the optimized build slower
        // than not profiling at all (beyond tolerance) cannot. Behaviour
        // must also hash-match the -O2 reference.
        let behavior_ok = pgo_hash == o2.eval_result_hash;
        let cycles_ok =
            (pgo_cycles as f64) <= o2_cycles as f64 * (1.0 + cfg.canary_tolerance_pct / 100.0);
        let promoted = behavior_ok && cycles_ok;

        reports.push(ReleaseReport {
            release: ri,
            label: rel.label.clone(),
            mutator: rel.mutator.clone(),
            watchdog_fired,
            refreshes: run.stats.refreshes_triggered,
            stale_dropped,
            stale_recovered,
            o2_cycles,
            oracle_cycles,
            pgo_cycles,
            floor_cycles,
            retained_pct: retained(pgo_cycles),
            floor_retained_pct: retained(floor_cycles),
            canary: CanaryReport {
                promoted,
                stable_cycles,
                canary_cycles: pgo_cycles,
                behavior_ok,
                profile_agreement,
                sabotaged,
            },
            train_ms: step_start.elapsed().as_secs_f64() * 1e3,
        });

        if promoted {
            stable_source = rel.source.clone();
            stable_label = rel.label.clone();
            stable_cycles = pgo_cycles;
        }
    }

    let retention = |spent: u128| {
        let denom = sum_o2 as f64 - sum_oracle as f64;
        if denom > 0.0 {
            round4((sum_o2 as f64 - spent as f64) / denom * 100.0)
        } else {
            0.0
        }
    };
    let promoted = reports.iter().filter(|r| r.canary.promoted).count();
    Ok(TrainReport {
        workload: workload.name.clone(),
        baseline_cycles,
        train_retention_pct: retention(sum_pgo),
        floor_retention_pct: retention(sum_floor),
        promoted,
        rejected: reports.len() - promoted,
        watchdog_fires: reports.iter().filter(|r| r.watchdog_fired).count(),
        refreshes: reports.iter().map(|r| r.refreshes).sum(),
        releases: reports,
    })
}

/// Builds an optimized binary of `build_source` from an already-collected
/// probe profile and optional pre-inline plan paths, then evaluates it —
/// the optimized-build half of the full-CSSPGO cycle, with the profile
/// supplied instead of collected. Returns `(eval cycles, eval result
/// hash, annotate stats)`.
fn build_with_profile(
    workload: &Workload,
    build_source: &str,
    probe: &ProbeProfile,
    plan_paths: Option<&[Vec<FrameKey>]>,
    annotate: &AnnotateConfig,
    pipe: &PipelineConfig,
) -> Result<(u64, u64, crate::annotate::AnnotateStats), PipelineError> {
    let mut module = csspgo_lang::compile(build_source, &workload.name)?;
    csspgo_opt::discriminators::run(&mut module);
    csspgo_opt::probes::run(&mut module);
    let plan = plan_paths.map(|p| to_inline_plan(p, &module));
    let stats = csspgo_annotate(&mut module, probe, plan.as_ref(), annotate);
    // Full CSSPGO honors the pre-inliner: the bottom-up inliner is
    // restricted to trivially-small callees (same rule as the pipeline).
    let mut opt_cfg = pipe.opt.clone();
    opt_cfg.inline_hot_size = opt_cfg.inline_small_size;
    csspgo_opt::run_pipeline(&mut module, &opt_cfg);
    if let Some(root) = module.find_function(&workload.entry) {
        csspgo_opt::strip::run(&mut module, &[root]);
    }
    let binary = lower_module(&module, &pipe.codegen);
    let (run_stats, hash) = evaluate(&binary, workload, pipe)?;
    Ok((run_stats.cycles, hash, stats))
}

/// Hot/cold inversion: every probe count `c` becomes `max − c + 1` within
/// its function, so the profile claims the coldest paths are the hottest.
/// Checksums are left intact — the corruption must *apply* cleanly and
/// mislead layout/splitting/inlining, which is exactly the failure a
/// canary gate exists to catch.
fn corrupt_profile(profile: &mut ProbeProfile) {
    fn invert(f: &mut ProbeFuncProfile) {
        let max = f.probes.values().copied().max().unwrap_or(0);
        for c in f.probes.values_mut() {
            *c = max - *c + 1;
        }
        f.entry = f.entry.max(1);
        for child in f.callsites.values_mut() {
            invert(child);
        }
        f.recompute_totals();
    }
    for f in profile.funcs.values_mut() {
        invert(f);
    }
}

fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_train_is_rejected() {
        let w = Workload::new(
            "w",
            "fn f(x) { return x; }",
            "f",
            vec![vec![1]],
            vec![vec![1]],
        );
        let err = run_release_train(&w, &[], &TrainConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, FleetError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn corruption_inverts_hot_and_cold() {
        let mut p = ProbeProfile::default();
        let f = p.funcs.entry(1).or_default();
        f.probes.insert(1, 100);
        f.probes.insert(2, 0);
        f.recompute_totals();
        corrupt_profile(&mut p);
        let f = &p.funcs[&1];
        assert_eq!(f.probes[&1], 1, "hottest probe must go cold");
        assert_eq!(f.probes[&2], 101, "coldest probe must go hot");
        assert_eq!(f.total, 102);
    }

    #[test]
    fn stripped_doc_zeroes_timing() {
        let doc = TrainBenchDoc::new(vec![TrainReport {
            workload: "w".into(),
            baseline_cycles: 1,
            releases: vec![ReleaseReport {
                release: 0,
                label: "r1".into(),
                mutator: "split_function".into(),
                watchdog_fired: false,
                refreshes: 0,
                stale_dropped: 0,
                stale_recovered: 0,
                o2_cycles: 10,
                oracle_cycles: 8,
                pgo_cycles: 9,
                floor_cycles: 10,
                retained_pct: Some(50.0),
                floor_retained_pct: Some(0.0),
                canary: CanaryReport {
                    promoted: true,
                    stable_cycles: 9,
                    canary_cycles: 9,
                    behavior_ok: true,
                    profile_agreement: 1.0,
                    sabotaged: false,
                },
                train_ms: 123.4,
            }],
            train_retention_pct: 50.0,
            floor_retention_pct: 0.0,
            promoted: 1,
            rejected: 0,
            watchdog_fires: 0,
            refreshes: 0,
        }]);
        let stripped = doc.stripped();
        assert_eq!(stripped.trains[0].releases[0].train_ms, 0.0);
        assert_eq!(
            doc.trains[0].releases[0].train_ms, 123.4,
            "original untouched"
        );
        assert!(stripped.to_json().contains("csspgo-train-v1"));
    }
}
