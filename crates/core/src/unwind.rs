//! **Algorithm 1**: reconstructing the calling context of each LBR range
//! from a synchronized LBR + stack sample (paper §III.B).
//!
//! LBR branches are processed in reverse execution order (newest first). A
//! running context stack starts from the sampled frame-pointer chain and is
//! surgically adjusted at each call/return boundary:
//!
//! * stepping (backwards) over a **call**: the code before the call ran in
//!   the caller, so the caller's call-site frame pops off the context;
//! * stepping over a **return** from `F`: the code before ran inside `F`,
//!   so the call site that had entered `F` (the instruction before the
//!   return target) pushes onto the context;
//! * **tail calls** replace their frame: context unchanged.
//!
//! Each linear range between consecutive taken branches is attributed with
//! the context in effect, and inline frames are expanded per probe
//! (`ExpandInlinedFrames`): every pseudo-probe note carries its own inline
//! stack, so splitting ranges at inline boundaries happens per anchored
//! probe.
//!
//! The missing-frame inferrer ([`crate::tailcall`]) repairs the initial
//! stack where tail-call elimination removed frames.

use crate::context::{ContextId, ContextProfile, ContextTrieBuilder, FrameKey};
use crate::fasthash::FastMap;
use crate::tailcall::{InferStats, TailCallGraph};
use csspgo_codegen::minst::MInstKind;
use csspgo_codegen::{AddrIndex, Binary};
use csspgo_sim::Sample;
use std::collections::hash_map::Entry;

/// Collapses adjacent repeated subsequences in a context path (LLVM's
/// recursion-context compression): `[a b a b c]` → `[a b c]`, `[a a a]` →
/// `[a]`. Without this, recursive programs blow the context trie up
/// unboundedly.
pub fn compress_cycles(path: &mut Vec<FrameKey>) {
    loop {
        let mut changed = false;
        for period in 1..=4usize {
            let mut i = 0;
            while i + 2 * period <= path.len() {
                if path[i..i + period] == path[i + period..i + 2 * period] {
                    path.drain(i + period..i + 2 * period);
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Where unwound attributions land. The sink receives each hit's context
/// path as a borrowed slice (valid only for the duration of the call) plus
/// the sample multiplicity `count`, so implementations that aggregate
/// (profile tries) never force a per-hit allocation.
pub trait HitSink {
    /// Probe `index` of `owner` executed `count` times under `path`.
    fn probe(&mut self, path: &[FrameKey], owner: u64, index: u32, count: u64);
    /// `count` calls entered `owner` under `path`.
    fn entry(&mut self, path: &[FrameKey], owner: u64, count: u64);
}

impl HitSink for ContextProfile {
    fn probe(&mut self, path: &[FrameKey], owner: u64, index: u32, count: u64) {
        self.add_probe_hit(path, owner, index, count);
    }
    fn entry(&mut self, path: &[FrameKey], owner: u64, count: u64) {
        self.add_entry(path, owner, count);
    }
}

impl HitSink for ContextTrieBuilder {
    fn probe(&mut self, path: &[FrameKey], owner: u64, index: u32, count: u64) {
        self.add_probe_hit(path, owner, index, count);
    }
    fn entry(&mut self, path: &[FrameKey], owner: u64, count: u64) {
        self.add_entry(path, owner, count);
    }
}

/// Materializing sink behind [`Unwinder::unwind`]; weight-1 only (the
/// [`Hit`] value carries no count).
impl HitSink for Vec<Hit> {
    fn probe(&mut self, path: &[FrameKey], owner: u64, index: u32, count: u64) {
        debug_assert_eq!(count, 1, "Vec<Hit> sink is for unweighted unwinding");
        self.push(Hit::Probe {
            path: path.to_vec(),
            owner,
            index,
        });
    }
    fn entry(&mut self, path: &[FrameKey], owner: u64, count: u64) {
        debug_assert_eq!(count, 1, "Vec<Hit> sink is for unweighted unwinding");
        self.push(Hit::Entry {
            path: path.to_vec(),
            owner,
        });
    }
}

/// Attributes every probe anchored in `[begin, end]` with `ctx` expanded
/// by each probe's own inline stack, assembled in the reusable `path`
/// buffer.
#[allow(clippy::too_many_arguments)]
fn attribute_range(
    binary: &Binary,
    max_context_depth: usize,
    ctx: &[FrameKey],
    begin: usize,
    end: usize,
    weight: u64,
    path: &mut Vec<FrameKey>,
    sink: &mut impl HitSink,
) {
    if begin > end || binary.func_of[begin] != binary.func_of[end] {
        return;
    }
    for idx in begin..=end {
        for note in &binary.insts[idx].probes {
            path.clear();
            path.extend_from_slice(ctx);
            path.extend(note.inline_stack.iter().map(|s| FrameKey {
                guid: binary.funcs[s.func.index()].guid,
                probe: s.probe_index,
            }));
            compress_cycles(path);
            if path.len() > max_context_depth {
                path.drain(..path.len() - max_context_depth);
            }
            sink.probe(path, note.owner_guid, note.index, weight);
        }
    }
}

/// Builds the entry-hit context for `ctx` (compressed, depth-capped) into
/// `path`.
fn entry_context(max_context_depth: usize, ctx: &[FrameKey], path: &mut Vec<FrameKey>) {
    path.clear();
    path.extend_from_slice(ctx);
    compress_cycles(path);
    if path.len() > max_context_depth {
        path.drain(..path.len() - max_context_depth);
    }
}

/// How the unwind loop materializes attributions: either streamed through
/// a generic [`HitSink`] per hit, or replayed through the range-attribution
/// memo of the batched kernel. The two must stay observably identical —
/// `tests/proptest_kernel.rs` pins bit-identity of the resulting profiles.
trait Emit {
    /// Every probe in `[begin, end]` executed `weight` times under `ctx`.
    /// `ctx_gen` stamps the context's mutation generation within the
    /// current sample: equal stamps guarantee an unchanged `ctx`, letting
    /// memoizing emitters skip re-hashing it.
    #[allow(clippy::too_many_arguments)]
    fn range(
        &mut self,
        binary: &Binary,
        max_context_depth: usize,
        ctx: &[FrameKey],
        ctx_gen: u32,
        begin: usize,
        end: usize,
        weight: u64,
        path: &mut Vec<FrameKey>,
    );
    /// `weight` calls entered `owner` under `ctx`.
    fn entry(
        &mut self,
        max_context_depth: usize,
        ctx: &[FrameKey],
        ctx_gen: u32,
        owner: u64,
        weight: u64,
        path: &mut Vec<FrameKey>,
    );
}

/// The streaming emitter: assemble each hit's path and hand it straight to
/// the sink.
struct SinkEmit<'s, S: HitSink>(&'s mut S);

impl<S: HitSink> Emit for SinkEmit<'_, S> {
    fn range(
        &mut self,
        binary: &Binary,
        max_context_depth: usize,
        ctx: &[FrameKey],
        _ctx_gen: u32,
        begin: usize,
        end: usize,
        weight: u64,
        path: &mut Vec<FrameKey>,
    ) {
        attribute_range(
            binary,
            max_context_depth,
            ctx,
            begin,
            end,
            weight,
            path,
            self.0,
        );
    }

    fn entry(
        &mut self,
        max_context_depth: usize,
        ctx: &[FrameKey],
        _ctx_gen: u32,
        owner: u64,
        weight: u64,
        path: &mut Vec<FrameKey>,
    ) {
        entry_context(max_context_depth, ctx, path);
        self.0.entry(path, owner, weight);
    }
}

/// Memo of where attributions land in a paired [`ContextTrieBuilder`].
///
/// Whole-sample dedup collapses little on real streams — hot samples share
/// the *stack* but differ in LBR history — yet the `(context, LBR range)`
/// pairs inside them repeat massively. The cache interns each context
/// stack to a small id and keys range attributions on `(ctx, begin, end)`:
/// the first occurrence runs the full per-probe path assembly (cycle
/// compression, depth capping, trie interning) and records the landing
/// `(node, probe)` pairs; every repeat replays them as bare counter
/// increments. Entry hits memoize the same way per `(ctx, callee)`.
///
/// The recorded [`ContextId`]s are only meaningful for the builder they
/// were recorded against, so the cache lives and dies with one
/// [`CachedEmit`] batch.
#[derive(Default)]
struct AttributionCache {
    /// Context-stack interner: the running `ctx` → dense id.
    ctx_ids: FastMap<Vec<FrameKey>, u32>,
    /// `(ctx id, range begin, range end)` → recorded probe landings plus
    /// the weight of occurrences seen since recording. Repeats cost one
    /// hash probe and one add; the per-probe fan-out happens once per
    /// *distinct* range, in [`AttributionCache::flush`].
    ranges: FastMap<(u32, usize, usize), CachedRange>,
    /// `(ctx id, callee guid)` → interned entry node.
    entries: FastMap<(u32, u64), ContextId>,
}

/// One memoized range attribution.
#[derive(Default)]
struct CachedRange {
    /// Probe landings recorded on first occurrence (weight applied then).
    hits: Vec<(ContextId, u32)>,
    /// Accumulated weight of later occurrences, not yet fanned out.
    pending: u64,
}

impl AttributionCache {
    fn ctx_id(&mut self, ctx: &[FrameKey]) -> u32 {
        if let Some(&id) = self.ctx_ids.get(ctx) {
            return id;
        }
        let id = self.ctx_ids.len() as u32;
        self.ctx_ids.insert(ctx.to_vec(), id);
        id
    }

    /// Fans the deferred occurrence weights out to the builder's counters.
    /// Must run before the builder is read.
    fn flush(&mut self, builder: &mut ContextTrieBuilder) {
        for range in self.ranges.values_mut() {
            if range.pending > 0 {
                for &(node, probe) in &range.hits {
                    builder.add_probe_hit_at(node, probe, range.pending);
                }
                range.pending = 0;
            }
        }
    }
}

/// Sink that interns each hit into the builder *and* records where it
/// landed, so the attribution can be replayed without re-assembly.
struct RecordingSink<'a> {
    builder: &'a mut ContextTrieBuilder,
    hits: Vec<(ContextId, u32)>,
}

impl HitSink for RecordingSink<'_> {
    fn probe(&mut self, path: &[FrameKey], owner: u64, index: u32, count: u64) {
        let id = self.builder.intern(path, owner);
        self.builder.add_probe_hit_at(id, index, count);
        self.hits.push((id, index));
    }
    fn entry(&mut self, path: &[FrameKey], owner: u64, count: u64) {
        // Range attribution emits probe hits only; entries go through
        // `CachedEmit::entry` directly.
        let id = self.builder.intern(path, owner);
        self.builder.add_entry_at(id, count);
    }
}

/// The memoizing emitter behind [`Unwinder::unwind_batched`].
struct CachedEmit<'a> {
    builder: &'a mut ContextTrieBuilder,
    cache: &'a mut AttributionCache,
    /// `(ctx_gen, ctx id)` of the last interned context: consecutive
    /// ranges under an unchanged context (the common case — conditional
    /// branches inside one function) skip the interner entirely.
    last_ctx: Option<(u32, u32)>,
}

impl CachedEmit<'_> {
    fn ctx_id(&mut self, ctx: &[FrameKey], ctx_gen: u32) -> u32 {
        if let Some((gen, id)) = self.last_ctx {
            if gen == ctx_gen {
                return id;
            }
        }
        let id = self.cache.ctx_id(ctx);
        self.last_ctx = Some((ctx_gen, id));
        id
    }
}

impl Emit for CachedEmit<'_> {
    fn range(
        &mut self,
        binary: &Binary,
        max_context_depth: usize,
        ctx: &[FrameKey],
        ctx_gen: u32,
        begin: usize,
        end: usize,
        weight: u64,
        path: &mut Vec<FrameKey>,
    ) {
        let ctx_id = self.ctx_id(ctx, ctx_gen);
        match self.cache.ranges.entry((ctx_id, begin, end)) {
            Entry::Occupied(e) => e.into_mut().pending += weight,
            Entry::Vacant(slot) => {
                let mut rec = RecordingSink {
                    builder: self.builder,
                    hits: Vec::new(),
                };
                attribute_range(
                    binary,
                    max_context_depth,
                    ctx,
                    begin,
                    end,
                    weight,
                    path,
                    &mut rec,
                );
                slot.insert(CachedRange {
                    hits: rec.hits,
                    pending: 0,
                });
            }
        }
    }

    fn entry(
        &mut self,
        max_context_depth: usize,
        ctx: &[FrameKey],
        ctx_gen: u32,
        owner: u64,
        weight: u64,
        path: &mut Vec<FrameKey>,
    ) {
        let ctx_id = self.ctx_id(ctx, ctx_gen);
        let id = match self.cache.entries.entry((ctx_id, owner)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(slot) => {
                entry_context(max_context_depth, ctx, path);
                *slot.insert(self.builder.intern(path, owner))
            }
        };
        self.builder.add_entry_at(id, weight);
    }
}

/// Reusable per-sample working buffers. One allocation set lives for the
/// unwinder's whole lifetime instead of being rebuilt per sample/hit.
#[derive(Default)]
struct UnwindScratch {
    /// Physical call-site instruction indices from the sampled stack.
    callsites: Vec<usize>,
    /// The running context stack.
    ctx: Vec<FrameKey>,
    /// LBR entries resolved to instruction indices.
    resolved: Vec<(usize, usize)>,
    /// Per-hit path assembly buffer (ctx + inline frames, compressed).
    path: Vec<FrameKey>,
    /// Initial-context memo: `stack → pc → outcome`. LBR histories give
    /// samples high entropy, but their `(stack, pc)` projection repeats
    /// constantly, and the stack walk (address resolution, frame
    /// expansion, tail-call inference) depends on nothing else — so it
    /// runs once per distinct shape and replays as a `memcpy` plus
    /// weight-scaled diagnostic deltas.
    stack_ctx: FastMap<Vec<u64>, FastMap<u64, StackCtx>>,
}

/// Memoized outcome of one `(stack, pc)` initial-context reconstruction.
/// Diagnostic counters are stored per occurrence and scale by the
/// sample's weight on replay.
struct StackCtx {
    ok: bool,
    ctx: Vec<FrameKey>,
    recovered: u64,
    failed: u64,
    broken: u64,
}

/// Expands the call-site instruction at `idx` into context frames pushed
/// onto `out`: the call probe's inline stack plus the probe itself. Returns
/// `false` — pushing nothing — when the instruction carries no call probe
/// (probe-less builds).
fn push_callsite_frames(binary: &Binary, idx: usize, out: &mut Vec<FrameKey>) -> bool {
    let Some(note) = binary.insts[idx]
        .probes
        .iter()
        .rev()
        .find(|n| matches!(n.kind, csspgo_ir::ProbeKind::Call))
    else {
        return false;
    };
    out.extend(note.inline_stack.iter().map(|s| FrameKey {
        guid: binary.funcs[s.func.index()].guid,
        probe: s.probe_index,
    }));
    out.push(FrameKey {
        guid: note.owner_guid,
        probe: note.index,
    });
    true
}

/// Context reconstruction engine for one binary.
pub struct Unwinder<'b> {
    binary: &'b Binary,
    tail_graph: Option<&'b TailCallGraph>,
    /// Maximum context depth kept when attributing (deeper paths keep their
    /// innermost frames). Recursion would otherwise blow the trie up
    /// unboundedly — LLVM's CSSPGO caps context depth the same way.
    pub max_context_depth: usize,
    /// Tail-call frame recovery statistics.
    pub infer_stats: InferStats,
    /// Samples whose stack could not be interpreted at all.
    pub broken_stacks: u64,
    scratch: UnwindScratch,
    /// Per-instruction call-site frame expansion, precomputed once: the
    /// probe-note scan in [`push_callsite_frames`] runs per *instruction*
    /// instead of per branch per sample. `None` marks instructions without
    /// a call probe.
    cs_frames: Vec<Option<Box<[FrameKey]>>>,
    /// Dense byte→instruction map: every LBR entry and stack frame
    /// resolves with an array load instead of a binary search.
    addr_index: AddrIndex,
}

/// One attribution produced by unwinding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hit {
    /// Probe `index` of function `owner` executed under `path`.
    Probe {
        path: Vec<FrameKey>,
        owner: u64,
        index: u32,
    },
    /// A call entered function `owner` under `path`.
    Entry { path: Vec<FrameKey>, owner: u64 },
}

impl<'b> Unwinder<'b> {
    /// Creates an unwinder; pass a tail-call graph to enable missing-frame
    /// inference.
    pub fn new(binary: &'b Binary, tail_graph: Option<&'b TailCallGraph>) -> Self {
        let cs_frames = (0..binary.insts.len())
            .map(|i| {
                let mut frames = Vec::new();
                push_callsite_frames(binary, i, &mut frames).then(|| frames.into_boxed_slice())
            })
            .collect();
        Unwinder {
            binary,
            tail_graph,
            max_context_depth: 8,
            infer_stats: InferStats::default(),
            broken_stacks: 0,
            scratch: UnwindScratch::default(),
            cs_frames,
            addr_index: AddrIndex::build(binary),
        }
    }

    /// Pushes the precomputed call-site frames of `idx` onto `out`;
    /// `false` — pushing nothing — when the instruction carries no call
    /// probe (probe-less builds).
    fn push_cs(&self, idx: usize, out: &mut Vec<FrameKey>) -> bool {
        match &self.cs_frames[idx] {
            Some(frames) => {
                out.extend_from_slice(frames);
                true
            }
            None => false,
        }
    }

    /// Converts the sampled stack into an initial context (outer→inner
    /// call-site frames) in `scratch.ctx`, memoized per `(stack, pc)` —
    /// see [`UnwindScratch::stack_ctx`]. Returns `false` when the stack is
    /// uninterpretable, scaling diagnostic counters by `weight`.
    fn initial_context_into(
        &mut self,
        sample: &Sample,
        weight: u64,
        scratch: &mut UnwindScratch,
    ) -> bool {
        scratch.ctx.clear();
        if let Some(memo) = scratch
            .stack_ctx
            .get(sample.stack.as_slice())
            .and_then(|per_pc| per_pc.get(&sample.pc))
        {
            self.infer_stats.recovered += memo.recovered * weight;
            self.infer_stats.failed += memo.failed * weight;
            self.broken_stacks += memo.broken * weight;
            scratch.ctx.extend_from_slice(&memo.ctx);
            return memo.ok;
        }
        // Every diagnostic increment below is a multiple of `weight`, so
        // the per-occurrence deltas divide back out exactly.
        let before = (
            self.infer_stats.recovered,
            self.infer_stats.failed,
            self.broken_stacks,
        );
        let ok =
            self.initial_context_uncached(sample, weight, &mut scratch.ctx, &mut scratch.callsites);
        let memo = StackCtx {
            ok,
            ctx: scratch.ctx.clone(),
            recovered: (self.infer_stats.recovered - before.0) / weight,
            failed: (self.infer_stats.failed - before.1) / weight,
            broken: (self.broken_stacks - before.2) / weight,
        };
        scratch
            .stack_ctx
            .entry(sample.stack.clone())
            .or_default()
            .insert(sample.pc, memo);
        ok
    }

    /// The memo-miss path of [`Unwinder::initial_context_into`]: the
    /// actual stack walk with missing-frame inference across tail-call
    /// gaps.
    fn initial_context_uncached(
        &mut self,
        sample: &Sample,
        weight: u64,
        ctx: &mut Vec<FrameKey>,
        callsites: &mut Vec<usize>,
    ) -> bool {
        ctx.clear();
        callsites.clear();
        // Physical call sites, outermost first.
        for &ret_addr in sample.stack.iter().skip(1).rev() {
            let Some(ret_idx) = self.addr_index.index_of_addr(ret_addr) else {
                return false;
            };
            if ret_idx == 0 {
                return false;
            }
            let call_idx = ret_idx - 1;
            if !matches!(self.binary.insts[call_idx].kind, MInstKind::Call { .. }) {
                self.broken_stacks += weight;
                return false;
            }
            callsites.push(call_idx);
        }

        let Some(leaf_idx) = self.addr_index.index_of_addr(sample.pc) else {
            return false;
        };
        for k in 0..callsites.len() {
            let cs = callsites[k];
            let MInstKind::Call { callee, .. } = self.binary.insts[cs].kind else {
                unreachable!("validated above")
            };
            // The function the *next* frame actually executes in.
            let next_func = match callsites.get(k + 1) {
                Some(&next_cs) => self.binary.func_of[next_cs],
                None => self.binary.func_of[leaf_idx],
            };
            if !self.push_cs(cs, ctx) {
                return false; // probe-less build: no context reconstruction
            }
            if callee != next_func {
                // Frames are missing between `callee` and `next_func`:
                // tail-call elimination. Try to infer the unique chain.
                let path = self
                    .tail_graph
                    .and_then(|g| g.unique_path(callee, next_func));
                match path {
                    Some(tail_insts) => {
                        self.infer_stats.recovered += tail_insts.len() as u64 * weight;
                        for ti in tail_insts {
                            if !self.push_cs(ti, ctx) {
                                return false;
                            }
                        }
                    }
                    None => {
                        self.infer_stats.failed += weight;
                        // Context is only trustworthy from here inward.
                        ctx.clear();
                    }
                }
            }
        }
        true
    }

    /// Unwinds one sample into probe/entry hits (the allocation-per-hit
    /// reference API; the aggregation paths use [`Unwinder::unwind_each`]).
    pub fn unwind(&mut self, sample: &Sample) -> Vec<Hit> {
        let mut hits = Vec::new();
        self.unwind_each(sample, 1, &mut hits);
        hits
    }

    /// Unwinds one sample observed `weight` times, streaming every hit into
    /// `sink` with multiplicity `weight`. All diagnostic counters scale by
    /// `weight`, so unwinding a deduplicated `(sample, count)` batch leaves
    /// the unwinder in exactly the state `count` repeats would have.
    pub fn unwind_each(&mut self, sample: &Sample, weight: u64, sink: &mut impl HitSink) {
        // The scratch set steps out of `self` for the duration so the
        // borrow checker can see its buffers and `&self` lookups disjointly.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.unwind_with_scratch(sample, weight, &mut SinkEmit(sink), &mut scratch);
        self.scratch = scratch;
    }

    fn unwind_with_scratch(
        &mut self,
        sample: &Sample,
        weight: u64,
        emit: &mut impl Emit,
        scratch: &mut UnwindScratch,
    ) {
        if !self.initial_context_into(sample, weight, scratch) {
            return;
        }
        let Some(pc_idx) = self.addr_index.index_of_addr(sample.pc) else {
            return;
        };

        // Resolve LBR entries to instruction indices, newest last.
        scratch.resolved.clear();
        for &(from, to) in &sample.lbr {
            if let (Some(f), Some(t)) = (
                self.addr_index.index_of_addr(from),
                self.addr_index.index_of_addr(to),
            ) {
                scratch.resolved.push((f, t));
            }
        }

        let mut window_end = pc_idx;
        // Bumped whenever `scratch.ctx` is (possibly) mutated, so memoizing
        // emitters re-hash the context only when it could have changed.
        let mut ctx_gen: u32 = 0;
        for i in (0..scratch.resolved.len()).rev() {
            let (from_idx, to_idx) = scratch.resolved[i];
            // Attribute the linear range executed after this branch.
            emit.range(
                self.binary,
                self.max_context_depth,
                &scratch.ctx,
                ctx_gen,
                to_idx,
                window_end,
                weight,
                &mut scratch.path,
            );
            // Entry hit for calls (the callee runs under the current ctx).
            match self.binary.insts[from_idx].kind {
                MInstKind::Call { .. } | MInstKind::TailCall { .. } => {
                    let callee_fidx = self.binary.func_of[to_idx];
                    if self.binary.funcs[callee_fidx as usize].entry == to_idx {
                        emit.entry(
                            self.max_context_depth,
                            &scratch.ctx,
                            ctx_gen,
                            self.binary.funcs[callee_fidx as usize].guid,
                            weight,
                            &mut scratch.path,
                        );
                    }
                }
                _ => {}
            }
            // Step backwards over the branch, adjusting the context.
            match self.binary.insts[from_idx].kind {
                MInstKind::Call { .. } | MInstKind::TailCall { .. } => {
                    ctx_gen += 1;
                    // Before the call we were in the caller: its call-site
                    // frames (as many as the call expands to) pop off. A
                    // tail call's frame was synthesized by the inferrer, so
                    // it pops the same way.
                    match &self.cs_frames[from_idx] {
                        Some(frames) => {
                            let keep = scratch.ctx.len().saturating_sub(frames.len());
                            scratch.ctx.truncate(keep);
                        }
                        None => scratch.ctx.clear(),
                    }
                }
                MInstKind::Ret { .. } => {
                    ctx_gen += 1;
                    // Before the return we were inside the returning
                    // function; the call site that entered it pushes on. If
                    // the call site's static callee is not the returning
                    // function, tail calls elided frames in between —
                    // re-run the missing-frame inference.
                    let callsite = to_idx.checked_sub(1);
                    let call_target = callsite.and_then(|cs| match self.binary.insts[cs].kind {
                        MInstKind::Call { callee, .. } => Some((cs, callee)),
                        _ => None,
                    });
                    match call_target {
                        Some((cs, callee)) => {
                            if !self.push_cs(cs, &mut scratch.ctx) {
                                scratch.ctx.clear();
                            }
                            let src_func = self.binary.func_of[from_idx];
                            if callee != src_func {
                                match self
                                    .tail_graph
                                    .and_then(|g| g.unique_path(callee, src_func))
                                {
                                    Some(tail_insts) => {
                                        self.infer_stats.recovered +=
                                            tail_insts.len() as u64 * weight;
                                        for ti in tail_insts {
                                            if !self.push_cs(ti, &mut scratch.ctx) {
                                                scratch.ctx.clear();
                                                break;
                                            }
                                        }
                                    }
                                    None => {
                                        self.infer_stats.failed += weight;
                                        scratch.ctx.clear();
                                    }
                                }
                            }
                        }
                        None => {
                            // Return into the harness or unknown code.
                            scratch.ctx.clear();
                        }
                    }
                }
                _ => {}
            }
            window_end = from_idx;
        }
    }

    /// Unwinds a batch of samples straight into a context profile, reusing
    /// one scratch-buffer set across the whole batch.
    pub fn unwind_into(&mut self, samples: &[Sample], profile: &mut ContextProfile) {
        for s in samples {
            self.unwind_each(s, 1, profile);
        }
    }

    /// The fast correlation path: pre-aggregates identical samples so each
    /// distinct `(pc, lbr, stack)` shape is unwound **once** with its
    /// multiplicity as the hit weight, then memoizes *within* the unwind —
    /// real streams rarely repeat whole samples (hot code shares the stack
    /// but varies the LBR history), yet the `(context, LBR range)` pairs
    /// inside them repeat constantly, so each distinct attribution is
    /// assembled once and replayed as counter increments thereafter (see
    /// `AttributionCache`). Hits land in a hash-consed
    /// [`ContextTrieBuilder`]. The result — counts, structure, and the
    /// unwinder's diagnostic counters — is bit-identical to
    /// [`Unwinder::unwind_into`] over the same stream (see
    /// `tests/proptest_kernel.rs`).
    pub fn unwind_batched(&mut self, samples: &[Sample]) -> ContextProfile {
        /// Dedup key borrowing a sample's content verbatim.
        type SampleKey<'a> = (u64, &'a [(u64, u64)], &'a [u64]);
        let mut index: FastMap<SampleKey<'_>, usize> =
            FastMap::with_capacity_and_hasher(samples.len(), Default::default());
        let mut uniques: Vec<(&Sample, u64)> = Vec::new();
        for s in samples {
            match index.entry((s.pc, s.lbr.as_slice(), s.stack.as_slice())) {
                Entry::Occupied(e) => uniques[*e.get()].1 += 1,
                Entry::Vacant(e) => {
                    e.insert(uniques.len());
                    uniques.push((s, 1));
                }
            }
        }
        let mut builder = ContextTrieBuilder::new();
        let mut cache = AttributionCache::default();
        let mut scratch = std::mem::take(&mut self.scratch);
        for &(s, w) in &uniques {
            let mut emit = CachedEmit {
                builder: &mut builder,
                cache: &mut cache,
                last_ctx: None,
            };
            self.unwind_with_scratch(s, w, &mut emit, &mut scratch);
        }
        self.scratch = scratch;
        cache.flush(&mut builder);
        builder.into_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeCounts;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    /// The paper's Fig. 4 shape: a shared helper whose behaviour depends on
    /// the calling context.
    const SRC: &str = r#"
fn scalar_add(a, b) { return a + b; }
fn scalar_sub(a, b) { return a - b; }
fn scalar_op(a, b, is_add) {
    if (is_add == 1) { return scalar_add(a, b); }
    return scalar_sub(a, b);
}
fn add_vector_head(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = scalar_op(s, i, 1); i = i + 1; }
    return s;
}
fn sub_vector_head(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = scalar_op(s, i, 0); i = i + 1; }
    return s;
}
fn main(n) {
    let x = add_vector_head(n);
    let y = sub_vector_head(n);
    return x + y;
}
"#;

    fn profile_with_contexts(src: &str, arg: i64) -> (Binary, ContextProfile, InferStats) {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 41,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[arg]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let graph = TailCallGraph::build(&b, &rc);
        let mut profile = ContextProfile::new();
        let mut uw = Unwinder::new(&b, Some(&graph));
        uw.unwind_into(&samples, &mut profile);
        let stats = uw.infer_stats;
        (b, profile, stats)
    }

    /// Finds every subtree node with `guid`, noting whether `ancestor` was
    /// passed through on the way.
    fn subtree_total_under(
        node: &crate::context::ContextNode,
        target: u64,
        ancestor: u64,
        under: bool,
    ) -> u64 {
        let own = if node.guid == target && under {
            node.self_total()
        } else {
            0
        };
        own + node
            .children
            .values()
            .map(|c| subtree_total_under(c, target, ancestor, under || node.guid == ancestor))
            .sum::<u64>()
    }

    /// The dense byte→instruction map must agree with the binary-search
    /// resolver on every address — in-range, boundary, and garbage.
    #[test]
    fn addr_index_agrees_with_binary_search() {
        let (b, _, _) = profile_with_contexts(SRC, 500);
        let index = AddrIndex::build(&b);
        let lo = b.addrs.first().copied().unwrap();
        let hi = b.addrs.last().copied().unwrap() + b.insts.last().unwrap().size as u64;
        for addr in lo.saturating_sub(16)..hi + 16 {
            assert_eq!(
                index.index_of_addr(addr),
                b.index_of_addr(addr),
                "disagreement at {addr:#x}"
            );
        }
        assert_eq!(index.index_of_addr(u64::MAX), b.index_of_addr(u64::MAX));
    }

    #[test]
    fn contexts_distinguish_callers_of_shared_helper() {
        let (b, profile, _) = profile_with_contexts(SRC, 3000);
        let guid = |n: &str| b.func_by_name(n).unwrap().guid;
        // scalar_op must appear under BOTH vector heads as distinct contexts
        // (somewhere below the main root).
        let op = guid("scalar_op");
        let via_add: u64 = profile
            .roots
            .values()
            .map(|r| subtree_total_under(r, op, guid("add_vector_head"), false))
            .sum();
        let via_sub: u64 = profile
            .roots
            .values()
            .map(|r| subtree_total_under(r, op, guid("sub_vector_head"), false))
            .sum();
        assert!(via_add > 0, "scalar_op context under add_vector_head");
        assert!(via_sub > 0, "scalar_op context under sub_vector_head");
    }

    #[test]
    fn context_profile_reflects_divergent_callees() {
        let (b, profile, _) = profile_with_contexts(SRC, 3000);
        let guid = |n: &str| b.func_by_name(n).unwrap().guid;
        // Under add_vector_head, scalar_add should dominate scalar_sub (and
        // vice versa) — the paper's Fig. 3b insight.
        let totals = |ancestor: &str, target: &str| -> u64 {
            profile
                .roots
                .values()
                .map(|r| subtree_total_under(r, guid(target), guid(ancestor), false))
                .sum()
        };
        let add_in_add = totals("add_vector_head", "scalar_add");
        let sub_in_add = totals("add_vector_head", "scalar_sub");
        let add_in_sub = totals("sub_vector_head", "scalar_add");
        let sub_in_sub = totals("sub_vector_head", "scalar_sub");
        assert!(add_in_add > sub_in_add, "{add_in_add} vs {sub_in_add}");
        assert!(sub_in_sub > add_in_sub, "{sub_in_sub} vs {add_in_sub}");
    }

    #[test]
    fn tail_call_frames_recovered() {
        let src = r#"
fn leaf(n) {
    let i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
fn mid(n) { return leaf(n); }
fn top(n) { let r = mid(n); return r; }
fn main(n) { return top(n); }
"#;
        let (b, profile, stats) = profile_with_contexts(src, 4000);
        assert!(
            stats.recovered > 0,
            "tail frames must be recovered: {stats:?}"
        );
        // leaf's hot loop must appear under a context mentioning mid.
        let guid = |n: &str| b.func_by_name(n).unwrap().guid;
        fn has_leaf_under_mid(
            node: &crate::context::ContextNode,
            mid: u64,
            leaf: u64,
            under_mid: bool,
        ) -> bool {
            if node.guid == leaf && under_mid && node.self_total() > 0 {
                return true;
            }
            node.children
                .values()
                .any(|c| has_leaf_under_mid(c, mid, leaf, under_mid || node.guid == mid))
        }
        let ok = profile
            .roots
            .values()
            .any(|r| has_leaf_under_mid(r, guid("mid"), guid("leaf"), false));
        assert!(ok, "leaf must be contextualized under mid despite TCE");
    }

    #[test]
    fn compress_cycles_collapses_repeats() {
        let f = |g: u64, p: u32| FrameKey { guid: g, probe: p };
        let mut p = vec![f(1, 2), f(1, 2), f(1, 2)];
        compress_cycles(&mut p);
        assert_eq!(p, vec![f(1, 2)]);
        let mut p = vec![f(1, 5), f(1, 7), f(1, 5), f(1, 7), f(2, 1)];
        compress_cycles(&mut p);
        assert_eq!(p, vec![f(1, 5), f(1, 7), f(2, 1)]);
        let mut p = vec![f(1, 5), f(2, 5), f(3, 5)];
        compress_cycles(&mut p);
        assert_eq!(p.len(), 3, "aperiodic paths untouched");
    }

    #[test]
    fn batched_unwind_matches_sequential() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        let b = lower_module(&m, &CodegenConfig::default());
        let mut machine = Machine::new(
            &b,
            SimConfig {
                sample_period: 41,
                ..SimConfig::default()
            },
        );
        machine.call("main", &[3000]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let graph = TailCallGraph::build(&b, &rc);

        let mut seq = ContextProfile::new();
        let mut uw_seq = Unwinder::new(&b, Some(&graph));
        uw_seq.unwind_into(&samples, &mut seq);

        let mut uw_fast = Unwinder::new(&b, Some(&graph));
        let fast = uw_fast.unwind_batched(&samples);

        assert_eq!(fast, seq);
        assert_eq!(uw_fast.infer_stats.recovered, uw_seq.infer_stats.recovered);
        assert_eq!(uw_fast.infer_stats.failed, uw_seq.infer_stats.failed);
        assert_eq!(uw_fast.broken_stacks, uw_seq.broken_stacks);
    }

    #[test]
    fn probeless_binary_produces_no_contexts() {
        let m = csspgo_lang::compile(SRC, "t").unwrap();
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 41,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[500]).unwrap();
        let samples = machine.take_samples();
        let mut profile = ContextProfile::new();
        let mut uw = Unwinder::new(&b, None);
        uw.unwind_into(&samples, &mut profile);
        assert_eq!(profile.total(), 0, "no probes, no probe hits");
    }
}
