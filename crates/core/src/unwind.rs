//! **Algorithm 1**: reconstructing the calling context of each LBR range
//! from a synchronized LBR + stack sample (paper §III.B).
//!
//! LBR branches are processed in reverse execution order (newest first). A
//! running context stack starts from the sampled frame-pointer chain and is
//! surgically adjusted at each call/return boundary:
//!
//! * stepping (backwards) over a **call**: the code before the call ran in
//!   the caller, so the caller's call-site frame pops off the context;
//! * stepping over a **return** from `F`: the code before ran inside `F`,
//!   so the call site that had entered `F` (the instruction before the
//!   return target) pushes onto the context;
//! * **tail calls** replace their frame: context unchanged.
//!
//! Each linear range between consecutive taken branches is attributed with
//! the context in effect, and inline frames are expanded per probe
//! (`ExpandInlinedFrames`): every pseudo-probe note carries its own inline
//! stack, so splitting ranges at inline boundaries happens per anchored
//! probe.
//!
//! The missing-frame inferrer ([`crate::tailcall`]) repairs the initial
//! stack where tail-call elimination removed frames.

use crate::context::{ContextProfile, FrameKey};
use crate::tailcall::{InferStats, TailCallGraph};
use csspgo_codegen::minst::MInstKind;
use csspgo_codegen::Binary;
use csspgo_sim::Sample;

/// Collapses adjacent repeated subsequences in a context path (LLVM's
/// recursion-context compression): `[a b a b c]` → `[a b c]`, `[a a a]` →
/// `[a]`. Without this, recursive programs blow the context trie up
/// unboundedly.
pub fn compress_cycles(path: &mut Vec<FrameKey>) {
    loop {
        let mut changed = false;
        for period in 1..=4usize {
            let mut i = 0;
            while i + 2 * period <= path.len() {
                if path[i..i + period] == path[i + period..i + 2 * period] {
                    path.drain(i + period..i + 2 * period);
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Context reconstruction engine for one binary.
pub struct Unwinder<'b> {
    binary: &'b Binary,
    tail_graph: Option<&'b TailCallGraph>,
    /// Maximum context depth kept when attributing (deeper paths keep their
    /// innermost frames). Recursion would otherwise blow the trie up
    /// unboundedly — LLVM's CSSPGO caps context depth the same way.
    pub max_context_depth: usize,
    /// Tail-call frame recovery statistics.
    pub infer_stats: InferStats,
    /// Samples whose stack could not be interpreted at all.
    pub broken_stacks: u64,
}

/// One attribution produced by unwinding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hit {
    /// Probe `index` of function `owner` executed under `path`.
    Probe {
        path: Vec<FrameKey>,
        owner: u64,
        index: u32,
    },
    /// A call entered function `owner` under `path`.
    Entry { path: Vec<FrameKey>, owner: u64 },
}

impl<'b> Unwinder<'b> {
    /// Creates an unwinder; pass a tail-call graph to enable missing-frame
    /// inference.
    pub fn new(binary: &'b Binary, tail_graph: Option<&'b TailCallGraph>) -> Self {
        Unwinder {
            binary,
            tail_graph,
            max_context_depth: 8,
            infer_stats: InferStats::default(),
            broken_stacks: 0,
        }
    }

    /// Expands the call-site instruction at `idx` into context frames: the
    /// call probe's inline stack plus the probe itself. `None` when the
    /// instruction carries no call probe (probe-less builds).
    fn callsite_frames(&self, idx: usize) -> Option<Vec<FrameKey>> {
        let note = self.binary.insts[idx]
            .probes
            .iter()
            .rev()
            .find(|n| matches!(n.kind, csspgo_ir::ProbeKind::Call))?;
        let mut frames: Vec<FrameKey> = note
            .inline_stack
            .iter()
            .map(|s| FrameKey {
                guid: self.binary.funcs[s.func.index()].guid,
                probe: s.probe_index,
            })
            .collect();
        frames.push(FrameKey {
            guid: note.owner_guid,
            probe: note.index,
        });
        Some(frames)
    }

    /// Converts the sampled stack into an initial context (outer→inner
    /// call-site frames), running missing-frame inference across tail-call
    /// gaps.
    fn initial_context(&mut self, sample: &Sample) -> Option<Vec<FrameKey>> {
        // Physical call sites, outermost first.
        let mut callsites: Vec<usize> = Vec::new();
        for &ret_addr in sample.stack.iter().skip(1).rev() {
            let ret_idx = self.binary.index_of_addr(ret_addr)?;
            if ret_idx == 0 {
                return None;
            }
            let call_idx = ret_idx - 1;
            if !matches!(self.binary.insts[call_idx].kind, MInstKind::Call { .. }) {
                self.broken_stacks += 1;
                return None;
            }
            callsites.push(call_idx);
        }

        let leaf_idx = self.binary.index_of_addr(sample.pc)?;
        let mut ctx: Vec<FrameKey> = Vec::new();
        for (k, &cs) in callsites.iter().enumerate() {
            let MInstKind::Call { callee, .. } = self.binary.insts[cs].kind else {
                unreachable!("validated above")
            };
            // The function the *next* frame actually executes in.
            let next_func = match callsites.get(k + 1) {
                Some(&next_cs) => self.binary.func_of[next_cs],
                None => self.binary.func_of[leaf_idx],
            };
            let Some(frames) = self.callsite_frames(cs) else {
                return None; // probe-less build: no context reconstruction
            };
            ctx.extend(frames);
            if callee != next_func {
                // Frames are missing between `callee` and `next_func`:
                // tail-call elimination. Try to infer the unique chain.
                let path = self
                    .tail_graph
                    .and_then(|g| g.unique_path(callee, next_func));
                match path {
                    Some(tail_insts) => {
                        self.infer_stats.recovered += tail_insts.len() as u64;
                        for ti in tail_insts {
                            match self.callsite_frames(ti) {
                                Some(frames) => ctx.extend(frames),
                                None => return None,
                            }
                        }
                    }
                    None => {
                        self.infer_stats.failed += 1;
                        // Context is only trustworthy from here inward.
                        ctx.clear();
                    }
                }
            }
        }
        Some(ctx)
    }

    /// Unwinds one sample into probe/entry hits.
    pub fn unwind(&mut self, sample: &Sample) -> Vec<Hit> {
        let mut hits = Vec::new();
        let Some(mut ctx) = self.initial_context(sample) else {
            return hits;
        };
        let Some(pc_idx) = self.binary.index_of_addr(sample.pc) else {
            return hits;
        };

        // Resolve LBR entries to instruction indices, newest last.
        let resolved: Vec<(usize, usize)> = sample
            .lbr
            .iter()
            .filter_map(|&(from, to)| {
                Some((
                    self.binary.index_of_addr(from)?,
                    self.binary.index_of_addr(to)?,
                ))
            })
            .collect();

        let mut window_end = pc_idx;
        for &(from_idx, to_idx) in resolved.iter().rev() {
            // Attribute the linear range executed after this branch.
            self.attribute(&ctx, to_idx, window_end, &mut hits);
            // Entry hit for calls (the callee runs under the current ctx).
            match self.binary.insts[from_idx].kind {
                MInstKind::Call { .. } | MInstKind::TailCall { .. } => {
                    let callee_fidx = self.binary.func_of[to_idx];
                    if self.binary.funcs[callee_fidx as usize].entry == to_idx {
                        let mut path = ctx.clone();
                        compress_cycles(&mut path);
                        if path.len() > self.max_context_depth {
                            path.drain(..path.len() - self.max_context_depth);
                        }
                        hits.push(Hit::Entry {
                            path,
                            owner: self.binary.funcs[callee_fidx as usize].guid,
                        });
                    }
                }
                _ => {}
            }
            // Step backwards over the branch, adjusting the context.
            match self.binary.insts[from_idx].kind {
                MInstKind::Call { .. } | MInstKind::TailCall { .. } => {
                    // Before the call we were in the caller: its call-site
                    // frames (as many as the call expands to) pop off. A
                    // tail call's frame was synthesized by the inferrer, so
                    // it pops the same way.
                    if let Some(frames) = self.callsite_frames(from_idx) {
                        for _ in 0..frames.len() {
                            ctx.pop();
                        }
                    } else {
                        ctx.clear();
                    }
                }
                MInstKind::Ret { .. } => {
                    // Before the return we were inside the returning
                    // function; the call site that entered it pushes on. If
                    // the call site's static callee is not the returning
                    // function, tail calls elided frames in between —
                    // re-run the missing-frame inference.
                    let callsite = to_idx.checked_sub(1);
                    let call_target = callsite.and_then(|cs| match self.binary.insts[cs].kind {
                        MInstKind::Call { callee, .. } => Some((cs, callee)),
                        _ => None,
                    });
                    match call_target {
                        Some((cs, callee)) => {
                            match self.callsite_frames(cs) {
                                Some(frames) => ctx.extend(frames),
                                None => ctx.clear(),
                            }
                            let src_func = self.binary.func_of[from_idx];
                            if callee != src_func {
                                match self
                                    .tail_graph
                                    .and_then(|g| g.unique_path(callee, src_func))
                                {
                                    Some(tail_insts) => {
                                        self.infer_stats.recovered += tail_insts.len() as u64;
                                        for ti in tail_insts {
                                            match self.callsite_frames(ti) {
                                                Some(frames) => ctx.extend(frames),
                                                None => {
                                                    ctx.clear();
                                                    break;
                                                }
                                            }
                                        }
                                    }
                                    None => {
                                        self.infer_stats.failed += 1;
                                        ctx.clear();
                                    }
                                }
                            }
                        }
                        None => {
                            // Return into the harness or unknown code.
                            ctx.clear();
                        }
                    }
                }
                _ => {}
            }
            window_end = from_idx;
        }
        hits
    }

    /// Attributes every probe anchored in `[begin, end]` with `ctx` expanded
    /// by each probe's own inline stack.
    fn attribute(&self, ctx: &[FrameKey], begin: usize, end: usize, hits: &mut Vec<Hit>) {
        if begin > end || self.binary.func_of[begin] != self.binary.func_of[end] {
            return;
        }
        for idx in begin..=end {
            for note in &self.binary.insts[idx].probes {
                let mut path: Vec<FrameKey> = ctx.to_vec();
                path.extend(note.inline_stack.iter().map(|s| FrameKey {
                    guid: self.binary.funcs[s.func.index()].guid,
                    probe: s.probe_index,
                }));
                compress_cycles(&mut path);
                if path.len() > self.max_context_depth {
                    path.drain(..path.len() - self.max_context_depth);
                }
                hits.push(Hit::Probe {
                    path,
                    owner: note.owner_guid,
                    index: note.index,
                });
            }
        }
    }

    /// Unwinds a batch of samples straight into a context profile.
    pub fn unwind_into(&mut self, samples: &[Sample], profile: &mut ContextProfile) {
        for s in samples {
            for hit in self.unwind(s) {
                match hit {
                    Hit::Probe { path, owner, index } => {
                        profile.add_probe_hit(&path, owner, index, 1);
                    }
                    Hit::Entry { path, owner } => {
                        profile.add_entry(&path, owner, 1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RangeCounts;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    /// The paper's Fig. 4 shape: a shared helper whose behaviour depends on
    /// the calling context.
    const SRC: &str = r#"
fn scalar_add(a, b) { return a + b; }
fn scalar_sub(a, b) { return a - b; }
fn scalar_op(a, b, is_add) {
    if (is_add == 1) { return scalar_add(a, b); }
    return scalar_sub(a, b);
}
fn add_vector_head(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = scalar_op(s, i, 1); i = i + 1; }
    return s;
}
fn sub_vector_head(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = scalar_op(s, i, 0); i = i + 1; }
    return s;
}
fn main(n) {
    let x = add_vector_head(n);
    let y = sub_vector_head(n);
    return x + y;
}
"#;

    fn profile_with_contexts(src: &str, arg: i64) -> (Binary, ContextProfile, InferStats) {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 41,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[arg]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let graph = TailCallGraph::build(&b, &rc);
        let mut profile = ContextProfile::new();
        let mut uw = Unwinder::new(&b, Some(&graph));
        uw.unwind_into(&samples, &mut profile);
        let stats = uw.infer_stats;
        (b, profile, stats)
    }

    /// Finds every subtree node with `guid`, noting whether `ancestor` was
    /// passed through on the way.
    fn subtree_total_under(
        node: &crate::context::ContextNode,
        target: u64,
        ancestor: u64,
        under: bool,
    ) -> u64 {
        let own = if node.guid == target && under {
            node.self_total()
        } else {
            0
        };
        own + node
            .children
            .values()
            .map(|c| subtree_total_under(c, target, ancestor, under || node.guid == ancestor))
            .sum::<u64>()
    }

    #[test]
    fn contexts_distinguish_callers_of_shared_helper() {
        let (b, profile, _) = profile_with_contexts(SRC, 3000);
        let guid = |n: &str| b.func_by_name(n).unwrap().guid;
        // scalar_op must appear under BOTH vector heads as distinct contexts
        // (somewhere below the main root).
        let op = guid("scalar_op");
        let via_add: u64 = profile
            .roots
            .values()
            .map(|r| subtree_total_under(r, op, guid("add_vector_head"), false))
            .sum();
        let via_sub: u64 = profile
            .roots
            .values()
            .map(|r| subtree_total_under(r, op, guid("sub_vector_head"), false))
            .sum();
        assert!(via_add > 0, "scalar_op context under add_vector_head");
        assert!(via_sub > 0, "scalar_op context under sub_vector_head");
    }

    #[test]
    fn context_profile_reflects_divergent_callees() {
        let (b, profile, _) = profile_with_contexts(SRC, 3000);
        let guid = |n: &str| b.func_by_name(n).unwrap().guid;
        // Under add_vector_head, scalar_add should dominate scalar_sub (and
        // vice versa) — the paper's Fig. 3b insight.
        let totals = |ancestor: &str, target: &str| -> u64 {
            profile
                .roots
                .values()
                .map(|r| subtree_total_under(r, guid(target), guid(ancestor), false))
                .sum()
        };
        let add_in_add = totals("add_vector_head", "scalar_add");
        let sub_in_add = totals("add_vector_head", "scalar_sub");
        let add_in_sub = totals("sub_vector_head", "scalar_add");
        let sub_in_sub = totals("sub_vector_head", "scalar_sub");
        assert!(add_in_add > sub_in_add, "{add_in_add} vs {sub_in_add}");
        assert!(sub_in_sub > add_in_sub, "{sub_in_sub} vs {add_in_sub}");
    }

    #[test]
    fn tail_call_frames_recovered() {
        let src = r#"
fn leaf(n) {
    let i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
fn mid(n) { return leaf(n); }
fn top(n) { let r = mid(n); return r; }
fn main(n) { return top(n); }
"#;
        let (b, profile, stats) = profile_with_contexts(src, 4000);
        assert!(
            stats.recovered > 0,
            "tail frames must be recovered: {stats:?}"
        );
        // leaf's hot loop must appear under a context mentioning mid.
        let guid = |n: &str| b.func_by_name(n).unwrap().guid;
        fn has_leaf_under_mid(
            node: &crate::context::ContextNode,
            mid: u64,
            leaf: u64,
            under_mid: bool,
        ) -> bool {
            if node.guid == leaf && under_mid && node.self_total() > 0 {
                return true;
            }
            node.children
                .values()
                .any(|c| has_leaf_under_mid(c, mid, leaf, under_mid || node.guid == mid))
        }
        let ok = profile
            .roots
            .values()
            .any(|r| has_leaf_under_mid(r, guid("mid"), guid("leaf"), false));
        assert!(ok, "leaf must be contextualized under mid despite TCE");
    }

    #[test]
    fn compress_cycles_collapses_repeats() {
        let f = |g: u64, p: u32| FrameKey { guid: g, probe: p };
        let mut p = vec![f(1, 2), f(1, 2), f(1, 2)];
        compress_cycles(&mut p);
        assert_eq!(p, vec![f(1, 2)]);
        let mut p = vec![f(1, 5), f(1, 7), f(1, 5), f(1, 7), f(2, 1)];
        compress_cycles(&mut p);
        assert_eq!(p, vec![f(1, 5), f(1, 7), f(2, 1)]);
        let mut p = vec![f(1, 5), f(2, 5), f(3, 5)];
        compress_cycles(&mut p);
        assert_eq!(p.len(), 3, "aperiodic paths untouched");
    }

    #[test]
    fn probeless_binary_produces_no_contexts() {
        let m = csspgo_lang::compile(SRC, "t").unwrap();
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 41,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[500]).unwrap();
        let samples = machine.take_samples();
        let mut profile = ContextProfile::new();
        let mut uw = Unwinder::new(&b, None);
        uw.unwind_into(&samples, &mut profile);
        assert_eq!(profile.total(), 0, "no probes, no probe hits");
    }
}
