//! Profile merging (the `llvm-profdata merge` analogue).
//!
//! In the paper's deployment, profiles stream in from many production hosts
//! and build iterations ("the collected profile can be fed to compilation
//! continuously"); compilation consumes one merged artifact. Merging is
//! count-additive, with checksum conflicts resolved in favour of the larger
//! contribution (a host running a stale binary must not poison the majority
//! profile).

use crate::context::{ContextNode, ContextProfile};
use crate::profile::{FlatFuncProfile, FlatProfile, ProbeFuncProfile, ProbeProfile};

/// Merges `b` into `a` (flat/AutoFDO profiles). Body counts keyed the same
/// way are *summed* — two hosts each observing N samples of a line is 2N
/// samples, unlike the intra-binary MAX over duplicated instructions.
pub fn merge_flat(a: &mut FlatProfile, b: &FlatProfile) {
    for (guid, name) in &b.names {
        a.names.entry(*guid).or_insert_with(|| name.clone());
    }
    for (guid, fp) in &b.funcs {
        merge_flat_func(a.funcs.entry(*guid).or_default(), fp);
    }
}

fn merge_flat_func(a: &mut FlatFuncProfile, b: &FlatFuncProfile) {
    a.total += b.total;
    a.entry += b.entry;
    for (key, count) in &b.body {
        *a.body.entry(*key).or_insert(0) += count;
    }
    for (key, sub) in &b.callsites {
        merge_flat_func(a.callsites.entry(*key).or_default(), sub);
    }
}

/// Merges `b` into `a` (probe profiles). When checksums disagree, the
/// function profile with more samples wins outright — mixing block counts
/// across different CFGs would mis-attribute both.
pub fn merge_probe(a: &mut ProbeProfile, b: &ProbeProfile) {
    for (guid, name) in &b.names {
        a.names.entry(*guid).or_insert_with(|| name.clone());
    }
    for (guid, fp) in &b.funcs {
        match a.funcs.get_mut(guid) {
            None => {
                a.funcs.insert(*guid, fp.clone());
            }
            Some(existing) => {
                if existing.checksum != 0 && fp.checksum != 0 && existing.checksum != fp.checksum {
                    if fp.total > existing.total {
                        *existing = fp.clone();
                    }
                    continue;
                }
                merge_probe_func(existing, fp);
            }
        }
    }
}

fn merge_probe_func(a: &mut ProbeFuncProfile, b: &ProbeFuncProfile) {
    a.total += b.total;
    a.entry += b.entry;
    if a.checksum == 0 {
        a.checksum = b.checksum;
    }
    for (probe, count) in &b.probes {
        *a.probes.entry(*probe).or_insert(0) += count;
    }
    for (key, sub) in &b.callsites {
        merge_probe_func(a.callsites.entry(*key).or_default(), sub);
    }
}

/// Merges `b` into `a` (context tries): structural, count-additive.
pub fn merge_context(a: &mut ContextProfile, b: &ContextProfile) {
    for (guid, name) in &b.names {
        a.names.entry(*guid).or_insert_with(|| name.clone());
    }
    for (guid, node) in &b.roots {
        let dst = a.roots.entry(*guid).or_insert_with(|| ContextNode {
            guid: *guid,
            ..ContextNode::default()
        });
        merge_context_node(dst, node);
    }
}

fn merge_context_node(a: &mut ContextNode, b: &ContextNode) {
    a.entry += b.entry;
    if a.checksum == 0 {
        a.checksum = b.checksum;
    }
    a.inlined |= b.inlined;
    for (probe, count) in &b.probes {
        *a.probes.entry(*probe).or_insert(0) += count;
    }
    for (key, child) in &b.children {
        let dst = a.children.entry(*key).or_insert_with(|| ContextNode {
            guid: child.guid,
            ..ContextNode::default()
        });
        merge_context_node(dst, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FrameKey;
    use crate::profile::LocKey;

    fn key(off: u32) -> LocKey {
        LocKey {
            line_offset: off,
            discriminator: 0,
        }
    }

    #[test]
    fn flat_merge_sums_counts() {
        let mut a = FlatProfile::default();
        let mut b = FlatProfile::default();
        a.names.insert(1, "f".into());
        b.names.insert(1, "f".into());
        a.funcs.entry(1).or_default().record_max(key(3), 10);
        b.funcs.entry(1).or_default().record_max(key(3), 7);
        b.funcs.entry(2).or_default().record_max(key(1), 4);
        a.funcs.get_mut(&1).unwrap().recompute_totals();
        b.funcs.get_mut(&1).unwrap().recompute_totals();
        b.funcs.get_mut(&2).unwrap().recompute_totals();
        merge_flat(&mut a, &b);
        assert_eq!(a.funcs[&1].body[&key(3)], 17);
        assert_eq!(a.funcs[&2].body[&key(1)], 4, "new functions adopted");
    }

    #[test]
    fn flat_merge_recurses_into_callsites() {
        let mut a = FlatProfile::default();
        let mut b = FlatProfile::default();
        a.funcs
            .entry(1)
            .or_default()
            .callsite_mut(key(5), 9)
            .record_max(key(0), 100);
        b.funcs
            .entry(1)
            .or_default()
            .callsite_mut(key(5), 9)
            .record_max(key(0), 50);
        merge_flat(&mut a, &b);
        assert_eq!(a.funcs[&1].callsites[&(key(5), 9)].body[&key(0)], 150);
    }

    #[test]
    fn probe_merge_sums_matching_checksums() {
        let mut a = ProbeProfile::default();
        let mut b = ProbeProfile::default();
        let fa = a.funcs.entry(1).or_default();
        fa.checksum = 0xAA;
        fa.record_sum(1, 10);
        fa.recompute_totals();
        let fb = b.funcs.entry(1).or_default();
        fb.checksum = 0xAA;
        fb.record_sum(1, 5);
        fb.record_sum(2, 3);
        fb.recompute_totals();
        merge_probe(&mut a, &b);
        assert_eq!(a.funcs[&1].probes[&1], 15);
        assert_eq!(a.funcs[&1].probes[&2], 3);
    }

    #[test]
    fn probe_merge_resolves_checksum_conflicts_by_weight() {
        let mut a = ProbeProfile::default();
        let mut b = ProbeProfile::default();
        let fa = a.funcs.entry(1).or_default();
        fa.checksum = 0xAA;
        fa.record_sum(1, 10);
        fa.recompute_totals();
        let fb = b.funcs.entry(1).or_default();
        fb.checksum = 0xBB; // a different CFG generation
        fb.record_sum(1, 500);
        fb.recompute_totals();
        merge_probe(&mut a, &b);
        assert_eq!(a.funcs[&1].checksum, 0xBB, "heavier profile wins");
        assert_eq!(a.funcs[&1].probes[&1], 500);

        // And the reverse: the light profile must NOT displace the heavy one.
        let mut heavy = ProbeProfile::default();
        let fh = heavy.funcs.entry(1).or_default();
        fh.checksum = 0xAA;
        fh.record_sum(1, 900);
        fh.recompute_totals();
        let mut light = ProbeProfile::default();
        let fl = light.funcs.entry(1).or_default();
        fl.checksum = 0xCC;
        fl.record_sum(1, 2);
        fl.recompute_totals();
        merge_probe(&mut heavy, &light);
        assert_eq!(heavy.funcs[&1].checksum, 0xAA);
        assert_eq!(heavy.funcs[&1].probes[&1], 900);
    }

    #[test]
    fn context_merge_is_structural_and_additive() {
        let f = |g: u64, p: u32| FrameKey { guid: g, probe: p };
        let mut a = ContextProfile::new();
        let mut b = ContextProfile::new();
        a.add_probe_hit(&[f(1, 3)], 9, 1, 100);
        b.add_probe_hit(&[f(1, 3)], 9, 1, 40);
        b.add_probe_hit(&[f(1, 4)], 8, 2, 7);
        merge_context(&mut a, &b);
        assert_eq!(a.total(), 147);
        assert_eq!(a.node_for_path(&[f(1, 3)], 9).unwrap().probes[&1], 140);
        assert_eq!(a.node_for_path(&[f(1, 4)], 8).unwrap().probes[&2], 7);
    }

    #[test]
    fn merge_is_commutative_in_totals() {
        let f = |g: u64, p: u32| FrameKey { guid: g, probe: p };
        let mut x = ContextProfile::new();
        x.add_probe_hit(&[f(1, 1)], 2, 1, 5);
        x.add_entry(&[f(1, 1)], 2, 3);
        let mut y = ContextProfile::new();
        y.add_probe_hit(&[], 1, 1, 11);

        let mut xy = x.clone();
        merge_context(&mut xy, &y);
        let mut yx = y.clone();
        merge_context(&mut yx, &x);
        assert_eq!(xy.total(), yx.total());
        assert_eq!(xy.node_count(), yx.node_count());
    }
}
