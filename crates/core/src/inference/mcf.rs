//! Minimum-cost-flow profile inference — the real "Profi".
//!
//! Raw correlated counts are treated as *noisy measurements* of an unknown
//! true execution profile. The true profile must satisfy Kirchhoff flow
//! conservation at every block; the measurements usually do not. This module
//! finds the flow-consistent profile closest to the measurements under a
//! confidence-weighted metric, by solving a minimum-cost flow problem on a
//! network derived from the CFG (the construction LLVM's `profi` uses, per
//! the paper: "CSSPGO by default uses Profi, an advanced profile inference
//! component").
//!
//! # Network construction
//!
//! Every reachable block `b` (weight `w = raw[b]`) splits into an in-node and
//! an out-node:
//!
//! * an **increase arc** in(b)→out(b), capacity ∞, cost `c_inc(w)` — routing
//!   extra flow through the block above its measured weight;
//! * a **decrease arc** out(b)→in(b), capacity `w`, cost `c_dec(w)` — paying
//!   to cancel measured weight (only exists for `w > 0`);
//! * a zero-cost ∞-capacity arc out(b)→in(s) for every CFG edge `b → s`;
//! * exit blocks get a zero-cost arc out(b)→T to a virtual sink. A function
//!   with no reachable exit at all (an infinite loop, possible in synthetic
//!   property-test CFGs but not from the language frontend) has no
//!   flow-consistent profile — the entry flow can never drain — so the
//!   solver declines (`solve` returns `None`) and the caller falls back
//!   to the heuristic rather than inventing a leak point.
//!
//! Measured weights enter as *pseudo-flow*: each block arc is pre-loaded
//! with `w` units, recorded as node imbalances (excess `+w` at out(b),
//! deficit `−w` at in(b)) rather than routed. The entry block additionally
//! receives the externally known head count `F = entry_count.max(1)` as
//! excess at in(entry) with a matching deficit at T. A super-source feeds
//! every excess, a super-sink drains every deficit, and successive shortest
//! paths (Dijkstra + Johnson potentials; every arc cost is nonnegative, so
//! no Bellman–Ford bootstrap is needed) route all supply at minimum cost.
//!
//! The repaired count of block `b` is `w + flow(inc) − flow(dec)`; the flow
//! on each CFG-edge arc is the repaired **edge count**. Conservation at the
//! split nodes makes the result consistent *by construction*: for non-entry
//! blocks the in-edge counts sum exactly to the block count, for non-exit
//! blocks the out-edge counts do, and the entry block carries exactly `F`
//! plus its loop back-in flow.
//!
//! # Cost model
//!
//! Confidence scales with magnitude: unsampled blocks are cheap to raise
//! (`c_inc(0) = 1`), measured blocks get logarithmically more expensive to
//! raise (`10 + 2·log₂w`) and more expensive still to lower
//! (`20 + 3·log₂w`) — sampling misses real execution far more often than it
//! invents phantom execution, so lowering a hot measurement should be the
//! last resort. CFG-edge and exit arcs are free: moving flow *along* the
//! graph costs nothing, only deviating from measurements does.
//!
//! Determinism: blocks are numbered in reverse post-order, adjacency lists
//! are built in that order, and the Dijkstra heap breaks distance ties by
//! node id — the solver is bit-deterministic for a given input.

use csspgo_ir::{cfg, BlockId, Function};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// "Unbounded" capacity; low enough that path bottlenecks never overflow.
const INF_CAP: u64 = u64::MAX / 4;

/// `log₂(w)` for the cost model, at least 1.
fn log2w(w: u64) -> i64 {
    (64 - i64::from(w.leading_zeros())).max(1)
}

/// Cost per unit of raising block `b` above its measured weight `w`.
fn c_inc(w: u64) -> i64 {
    if w == 0 {
        1
    } else {
        10 + 2 * log2w(w)
    }
}

/// Cost per unit of cancelling measured weight `w` on block `b`.
fn c_dec(w: u64) -> i64 {
    20 + 3 * log2w(w)
}

/// A solved inference problem: jointly flow-consistent block and edge
/// counts, plus the total routing cost (the confidence-weighted distance
/// between the raw and repaired profiles).
pub(crate) struct McfOutcome {
    pub counts: HashMap<BlockId, u64>,
    pub edges: Vec<(BlockId, BlockId, u64)>,
    pub cost: u64,
}

/// Residual flow network: paired forward/backward arcs (`a ^ 1` is the
/// reverse of `a`), per-node adjacency in insertion order.
struct FlowNet {
    adj: Vec<Vec<u32>>,
    to: Vec<u32>,
    cap: Vec<u64>,
    cost: Vec<i64>,
}

impl FlowNet {
    fn new(nodes: usize) -> Self {
        FlowNet {
            adj: vec![Vec::new(); nodes],
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
        }
    }

    /// Adds `u → v` with the given capacity and cost; returns the forward
    /// arc index (its residual twin is `index ^ 1`).
    fn arc(&mut self, u: usize, v: usize, cap: u64, cost: i64) -> usize {
        let a = self.to.len();
        self.to.push(v as u32);
        self.cap.push(cap);
        self.cost.push(cost);
        self.adj[u].push(a as u32);
        self.to.push(u as u32);
        self.cap.push(0);
        self.cost.push(-cost);
        self.adj[v].push(a as u32 + 1);
        a
    }

    /// Flow pushed through forward arc `a` (accumulated on its twin).
    fn flow(&self, a: usize) -> u64 {
        self.cap[a ^ 1]
    }

    /// Successive shortest paths from `s` to `t` until `want` units are
    /// routed. Returns the total cost, or `None` if the network saturates
    /// before all supply is placed (infeasible).
    fn route(&mut self, s: usize, t: usize, want: u64) -> Option<i128> {
        let n = self.adj.len();
        let mut pot = vec![0i64; n];
        let mut sent = 0u64;
        let mut total = 0i128;
        while sent < want {
            let mut dist = vec![u64::MAX; n];
            let mut prev = vec![u32::MAX; n];
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            dist[s] = 0;
            heap.push(Reverse((0, s as u32)));
            while let Some(Reverse((d, u))) = heap.pop() {
                let u = u as usize;
                if d > dist[u] {
                    continue;
                }
                for &ai in &self.adj[u] {
                    let a = ai as usize;
                    if self.cap[a] == 0 {
                        continue;
                    }
                    let v = self.to[a] as usize;
                    let reduced = self.cost[a] + pot[u] - pot[v];
                    debug_assert!(reduced >= 0, "potential invariant violated");
                    let nd = d + reduced.max(0) as u64;
                    if nd < dist[v] {
                        dist[v] = nd;
                        prev[v] = ai;
                        heap.push(Reverse((nd, v as u32)));
                    }
                }
            }
            if dist[t] == u64::MAX {
                return None;
            }
            for v in 0..n {
                if dist[v] != u64::MAX {
                    pot[v] += dist[v] as i64;
                }
            }
            // Bottleneck along the shortest path, then augment.
            let mut push = want - sent;
            let mut v = t;
            while v != s {
                let a = prev[v] as usize;
                push = push.min(self.cap[a]);
                v = self.to[a ^ 1] as usize;
            }
            let mut v = t;
            while v != s {
                let a = prev[v] as usize;
                self.cap[a] -= push;
                self.cap[a ^ 1] += push;
                total += i128::from(push) * i128::from(self.cost[a]);
                v = self.to[a ^ 1] as usize;
            }
            sent += push;
        }
        Some(total)
    }
}

/// Solves min-cost-flow inference for one function. Returns `None` when the
/// CFG has no blocks or the network is infeasible (the caller falls back to
/// the heuristic).
pub(crate) fn solve(
    func: &Function,
    raw: &HashMap<BlockId, u64>,
    entry_count: u64,
) -> Option<McfOutcome> {
    let order = cfg::reverse_post_order(func);
    if order.is_empty() {
        return None;
    }
    let n = order.len();
    let idx: HashMap<BlockId, usize> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    // Node layout: in(i) = 2i, out(i) = 2i+1, then sink, super-source,
    // super-sink.
    let t_node = 2 * n;
    let ss = 2 * n + 1;
    let st = 2 * n + 2;
    let mut net = FlowNet::new(2 * n + 3);
    let weight = |b: BlockId| raw.get(&b).copied().unwrap_or(0);
    let head = entry_count.max(1);

    let mut ex = vec![0i128; 2 * n + 1];
    let entry_i = idx[&func.entry];
    ex[2 * entry_i] += i128::from(head);
    ex[t_node] -= i128::from(head);

    let mut inc_arcs = Vec::with_capacity(n);
    let mut dec_arcs = Vec::with_capacity(n);
    for (i, &b) in order.iter().enumerate() {
        let w = weight(b);
        inc_arcs.push(net.arc(2 * i, 2 * i + 1, INF_CAP, c_inc(w)));
        dec_arcs.push((w > 0).then(|| net.arc(2 * i + 1, 2 * i, w, c_dec(w))));
        ex[2 * i] -= i128::from(w);
        ex[2 * i + 1] += i128::from(w);
    }

    let mut edge_arcs: Vec<(BlockId, BlockId, usize)> = Vec::new();
    let mut has_exit = false;
    for (i, &b) in order.iter().enumerate() {
        let succs = cfg::successors(func, b);
        if succs.is_empty() {
            net.arc(2 * i + 1, t_node, INF_CAP, 0);
            has_exit = true;
        } else {
            for s in succs {
                if let Some(&j) = idx.get(&s) {
                    edge_arcs.push((b, s, net.arc(2 * i + 1, 2 * j, INF_CAP, 0)));
                }
            }
        }
    }
    if !has_exit {
        // No reachable exit: the head count cannot drain, so no
        // flow-consistent assignment exists. Decline instead of picking an
        // arbitrary block to leak at.
        return None;
    }

    let mut want = 0u64;
    for (v, &e) in ex.iter().enumerate() {
        if e > 0 {
            net.arc(ss, v, e as u64, 0);
            want += e as u64;
        } else if e < 0 {
            net.arc(v, st, (-e) as u64, 0);
        }
    }

    let cost = net.route(ss, st, want)?;

    let mut counts = HashMap::with_capacity(n);
    for (i, &b) in order.iter().enumerate() {
        let inc = net.flow(inc_arcs[i]);
        let dec = dec_arcs[i].map_or(0, |a| net.flow(a));
        counts.insert(b, weight(b) + inc - dec);
    }
    let edges = edge_arcs
        .iter()
        .map(|&(from, to, a)| (from, to, net.flow(a)))
        .collect();
    Some(McfOutcome {
        counts,
        edges,
        cost: u64::try_from(cost).unwrap_or(u64::MAX),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_orders_confidence() {
        assert_eq!(c_inc(0), 1, "unsampled blocks are cheap to raise");
        assert!(c_inc(1000) > c_inc(1), "hot blocks are expensive to raise");
        assert!(c_dec(1000) > c_inc(1000), "lowering beats raising in cost");
        assert!(c_dec(1) >= 20);
    }

    #[test]
    fn consistent_diamond_is_left_untouched() {
        let m = csspgo_lang::compile(
            "fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }",
            "t",
        )
        .unwrap();
        let f = &m.functions[0];
        let raw = HashMap::from([
            (BlockId(0), 100u64),
            (BlockId(1), 90),
            (BlockId(2), 10),
            (BlockId(3), 100),
        ]);
        let out = solve(f, &raw, 100).unwrap();
        assert_eq!(out.cost, 0, "consistent input routes at zero cost");
        for (b, w) in &raw {
            assert_eq!(out.counts[b], *w);
        }
        // Edge counts mirror the branch split.
        let get = |from: u32, to: u32| {
            out.edges
                .iter()
                .find(|&&(f, t, _)| f == BlockId(from) && t == BlockId(to))
                .map(|&(_, _, c)| c)
                .unwrap()
        };
        assert_eq!(get(0, 1), 90);
        assert_eq!(get(0, 2), 10);
        assert_eq!(get(1, 3), 90);
        assert_eq!(get(2, 3), 10);
    }

    #[test]
    fn edge_counts_reconcile_with_block_counts() {
        let m = csspgo_lang::compile(
            "fn f(n) { let i = 0; let s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
            "t",
        )
        .unwrap();
        let f = &m.functions[0];
        let raw: HashMap<BlockId, u64> = f
            .iter_blocks()
            .map(|(b, _)| (b, 37 * (b.0 as u64 + 1)))
            .collect();
        let out = solve(f, &raw, 20).unwrap();
        for (b, _) in f.iter_blocks() {
            let c = out.counts[&b];
            let out_sum: u64 = out
                .edges
                .iter()
                .filter(|&&(from, _, _)| from == b)
                .map(|&(_, _, w)| w)
                .sum();
            if !cfg::successors(f, b).is_empty() {
                assert_eq!(out_sum, c, "out-edges of {b:?} sum to its count");
            }
            let in_sum: u64 = out
                .edges
                .iter()
                .filter(|&&(_, to, _)| to == b)
                .map(|&(_, _, w)| w)
                .sum();
            if b != f.entry {
                assert_eq!(in_sum, c, "in-edges of {b:?} sum to its count");
            } else {
                assert_eq!(in_sum + 20, c, "entry carries head count + back flow");
            }
        }
    }
}
