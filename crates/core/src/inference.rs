//! Profile inference: repairing raw correlated counts into a
//! flow-consistent profile.
//!
//! Sampling (and lossy correlation) produces block counts that violate flow
//! conservation. Following the paper's setup — "CSSPGO by default uses
//! Profi, an advanced profile inference component; we also turned on Profi
//! for AutoFDO" — every sampling variant runs the same inference.
//!
//! The algorithm: raw counts become branch *probabilities* (with additive
//! smoothing so unsampled-but-reachable blocks keep non-zero likelihood),
//! then entry flow is propagated through the CFG to a fixpoint. The result
//! is exactly conservative and uses the measurements where they carry
//! signal — the same repair role Profi's min-cost-flow plays.

use csspgo_ir::{cfg, BlockId, Function};
use std::collections::HashMap;

/// Number of propagation sweeps; loops converge geometrically, so a couple
/// dozen sweeps settle any realistic trip count distribution.
const SWEEPS: usize = 64;

/// Repairs `raw` block counts for `func` into flow-consistent counts scaled
/// to `entry_count` at the entry block.
pub fn repair_counts(
    func: &Function,
    raw: &HashMap<BlockId, u64>,
    entry_count: u64,
) -> HashMap<BlockId, u64> {
    let order = cfg::reverse_post_order(func);
    if order.is_empty() {
        return HashMap::new();
    }

    // Successor probabilities from raw counts. A successor's raw count is
    // the branch-weight signal; when the block's own count exceeds the sum
    // of successor counts (typically because an exit block was never
    // sampled), the shortfall is distributed evenly — this is what lets a
    // sampled loop imply a finite trip count even when its exit has no
    // samples.
    let mut probs: HashMap<(BlockId, BlockId), f64> = HashMap::new();
    for &b in &order {
        let succs = cfg::successors(func, b);
        if succs.is_empty() {
            continue;
        }
        let weights: Vec<f64> = succs
            .iter()
            .map(|s| raw.get(s).copied().unwrap_or(0) as f64)
            .collect();
        let sum: f64 = weights.iter().sum();
        let own = raw.get(&b).copied().unwrap_or(0) as f64;
        let base = own.max(sum).max(1.0);
        let leftover = (base - sum) / succs.len() as f64;
        let total: f64 = base.max(1.0);
        for (s, w) in succs.iter().zip(&weights) {
            probs.insert((b, *s), (w + leftover) / total);
        }
    }

    // Flow propagation with geometric loop closure: at each loop header,
    // the fixpoint `flow = external / (1 - cyclic probability)` replaces
    // naive iteration, so tight loops (trip counts in the thousands)
    // converge in a handful of sweeps. Back edges are edges whose target
    // dominates their source.
    let dom = csspgo_ir::dom::Dominators::compute(func);
    let preds = cfg::predecessors(func);
    let max_cyclic = 1.0 - 1.0 / 4096.0; // trip-count cap

    let mut flow: HashMap<BlockId, f64> = HashMap::new();
    for _ in 0..SWEEPS {
        let mut next: HashMap<BlockId, f64> = HashMap::new();
        for &b in &order {
            let mut external = if b == func.entry {
                entry_count.max(1) as f64
            } else {
                0.0
            };
            let mut back = 0.0;
            for &p in &preds[b.index()] {
                let prob = probs.get(&(p, b)).copied().unwrap_or(0.0);
                if dom.dominates(b, p) {
                    // Back edge: use the previous sweep's value.
                    back += flow.get(&p).copied().unwrap_or(0.0) * prob;
                } else {
                    // Forward edge: Gauss–Seidel, current sweep's value.
                    external += next.get(&p).copied().unwrap_or(0.0) * prob;
                }
            }
            let value = if back > 0.0 {
                let prev = flow.get(&b).copied().unwrap_or(0.0);
                let cyclic = if prev > 0.0 {
                    (back / prev).min(max_cyclic)
                } else {
                    0.0
                };
                external / (1.0 - cyclic)
            } else {
                external
            };
            next.insert(b, value);
        }
        let converged = order.iter().all(|&b| {
            let old = flow.get(&b).copied().unwrap_or(0.0);
            let new = next.get(&b).copied().unwrap_or(0.0);
            (old - new).abs() <= 0.005 * new.abs().max(1.0)
        });
        flow = next;
        if converged {
            break;
        }
    }

    order
        .iter()
        .map(|&b| (b, flow.get(&b).copied().unwrap_or(0.0).round() as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> csspgo_ir::Module {
        csspgo_lang::compile(src, "t").unwrap()
    }

    #[test]
    fn straight_line_gets_entry_flow_everywhere() {
        let m = compile("fn f(a) { let x = a + 1; return x; }");
        let f = &m.functions[0];
        let repaired = repair_counts(f, &HashMap::new(), 100);
        assert_eq!(repaired[&f.entry], 100);
    }

    #[test]
    fn diamond_flow_is_conserved() {
        let m = compile("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        let f = &m.functions[0];
        // Raw says then-arm 90, else-arm 10 (blocks 1 and 2).
        let raw = HashMap::from([
            (BlockId(0), 100u64),
            (BlockId(1), 90),
            (BlockId(2), 10),
            (BlockId(3), 100),
        ]);
        let rep = repair_counts(f, &raw, 100);
        let t = rep[&BlockId(1)];
        let e = rep[&BlockId(2)];
        assert_eq!(t + e, rep[&BlockId(0)], "arm flow sums to entry");
        assert!(t > e * 5, "bias preserved: {t} vs {e}");
        assert_eq!(rep[&BlockId(3)], 100, "join re-merges the flow");
    }

    #[test]
    fn inconsistent_counts_are_repaired() {
        // Raw claims the join ran more than the entry — impossible.
        let m = compile("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        let f = &m.functions[0];
        let raw = HashMap::from([
            (BlockId(0), 100u64),
            (BlockId(1), 70),
            (BlockId(2), 60),
            (BlockId(3), 400),
        ]);
        let rep = repair_counts(f, &raw, 100);
        assert_eq!(rep[&BlockId(3)], 100, "join flow equals entry flow");
        assert_eq!(rep[&BlockId(1)] + rep[&BlockId(2)], 100);
    }

    #[test]
    fn loop_trip_counts_recovered() {
        let m = compile(
            "fn f(n) { let i = 0; let s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        );
        let f = &m.functions[0];
        // Header sampled 1000, body 990, exit path 10 → ~99 iterations/entry.
        // Find header (condbr) and body blocks dynamically.
        let header = f
            .iter_blocks()
            .find(|(_, b)| {
                matches!(
                    b.terminator().map(|t| &t.kind),
                    Some(csspgo_ir::inst::InstKind::CondBr { .. })
                )
            })
            .map(|(b, _)| b)
            .unwrap();
        let body = cfg::successors(f, header)[0];
        let raw = HashMap::from([(header, 1000u64), (body, 990)]);
        let rep = repair_counts(f, &raw, 10);
        let trip = rep[&body] as f64 / 10.0;
        assert!(
            (50.0..200.0).contains(&trip),
            "implied trip count ~99, got {trip}"
        );
        // Conservation at the header: inflow = entry + latch.
        assert!(rep[&header] >= rep[&body]);
    }

    #[test]
    fn unsampled_mandatory_blocks_get_flow() {
        // A block with zero samples on the only path must still get flow.
        let m = compile("fn f(a) { let x = a * 2; let y = x + 1; return y; }");
        let f = &m.functions[0];
        let rep = repair_counts(f, &HashMap::new(), 50);
        for (b, _) in f.iter_blocks() {
            assert_eq!(rep[&b], 50, "mandatory path gets full flow");
        }
    }
}
