//! Profile inference: repairing raw correlated counts into a
//! flow-consistent profile.
//!
//! Sampling (and lossy correlation) produces block counts that violate flow
//! conservation. Following the paper's setup — "CSSPGO by default uses
//! Profi, an advanced profile inference component; we also turned on Profi
//! for AutoFDO" — every sampling variant runs the same inference.
//!
//! Two algorithms are available behind [`InferenceMode`]:
//!
//! * [`InferenceMode::Mcf`] (default) — real Profi-style minimum-cost-flow
//!   inference ([`mcf`]): the flow-consistent profile closest to the
//!   measurements under a confidence-weighted cost model, yielding jointly
//!   consistent block *and* edge counts that pass the PF Kirchhoff lints by
//!   construction.
//! * [`InferenceMode::Heuristic`] — the original local fixpoint stand-in:
//!   raw counts become branch *probabilities* (with additive smoothing so
//!   unsampled-but-reachable blocks keep non-zero likelihood), then entry
//!   flow is propagated through the CFG to a fixpoint. Kept as the fallback
//!   for infeasible networks and as the differential-test reference.

pub mod mcf;

use csspgo_ir::{cfg, BlockId, Function};
use std::collections::HashMap;
use std::str::FromStr;
use std::time::Instant;

/// Number of propagation sweeps; loops converge geometrically, so a couple
/// dozen sweeps settle any realistic trip count distribution.
const SWEEPS: usize = 64;

/// Which algorithm repairs raw correlated counts. Lives in
/// [`crate::annotate::AnnotateConfig`] and is surfaced through
/// [`crate::pipeline::PipelineConfig`]'s builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InferenceMode {
    /// Diagnostic-only: annotate the raw counts untouched. Used by the
    /// analysis layer for before/after lint comparisons; never the right
    /// choice for an optimizing build.
    Off,
    /// The local fixpoint probability-propagation heuristic.
    Heuristic,
    /// Minimum-cost-flow inference (see [`mcf`]); falls back to the
    /// heuristic on the rare infeasible network.
    #[default]
    Mcf,
}

impl InferenceMode {
    /// Stable lowercase name, matching [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            InferenceMode::Off => "off",
            InferenceMode::Heuristic => "heuristic",
            InferenceMode::Mcf => "mcf",
        }
    }
}

impl FromStr for InferenceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(InferenceMode::Off),
            "heuristic" => Ok(InferenceMode::Heuristic),
            "mcf" => Ok(InferenceMode::Mcf),
            other => Err(format!(
                "unknown inference mode `{other}` (expected off|heuristic|mcf)"
            )),
        }
    }
}

/// Aggregate inference work done during annotation, merged across functions
/// into `AnnotateStats` and surfaced in the bench records.
///
/// Equality ignores `elapsed_us` (wall-clock noise must not make otherwise
/// identical annotation runs compare unequal).
#[derive(Clone, Copy, Debug, Default)]
pub struct InferenceStats {
    /// Functions that went through inference.
    pub functions: u64,
    /// Blocks whose final count differs from the raw measurement.
    pub counts_adjusted: u64,
    /// Total absolute count change, Σ|final − raw| over all blocks.
    pub flow_moved: u64,
    /// Total min-cost-flow routing cost (0 for the heuristic — it has no
    /// cost model).
    pub residual_cost: u64,
    /// Wall-clock microseconds spent inside inference.
    pub elapsed_us: u64,
}

impl PartialEq for InferenceStats {
    fn eq(&self, other: &Self) -> bool {
        self.functions == other.functions
            && self.counts_adjusted == other.counts_adjusted
            && self.flow_moved == other.flow_moved
            && self.residual_cost == other.residual_cost
    }
}

impl Eq for InferenceStats {}

impl InferenceStats {
    /// Accumulates another function's (or module's) stats into `self`.
    pub fn merge(&mut self, other: &InferenceStats) {
        self.functions += other.functions;
        self.counts_adjusted += other.counts_adjusted;
        self.flow_moved += other.flow_moved;
        self.residual_cost = self.residual_cost.saturating_add(other.residual_cost);
        self.elapsed_us = self.elapsed_us.saturating_add(other.elapsed_us);
    }
}

/// The outcome of inferring one function's profile.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    /// Repaired per-block counts (flow-consistent for [`InferenceMode::Mcf`]).
    pub counts: HashMap<BlockId, u64>,
    /// Repaired per-edge counts; `Some` only when the MCF solver ran (the
    /// heuristic and `Off` produce block counts only).
    pub edges: Option<Vec<(BlockId, BlockId, u64)>>,
    /// What inference did, for aggregation into `AnnotateStats`.
    pub stats: InferenceStats,
}

/// Repairs `raw` block counts for `func` into counts scaled to
/// `entry_count` at the entry block, using the configured algorithm. This is
/// the config-driven entry point annotation (and everything downstream of
/// it: stream refresh, fleet recompiles) goes through.
pub fn infer_counts(
    func: &Function,
    raw: &HashMap<BlockId, u64>,
    entry_count: u64,
    mode: InferenceMode,
) -> InferenceResult {
    let start = Instant::now();
    let mut result = match mode {
        InferenceMode::Off => InferenceResult {
            counts: raw.clone(),
            edges: None,
            stats: InferenceStats {
                functions: 1,
                ..InferenceStats::default()
            },
        },
        InferenceMode::Heuristic => heuristic_result(func, raw, entry_count),
        InferenceMode::Mcf => match mcf::solve(func, raw, entry_count) {
            Some(out) => {
                let (counts_adjusted, flow_moved) = diff_stats(raw, &out.counts);
                InferenceResult {
                    counts: out.counts,
                    edges: Some(out.edges),
                    stats: InferenceStats {
                        functions: 1,
                        counts_adjusted,
                        flow_moved,
                        residual_cost: out.cost,
                        elapsed_us: 0,
                    },
                }
            }
            None => heuristic_result(func, raw, entry_count),
        },
    };
    result.stats.elapsed_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    result
}

/// (#adjusted blocks, Σ|final − raw|) over the inferred block set.
fn diff_stats(raw: &HashMap<BlockId, u64>, counts: &HashMap<BlockId, u64>) -> (u64, u64) {
    let mut adjusted = 0u64;
    let mut moved = 0u64;
    for (b, &c) in counts {
        let r = raw.get(b).copied().unwrap_or(0);
        if c != r {
            adjusted += 1;
            moved += c.abs_diff(r);
        }
    }
    (adjusted, moved)
}

fn heuristic_result(
    func: &Function,
    raw: &HashMap<BlockId, u64>,
    entry_count: u64,
) -> InferenceResult {
    let counts = heuristic_counts(func, raw, entry_count);
    let (counts_adjusted, flow_moved) = diff_stats(raw, &counts);
    InferenceResult {
        counts,
        edges: None,
        stats: InferenceStats {
            functions: 1,
            counts_adjusted,
            flow_moved,
            residual_cost: 0,
            elapsed_us: 0,
        },
    }
}

/// Successor branch probabilities from raw counts. A successor's raw count
/// is the branch-weight signal; when the block's own count exceeds the sum
/// of successor counts (typically because an exit block was never sampled),
/// the shortfall is distributed evenly — this is what lets a sampled loop
/// imply a finite trip count even when its exit has no samples. The last
/// successor absorbs the rounding remainder so every block's outgoing
/// probabilities sum to exactly 1.0.
fn successor_probs(
    func: &Function,
    raw: &HashMap<BlockId, u64>,
    order: &[BlockId],
) -> HashMap<(BlockId, BlockId), f64> {
    let mut probs: HashMap<(BlockId, BlockId), f64> = HashMap::new();
    for &b in order {
        let succs = cfg::successors(func, b);
        if succs.is_empty() {
            continue;
        }
        let weights: Vec<f64> = succs
            .iter()
            .map(|s| raw.get(s).copied().unwrap_or(0) as f64)
            .collect();
        let sum: f64 = weights.iter().sum();
        let own = raw.get(&b).copied().unwrap_or(0) as f64;
        let base = own.max(sum).max(1.0);
        let leftover = (base - sum) / succs.len() as f64;
        let mut assigned = 0.0f64;
        let last = succs.len() - 1;
        for (k, (s, w)) in succs.iter().zip(&weights).enumerate() {
            let p = if k == last {
                // Close the distribution exactly: floating-point division
                // leaves `(w + leftover) / base` summing slightly off 1.0,
                // which compounds through fixpoint propagation.
                (1.0 - assigned).max(0.0)
            } else {
                (w + leftover) / base
            };
            assigned += p;
            probs.insert((b, *s), p);
        }
    }
    probs
}

/// The local fixpoint heuristic: probabilities from raw counts, then flow
/// propagation with geometric loop closure. At each loop header the
/// fixpoint `flow = external / (1 - cyclic probability)` replaces naive
/// iteration, so tight loops (trip counts in the thousands) converge in a
/// handful of sweeps. Back edges are edges whose target dominates their
/// source.
fn heuristic_counts(
    func: &Function,
    raw: &HashMap<BlockId, u64>,
    entry_count: u64,
) -> HashMap<BlockId, u64> {
    let order = cfg::reverse_post_order(func);
    if order.is_empty() {
        return HashMap::new();
    }
    let probs = successor_probs(func, raw, &order);
    let dom = csspgo_ir::dom::Dominators::compute(func);
    let preds = cfg::predecessors(func);
    let max_cyclic = 1.0 - 1.0 / 4096.0; // trip-count cap

    let mut flow: HashMap<BlockId, f64> = HashMap::new();
    for _ in 0..SWEEPS {
        let mut next: HashMap<BlockId, f64> = HashMap::new();
        for &b in &order {
            let mut external = if b == func.entry {
                entry_count.max(1) as f64
            } else {
                0.0
            };
            let mut back = 0.0;
            for &p in &preds[b.index()] {
                let prob = probs.get(&(p, b)).copied().unwrap_or(0.0);
                if dom.dominates(b, p) {
                    // Back edge: use the previous sweep's value.
                    back += flow.get(&p).copied().unwrap_or(0.0) * prob;
                } else {
                    // Forward edge: Gauss–Seidel, current sweep's value.
                    external += next.get(&p).copied().unwrap_or(0.0) * prob;
                }
            }
            let value = if back > 0.0 {
                let prev = flow.get(&b).copied().unwrap_or(0.0);
                let cyclic = if prev > 0.0 {
                    (back / prev).min(max_cyclic)
                } else {
                    0.0
                };
                external / (1.0 - cyclic)
            } else {
                external
            };
            next.insert(b, value);
        }
        let converged = order.iter().all(|&b| {
            let old = flow.get(&b).copied().unwrap_or(0.0);
            let new = next.get(&b).copied().unwrap_or(0.0);
            (old - new).abs() <= 0.005 * new.abs().max(1.0)
        });
        flow = next;
        if converged {
            break;
        }
    }

    order
        .iter()
        .map(|&b| (b, flow.get(&b).copied().unwrap_or(0.0).round() as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> csspgo_ir::Module {
        csspgo_lang::compile(src, "t").unwrap()
    }

    fn infer(
        f: &Function,
        raw: &HashMap<BlockId, u64>,
        entry: u64,
        mode: InferenceMode,
    ) -> HashMap<BlockId, u64> {
        infer_counts(f, raw, entry, mode).counts
    }

    #[test]
    fn straight_line_gets_entry_flow_everywhere() {
        let m = compile("fn f(a) { let x = a + 1; return x; }");
        let f = &m.functions[0];
        for mode in [InferenceMode::Heuristic, InferenceMode::Mcf] {
            let repaired = infer(f, &HashMap::new(), 100, mode);
            assert_eq!(repaired[&f.entry], 100, "{mode:?}");
        }
    }

    #[test]
    fn diamond_flow_is_conserved() {
        let m = compile("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        let f = &m.functions[0];
        // Raw says then-arm 90, else-arm 10 (blocks 1 and 2).
        let raw = HashMap::from([
            (BlockId(0), 100u64),
            (BlockId(1), 90),
            (BlockId(2), 10),
            (BlockId(3), 100),
        ]);
        for mode in [InferenceMode::Heuristic, InferenceMode::Mcf] {
            let rep = infer(f, &raw, 100, mode);
            let t = rep[&BlockId(1)];
            let e = rep[&BlockId(2)];
            assert_eq!(t + e, rep[&BlockId(0)], "{mode:?}: arm flow sums to entry");
            assert!(t > e * 5, "{mode:?}: bias preserved: {t} vs {e}");
            assert_eq!(rep[&BlockId(3)], 100, "{mode:?}: join re-merges the flow");
        }
    }

    #[test]
    fn inconsistent_counts_are_repaired() {
        // Raw claims the join ran more than the entry — impossible.
        let m = compile("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        let f = &m.functions[0];
        let raw = HashMap::from([
            (BlockId(0), 100u64),
            (BlockId(1), 70),
            (BlockId(2), 60),
            (BlockId(3), 400),
        ]);
        for mode in [InferenceMode::Heuristic, InferenceMode::Mcf] {
            let rep = infer(f, &raw, 100, mode);
            assert_eq!(rep[&BlockId(3)], 100, "{mode:?}: join flow equals entry");
            assert_eq!(rep[&BlockId(1)] + rep[&BlockId(2)], 100, "{mode:?}");
        }
    }

    #[test]
    fn loop_trip_counts_recovered() {
        let m = compile(
            "fn f(n) { let i = 0; let s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
        );
        let f = &m.functions[0];
        // Header sampled 1000, body 990, exit path 10 → ~99 iterations/entry.
        // Find header (condbr) and body blocks dynamically.
        let header = f
            .iter_blocks()
            .find(|(_, b)| {
                matches!(
                    b.terminator().map(|t| &t.kind),
                    Some(csspgo_ir::inst::InstKind::CondBr { .. })
                )
            })
            .map(|(b, _)| b)
            .unwrap();
        let body = cfg::successors(f, header)[0];
        let raw = HashMap::from([(header, 1000u64), (body, 990)]);
        for mode in [InferenceMode::Heuristic, InferenceMode::Mcf] {
            let rep = infer(f, &raw, 10, mode);
            let trip = rep[&body] as f64 / 10.0;
            assert!(
                (50.0..200.0).contains(&trip),
                "{mode:?}: implied trip count ~99, got {trip}"
            );
            // Conservation at the header: inflow = entry + latch.
            assert!(rep[&header] >= rep[&body], "{mode:?}");
        }
    }

    #[test]
    fn unsampled_mandatory_blocks_get_flow() {
        // A block with zero samples on the only path must still get flow.
        let m = compile("fn f(a) { let x = a * 2; let y = x + 1; return y; }");
        let f = &m.functions[0];
        for mode in [InferenceMode::Heuristic, InferenceMode::Mcf] {
            let rep = infer(f, &HashMap::new(), 50, mode);
            for (b, _) in f.iter_blocks() {
                assert_eq!(rep[&b], 50, "{mode:?}: mandatory path gets full flow");
            }
        }
    }

    #[test]
    fn mcf_counts_satisfy_kirchhoff_and_stats_track_changes() {
        let m = compile("fn f(a) { let r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
        let f = &m.functions[0];
        let raw = HashMap::from([
            (BlockId(0), 100u64),
            (BlockId(1), 70),
            (BlockId(2), 60),
            (BlockId(3), 400),
        ]);
        let res = infer_counts(f, &raw, 100, InferenceMode::Mcf);
        let edges = res.edges.as_ref().expect("mcf reports edge counts");
        for (b, _) in f.iter_blocks() {
            let out_sum: u64 = edges.iter().filter(|e| e.0 == b).map(|e| e.2).sum();
            if !cfg::successors(f, b).is_empty() {
                assert_eq!(out_sum, res.counts[&b]);
            }
        }
        assert_eq!(res.stats.functions, 1);
        assert!(
            res.stats.counts_adjusted >= 2,
            "arms and join were repaired"
        );
        assert!(res.stats.flow_moved >= 300, "join alone moved 300");
        assert!(res.stats.residual_cost > 0);
    }

    #[test]
    fn off_mode_passes_raw_counts_through() {
        let m = compile("fn f(a) { let x = a + 1; return x; }");
        let f = &m.functions[0];
        let raw = HashMap::from([(BlockId(0), 7u64)]);
        let res = infer_counts(f, &raw, 100, InferenceMode::Off);
        assert_eq!(res.counts, raw);
        assert!(res.edges.is_none());
        assert_eq!(res.stats.counts_adjusted, 0);
    }

    #[test]
    fn successor_probs_sum_to_exactly_one() {
        // Weights chosen so `(w + leftover) / base` is not exactly
        // representable — the pre-fix code summed to 1.0 ± ε here.
        let m = compile(
            "fn f(n) { let s = 0; let i = 0; while (i < n) { if (s > 3) { s = s - 1; } else { s = s + 2; } i = i + 1; } return s; }",
        );
        let f = &m.functions[0];
        let raw: HashMap<BlockId, u64> = f
            .iter_blocks()
            .map(|(b, _)| (b, [3u64, 7, 11, 13, 17, 19, 23][b.index() % 7]))
            .collect();
        let order = cfg::reverse_post_order(f);
        let probs = successor_probs(f, &raw, &order);
        for &b in &order {
            let succs = cfg::successors(f, b);
            if succs.is_empty() {
                continue;
            }
            let sum: f64 = succs.iter().map(|s| probs[&(b, *s)]).sum();
            assert_eq!(sum, 1.0, "block {b:?} probabilities sum to exactly 1.0");
        }
    }

    #[test]
    fn inference_mode_round_trips_through_names() {
        for mode in [
            InferenceMode::Off,
            InferenceMode::Heuristic,
            InferenceMode::Mcf,
        ] {
            assert_eq!(mode.name().parse::<InferenceMode>().unwrap(), mode);
        }
        assert!("profi".parse::<InferenceMode>().is_err());
        assert_eq!(InferenceMode::default(), InferenceMode::Mcf);
    }

    #[test]
    fn stats_equality_ignores_elapsed_and_merge_accumulates() {
        let a = InferenceStats {
            functions: 2,
            counts_adjusted: 5,
            flow_moved: 40,
            residual_cost: 9,
            elapsed_us: 123,
        };
        let b = InferenceStats {
            elapsed_us: 9999,
            ..a
        };
        assert_eq!(a, b);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.functions, 4);
        assert_eq!(m.flow_moved, 80);
        assert_eq!(m.elapsed_us, 123 + 9999);
    }
}
