//! Profile correlation: mapping binary-level sample counts back to
//! compiler-consumable profiles.
//!
//! Two mechanisms, faithfully reproducing the paper's comparison:
//!
//! * [`dwarf_profile`] — AutoFDO-style symbolization through debug info.
//!   Counts key on `(line offset, discriminator)`; several machine
//!   instructions sharing a key take the **MAX** ("correlation techniques
//!   using debug info take the maximum execution frequency from those
//!   instructions"), which under-counts duplicated code and cannot recover
//!   merged code.
//! * [`probe_profile`] — pseudo-probe correlation. Probes are 1:1 anchors;
//!   duplicated probes **SUM**; the recorded CFG checksum rides along for
//!   staleness detection.

use crate::profile::{FlatFuncProfile, FlatProfile, LocKey, ProbeFuncProfile, ProbeProfile};
use crate::ranges::RangeCounts;
use csspgo_codegen::Binary;
use std::collections::BTreeSet;

/// GUIDs a flat profile can ask a name for: nested call-site callees.
fn collect_flat_guids(f: &FlatFuncProfile, out: &mut BTreeSet<u64>) {
    for (&(_, callee), child) in &f.callsites {
        out.insert(callee);
        collect_flat_guids(child, out);
    }
}

/// GUIDs a probe profile can ask a name for: nested call-site callees.
fn collect_probe_guids(f: &ProbeFuncProfile, out: &mut BTreeSet<u64>) {
    for (&(_, callee), child) in &f.callsites {
        out.insert(callee);
        collect_probe_guids(child, out);
    }
}

/// Fills `names` from the binary's function table, but only for GUIDs the
/// profile actually references. The former per-build "clone every function
/// name" loop was O(program size) per correlation regardless of how little
/// was profiled; sharing the binary's name table by borrow and copying
/// just the referenced entries keeps profile construction proportional to
/// profile content.
fn name_referenced(
    names: &mut std::collections::BTreeMap<u64, String>,
    binary: &Binary,
    needed: &BTreeSet<u64>,
) {
    for &guid in needed {
        if let Some(f) = binary.func_by_guid(guid) {
            names.insert(guid, f.name.clone());
        }
    }
}

/// Builds an AutoFDO-style profile from LBR range counts.
pub fn dwarf_profile(binary: &Binary, rc: &RangeCounts) -> FlatProfile {
    let counts = rc.inst_counts(binary);
    let mut out = FlatProfile::default();

    for (idx, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let frames = binary.debug_frames(idx);
        if frames.is_empty() {
            continue; // debug-info decay: the sample is lost
        }
        let top = &binary.funcs[frames[0].0.index()];
        let mut cur: &mut FlatFuncProfile = out.funcs.entry(top.guid).or_default();
        for k in 0..frames.len() - 1 {
            let (func, line, disc) = frames[k];
            let start = binary.funcs[func.index()].start_line;
            let key = LocKey::new(line, start, disc);
            let callee_guid = binary.funcs[frames[k + 1].0.index()].guid;
            cur = cur.callsite_mut(key, callee_guid);
        }
        let (leaf_func, line, disc) = *frames.last().expect("non-empty frames");
        let start = binary.funcs[leaf_func.index()].start_line;
        cur.record_max(LocKey::new(line, start, disc), count);
    }

    for (fidx, c) in rc.entry_counts(binary) {
        let guid = binary.funcs[fidx as usize].guid;
        out.funcs.entry(guid).or_default().entry += c;
    }
    for f in out.funcs.values_mut() {
        f.recompute_totals();
    }
    let mut needed: BTreeSet<u64> = out.funcs.keys().copied().collect();
    for f in out.funcs.values() {
        collect_flat_guids(f, &mut needed);
    }
    name_referenced(&mut out.names, binary, &needed);
    out
}

/// Builds a (context-insensitive) probe profile from LBR range counts.
pub fn probe_profile(binary: &Binary, rc: &RangeCounts) -> ProbeProfile {
    let counts = rc.inst_counts(binary);
    let mut out = ProbeProfile::default();

    for (idx, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        for note in &binary.insts[idx].probes {
            // Navigate by the probe's inline stack: each frame is a
            // call-site probe in some function.
            let top_guid = note
                .inline_stack
                .first()
                .map(|s| binary.funcs[s.func.index()].guid)
                .unwrap_or(note.owner_guid);
            let mut cur: &mut ProbeFuncProfile = out.funcs.entry(top_guid).or_default();
            for (k, site) in note.inline_stack.iter().enumerate() {
                let callee_guid = note
                    .inline_stack
                    .get(k + 1)
                    .map(|s| binary.funcs[s.func.index()].guid)
                    .unwrap_or(note.owner_guid);
                cur = cur.callsite_mut(site.probe_index, callee_guid);
            }
            cur.record_sum(note.index, count);
        }
    }

    for (fidx, c) in rc.entry_counts(binary) {
        let guid = binary.funcs[fidx as usize].guid;
        out.funcs.entry(guid).or_default().entry += c;
    }

    // Stamp checksums (recursively: nested profiles carry their own
    // function's checksum, found via the callee GUID key).
    fn stamp(profile: &mut ProbeFuncProfile, guid: u64, binary: &Binary) {
        if let Some(f) = binary.func_by_guid(guid) {
            profile.checksum = f.probe_checksum.unwrap_or(0);
        }
        let keys: Vec<(u32, u64)> = profile.callsites.keys().copied().collect();
        for key in keys {
            let child = profile.callsites.get_mut(&key).expect("key collected");
            stamp(child, key.1, binary);
        }
    }
    let guids: Vec<u64> = out.funcs.keys().copied().collect();
    for g in guids {
        let f = out.funcs.get_mut(&g).expect("guid collected");
        stamp(f, g, binary);
    }
    for f in out.funcs.values_mut() {
        f.recompute_totals();
    }
    let mut needed: BTreeSet<u64> = out.funcs.keys().copied().collect();
    for f in out.funcs.values() {
        collect_probe_guids(f, &mut needed);
    }
    name_referenced(&mut out.names, binary, &needed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_opt::OptConfig;
    use csspgo_sim::{Machine, SimConfig};

    const SRC: &str = r#"
fn helper(x) {
    if (x > 100) { return x - 100; }
    return x;
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    return s;
}
"#;

    fn profile_run(probes: bool, optimize: bool) -> (Binary, RangeCounts) {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        if probes {
            csspgo_opt::probes::run(&mut m);
        }
        if optimize {
            csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
        }
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 29,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[4000]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        (b, rc)
    }

    #[test]
    fn dwarf_profile_finds_hot_loop_lines() {
        let (b, rc) = profile_run(false, false);
        let p = dwarf_profile(&b, &rc);
        let main_guid = b.func_by_name("main").unwrap().guid;
        let main = &p.funcs[&main_guid];
        assert!(main.total > 0);
        // Loop body lines (offset 5..7 from `fn main` header) must be hot.
        let hot_key = main
            .body
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| *k)
            .unwrap();
        assert!(
            (4..=8).contains(&hot_key.line_offset),
            "hottest key should be in the loop: {hot_key:?}"
        );
    }

    #[test]
    fn dwarf_profile_nests_inlined_callees() {
        let (b, rc) = profile_run(false, true); // optimized: helper inlined
        let p = dwarf_profile(&b, &rc);
        let main_guid = b.func_by_name("main").unwrap().guid;
        let helper_guid = b.func_by_name("helper").unwrap().guid;
        let main = p.funcs.get(&main_guid).expect("main profiled");
        let nested = main
            .callsites
            .keys()
            .any(|(_, callee)| *callee == helper_guid);
        assert!(nested, "inlined helper must appear as a nested profile");
    }

    #[test]
    fn probe_profile_counts_block_probes() {
        let (b, rc) = profile_run(true, false);
        let p = probe_profile(&b, &rc);
        let main_guid = b.func_by_name("main").unwrap().guid;
        let main = &p.funcs[&main_guid];
        assert!(main.total > 0);
        assert!(main.probes.len() >= 3, "several probes must be hit");
        assert_ne!(main.checksum, 0);
    }

    #[test]
    fn probe_profile_nests_by_probe_inline_stack() {
        let (b, rc) = profile_run(true, true);
        let p = probe_profile(&b, &rc);
        let main_guid = b.func_by_name("main").unwrap().guid;
        let helper_guid = b.func_by_name("helper").unwrap().guid;
        let main = p.funcs.get(&main_guid).expect("main profiled");
        let nested = main
            .callsites
            .keys()
            .any(|(_, callee)| *callee == helper_guid);
        assert!(nested, "inlined helper must nest under its call-site probe");
    }

    #[test]
    fn probe_counts_exceed_dwarf_counts_under_duplication() {
        // After unrolling, dwarf MAX-per-line under-counts while probes sum:
        // the probe total for the loop body should be >= the dwarf count of
        // the same source line.
        let (bp, rcp) = profile_run(true, true);
        let pp = probe_profile(&bp, &rcp);
        let (bd, rcd) = profile_run(false, true);
        let pd = dwarf_profile(&bd, &rcd);
        let main_guid = bp.func_by_name("main").unwrap().guid;
        let probe_max = pp.funcs[&main_guid]
            .probes
            .values()
            .max()
            .copied()
            .unwrap_or(0);
        let dwarf_max = pd.funcs[&main_guid]
            .body
            .values()
            .max()
            .copied()
            .unwrap_or(0);
        assert!(
            probe_max as f64 >= dwarf_max as f64 * 0.9,
            "probe sums ({probe_max}) should not lose to dwarf max ({dwarf_max})"
        );
    }
}
