//! The block-overlap profile-quality metric (paper §IV.C, Table I).
//!
//! For a function with block set `V`, measured counts `f` and ground-truth
//! counts `gt`:
//!
//! ```text
//! D(V) = Σ_{v∈V} min( f(v)/Σf ,  gt(v)/Σgt )
//! ```
//!
//! and the program-level degree weights functions by their share of the
//! measured profile:
//!
//! ```text
//! D(P) = Σ_V D(V) · Σ_{v∈V} f(v) / Σ_{V'} Σ_{v∈V'} f(v)
//! ```

use csspgo_ir::BlockId;
use std::collections::HashMap;

/// Per-function block counts keyed by GUID.
pub type BlockCounts = HashMap<u64, HashMap<BlockId, u64>>;

/// Block overlap degree of one function; 1.0 means identical distributions.
pub fn function_overlap(f: &HashMap<BlockId, u64>, gt: &HashMap<BlockId, u64>) -> f64 {
    let f_total: u64 = f.values().sum();
    let gt_total: u64 = gt.values().sum();
    if f_total == 0 || gt_total == 0 {
        // Either side empty: no overlap information; count as zero overlap
        // unless both are empty (trivially identical).
        return if f_total == gt_total { 1.0 } else { 0.0 };
    }
    let mut d = 0.0;
    let blocks: std::collections::HashSet<BlockId> = f.keys().chain(gt.keys()).copied().collect();
    for v in blocks {
        let fv = f.get(&v).copied().unwrap_or(0) as f64 / f_total as f64;
        let gv = gt.get(&v).copied().unwrap_or(0) as f64 / gt_total as f64;
        d += fv.min(gv);
    }
    d
}

/// Program-level block overlap degree, weighted by the measured profile.
pub fn program_overlap(f: &BlockCounts, gt: &BlockCounts) -> f64 {
    let grand_total: u64 = f.values().map(|m| m.values().sum::<u64>()).sum();
    if grand_total == 0 {
        return 0.0;
    }
    let mut d = 0.0;
    for (guid, f_counts) in f {
        let weight = f_counts.values().sum::<u64>() as f64 / grand_total as f64;
        if weight == 0.0 {
            continue;
        }
        let empty = HashMap::new();
        let gt_counts = gt.get(guid).unwrap_or(&empty);
        d += function_overlap(f_counts, gt_counts) * weight;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(u32, u64)]) -> HashMap<BlockId, u64> {
        pairs.iter().map(|&(b, c)| (BlockId(b), c)).collect()
    }

    #[test]
    fn identical_profiles_overlap_fully() {
        let a = counts(&[(0, 100), (1, 50), (2, 50)]);
        let d = function_overlap(&a, &a);
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_profiles_overlap_fully() {
        // Overlap compares distributions, not magnitudes.
        let a = counts(&[(0, 100), (1, 50)]);
        let b = counts(&[(0, 10), (1, 5)]);
        assert!((function_overlap(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_profiles_do_not_overlap() {
        let a = counts(&[(0, 100)]);
        let b = counts(&[(1, 100)]);
        assert_eq!(function_overlap(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_is_proportional() {
        let a = counts(&[(0, 50), (1, 50)]);
        let b = counts(&[(0, 100), (1, 0)]);
        // min(0.5, 1.0) + min(0.5, 0.0) = 0.5
        assert!((function_overlap(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn program_overlap_weights_by_measured_share() {
        let mut f = BlockCounts::new();
        f.insert(1, counts(&[(0, 900)])); // 90% of measured samples, perfect
        f.insert(2, counts(&[(0, 100)])); // 10%, totally wrong
        let mut gt = BlockCounts::new();
        gt.insert(1, counts(&[(0, 10)]));
        gt.insert(2, counts(&[(1, 10)]));
        let d = program_overlap(&f, &gt);
        assert!((d - 0.9).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn empty_measured_profile_is_zero() {
        let f = BlockCounts::new();
        let mut gt = BlockCounts::new();
        gt.insert(1, counts(&[(0, 10)]));
        assert_eq!(program_overlap(&f, &gt), 0.0);
    }
}
