//! Streaming profile aggregation: epoch-based incremental ingestion of an
//! unbounded PMU sample stream.
//!
//! The paper's deployment runs against *continuous* production profiling
//! (AlwaysOn-style `perf` collection feeding periodic profile refreshes),
//! not a single offline run. This module is that ingestion path:
//!
//! * samples arrive in bounded batches ([`StreamAggregator::push_batch`])
//!   and are folded at *epoch* boundaries
//!   ([`StreamAggregator::seal_epoch`]) — raw samples are dropped after
//!   each fold, so memory stays bounded by the epoch size, not the stream;
//! * each epoch is ingested with the same sharded machinery as the batch
//!   pipeline ([`crate::shard`]) and folded into the cumulative profile
//!   with the count-additive cross-host merge ([`crate::merge`]);
//! * the cumulative state round-trips through a snapshot
//!   ([`StreamAggregator::snapshot_as`] /
//!   [`StreamAggregator::restore_from`]) in either [`SnapshotFormat`]:
//!   the compact binary format ([`crate::binprof`]) is the production
//!   path, the text form stays as the human-readable debug format, and
//!   the two are losslessly interchangeable — `restore_from` sniffs the
//!   binprof magic, so callers never track which format was persisted;
//! * under a resident-context cap, cold context subtrees can be evicted
//!   ([`StreamAggregator::evict_contexts`]): their weight folds into the
//!   per-function base profiles (the [`crate::context`] conservation
//!   rule), so fleet memory stays bounded while totals are conserved;
//! * consecutive epochs are compared for *drift* (distribution overlap of
//!   probe weights); a stale epoch flags the profile for recompilation via
//!   the existing [`crate::pipeline::run_pgo_cycle_drifted`] path.
//!
//! **The epoch invariant** (enforced by unit, golden, and property tests):
//! for a fixed tail-call graph, folding N epochs incrementally produces a
//! profile *bit-identical* to one-shot batch ingestion of the concatenated
//! samples. This holds because every per-sample contribution is an
//! order-independent `+=` into keyed maps and the unwinder carries no
//! cross-sample state — the same two facts that make sharded ingestion
//! exact. The tail-call graph is therefore pinned at construction
//! (typically from a calibration epoch) and persisted inside snapshots;
//! rebuilding it mid-stream would change how later samples unwind.

use crate::binprof::{self, put_uvarint, Kind};
use crate::context::ContextProfile;
use crate::merge::merge_context;
use crate::pipeline::{PipelineError, StageTimes};
use crate::profile::ProbeProfile;
use crate::ranges::RangeCounts;
use crate::shard::{sharded_context_profile, sharded_range_counts};
use crate::tailcall::{InferStats, TailCallGraph};
use crate::textprof;
use csspgo_codegen::Binary;
use csspgo_sim::Sample;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::time::Instant;

/// Streaming-aggregation knobs (embedded in
/// [`crate::pipeline::PipelineConfig`] and validated by its builder).
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Maximum samples buffered between epoch seals; `push_batch` refuses
    /// to grow past this, which is the bounded-memory contract.
    pub max_pending_samples: usize,
    /// Epoch-to-epoch probe-weight overlap below which the profile counts
    /// as drifted (stale). A fraction in `[0, 1]`; `0.0` disables.
    pub drift_threshold: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            max_pending_samples: 1 << 20,
            drift_threshold: 0.5,
        }
    }
}

/// What one sealed epoch did: sizes, per-stage wall times, drift verdict.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochSummary {
    /// 0-based index of the sealed epoch.
    pub epoch: u64,
    /// Samples folded by this epoch.
    pub samples: usize,
    /// Samples folded across all epochs so far.
    pub total_samples: u64,
    /// Context-trie nodes contributed by this epoch alone.
    pub nodes_epoch: usize,
    /// Context-trie nodes in the cumulative profile after the fold.
    pub nodes_cumulative: usize,
    /// Range/branch accumulation time (ms).
    pub ingest_ms: f64,
    /// Context unwinding time (ms).
    pub unwind_ms: f64,
    /// Cumulative-fold (merge) time (ms).
    pub fold_ms: f64,
    /// Probe-weight overlap with the previous epoch (1.0 = identical
    /// distribution; 1.0 for the first or an empty epoch).
    pub overlap: f64,
    /// Whether this epoch's overlap fell below the drift threshold.
    pub stale: bool,
}

impl EpochSummary {
    /// Total aggregation time of the epoch (ms).
    pub fn aggregate_ms(&self) -> f64 {
        self.ingest_ms + self.unwind_ms + self.fold_ms
    }

    /// Maps the epoch onto the pipeline's [`StageTimes`] shape so epoch
    /// records slot into the `BENCH_pipeline.json` format: `simulate_ms`
    /// is the caller-measured traffic time, all aggregation work lands in
    /// `correlate_ms`.
    pub fn stage_times(&self, simulate_ms: f64) -> StageTimes {
        StageTimes {
            simulate_ms,
            correlate_ms: self.aggregate_ms(),
            ..StageTimes::default()
        }
    }
}

/// The snapshot wire formats a [`StreamAggregator`] speaks, unified behind
/// [`StreamAggregator::snapshot_as`] / [`StreamAggregator::restore_from`].
///
/// `Binary` is the production format ([`crate::binprof`], magic-tagged);
/// `Text` is the human-readable debug format. Both are lossless and
/// interchangeable: restoring either and re-snapshotting yields canonical
/// output, and `restore_from` sniffs the binprof magic so callers never
/// need to remember which format a payload was persisted in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SnapshotFormat {
    /// Human-readable debug snapshot (`# csspgo-stream-snapshot v1` text).
    Text,
    /// Compact binprof snapshot (the production path).
    Binary,
}

impl fmt::Display for SnapshotFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotFormat::Text => "text",
            SnapshotFormat::Binary => "binary",
        })
    }
}

impl std::str::FromStr for SnapshotFormat {
    type Err = String;

    /// Parses `"text"` / `"binary"` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("text") {
            Ok(SnapshotFormat::Text)
        } else if s.eq_ignore_ascii_case("binary") {
            Ok(SnapshotFormat::Binary)
        } else {
            Err(format!(
                "unknown snapshot format {s:?} (expected \"text\" or \"binary\")"
            ))
        }
    }
}

/// A depth-1 context-trie edge — root function `root` calling `callee`
/// through call-site probe `probe`. This is the granule the fleet's shared
/// context store tracks (LRU-by-epoch) and evicts
/// ([`StreamAggregator::evict_contexts`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextEdge {
    /// Root (un-inlined outermost) function GUID.
    pub root: u64,
    /// Call-site probe index inside the root.
    pub probe: u32,
    /// Callee GUID the probe reached.
    pub callee: u64,
}

/// Outcome of one cold-context eviction pass
/// ([`StreamAggregator::evict_contexts`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct EvictStats {
    /// Depth-1 subtrees detached.
    pub subtrees: usize,
    /// Trie nodes the detached subtrees held.
    pub nodes_folded: usize,
    /// Sample weight folded into base profiles (conserved, not dropped).
    pub weight_folded: u64,
}

impl EvictStats {
    /// Accumulates another pass's counters.
    pub fn absorb(&mut self, other: EvictStats) {
        self.subtrees += other.subtrees;
        self.nodes_folded += other.nodes_folded;
        self.weight_folded += other.weight_folded;
    }
}

/// A content fingerprint of the profiled binary, persisted in snapshots so
/// a restore onto a different build is rejected instead of silently
/// mis-correlating counts.
fn binary_fingerprint(binary: &Binary) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(&mut h, binary.len() as u64);
    for f in &binary.funcs {
        mix(&mut h, f.guid);
        mix(&mut h, f.probe_checksum.unwrap_or(0));
    }
    h
}

/// Flattens a context profile into context-insensitive probe weights
/// `(guid, probe) → count` — the distribution the drift detector compares.
/// Public so canary evaluation can measure per-version profile agreement
/// with the same [`weight_overlap`] metric the watchdog uses.
pub fn probe_weights(profile: &ContextProfile) -> BTreeMap<(u64, u32), u64> {
    fn walk(node: &crate::context::ContextNode, out: &mut BTreeMap<(u64, u32), u64>) {
        for (&probe, &count) in &node.probes {
            *out.entry((node.guid, probe)).or_insert(0) += count;
        }
        for child in node.children.values() {
            walk(child, out);
        }
    }
    let mut out = BTreeMap::new();
    for node in profile.roots.values() {
        walk(node, &mut out);
    }
    out
}

/// Distribution overlap of two weight maps: `Σ min(aᵢ/Σa, bᵢ/Σb)`, the
/// same min-of-normalized-shares shape as the paper's block-overlap
/// quality metric. 1.0 means identical distributions.
pub fn weight_overlap(a: &BTreeMap<(u64, u32), u64>, b: &BTreeMap<(u64, u32), u64>) -> f64 {
    let a_total: u64 = a.values().sum();
    let b_total: u64 = b.values().sum();
    if a_total == 0 || b_total == 0 {
        return if a_total == b_total { 1.0 } else { 0.0 };
    }
    let mut d = 0.0;
    for (key, &av) in a {
        if let Some(&bv) = b.get(key) {
            d += (av as f64 / a_total as f64).min(bv as f64 / b_total as f64);
        }
    }
    d
}

/// The streaming profile aggregator: accepts PMU sample batches
/// incrementally across epochs and maintains a bounded-memory incremental
/// context-sensitive profile (see the module docs for the invariant).
#[derive(Debug)]
pub struct StreamAggregator<'b> {
    binary: &'b Binary,
    config: StreamConfig,
    ingest_shards: usize,
    tail_graph: Option<TailCallGraph>,
    rc: RangeCounts,
    profile: ContextProfile,
    pending: Vec<Sample>,
    epochs_sealed: u64,
    total_samples: u64,
    infer_stats: InferStats,
    broken_stacks: u64,
    last_weights: Option<BTreeMap<(u64, u32), u64>>,
    last_overlap: f64,
    stale: bool,
    last_epoch_edges: Vec<ContextEdge>,
    evicted: EvictStats,
}

impl<'b> StreamAggregator<'b> {
    /// An aggregator without missing-frame inference.
    pub fn new(binary: &'b Binary, config: StreamConfig, ingest_shards: usize) -> Self {
        Self::build(binary, config, ingest_shards, None)
    }

    /// An aggregator unwinding with a *pinned* tail-call graph (usually
    /// built from a calibration epoch's [`RangeCounts`]). Pinning is what
    /// keeps incremental folds bit-identical to a batch ingestion that
    /// uses the same graph.
    pub fn with_tail_graph(
        binary: &'b Binary,
        config: StreamConfig,
        ingest_shards: usize,
        graph: TailCallGraph,
    ) -> Self {
        Self::build(binary, config, ingest_shards, Some(graph))
    }

    fn build(
        binary: &'b Binary,
        config: StreamConfig,
        ingest_shards: usize,
        tail_graph: Option<TailCallGraph>,
    ) -> Self {
        StreamAggregator {
            binary,
            config,
            ingest_shards,
            tail_graph,
            rc: RangeCounts::default(),
            profile: ContextProfile::new(),
            pending: Vec::new(),
            epochs_sealed: 0,
            total_samples: 0,
            infer_stats: InferStats::default(),
            broken_stacks: 0,
            last_weights: None,
            last_overlap: 1.0,
            stale: false,
            last_epoch_edges: Vec::new(),
            evicted: EvictStats::default(),
        }
    }

    /// Buffers one batch of samples into the current (unsealed) epoch.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stream`] when the batch would overflow
    /// `max_pending_samples` — the caller must [`Self::seal_epoch`] first.
    pub fn push_batch(&mut self, samples: Vec<Sample>) -> Result<(), PipelineError> {
        let would_hold = self.pending.len() + samples.len();
        if would_hold > self.config.max_pending_samples {
            return Err(PipelineError::Stream(format!(
                "pending buffer would hold {would_hold} samples, over the \
                 max_pending_samples cap of {} — seal_epoch before pushing more",
                self.config.max_pending_samples
            )));
        }
        self.pending.extend(samples);
        Ok(())
    }

    /// Folds the buffered samples into the cumulative profile as one epoch
    /// and runs drift detection against the previous epoch.
    ///
    /// An empty epoch is legal (no traffic arrived): it folds nothing and
    /// reports `overlap = 1.0`.
    pub fn seal_epoch(&mut self) -> EpochSummary {
        let samples = std::mem::take(&mut self.pending);
        let mut summary = EpochSummary {
            epoch: self.epochs_sealed,
            samples: samples.len(),
            overlap: 1.0,
            ..EpochSummary::default()
        };

        self.last_epoch_edges.clear();
        if !samples.is_empty() {
            let t = Instant::now();
            let rc_epoch = sharded_range_counts(self.binary, &samples, self.ingest_shards);
            summary.ingest_ms = t.elapsed().as_secs_f64() * 1e3;

            let t = Instant::now();
            let unwound = sharded_context_profile(
                self.binary,
                self.tail_graph.as_ref(),
                &samples,
                self.ingest_shards,
            );
            summary.unwind_ms = t.elapsed().as_secs_f64() * 1e3;
            summary.nodes_epoch = unwound.profile.node_count();

            let t = Instant::now();
            self.rc.merge(&rc_epoch);
            merge_context(&mut self.profile, &unwound.profile);
            summary.fold_ms = t.elapsed().as_secs_f64() * 1e3;

            self.infer_stats.recovered += unwound.infer_stats.recovered;
            self.infer_stats.failed += unwound.infer_stats.failed;
            self.broken_stacks += unwound.broken_stacks;

            // Depth-1 edges this epoch touched — the LRU signal the fleet's
            // context store keeps per tenant (see `evict_contexts`).
            for (&root, node) in &unwound.profile.roots {
                for &(probe, callee) in node.children.keys() {
                    self.last_epoch_edges.push(ContextEdge {
                        root,
                        probe,
                        callee,
                    });
                }
            }

            // Drift: compare this epoch's probe-weight distribution with
            // the previous epoch's.
            let weights = probe_weights(&unwound.profile);
            if let Some(prev) = &self.last_weights {
                summary.overlap = weight_overlap(prev, &weights);
                summary.stale = self.config.drift_threshold > 0.0
                    && summary.overlap < self.config.drift_threshold;
            }
            self.last_weights = Some(weights);
        }

        self.total_samples += summary.samples as u64;
        self.epochs_sealed += 1;
        self.last_overlap = summary.overlap;
        self.stale = summary.stale;
        summary.total_samples = self.total_samples;
        summary.nodes_cumulative = self.profile.node_count();
        summary
    }

    /// The cumulative context profile folded so far.
    pub fn context_profile(&self) -> &ContextProfile {
        &self.profile
    }

    /// The cumulative LBR range/branch counts folded so far.
    pub fn range_counts(&self) -> &RangeCounts {
        &self.rc
    }

    /// Sealed epoch count.
    pub fn epochs_sealed(&self) -> u64 {
        self.epochs_sealed
    }

    /// Samples folded across all sealed epochs.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Samples buffered but not yet sealed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative missing-frame inference counters.
    pub fn infer_stats(&self) -> InferStats {
        self.infer_stats
    }

    /// Cumulative uninterpretable-stack counter.
    pub fn broken_stacks(&self) -> u64 {
        self.broken_stacks
    }

    /// Whether the most recent sealed epoch drifted below the threshold —
    /// the signal to refresh the deployed binary through
    /// [`crate::pipeline::run_pgo_cycle_drifted`].
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Probe-weight overlap reported by the most recent sealed epoch.
    pub fn last_overlap(&self) -> f64 {
        self.last_overlap
    }

    /// Depth-1 context edges the most recent sealed epoch contributed
    /// samples to — the per-epoch touch signal a context store's
    /// LRU bookkeeping consumes. Empty for an empty epoch.
    pub fn last_epoch_edges(&self) -> &[ContextEdge] {
        &self.last_epoch_edges
    }

    /// Context-trie nodes resident *beyond* the per-function base/root
    /// profiles — the quantity a fleet's resident-context cap bounds.
    /// Root nodes are one flat profile per sampled function (bounded by
    /// program size); the context nodes under them grow with distinct
    /// calling contexts, and they are what [`Self::evict_contexts`]
    /// reclaims (folding always *shrinks* this count, even though it may
    /// add base roots to conserve weight).
    pub fn resident_contexts(&self) -> usize {
        self.profile.node_count() - self.profile.roots.len()
    }

    /// Cumulative eviction counters across all `evict_contexts` passes.
    pub fn evict_stats(&self) -> EvictStats {
        self.evicted
    }

    /// Cold-context compaction: detaches each named depth-1 subtree from
    /// the cumulative profile and folds its weight context-insensitively
    /// into the functions' base profiles
    /// ([`ContextProfile::evict_subtree`]), so the trie shrinks while
    /// [`ContextProfile::total`] is conserved. Edges that no longer exist
    /// (already evicted, or never materialized) are skipped.
    ///
    /// Eviction is deterministic given the same edge list, so a tenant
    /// served in a fleet and the same tenant served alone stay
    /// bit-identical as long as their eviction policies see the same
    /// tenant-local state.
    pub fn evict_contexts(&mut self, edges: &[ContextEdge]) -> EvictStats {
        let mut stats = EvictStats::default();
        for e in edges {
            if let Some((nodes, weight)) = self.profile.evict_subtree(e.root, e.probe, e.callee) {
                stats.subtrees += 1;
                stats.nodes_folded += nodes;
                stats.weight_folded += weight;
            }
        }
        self.evicted.absorb(stats);
        stats
    }

    /// Collapses the cumulative profile into a build-ready [`ProbeProfile`]
    /// the same way the batch pipeline does for full CSSPGO: checksums from
    /// the profiled binary, cold contexts trimmed at `trim_threshold`,
    /// context entry counts back-filled from plain LBR entry counts where
    /// sparse.
    pub fn to_probe_profile(&self, trim_threshold: u64) -> ProbeProfile {
        let mut probe_prof = self.context_snapshot(trim_threshold).to_probe_profile();
        self.backfill_entries(&mut probe_prof);
        probe_prof
    }

    /// A checksummed, cold-trimmed clone of the cumulative context
    /// profile — the pre-inliner's input shape, matching what the batch
    /// pipeline derives right before `run_preinliner`. The release-train
    /// harness uses this to grow an inline plan out of a *live* profile.
    pub fn context_snapshot(&self, trim_threshold: u64) -> ContextProfile {
        let mut ctx = self.profile.clone();
        let checksums = self
            .binary
            .funcs
            .iter()
            .filter_map(|f| f.probe_checksum.map(|c| (f.guid, c)))
            .collect();
        ctx.set_checksums(&checksums);
        ctx.trim_cold(trim_threshold);
        ctx
    }

    /// Back-fills sparse function entry counts from the plain LBR entry
    /// counters — the repair [`Self::to_probe_profile`] applies, exposed
    /// so a caller deriving its own [`ProbeProfile`] (e.g. after
    /// pre-inlining mutated a [`Self::context_snapshot`]) gets identical
    /// entries.
    pub fn backfill_entries(&self, probe_prof: &mut ProbeProfile) {
        for (fidx, c) in self.rc.entry_counts(self.binary) {
            let f = &self.binary.funcs[fidx as usize];
            probe_prof
                .names
                .entry(f.guid)
                .or_insert_with(|| f.name.clone());
            if let Some(fp) = probe_prof.funcs.get_mut(&f.guid) {
                fp.entry = fp.entry.max(c);
            }
        }
    }

    // -----------------------------------------------------------------
    // Snapshot / restore
    // -----------------------------------------------------------------

    /// Serializes the cumulative state in the requested wire format.
    ///
    /// Both formats carry the same content — fingerprint guard,
    /// epoch/sample counters, pinned tail-call graph, range/branch counts,
    /// previous-epoch probe weights, the context profile — and both are
    /// canonical: restore → re-snapshot is byte-identical.
    pub fn snapshot_as(&self, format: SnapshotFormat) -> Vec<u8> {
        match format {
            SnapshotFormat::Text => self.snapshot_text().into_bytes(),
            SnapshotFormat::Binary => self.snapshot_binary(),
        }
    }

    /// Rebuilds an aggregator from a snapshot in *either* format: the
    /// payload is sniffed for the [`crate::binprof`] magic and decoded as
    /// binary when it matches, as UTF-8 text otherwise. The inverse of
    /// [`Self::snapshot_as`], without the caller having to remember which
    /// format was persisted.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Decode`] for a malformed binary payload,
    /// [`PipelineError::Profile`] for an unparsable text context section,
    /// and [`PipelineError::Stream`] when the payload is neither format or
    /// was taken against a different binary build.
    pub fn restore_from(
        binary: &'b Binary,
        config: StreamConfig,
        ingest_shards: usize,
        bytes: &[u8],
    ) -> Result<Self, PipelineError> {
        if bytes.starts_with(&binprof::MAGIC) {
            return Self::restore_binary(binary, config, ingest_shards, bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|_| {
            PipelineError::Stream(
                "snapshot payload is neither binprof (no magic) nor UTF-8 text".into(),
            )
        })?;
        Self::restore_text(binary, config, ingest_shards, text)
    }

    /// Serializes the cumulative state to text — the human-readable
    /// **debug** snapshot format (production snapshots use
    /// [`SnapshotFormat::Binary`]). The context section is the
    /// [`crate::textprof`] CS format (named via the binary's symbol table
    /// so GUIDs survive the name-hash round-trip); ranges, branches, and
    /// the pinned tail-call graph ride along in sorted line sections, and
    /// a binary fingerprint guards against restoring onto a different
    /// build.
    fn snapshot_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# csspgo-stream-snapshot v1");
        let _ = writeln!(out, "# fingerprint: {:#x}", binary_fingerprint(self.binary));
        let _ = writeln!(out, "# epochs: {}", self.epochs_sealed);
        let _ = writeln!(out, "# samples: {}", self.total_samples);

        let _ = writeln!(out, "!tail-graph");
        if let Some(g) = &self.tail_graph {
            let mut edges: Vec<(u32, u32, usize)> = g.edges().collect();
            edges.sort_unstable();
            for (caller, callee, inst) in edges {
                let _ = writeln!(out, "{caller} {callee} {inst}");
            }
        }

        let _ = writeln!(out, "!ranges");
        let mut ranges: Vec<((usize, usize), u64)> =
            self.rc.ranges.iter().map(|(&k, &v)| (k, v)).collect();
        ranges.sort_unstable();
        for ((b, e), c) in ranges {
            let _ = writeln!(out, "{b} {e} {c}");
        }

        let _ = writeln!(out, "!branches");
        let mut branches: Vec<((usize, usize), u64)> =
            self.rc.branches.iter().map(|(&k, &v)| (k, v)).collect();
        branches.sort_unstable();
        for ((f, t), c) in branches {
            let _ = writeln!(out, "{f} {t} {c}");
        }

        let _ = writeln!(out, "!weights");
        if let Some(w) = &self.last_weights {
            for (&(guid, probe), &count) in w {
                let _ = writeln!(out, "{guid} {probe} {count}");
            }
        }

        let _ = writeln!(out, "!context");
        let mut named = self.profile.clone();
        for f in &self.binary.funcs {
            named.names.insert(f.guid, f.name.clone());
        }
        out.push_str(&textprof::write_context(&named));
        out
    }

    /// Rebuilds an aggregator from a text snapshot, ready to resume
    /// folding epochs where the snapshot left off.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stream`] when the snapshot structure is
    /// malformed or was taken against a different binary, and
    /// [`PipelineError::Profile`] when the context section fails to parse.
    fn restore_text(
        binary: &'b Binary,
        config: StreamConfig,
        ingest_shards: usize,
        text: &str,
    ) -> Result<Self, PipelineError> {
        let bad = |msg: String| PipelineError::Stream(msg);
        let mut agg = Self::build(binary, config, ingest_shards, None);

        #[derive(PartialEq)]
        enum Section {
            Header,
            TailGraph,
            Ranges,
            Branches,
            Weights,
        }
        let mut section = Section::Header;
        let mut graph = TailCallGraph::default();
        let mut saw_graph_edges = false;
        let mut weights: BTreeMap<(u64, u32), u64> = BTreeMap::new();

        let Some((head, ctx_text)) = textprof::split_snapshot_context(text) else {
            return Err(bad("snapshot has no !context section".into()));
        };
        for (lineno, line) in head.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("# fingerprint:") {
                let v = rest.trim().trim_start_matches("0x");
                let fp = u64::from_str_radix(v, 16)
                    .map_err(|_| bad(format!("line {}: bad fingerprint", lineno + 1)))?;
                if fp != binary_fingerprint(binary) {
                    return Err(bad(
                        "snapshot was taken against a different binary build".into()
                    ));
                }
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("# epochs:") {
                agg.epochs_sealed = rest
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("line {}: bad epoch count", lineno + 1)))?;
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("# samples:") {
                agg.total_samples = rest
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("line {}: bad sample count", lineno + 1)))?;
                continue;
            }
            if trimmed.starts_with('#') {
                continue;
            }
            match trimmed {
                "!tail-graph" => section = Section::TailGraph,
                "!ranges" => section = Section::Ranges,
                "!branches" => section = Section::Branches,
                "!weights" => section = Section::Weights,
                _ => {
                    let mut nums = trimmed.split_whitespace().map(str::parse::<u64>);
                    let mut next = || {
                        nums.next().and_then(Result::ok).ok_or_else(|| {
                            bad(format!("line {}: expected three integers", lineno + 1))
                        })
                    };
                    let (a, b, c) = (next()?, next()?, next()?);
                    match section {
                        Section::Header => {
                            return Err(bad(format!(
                                "line {}: data before any section marker",
                                lineno + 1
                            )))
                        }
                        Section::TailGraph => {
                            graph.insert_edge(a as u32, b as u32, c as usize);
                            saw_graph_edges = true;
                        }
                        Section::Ranges => {
                            agg.rc.ranges.insert((a as usize, b as usize), c);
                        }
                        Section::Branches => {
                            agg.rc.branches.insert((a as usize, b as usize), c);
                        }
                        Section::Weights => {
                            weights.insert((a, b as u32), c);
                        }
                    }
                }
            }
        }

        let mut profile = textprof::parse_context(ctx_text)?;
        // The aggregator's working profile carries no names (exactly like
        // the batch unwinding path); the snapshot only named functions so
        // GUIDs would survive the text round-trip.
        profile.names.clear();
        agg.profile = profile;
        if saw_graph_edges {
            agg.tail_graph = Some(graph);
        }
        if !weights.is_empty() {
            agg.last_weights = Some(weights);
        }
        Ok(agg)
    }

    /// Serializes the cumulative state to the compact binary snapshot — the
    /// production snapshot path ([`SnapshotFormat::Text`] is the debug
    /// format). Same content as the text snapshot: fingerprint guard,
    /// epoch/sample counters, pinned tail-call graph, range/branch counts,
    /// previous-epoch probe weights, and the context profile (as a nested
    /// [`crate::binprof`] payload — GUIDs are stored natively, so no name
    /// round-trip is needed). The encoding is canonical: restoring and
    /// re-snapshotting yields byte-identical output.
    fn snapshot_binary(&self) -> Vec<u8> {
        let mut buf = binprof::header(Kind::StreamSnapshot);

        let mut meta = Vec::new();
        put_uvarint(&mut meta, binary_fingerprint(self.binary));
        put_uvarint(&mut meta, self.epochs_sealed);
        put_uvarint(&mut meta, self.total_samples);
        binprof::put_section(&mut buf, binprof::section::STREAM_META, &meta);

        if let Some(g) = &self.tail_graph {
            let mut edges: Vec<(u32, u32, usize)> = g.edges().collect();
            edges.sort_unstable();
            // An edgeless pinned graph is indistinguishable from "no graph"
            // in the text snapshot; mirror that so the formats stay
            // losslessly interchangeable.
            if !edges.is_empty() {
                let mut sec = Vec::new();
                put_uvarint(&mut sec, edges.len() as u64);
                for (caller, callee, inst) in edges {
                    put_uvarint(&mut sec, u64::from(caller));
                    put_uvarint(&mut sec, u64::from(callee));
                    put_uvarint(&mut sec, inst as u64);
                }
                binprof::put_section(&mut buf, binprof::section::STREAM_TAILGRAPH, &sec);
            }
        }

        let counts_section = |map: &std::collections::HashMap<(usize, usize), u64>| {
            let mut entries: Vec<((usize, usize), u64)> =
                map.iter().map(|(&k, &v)| (k, v)).collect();
            entries.sort_unstable();
            let mut sec = Vec::new();
            put_uvarint(&mut sec, entries.len() as u64);
            let mut prev = 0u64;
            for ((a, b), c) in entries {
                put_uvarint(&mut sec, (a as u64).wrapping_sub(prev));
                put_uvarint(&mut sec, b as u64);
                put_uvarint(&mut sec, c);
                prev = a as u64;
            }
            sec
        };
        binprof::put_section(
            &mut buf,
            binprof::section::STREAM_RANGES,
            &counts_section(&self.rc.ranges),
        );
        binprof::put_section(
            &mut buf,
            binprof::section::STREAM_BRANCHES,
            &counts_section(&self.rc.branches),
        );

        if let Some(w) = self.last_weights.as_ref().filter(|w| !w.is_empty()) {
            let mut sec = Vec::new();
            put_uvarint(&mut sec, w.len() as u64);
            let mut prev = 0u64;
            for (&(guid, probe), &count) in w {
                put_uvarint(&mut sec, guid.wrapping_sub(prev));
                put_uvarint(&mut sec, u64::from(probe));
                put_uvarint(&mut sec, count);
                prev = guid;
            }
            binprof::put_section(&mut buf, binprof::section::STREAM_WEIGHTS, &sec);
        }

        binprof::put_section(
            &mut buf,
            binprof::section::STREAM_CONTEXT,
            &binprof::encode_context(&self.profile),
        );
        buf
    }

    /// Rebuilds an aggregator from a binary snapshot payload.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Decode`] when the payload is malformed and
    /// [`PipelineError::Stream`] when it was taken against a different
    /// binary build.
    fn restore_binary(
        binary: &'b Binary,
        config: StreamConfig,
        ingest_shards: usize,
        bytes: &[u8],
    ) -> Result<Self, PipelineError> {
        use crate::binprof::DecodeError;
        let mut r = binprof::check_header(bytes, Kind::StreamSnapshot)?;
        let sections = binprof::read_sections(&mut r)?;
        let find = |tag: u8| sections.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p);

        let mut agg = Self::build(binary, config, ingest_shards, None);

        let meta = find(binprof::section::STREAM_META)
            .ok_or(DecodeError::Corrupt("missing stream metadata section"))?;
        let mut mr = binprof::Reader::new(meta);
        let fp = mr.uvarint()?;
        if fp != binary_fingerprint(binary) {
            return Err(PipelineError::Stream(
                "snapshot was taken against a different binary build".into(),
            ));
        }
        agg.epochs_sealed = mr.uvarint()?;
        agg.total_samples = mr.uvarint()?;

        if let Some(sec) = find(binprof::section::STREAM_TAILGRAPH) {
            let mut gr = binprof::Reader::new(sec);
            let n = gr.uvarint()?;
            let mut graph = TailCallGraph::default();
            for _ in 0..n {
                let caller = u32::try_from(gr.uvarint()?)
                    .map_err(|_| DecodeError::Corrupt("tail-graph caller overflow"))?;
                let callee = u32::try_from(gr.uvarint()?)
                    .map_err(|_| DecodeError::Corrupt("tail-graph callee overflow"))?;
                let inst = gr.uvarint()? as usize;
                graph.insert_edge(caller, callee, inst);
            }
            if n > 0 {
                agg.tail_graph = Some(graph);
            }
        }

        type PairCounts = Vec<((usize, usize), u64)>;
        let read_counts = |payload: &[u8]| -> Result<PairCounts, DecodeError> {
            let mut cr = binprof::Reader::new(payload);
            let n = cr.uvarint()?;
            let mut out = Vec::new();
            let mut prev = 0u64;
            for _ in 0..n {
                let a = prev.wrapping_add(cr.uvarint()?);
                let b = cr.uvarint()?;
                let c = cr.uvarint()?;
                out.push(((a as usize, b as usize), c));
                prev = a;
            }
            Ok(out)
        };
        if let Some(sec) = find(binprof::section::STREAM_RANGES) {
            for (k, v) in read_counts(sec)? {
                agg.rc.ranges.insert(k, v);
            }
        }
        if let Some(sec) = find(binprof::section::STREAM_BRANCHES) {
            for (k, v) in read_counts(sec)? {
                agg.rc.branches.insert(k, v);
            }
        }

        if let Some(sec) = find(binprof::section::STREAM_WEIGHTS) {
            let mut wr = binprof::Reader::new(sec);
            let n = wr.uvarint()?;
            let mut weights: BTreeMap<(u64, u32), u64> = BTreeMap::new();
            let mut prev = 0u64;
            for _ in 0..n {
                let guid = prev.wrapping_add(wr.uvarint()?);
                let probe = u32::try_from(wr.uvarint()?)
                    .map_err(|_| DecodeError::Corrupt("weight probe overflow"))?;
                weights.insert((guid, probe), wr.uvarint()?);
                prev = guid;
            }
            if !weights.is_empty() {
                agg.last_weights = Some(weights);
            }
        }

        let ctx = find(binprof::section::STREAM_CONTEXT)
            .ok_or(DecodeError::Corrupt("missing stream context section"))?;
        agg.profile = binprof::decode_context(ctx)?;
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unwind::Unwinder;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    const SRC: &str = r#"
fn helper(x, mode) {
    if (mode == 1) {
        if (x % 3 == 0) { return x * 2; }
        return x + 1;
    }
    if (x % 5 == 0) { return x - 7; }
    return x * 3;
}
fn serve(n, mode) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i, mode);
        i = i + 1;
    }
    return s;
}
"#;

    fn probed_binary() -> Binary {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        lower_module(&m, &CodegenConfig::default())
    }

    fn traffic(binary: &Binary, calls: &[(i64, i64)]) -> Vec<Sample> {
        let mut machine = Machine::new(
            binary,
            SimConfig {
                sample_period: 23,
                ..SimConfig::default()
            },
        );
        for &(n, mode) in calls {
            machine.call("serve", &[n, mode]).unwrap();
        }
        machine.take_samples()
    }

    fn batch_reference(
        binary: &Binary,
        graph: &TailCallGraph,
        samples: &[Sample],
    ) -> (RangeCounts, ContextProfile) {
        let mut rc = RangeCounts::default();
        rc.add_samples(binary, samples);
        let mut profile = ContextProfile::new();
        let mut uw = Unwinder::new(binary, Some(graph));
        uw.unwind_into(samples, &mut profile);
        (rc, profile)
    }

    fn calibration_graph(binary: &Binary, samples: &[Sample]) -> TailCallGraph {
        let mut rc = RangeCounts::default();
        rc.add_samples(binary, samples);
        TailCallGraph::build(binary, &rc)
    }

    #[test]
    fn epoch_folds_match_batch_ingestion_bit_for_bit() {
        let b = probed_binary();
        let samples = traffic(&b, &[(3000, 1), (2500, 2), (2800, 1)]);
        assert!(samples.len() > 100, "need a meaningful stream");
        let graph = calibration_graph(&b, &samples);
        let (rc_ref, profile_ref) = batch_reference(&b, &graph, &samples);

        for epochs in [1usize, 2, 3, 7] {
            let mut agg =
                StreamAggregator::with_tail_graph(&b, StreamConfig::default(), 3, graph.clone());
            let chunk = samples.len().div_ceil(epochs);
            for batch in samples.chunks(chunk) {
                agg.push_batch(batch.to_vec()).unwrap();
                agg.seal_epoch();
            }
            assert_eq!(
                agg.context_profile(),
                &profile_ref,
                "{epochs} epochs diverged"
            );
            assert_eq!(agg.range_counts(), &rc_ref, "{epochs} epochs: rc diverged");
            assert_eq!(agg.total_samples(), samples.len() as u64);
        }
    }

    #[test]
    fn evict_contexts_conserves_total_weight_and_shrinks_residency() {
        let b = probed_binary();
        let samples = traffic(&b, &[(2600, 1), (2400, 2)]);
        let graph = calibration_graph(&b, &samples);
        let mut agg = StreamAggregator::with_tail_graph(&b, StreamConfig::default(), 2, graph);
        agg.push_batch(samples).unwrap();
        agg.seal_epoch();

        let edges: Vec<ContextEdge> = agg.last_epoch_edges().to_vec();
        assert!(!edges.is_empty(), "expected depth-1 context edges");
        let total_before = agg.context_profile().total();
        let contexts_before = agg.resident_contexts();
        assert!(contexts_before > 0);

        let stats = agg.evict_contexts(&edges);
        assert_eq!(stats.subtrees, edges.len());
        assert!(stats.nodes_folded > 0);
        assert!(stats.weight_folded > 0);
        // Every folded subtree node was a context node, so residency
        // drops by exactly the folded count.
        assert_eq!(
            agg.resident_contexts(),
            contexts_before - stats.nodes_folded
        );
        // Conservation: evicted weight folds into base profiles, so the
        // profile total is unchanged.
        assert_eq!(agg.context_profile().total(), total_before);
        assert_eq!(agg.evict_stats().weight_folded, stats.weight_folded);

        // Re-evicting the same edges is a no-op.
        let again = agg.evict_contexts(&edges);
        assert_eq!(again.subtrees, 0);
        assert_eq!(again.weight_folded, 0);
    }

    #[test]
    fn push_batch_enforces_bounded_memory() {
        let b = probed_binary();
        let samples = traffic(&b, &[(1500, 1)]);
        assert!(samples.len() > 10);
        let cfg = StreamConfig {
            max_pending_samples: samples.len() - 1,
            ..StreamConfig::default()
        };
        let mut agg = StreamAggregator::new(&b, cfg, 1);
        let err = agg.push_batch(samples.clone()).unwrap_err();
        assert!(matches!(err, PipelineError::Stream(_)), "{err}");
        // Sealing drains the buffer and makes room again.
        agg.push_batch(samples[..samples.len() / 2].to_vec())
            .unwrap();
        agg.seal_epoch();
        agg.push_batch(samples[..samples.len() / 2].to_vec())
            .unwrap();
    }

    #[test]
    fn snapshot_restore_resume_matches_uninterrupted_fold() {
        let b = probed_binary();
        let samples = traffic(&b, &[(2600, 1), (2400, 2)]);
        let graph = calibration_graph(&b, &samples);
        let (rc_ref, profile_ref) = batch_reference(&b, &graph, &samples);

        let cut = samples.len() / 3;
        let mut agg =
            StreamAggregator::with_tail_graph(&b, StreamConfig::default(), 2, graph.clone());
        agg.push_batch(samples[..cut].to_vec()).unwrap();
        agg.seal_epoch();
        let snap = agg.snapshot_as(SnapshotFormat::Text);

        let mut resumed =
            StreamAggregator::restore_from(&b, StreamConfig::default(), 2, &snap).unwrap();
        assert_eq!(resumed.epochs_sealed(), 1);
        assert_eq!(resumed.total_samples(), cut as u64);
        resumed.push_batch(samples[cut..].to_vec()).unwrap();
        resumed.seal_epoch();

        assert_eq!(resumed.context_profile(), &profile_ref);
        assert_eq!(resumed.range_counts(), &rc_ref);

        // A second snapshot of untouched state is byte-identical.
        let resnap = StreamAggregator::restore_from(&b, StreamConfig::default(), 2, &snap)
            .unwrap()
            .snapshot_as(SnapshotFormat::Text);
        assert_eq!(snap, resnap);
    }

    #[test]
    fn binary_snapshot_roundtrips_and_matches_text_restore() {
        let b = probed_binary();
        let samples = traffic(&b, &[(2600, 1), (2400, 2)]);
        let graph = calibration_graph(&b, &samples);
        let (rc_ref, profile_ref) = batch_reference(&b, &graph, &samples);

        let cut = samples.len() / 3;
        let mut agg =
            StreamAggregator::with_tail_graph(&b, StreamConfig::default(), 2, graph.clone());
        agg.push_batch(samples[..cut].to_vec()).unwrap();
        agg.seal_epoch();

        let text = agg.snapshot_as(SnapshotFormat::Text);
        let bin = agg.snapshot_as(SnapshotFormat::Binary);
        assert!(
            bin.len() < text.len(),
            "binary snapshot ({}) should be smaller than text ({})",
            bin.len(),
            text.len()
        );

        // restore_from sniffs the binprof magic and resumes exactly like
        // the text restore.
        let mut resumed =
            StreamAggregator::restore_from(&b, StreamConfig::default(), 2, &bin).unwrap();
        assert_eq!(resumed.epochs_sealed(), 1);
        assert_eq!(resumed.total_samples(), cut as u64);
        resumed.push_batch(samples[cut..].to_vec()).unwrap();
        resumed.seal_epoch();
        assert_eq!(resumed.context_profile(), &profile_ref);
        assert_eq!(resumed.range_counts(), &rc_ref);

        // Both formats restore to the same state: text-restored and
        // binary-restored aggregators re-emit identical binary snapshots.
        let from_text =
            StreamAggregator::restore_from(&b, StreamConfig::default(), 2, &text).unwrap();
        assert_eq!(from_text.snapshot_as(SnapshotFormat::Binary), bin);

        // Canonical: restore → re-snapshot is byte-identical.
        let resnap = StreamAggregator::restore_from(&b, StreamConfig::default(), 2, &bin)
            .unwrap()
            .snapshot_as(SnapshotFormat::Binary);
        assert_eq!(resnap, bin);
    }

    #[test]
    fn snapshot_format_parses_and_displays() {
        assert_eq!("text".parse::<SnapshotFormat>(), Ok(SnapshotFormat::Text));
        assert_eq!(
            "BINARY".parse::<SnapshotFormat>(),
            Ok(SnapshotFormat::Binary)
        );
        assert_eq!(SnapshotFormat::Text.to_string(), "text");
        assert_eq!(SnapshotFormat::Binary.to_string(), "binary");
        let err = "yaml".parse::<SnapshotFormat>().unwrap_err();
        assert!(err.contains("yaml"), "{err}");
    }

    #[test]
    fn restore_from_rejects_untagged_binary_garbage() {
        let b = probed_binary();
        // Neither binprof magic nor UTF-8 text: a distinct Stream error.
        let err = StreamAggregator::restore_from(&b, StreamConfig::default(), 1, &[0xff, 0xfe])
            .unwrap_err();
        assert!(matches!(err, PipelineError::Stream(_)), "{err}");
        // Magic-prefixed garbage routes to the binary decoder.
        let mut bytes = binprof::MAGIC.to_vec();
        bytes.extend_from_slice(b"nonsense");
        let err =
            StreamAggregator::restore_from(&b, StreamConfig::default(), 1, &bytes).unwrap_err();
        assert!(matches!(err, PipelineError::Decode(_)), "{err}");
    }

    #[test]
    fn binary_restore_rejects_wrong_binary_and_garbage() {
        let b = probed_binary();
        let samples = traffic(&b, &[(1200, 1)]);
        let mut agg = StreamAggregator::new(&b, StreamConfig::default(), 1);
        agg.push_batch(samples).unwrap();
        agg.seal_epoch();
        let bin = agg.snapshot_as(SnapshotFormat::Binary);

        let mut m2 =
            csspgo_lang::compile("fn serve(n, mode) { return n + mode; }", "other").unwrap();
        csspgo_opt::discriminators::run(&mut m2);
        csspgo_opt::probes::run(&mut m2);
        let other = lower_module(&m2, &CodegenConfig::default());
        let err =
            StreamAggregator::restore_from(&other, StreamConfig::default(), 1, &bin).unwrap_err();
        assert!(matches!(err, PipelineError::Stream(_)), "{err}");

        // Truncation anywhere must error, never panic. (Cuts shorter than
        // the magic sniff as text and still error; longer ones hit the
        // binary decoder.)
        for cut in [0, 5, 11, bin.len() / 2, bin.len() - 1] {
            assert!(
                StreamAggregator::restore_from(&b, StreamConfig::default(), 1, &bin[..cut])
                    .is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn restore_rejects_wrong_binary_and_garbage() {
        let b = probed_binary();
        let samples = traffic(&b, &[(1200, 1)]);
        let mut agg = StreamAggregator::new(&b, StreamConfig::default(), 1);
        agg.push_batch(samples).unwrap();
        agg.seal_epoch();
        let snap = agg.snapshot_as(SnapshotFormat::Text);

        let mut m2 =
            csspgo_lang::compile("fn serve(n, mode) { return n + mode; }", "other").unwrap();
        csspgo_opt::discriminators::run(&mut m2);
        csspgo_opt::probes::run(&mut m2);
        let other = lower_module(&m2, &CodegenConfig::default());
        let err =
            StreamAggregator::restore_from(&other, StreamConfig::default(), 1, &snap).unwrap_err();
        assert!(matches!(err, PipelineError::Stream(_)), "{err}");

        let err = StreamAggregator::restore_from(&b, StreamConfig::default(), 1, b"nonsense")
            .unwrap_err();
        assert!(matches!(err, PipelineError::Stream(_)), "{err}");
    }

    #[test]
    fn drift_detector_flags_behaviour_shift() {
        let b = probed_binary();
        // Two epochs of mode-1 traffic, then a hard shift to mode 2.
        let steady1 = traffic(&b, &[(2500, 1)]);
        let mut machine = Machine::new(
            &b,
            SimConfig {
                sample_period: 23,
                ..SimConfig::default()
            },
        );
        machine.call("serve", &[2500, 1]).unwrap();
        let _ = machine.take_samples();
        machine.call("serve", &[2500, 1]).unwrap();
        let steady2 = machine.take_samples();
        machine.call("serve", &[2500, 2]).unwrap();
        let shifted = machine.take_samples();

        let cfg = StreamConfig {
            drift_threshold: 0.9,
            ..StreamConfig::default()
        };
        let mut agg = StreamAggregator::new(&b, cfg, 1);
        agg.push_batch(steady1).unwrap();
        let s1 = agg.seal_epoch();
        assert!(!s1.stale, "first epoch has no baseline to drift from");
        agg.push_batch(steady2).unwrap();
        let s2 = agg.seal_epoch();
        assert!(
            !s2.stale,
            "steady traffic must not drift: overlap {:.3}",
            s2.overlap
        );
        agg.push_batch(shifted).unwrap();
        let s3 = agg.seal_epoch();
        assert!(
            s3.stale && agg.is_stale(),
            "mode shift must drift: overlap {:.3}",
            s3.overlap
        );
        assert!(s3.overlap < s2.overlap);
    }

    #[test]
    fn finalized_probe_profile_matches_pipeline_shape() {
        let b = probed_binary();
        let samples = traffic(&b, &[(3000, 1)]);
        let graph = calibration_graph(&b, &samples);
        let mut agg = StreamAggregator::with_tail_graph(&b, StreamConfig::default(), 0, graph);
        agg.push_batch(samples).unwrap();
        agg.seal_epoch();
        let pp = agg.to_probe_profile(4);
        assert!(pp.total() > 0, "probe profile carries counts");
        let serve_guid = b.func_by_name("serve").unwrap().guid;
        assert!(pp.funcs.contains_key(&serve_guid));
        // The finalized profile is valid text-profile material.
        let text = textprof::write_probe_json(&pp);
        let back = textprof::parse_probe_json(&text).unwrap();
        assert_eq!(back.total(), pp.total());
    }

    #[test]
    fn weight_overlap_behaves_like_a_distribution_metric() {
        let mut a = BTreeMap::new();
        a.insert((1u64, 1u32), 100u64);
        a.insert((1, 2), 50);
        assert!((weight_overlap(&a, &a) - 1.0).abs() < 1e-12);
        let mut scaled = BTreeMap::new();
        scaled.insert((1u64, 1u32), 10u64);
        scaled.insert((1, 2), 5);
        assert!((weight_overlap(&a, &scaled) - 1.0).abs() < 1e-12);
        let mut disjoint = BTreeMap::new();
        disjoint.insert((2u64, 1u32), 100u64);
        assert_eq!(weight_overlap(&a, &disjoint), 0.0);
        assert_eq!(weight_overlap(&BTreeMap::new(), &BTreeMap::new()), 1.0);
        assert_eq!(weight_overlap(&a, &BTreeMap::new()), 0.0);
    }
}
