//! The multi-tenant profile-continuum fleet service.
//!
//! The paper's CSSPGO deployment is fleet-scale: AlwaysOn sampling across
//! many services and binary versions, with periodic profile refreshes.
//! This module is that service surface, composing three existing
//! subsystems — [`crate::stream`] epoch aggregation, [`crate::shard`]'s
//! bit-identical sharded ingestion (inside every aggregator), and the
//! [`crate::stalematch`] recovery path — behind one library API:
//!
//! * a [`TenantId`]-keyed registry of tenants, each serving M binary
//!   versions, each version wrapping its own [`StreamAggregator`];
//! * concurrent epoch ingestion: each service round fans out across
//!   tenants with rayon ([`FleetService::run_round`]) — per-tenant state
//!   is disjoint, so the fan-out is trivially deterministic and every
//!   tenant's profile stays *bit-identical* to serving it alone;
//! * a context-profile store kept under a resident-node cap by
//!   cold-context eviction: depth-1 trie subtrees are tracked
//!   LRU-by-epoch ([`ContextEdge`] granules) and the coldest are folded
//!   into the per-function base profiles
//!   ([`StreamAggregator::evict_contexts`]) — totals are conserved, so
//!   bounding memory never drops weight;
//! * per-tenant drift watchdogs: the final eval epoch doubles as a drift
//!   probe, and stale versions schedule recompiles through a *bounded*
//!   refresh queue into the [`StaleMatching::Recover`] pipeline path
//!   (overflow is recorded, not silently grown).
//!
//! Construction is two-phase because [`StreamAggregator`] (and
//! [`Machine`]) borrow the profiled [`Binary`]: [`FleetBinaries::compile`]
//! owns the compiled artifacts, then [`FleetService::new`] borrows them
//! for the serving lifetime. `profile_serve` (one tenant at a time) and
//! `profile_fleet` (N tenants × M versions) are both thin CLI wrappers
//! over this type.

use crate::context::ContextProfile;
use crate::pipeline::{
    run_pgo_cycle_drifted, PgoVariant, PipelineConfig, PipelineError, StageTimes,
};
use crate::ranges::RangeCounts;
use crate::stalematch::StaleMatching;
use crate::stream::{ContextEdge, EpochSummary, EvictStats, SnapshotFormat, StreamAggregator};
use crate::tailcall::TailCallGraph;
use crate::workload::Workload;
use csspgo_codegen::Binary;
use csspgo_sim::{Machine, SimConfig};
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Instant;

// ---------------------------------------------------------------------
// Identity and specs
// ---------------------------------------------------------------------

/// Opaque tenant identity — the registry key for one served workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// How a version participates in its tenant's *train* traffic stream.
///
/// Canary evaluation registers the stable and candidate binaries as two
/// versions of one tenant that *split* the live stream instead of each
/// replaying all of it — the per-version profiles then describe disjoint
/// request slices of the same distribution, which is what makes them
/// comparable before promotion. Eval traffic (the drift probe) is always
/// served in full by every version so probe verdicts stay comparable too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficShare {
    /// The version serves every training request (the default; solo
    /// serving and fleet serving stay bit-identical under it).
    Full,
    /// A/B slice: the version serves the requests whose stream position
    /// is ≡ `index` (mod `of`).
    Split {
        /// This version's residue class, `< of`.
        index: usize,
        /// Number of ways the stream is split.
        of: usize,
    },
}

impl TrafficShare {
    /// The train-call indices this share serves out of a stream of `len`.
    fn train_indices(self, len: usize) -> Vec<usize> {
        match self {
            TrafficShare::Full => (0..len).collect(),
            TrafficShare::Split { index, of } => (0..len).filter(|i| i % of == index).collect(),
        }
    }
}

/// One binary version of a tenant's service: a release label plus the
/// source it was built from.
#[derive(Clone, Debug)]
pub struct VersionSpec {
    /// Release label (e.g. `v0`, `v1`).
    pub label: String,
    /// MiniLang source of this release.
    pub source: String,
    /// Slice of the tenant's train traffic this version serves.
    pub share: TrafficShare,
}

impl VersionSpec {
    /// A version serving the full traffic stream.
    pub fn new(label: impl Into<String>, source: impl Into<String>) -> Self {
        VersionSpec {
            label: label.into(),
            source: source.into(),
            share: TrafficShare::Full,
        }
    }

    /// Sets this version's traffic share.
    #[must_use]
    pub fn with_share(mut self, share: TrafficShare) -> Self {
        self.share = share;
        self
    }
}

/// Everything the fleet needs to serve one tenant.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Registry key; must be unique across the fleet.
    pub id: TenantId,
    /// The workload supplying traffic (train/eval request streams and
    /// staged globals). `workload.source` is only used as the profiling
    /// source of a version whose [`VersionSpec::source`] equals it.
    pub workload: Workload,
    /// Binary versions served concurrently (canary + stable, etc.).
    pub versions: Vec<VersionSpec>,
    /// Source of the *next* release a drift-triggered refresh builds
    /// against (profile collected on the stale version, build on this).
    /// `None` rebuilds the drifted version's own source.
    pub refresh_source: Option<String>,
}

impl TenantSpec {
    /// A single-version tenant serving `workload` as release `v0`.
    pub fn single_version(id: TenantId, workload: Workload) -> Self {
        let source = workload.source.clone();
        TenantSpec {
            id,
            workload,
            versions: vec![VersionSpec::new("v0", source)],
            refresh_source: None,
        }
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Fleet-service knobs, validated by [`FleetConfig::builder`] (mirroring
/// [`PipelineConfig::builder`]).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The per-tenant pipeline knobs (sampling, opt, annotate, stream).
    pub pipeline: PipelineConfig,
    /// Traffic calls folded per epoch.
    pub epoch_calls: usize,
    /// PMU drain granularity: samples pulled off a machine per batch.
    pub batch_samples: usize,
    /// Resident context-node cap **per tenant-version** (`0` =
    /// unbounded), counted as [`StreamAggregator::resident_contexts`] —
    /// trie nodes beyond the per-function base profiles. The fleet-wide
    /// footprint is bounded by `cap × versions`; keeping the slice per
    /// version keeps eviction a pure function of that version's own
    /// stream, which is what makes fleet serving bit-identical to solo
    /// serving.
    pub resident_cap: usize,
    /// Bounded depth of the drift-refresh queue; watchdog requests past
    /// this are dropped (and counted), never queued unboundedly.
    pub refresh_queue_cap: usize,
    /// Wire format used for the mid-stream snapshot self-check.
    pub snapshot_format: SnapshotFormat,
    /// Whether to snapshot→restore→compare each aggregator once
    /// mid-stream (the epoch invariant, live).
    pub snapshot_check: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            pipeline: PipelineConfig::default(),
            epoch_calls: 4,
            batch_samples: 256,
            resident_cap: 0,
            refresh_queue_cap: 8,
            snapshot_format: SnapshotFormat::Binary,
            snapshot_check: true,
        }
    }
}

impl FleetConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            cfg: FleetConfig::default(),
        }
    }

    /// Checks invariants the service relies on.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for an impossible knob
    /// combination (zero epoch size, zero batch size, zero queue depth,
    /// or an invalid inner pipeline config).
    pub fn validate(&self) -> Result<(), FleetError> {
        let fail = |msg: String| Err(FleetError::InvalidConfig(msg));
        if self.epoch_calls == 0 {
            return fail("epoch_calls must be non-zero: an epoch must carry traffic".into());
        }
        if self.batch_samples == 0 {
            return fail(
                "batch_samples must be non-zero: the PMU drain would never advance".into(),
            );
        }
        if self.refresh_queue_cap == 0 {
            return fail(
                "refresh_queue_cap must be non-zero: every drift refresh would be dropped".into(),
            );
        }
        self.pipeline
            .validate()
            .map_err(|e| FleetError::InvalidConfig(e.to_string()))
    }
}

/// Builder for [`FleetConfig`]; [`FleetConfigBuilder::build`] validates.
#[derive(Clone, Debug, Default)]
pub struct FleetConfigBuilder {
    cfg: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the inner pipeline configuration.
    #[must_use]
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.cfg.pipeline = pipeline;
        self
    }

    /// Sets the traffic calls folded per epoch.
    #[must_use]
    pub fn epoch_calls(mut self, calls: usize) -> Self {
        self.cfg.epoch_calls = calls;
        self
    }

    /// Sets the PMU drain batch size.
    #[must_use]
    pub fn batch_samples(mut self, samples: usize) -> Self {
        self.cfg.batch_samples = samples;
        self
    }

    /// Sets the per-version resident context-node cap (`0` = unbounded).
    #[must_use]
    pub fn resident_cap(mut self, cap: usize) -> Self {
        self.cfg.resident_cap = cap;
        self
    }

    /// Sets the bounded refresh-queue depth.
    #[must_use]
    pub fn refresh_queue_cap(mut self, cap: usize) -> Self {
        self.cfg.refresh_queue_cap = cap;
        self
    }

    /// Sets the snapshot wire format for the mid-stream self-check.
    #[must_use]
    pub fn snapshot_format(mut self, format: SnapshotFormat) -> Self {
        self.cfg.snapshot_format = format;
        self
    }

    /// Enables or disables the mid-stream snapshot self-check.
    #[must_use]
    pub fn snapshot_check(mut self, check: bool) -> Self {
        self.cfg.snapshot_check = check;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`FleetConfig::validate`].
    pub fn build(self) -> Result<FleetConfig, FleetError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Fleet-service failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// A configuration combination rejected by [`FleetConfig::validate`].
    InvalidConfig(String),
    /// The fleet was given no tenants to serve.
    NoTenants,
    /// Two tenant specs share a [`TenantId`].
    DuplicateTenant(TenantId),
    /// A tenant spec carries no binary versions.
    NoVersions(TenantId),
    /// The mid-stream snapshot self-check restored to a different state —
    /// the epoch invariant is broken for this tenant-version.
    SnapshotDiverged {
        /// Tenant whose check failed.
        tenant: TenantId,
        /// Version label whose check failed.
        version: String,
    },
    /// An underlying pipeline stage failed (compile, simulate, refresh).
    Pipeline(PipelineError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidConfig(msg) => write!(f, "invalid fleet configuration: {msg}"),
            FleetError::NoTenants => write!(f, "fleet has no tenants"),
            FleetError::DuplicateTenant(id) => write!(f, "duplicate tenant id {id}"),
            FleetError::NoVersions(id) => write!(f, "tenant {id} has no binary versions"),
            FleetError::SnapshotDiverged { tenant, version } => write!(
                f,
                "snapshot self-check diverged for tenant {tenant} version {version}"
            ),
            FleetError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for FleetError {
    fn from(e: PipelineError) -> Self {
        FleetError::Pipeline(e)
    }
}

// ---------------------------------------------------------------------
// Compiled fleet (phase 1: owns the binaries)
// ---------------------------------------------------------------------

struct CompiledVersion {
    label: String,
    source: String,
    share: TrafficShare,
    binary: Binary,
    compile_ms: f64,
}

struct TenantBinaries {
    spec: TenantSpec,
    versions: Vec<CompiledVersion>,
}

/// The compiled fleet: owns every tenant's binaries so a
/// [`FleetService`] can borrow them (aggregators and machines hold
/// `&Binary` for their whole lifetime).
pub struct FleetBinaries {
    tenants: Vec<TenantBinaries>,
}

impl FleetBinaries {
    /// Validates the specs and compiles every tenant × version probed
    /// profiling binary, fanning the builds out with rayon.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::NoTenants`] / [`FleetError::DuplicateTenant`]
    /// / [`FleetError::NoVersions`] for malformed fleets and
    /// [`FleetError::Pipeline`] when a source fails to compile.
    pub fn compile(specs: &[TenantSpec], cfg: &FleetConfig) -> Result<FleetBinaries, FleetError> {
        cfg.validate()?;
        if specs.is_empty() {
            return Err(FleetError::NoTenants);
        }
        let mut seen = BTreeSet::new();
        for spec in specs {
            if !seen.insert(spec.id) {
                return Err(FleetError::DuplicateTenant(spec.id));
            }
            if spec.versions.is_empty() {
                return Err(FleetError::NoVersions(spec.id));
            }
            for v in &spec.versions {
                if let TrafficShare::Split { index, of } = v.share {
                    if of == 0 || index >= of {
                        return Err(FleetError::InvalidConfig(format!(
                            "tenant {} version {}: split share {index}/{of} is not a residue class",
                            spec.id, v.label
                        )));
                    }
                }
            }
        }

        // Flatten to (tenant, version) build units so rayon spreads the
        // compiles evenly even when version counts are uneven.
        let units: Vec<(usize, &VersionSpec)> = specs
            .iter()
            .enumerate()
            .flat_map(|(ti, spec)| spec.versions.iter().map(move |v| (ti, v)))
            .collect();
        let compiled: Vec<Result<(usize, CompiledVersion), PipelineError>> = units
            .into_par_iter()
            .map(|(ti, v)| {
                let t = Instant::now();
                let name = format!("{}-{}", specs[ti].workload.name, v.label);
                let mut module =
                    csspgo_lang::compile(&v.source, &name).map_err(PipelineError::Compile)?;
                csspgo_opt::discriminators::run(&mut module);
                csspgo_opt::probes::run(&mut module);
                csspgo_opt::run_pipeline(&mut module, &cfg.pipeline.opt);
                let binary = csspgo_codegen::lower_module(&module, &cfg.pipeline.codegen);
                Ok((
                    ti,
                    CompiledVersion {
                        label: v.label.clone(),
                        source: v.source.clone(),
                        share: v.share,
                        binary,
                        compile_ms: t.elapsed().as_secs_f64() * 1e3,
                    },
                ))
            })
            .collect();

        let mut tenants: Vec<TenantBinaries> = specs
            .iter()
            .map(|spec| TenantBinaries {
                spec: spec.clone(),
                versions: Vec::new(),
            })
            .collect();
        // The shim preserves input order, so versions land back in spec
        // order within each tenant.
        for unit in compiled {
            let (ti, version) = unit?;
            tenants[ti].versions.push(version);
        }
        Ok(FleetBinaries { tenants })
    }

    /// Tenants in the compiled fleet.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Total binary versions across all tenants.
    pub fn version_count(&self) -> usize {
        self.tenants.iter().map(|t| t.versions.len()).sum()
    }

    /// The compiled profiling binary of one tenant-version — the
    /// checksum/GUID source of truth a release train needs when it builds
    /// an optimized candidate from that version's live profile.
    pub fn binary(&self, id: TenantId, version: &str) -> Option<&Binary> {
        self.tenants
            .iter()
            .find(|t| t.spec.id == id)?
            .versions
            .iter()
            .find(|v| v.label == version)
            .map(|v| &v.binary)
    }
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One sealed epoch on one tenant-version.
#[derive(Clone, Debug)]
pub struct EpochEvent {
    /// Tenant the epoch belongs to.
    pub tenant: TenantId,
    /// Workload display name.
    pub workload: String,
    /// Version label the epoch ran on.
    pub version: String,
    /// Row label (`epoch-N` / `drift-probe`), matching the
    /// `BENCH_pipeline.json` variant-column convention.
    pub label: String,
    /// What the seal did (sizes, stage times, drift verdict).
    pub summary: EpochSummary,
    /// Bench-record stage times (traffic time + aggregation split;
    /// `compile_ms` set on the calibration epoch only).
    pub stage_times: StageTimes,
    /// Context-trie nodes resident after the seal (and any eviction).
    pub resident_contexts: usize,
    /// Eviction done by *this* epoch's cap enforcement.
    pub evicted_this_epoch: EvictStats,
    /// Cumulative eviction on this tenant-version so far.
    pub evicted_total: EvictStats,
}

/// One drift-triggered refresh recompile that ran to completion.
#[derive(Clone, Debug)]
pub struct RefreshEvent {
    /// Tenant that drifted.
    pub tenant: TenantId,
    /// Workload display name.
    pub workload: String,
    /// Version label whose profile went stale.
    pub version: String,
    /// Stage times of the full refresh PGO cycle.
    pub stage_times: StageTimes,
    /// Checksum-gated functions dropped during annotation.
    pub stale_dropped: usize,
    /// Checksum-gated functions the stale matcher salvaged.
    pub stale_recovered: usize,
    /// Evaluation cycles of the refreshed binary.
    pub eval_cycles: u64,
}

/// Everything a fleet run reports, in service order.
#[derive(Clone, Debug)]
pub enum FleetEvent {
    /// A sealed epoch.
    Epoch(EpochEvent),
    /// The mid-stream snapshot self-check passed on this tenant-version.
    SnapshotChecked {
        /// Tenant checked.
        tenant: TenantId,
        /// Version label checked.
        version: String,
        /// Wire format that was persisted.
        format: SnapshotFormat,
        /// Snapshot payload size.
        bytes: usize,
    },
    /// A drift refresh ran.
    Refresh(RefreshEvent),
    /// The watchdog wanted a refresh but the bounded queue was full.
    RefreshDropped {
        /// Tenant whose request was dropped.
        tenant: TenantId,
        /// Version label whose request was dropped.
        version: String,
    },
}

/// Fleet-wide aggregates over one [`FleetService::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetStats {
    /// Tenants served.
    pub tenants: usize,
    /// Tenant × version aggregators served.
    pub versions: usize,
    /// Epochs sealed across the fleet.
    pub epochs_sealed: u64,
    /// Samples folded across the fleet.
    pub total_samples: u64,
    /// Context-trie nodes resident across the fleet at the end.
    pub resident_contexts: usize,
    /// Cold-context eviction totals across the fleet.
    pub evicted: EvictStats,
    /// Drift refreshes that ran.
    pub refreshes_triggered: usize,
    /// Drift refreshes dropped at the bounded queue.
    pub refreshes_dropped: usize,
}

/// The result of [`FleetService::run`]: the event stream plus aggregates.
#[derive(Clone, Debug)]
pub struct FleetRun {
    /// Every epoch / snapshot / refresh event, in service order.
    pub events: Vec<FleetEvent>,
    /// Fleet-wide aggregates.
    pub stats: FleetStats,
}

// ---------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------

struct VersionRt<'b> {
    label: String,
    source: String,
    binary: &'b Binary,
    compile_ms: f64,
    machine: Machine<'b>,
    agg: Option<StreamAggregator<'b>>,
    /// The train-call indices this version serves (its traffic share).
    train_idx: Vec<usize>,
    /// Next position in `train_idx` to serve.
    cursor: usize,
    /// Steady-state epochs served (names the `epoch-N` rows).
    steady_epochs: usize,
    /// Depth-1 context edges → last epoch they were hot (the LRU clock).
    lru: BTreeMap<ContextEdge, u64>,
    snapshot_checked: bool,
}

struct TenantRt<'b> {
    id: TenantId,
    workload: Workload,
    refresh_source: Option<String>,
    versions: Vec<VersionRt<'b>>,
}

struct RefreshRequest {
    tenant: usize,
    version: usize,
}

/// The serving half of the fleet: borrows a [`FleetBinaries`], owns every
/// tenant's machines, aggregators, LRU clocks, and the bounded refresh
/// queue. Drive it with [`FleetService::run`], or compose
/// [`FleetService::calibrate`] / [`FleetService::run_round`] /
/// [`FleetService::drift_probe`] / [`FleetService::process_refreshes`]
/// directly.
pub struct FleetService<'b> {
    cfg: FleetConfig,
    tenants: Vec<TenantRt<'b>>,
    refresh_queue: VecDeque<RefreshRequest>,
    refreshes_triggered: usize,
    refreshes_dropped: usize,
    epochs_sealed: u64,
}

impl<'b> FleetService<'b> {
    /// Builds the serving runtime over a compiled fleet: one simulator
    /// machine per tenant-version, globals staged, aggregators created at
    /// calibration time.
    pub fn new(binaries: &'b FleetBinaries, cfg: FleetConfig) -> FleetService<'b> {
        let sim = sim_config(&cfg.pipeline);
        let tenants = binaries
            .tenants
            .iter()
            .map(|t| {
                let versions = t
                    .versions
                    .iter()
                    .map(|v| {
                        let mut machine = Machine::new(&v.binary, sim.clone());
                        for (name, values) in &t.spec.workload.setup {
                            machine.set_global(name, values);
                        }
                        VersionRt {
                            label: v.label.clone(),
                            source: v.source.clone(),
                            binary: &v.binary,
                            compile_ms: v.compile_ms,
                            machine,
                            agg: None,
                            train_idx: v.share.train_indices(t.spec.workload.train_calls.len()),
                            cursor: 0,
                            steady_epochs: 0,
                            lru: BTreeMap::new(),
                            snapshot_checked: false,
                        }
                    })
                    .collect();
                TenantRt {
                    id: t.spec.id,
                    workload: t.spec.workload.clone(),
                    refresh_source: t.spec.refresh_source.clone(),
                    versions,
                }
            })
            .collect();
        FleetService {
            cfg,
            tenants,
            refresh_queue: VecDeque::new(),
            refreshes_triggered: 0,
            refreshes_dropped: 0,
            epochs_sealed: 0,
        }
    }

    /// Runs the calibration epoch on every tenant-version: the first
    /// `epoch_calls` train requests pin each version's tail-call graph,
    /// and the calibration samples become `epoch-0`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Pipeline`] when a simulated request fails.
    pub fn calibrate(&mut self) -> Result<Vec<FleetEvent>, FleetError> {
        let cfg = &self.cfg;
        let per_tenant: Vec<Result<Vec<FleetEvent>, FleetError>> = self
            .tenants
            .par_iter_mut()
            .map(|t| t.calibrate(cfg))
            .collect();
        let events: Vec<FleetEvent> = sequence(per_tenant)?;
        self.epochs_sealed += events.len() as u64;
        Ok(events)
    }

    /// Serves one steady-state epoch of train traffic on every
    /// tenant-version that still has requests, fanning out across tenants
    /// with rayon. Per-tenant state is disjoint, so concurrency cannot
    /// perturb any tenant's profile.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Pipeline`] when a simulated request fails
    /// and [`FleetError::SnapshotDiverged`] when the mid-stream snapshot
    /// self-check restores to a different state.
    pub fn run_round(&mut self) -> Result<Vec<FleetEvent>, FleetError> {
        let cfg = &self.cfg;
        let per_tenant: Vec<Result<Vec<FleetEvent>, FleetError>> = self
            .tenants
            .par_iter_mut()
            .map(|t| t.run_round(cfg))
            .collect();
        let events: Vec<FleetEvent> = sequence(per_tenant)?;
        self.epochs_sealed += events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Epoch(_)))
            .count() as u64;
        Ok(events)
    }

    /// Whether every tenant-version has drained its traffic share.
    pub fn is_done(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.versions.iter().all(|v| v.cursor >= v.train_idx.len()))
    }

    /// Serves the evaluation traffic as a final epoch on every
    /// tenant-version — the drift probe. Stale versions are enqueued on
    /// the bounded refresh queue; overflow becomes
    /// [`FleetEvent::RefreshDropped`].
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Pipeline`] when a simulated request fails.
    pub fn drift_probe(&mut self) -> Result<Vec<FleetEvent>, FleetError> {
        let cfg = &self.cfg;
        let per_tenant: Vec<Result<Vec<(usize, EpochEvent)>, FleetError>> = self
            .tenants
            .par_iter_mut()
            .map(|t| t.drift_probe(cfg))
            .collect();
        let probed = per_tenant
            .into_iter()
            .collect::<Result<Vec<_>, FleetError>>()?;

        let mut events = Vec::new();
        for (ti, tenant_events) in probed.into_iter().enumerate() {
            for (vi, event) in tenant_events {
                let stale = event.summary.stale;
                let version = event.version.clone();
                let tenant = event.tenant;
                events.push(FleetEvent::Epoch(event));
                self.epochs_sealed += 1;
                if stale {
                    if self.refresh_queue.len() < self.cfg.refresh_queue_cap {
                        self.refresh_queue.push_back(RefreshRequest {
                            tenant: ti,
                            version: vi,
                        });
                    } else {
                        self.refreshes_dropped += 1;
                        events.push(FleetEvent::RefreshDropped { tenant, version });
                    }
                }
            }
        }
        Ok(events)
    }

    /// Drains the refresh queue: each request runs a full drifted PGO
    /// cycle with [`StaleMatching::Recover`] (profile collected on the
    /// stale version, build on the tenant's next release source).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Pipeline`] when a refresh cycle fails.
    pub fn process_refreshes(&mut self) -> Result<Vec<FleetEvent>, FleetError> {
        let mut events = Vec::new();
        while let Some(req) = self.refresh_queue.pop_front() {
            let tenant = &self.tenants[req.tenant];
            let version = &tenant.versions[req.version];

            // The profile was collected on this version's source; the
            // refresh builds the tenant's next release against it.
            let mut profiled = tenant.workload.clone();
            profiled.source = version.source.clone();
            let build_source = tenant
                .refresh_source
                .clone()
                .unwrap_or_else(|| version.source.clone());

            let mut refresh_cfg = self.cfg.pipeline.clone();
            refresh_cfg.annotate.stale_matching = StaleMatching::Recover;
            let outcome = run_pgo_cycle_drifted(
                &profiled,
                PgoVariant::CsspgoFull,
                &refresh_cfg,
                &build_source,
            )?;
            self.refreshes_triggered += 1;
            events.push(FleetEvent::Refresh(RefreshEvent {
                tenant: tenant.id,
                workload: tenant.workload.name.clone(),
                version: version.label.clone(),
                stage_times: outcome.stage_times,
                stale_dropped: outcome.annotate_stats.stale_dropped,
                stale_recovered: outcome.annotate_stats.stale_recovered,
                eval_cycles: outcome.eval.cycles,
            }));
        }
        Ok(events)
    }

    /// The full service lifecycle: calibrate, serve train traffic to
    /// exhaustion, drift-probe on eval traffic, drain the refresh queue.
    ///
    /// # Errors
    ///
    /// See [`FleetService::calibrate`], [`FleetService::run_round`],
    /// [`FleetService::drift_probe`], [`FleetService::process_refreshes`].
    pub fn run(&mut self) -> Result<FleetRun, FleetError> {
        let mut events = self.calibrate()?;
        while !self.is_done() {
            events.extend(self.run_round()?);
        }
        events.extend(self.drift_probe()?);
        events.extend(self.process_refreshes()?);
        Ok(FleetRun {
            events,
            stats: self.stats(),
        })
    }

    /// Fleet-wide aggregates over the service so far.
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            tenants: self.tenants.len(),
            epochs_sealed: self.epochs_sealed,
            refreshes_triggered: self.refreshes_triggered,
            refreshes_dropped: self.refreshes_dropped,
            ..FleetStats::default()
        };
        for t in &self.tenants {
            for v in &t.versions {
                stats.versions += 1;
                if let Some(agg) = &v.agg {
                    stats.total_samples += agg.total_samples();
                    stats.resident_contexts += agg.resident_contexts();
                    stats.evicted.absorb(agg.evict_stats());
                }
            }
        }
        stats
    }

    /// The cumulative context profile of one tenant-version, if it has
    /// been calibrated.
    pub fn context_profile(&self, id: TenantId, version: &str) -> Option<&ContextProfile> {
        self.aggregator(id, version).map(|a| a.context_profile())
    }

    /// Direct access to one tenant-version's aggregator, if calibrated.
    pub fn aggregator(&self, id: TenantId, version: &str) -> Option<&StreamAggregator<'b>> {
        self.tenants
            .iter()
            .find(|t| t.id == id)?
            .versions
            .iter()
            .find(|v| v.label == version)?
            .agg
            .as_ref()
    }

    /// Registry view: every `(tenant, version-label)` pair served.
    pub fn registry(&self) -> Vec<(TenantId, String)> {
        self.tenants
            .iter()
            .flat_map(|t| t.versions.iter().map(|v| (t.id, v.label.clone())))
            .collect()
    }
}

impl TenantRt<'_> {
    fn calibrate(&mut self, cfg: &FleetConfig) -> Result<Vec<FleetEvent>, FleetError> {
        let mut events = Vec::new();
        for v in &mut self.versions {
            let take = cfg.epoch_calls.min(v.train_idx.len());
            let t = Instant::now();
            for &i in &v.train_idx[..take] {
                v.machine
                    .call(&self.workload.entry, &self.workload.train_calls[i])
                    .map_err(|e| FleetError::Pipeline(PipelineError::Sim(e)))?;
            }
            let traffic_ms = t.elapsed().as_secs_f64() * 1e3;
            v.cursor = take;

            let samples = v.machine.take_samples();
            let mut rc = RangeCounts::default();
            rc.add_samples(v.binary, &samples);
            let graph = TailCallGraph::build(v.binary, &rc);
            let mut agg = StreamAggregator::with_tail_graph(
                v.binary,
                cfg.pipeline.stream.clone(),
                cfg.pipeline.ingest_shards,
                graph,
            );
            agg.push_batch(samples)?;
            let summary = agg.seal_epoch();
            v.agg = Some(agg);
            let evicted_this_epoch = v.enforce_cap(cfg, summary.epoch);

            let mut times = summary.stage_times(traffic_ms);
            times.compile_ms = v.compile_ms;
            let agg = v.agg.as_ref().expect("calibrated above");
            events.push(FleetEvent::Epoch(EpochEvent {
                tenant: self.id,
                workload: self.workload.name.clone(),
                version: v.label.clone(),
                label: "epoch-0".to_string(),
                summary,
                stage_times: times,
                resident_contexts: agg.resident_contexts(),
                evicted_this_epoch,
                evicted_total: agg.evict_stats(),
            }));
        }
        Ok(events)
    }

    fn run_round(&mut self, cfg: &FleetConfig) -> Result<Vec<FleetEvent>, FleetError> {
        let mut events = Vec::new();
        for v in &mut self.versions {
            if v.cursor >= v.train_idx.len() {
                continue;
            }
            let end = (v.cursor + cfg.epoch_calls).min(v.train_idx.len());
            let indices = &v.train_idx[v.cursor..end];
            v.cursor = end;

            let t = Instant::now();
            for &i in indices {
                v.machine
                    .call(&self.workload.entry, &self.workload.train_calls[i])
                    .map_err(|e| FleetError::Pipeline(PipelineError::Sim(e)))?;
            }
            let traffic_ms = t.elapsed().as_secs_f64() * 1e3;

            let agg = v.agg.as_mut().expect("run_round after calibrate");
            // Drain the PMU in bounded batches, as a collector daemon
            // would.
            while v.machine.pending_samples() > 0 {
                let batch = v.machine.take_sample_batch(cfg.batch_samples);
                agg.push_batch(batch)?;
            }
            let summary = agg.seal_epoch();
            v.steady_epochs += 1;
            let evicted_this_epoch = v.enforce_cap(cfg, summary.epoch);

            let agg = v.agg.as_ref().expect("run_round after calibrate");
            events.push(FleetEvent::Epoch(EpochEvent {
                tenant: self.id,
                workload: self.workload.name.clone(),
                version: v.label.clone(),
                label: format!("epoch-{}", summary.epoch),
                summary,
                stage_times: summary.stage_times(traffic_ms),
                resident_contexts: agg.resident_contexts(),
                evicted_this_epoch,
                evicted_total: agg.evict_stats(),
            }));

            // Mid-stream snapshot→restore self-check, once per version
            // (the epoch invariant, live).
            if cfg.snapshot_check && !v.snapshot_checked {
                v.snapshot_checked = true;
                let agg = v.agg.as_ref().expect("checked above");
                let bytes = agg.snapshot_as(cfg.snapshot_format);
                let restored = StreamAggregator::restore_from(
                    v.binary,
                    cfg.pipeline.stream.clone(),
                    cfg.pipeline.ingest_shards,
                    &bytes,
                )?;
                if restored.context_profile() != agg.context_profile()
                    || restored.total_samples() != agg.total_samples()
                {
                    return Err(FleetError::SnapshotDiverged {
                        tenant: self.id,
                        version: v.label.clone(),
                    });
                }
                events.push(FleetEvent::SnapshotChecked {
                    tenant: self.id,
                    version: v.label.clone(),
                    format: cfg.snapshot_format,
                    bytes: bytes.len(),
                });
            }
        }
        Ok(events)
    }

    /// Runs the eval traffic as the drift-probe epoch on every version;
    /// returns `(version-index, event)` so the caller can schedule
    /// refreshes for stale ones.
    fn drift_probe(&mut self, cfg: &FleetConfig) -> Result<Vec<(usize, EpochEvent)>, FleetError> {
        let mut events = Vec::new();
        for (vi, v) in self.versions.iter_mut().enumerate() {
            let t = Instant::now();
            for args in &self.workload.eval_calls {
                v.machine
                    .call(&self.workload.entry, args)
                    .map_err(|e| FleetError::Pipeline(PipelineError::Sim(e)))?;
            }
            let traffic_ms = t.elapsed().as_secs_f64() * 1e3;

            let agg = v.agg.as_mut().expect("drift_probe after calibrate");
            while v.machine.pending_samples() > 0 {
                let batch = v.machine.take_sample_batch(cfg.batch_samples);
                agg.push_batch(batch)?;
            }
            let summary = agg.seal_epoch();
            let evicted_this_epoch = v.enforce_cap(cfg, summary.epoch);

            let agg = v.agg.as_ref().expect("drift_probe after calibrate");
            events.push((
                vi,
                EpochEvent {
                    tenant: self.id,
                    workload: self.workload.name.clone(),
                    version: v.label.clone(),
                    label: "drift-probe".to_string(),
                    summary,
                    stage_times: summary.stage_times(traffic_ms),
                    resident_contexts: agg.resident_contexts(),
                    evicted_this_epoch,
                    evicted_total: agg.evict_stats(),
                },
            ));
        }
        Ok(events)
    }
}

impl VersionRt<'_> {
    /// Touches this epoch's depth-1 context edges in the LRU clock, then
    /// evicts coldest-first until the resident-node count is back under
    /// the per-version cap. Eviction order is `(last-hot epoch, edge)` —
    /// fully determined by this version's own stream, never by fleet
    /// co-tenants, which is what keeps fleet serving bit-identical to
    /// solo serving.
    fn enforce_cap(&mut self, cfg: &FleetConfig, epoch: u64) -> EvictStats {
        let agg = self.agg.as_mut().expect("cap enforcement after calibrate");
        for &edge in agg.last_epoch_edges() {
            self.lru.insert(edge, epoch);
        }
        let mut stats = EvictStats::default();
        if cfg.resident_cap == 0 || agg.resident_contexts() <= cfg.resident_cap {
            return stats;
        }
        let mut order: Vec<(u64, ContextEdge)> =
            self.lru.iter().map(|(&edge, &ep)| (ep, edge)).collect();
        order.sort_unstable();
        for (_, edge) in order {
            if agg.resident_contexts() <= cfg.resident_cap {
                break;
            }
            stats.absorb(agg.evict_contexts(&[edge]));
            self.lru.remove(&edge);
        }
        stats
    }
}

/// Sequences per-tenant fan-out results, flattening events in tenant
/// order (the shim's `collect` preserves input order).
fn sequence<T>(per_tenant: Vec<Result<Vec<T>, FleetError>>) -> Result<Vec<T>, FleetError> {
    let mut out = Vec::new();
    for r in per_tenant {
        out.extend(r?);
    }
    Ok(out)
}

fn sim_config(cfg: &PipelineConfig) -> SimConfig {
    SimConfig {
        lbr_size: cfg.lbr_size,
        pebs: cfg.pebs,
        sample_period: cfg.sample_period,
        seed: cfg.seed,
        max_steps: cfg.max_steps,
        ..SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload(name: &str) -> Workload {
        // Three call levels with two mid-level call sites, so the context
        // trie has depth and fan-out worth evicting.
        let src = r#"
fn leaf(x) {
    if (x % 3 == 0) { return x * 2; }
    return x + 1;
}
fn mid(x) {
    if (x % 2 == 0) { return leaf(x) + 1; }
    return leaf(x + 3);
}
fn serve(n, mode) {
    let i = 0;
    let s = 0;
    while (i < n) {
        if (mode == 1) { s = s + mid(i); } else { s = s + mid(i * 2); }
        i = i + 1;
    }
    return s;
}
"#;
        Workload::new(
            name,
            src,
            "serve",
            vec![vec![60, 1]; 8],
            vec![vec![60, 1]; 2],
        )
    }

    #[test]
    fn builder_validates_knobs() {
        assert!(FleetConfig::builder().build().is_ok());
        for bad in [
            FleetConfig::builder().epoch_calls(0).build(),
            FleetConfig::builder().batch_samples(0).build(),
            FleetConfig::builder().refresh_queue_cap(0).build(),
        ] {
            match bad {
                Err(FleetError::InvalidConfig(_)) => {}
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn compile_rejects_malformed_fleets() {
        let cfg = FleetConfig::default();
        let err = FleetBinaries::compile(&[], &cfg).map(|_| ()).unwrap_err();
        assert!(matches!(err, FleetError::NoTenants), "{err}");

        let spec = TenantSpec::single_version(TenantId(1), tiny_workload("w"));
        let err = FleetBinaries::compile(&[spec.clone(), spec.clone()], &cfg)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, FleetError::DuplicateTenant(TenantId(1))),
            "{err}"
        );

        let mut empty = spec;
        empty.versions.clear();
        let err = FleetBinaries::compile(&[empty], &cfg)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, FleetError::NoVersions(TenantId(1))), "{err}");
    }

    #[test]
    fn fleet_serves_tenants_and_reports_stats() {
        let cfg = FleetConfig::builder()
            .epoch_calls(2)
            .build()
            .expect("valid config");
        let specs = vec![
            TenantSpec::single_version(TenantId(1), tiny_workload("alpha")),
            TenantSpec::single_version(TenantId(2), tiny_workload("beta")),
        ];
        let binaries = FleetBinaries::compile(&specs, &cfg).expect("compile fleet");
        assert_eq!(binaries.tenant_count(), 2);
        assert_eq!(binaries.version_count(), 2);

        let mut service = FleetService::new(&binaries, cfg);
        assert_eq!(service.registry().len(), 2);
        let run = service.run().expect("fleet run");

        let stats = run.stats;
        assert_eq!(stats.tenants, 2);
        assert_eq!(stats.versions, 2);
        assert!(stats.total_samples > 0);
        assert!(stats.resident_contexts > 0);
        // 8 train calls at 2/epoch = 1 calibration + 3 steady rounds,
        // plus the drift probe, per tenant.
        assert_eq!(stats.epochs_sealed, 10);
        let snapshot_checks = run
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::SnapshotChecked { .. }))
            .count();
        assert_eq!(snapshot_checks, 2);
        assert!(service.context_profile(TenantId(1), "v0").is_some());
        assert!(service.context_profile(TenantId(3), "v0").is_none());
    }

    #[test]
    fn resident_cap_bounds_the_store_and_conserves_weight() {
        let uncapped = FleetConfig::builder().epoch_calls(2).build().unwrap();
        let spec = TenantSpec::single_version(TenantId(7), tiny_workload("capped"));
        let binaries = FleetBinaries::compile(std::slice::from_ref(&spec), &uncapped).unwrap();
        let mut service = FleetService::new(&binaries, uncapped.clone());
        service.run().unwrap();
        let full_nodes = service.stats().resident_contexts;
        let full_total = service.context_profile(TenantId(7), "v0").unwrap().total();
        assert!(full_nodes > 2, "need a trie worth evicting from");

        let cap = full_nodes - 1;
        let capped = FleetConfig::builder()
            .epoch_calls(2)
            .resident_cap(cap)
            .build()
            .unwrap();
        let binaries = FleetBinaries::compile(&[spec], &capped).unwrap();
        let mut service = FleetService::new(&binaries, capped);
        let run = service.run().unwrap();

        assert!(run.stats.resident_contexts <= cap, "cap not enforced");
        assert!(run.stats.evicted.subtrees > 0, "nothing was evicted");
        assert!(run.stats.evicted.weight_folded > 0);
        // Conservation: the capped profile total matches the uncapped one.
        let capped_total = service.context_profile(TenantId(7), "v0").unwrap().total();
        assert_eq!(capped_total, full_total);
    }

    #[test]
    fn split_shares_partition_the_stream() {
        // The residue classes of a k-way split cover every train index
        // exactly once.
        for of in 1..=4usize {
            let mut seen = vec![0usize; 13];
            for index in 0..of {
                for i in (TrafficShare::Split { index, of }).train_indices(13) {
                    seen[i] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{of}-way split: {seen:?}");
        }
        assert_eq!(TrafficShare::Full.train_indices(5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn canary_split_serves_and_is_rejected_when_malformed() {
        let cfg = FleetConfig::builder().epoch_calls(2).build().unwrap();
        let w = tiny_workload("canary");
        let spec = TenantSpec {
            id: TenantId(4),
            workload: w.clone(),
            versions: vec![
                VersionSpec::new("stable", w.source.clone())
                    .with_share(TrafficShare::Split { index: 0, of: 2 }),
                VersionSpec::new("canary", w.source.clone())
                    .with_share(TrafficShare::Split { index: 1, of: 2 }),
            ],
            refresh_source: None,
        };
        let binaries = FleetBinaries::compile(std::slice::from_ref(&spec), &cfg).unwrap();
        assert!(binaries.binary(TenantId(4), "stable").is_some());
        assert!(binaries.binary(TenantId(4), "missing").is_none());
        let mut service = FleetService::new(&binaries, cfg.clone());
        let run = service.run().unwrap();
        // 8 train calls split 4/4 at 2/epoch: calibration + 1 steady round
        // + drift probe per version.
        assert_eq!(run.stats.epochs_sealed, 6);
        assert!(service.aggregator(TenantId(4), "stable").is_some());
        assert!(service.aggregator(TenantId(4), "canary").is_some());

        let mut bad = spec;
        bad.versions[1].share = TrafficShare::Split { index: 2, of: 2 };
        let err = FleetBinaries::compile(&[bad], &cfg)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, FleetError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn refresh_queue_is_bounded() {
        // Both tenants drift (train mode 1, eval mode 2), but the queue
        // holds one request: the second becomes RefreshDropped.
        let mk = |name: &str| {
            let mut w = tiny_workload(name);
            w.eval_calls = vec![vec![60, 2]; 4];
            w
        };
        let mut pipeline = PipelineConfig::default();
        pipeline.stream.drift_threshold = 0.95;
        let cfg = FleetConfig::builder()
            .pipeline(pipeline)
            .epoch_calls(2)
            .refresh_queue_cap(1)
            .build()
            .unwrap();
        let specs = vec![
            TenantSpec::single_version(TenantId(1), mk("drift_a")),
            TenantSpec::single_version(TenantId(2), mk("drift_b")),
        ];
        let binaries = FleetBinaries::compile(&specs, &cfg).unwrap();
        let mut service = FleetService::new(&binaries, cfg);
        let run = service.run().unwrap();

        let refreshed = run
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Refresh(_)))
            .count();
        let dropped = run
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::RefreshDropped { .. }))
            .count();
        assert_eq!(run.stats.refreshes_triggered, refreshed);
        assert_eq!(run.stats.refreshes_dropped, dropped);
        assert_eq!(refreshed, 1, "bounded queue admits exactly one");
        assert_eq!(dropped, 1, "overflow must be recorded, not queued");
    }
}
