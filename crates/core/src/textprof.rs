//! Text profile formats, modelled on the LLVM sample-profile text format
//! that AutoFDO and CSSPGO persist between the profiling and build steps.
//!
//! Two formats:
//!
//! * **flat** (AutoFDO-style) — per function, body counts keyed by
//!   `offset[.discriminator]`, with indentation-nested inlined call-site
//!   sub-profiles:
//!
//!   ```text
//!   main:1384:25
//!    1: 500
//!    2.1: 480
//!    3@helper:880:25
//!     0: 440
//!   ```
//!
//! * **context** (CSSPGO-style) — one section per calling context, a
//!   bracketed frame list as in `llvm-profgen` output, with the CFG
//!   checksum that drives staleness detection:
//!
//!   ```text
//!   [main:3 @ helper]:880:25
//!    checksum: 0x1f2e3d4c
//!    1: 440
//!   ```
//!
//! Function identity round-trips through names: GUIDs are name hashes
//! ([`csspgo_ir::probe::function_guid`]), so the parser recovers them
//! without a symbol table.

use crate::context::{ContextNode, ContextProfile, FrameKey};
use crate::profile::{FlatFuncProfile, FlatProfile, LocKey, ProbeFuncProfile, ProbeProfile};
use csspgo_ir::probe::function_guid;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A text-profile parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Flat (AutoFDO-style)
// ---------------------------------------------------------------------

/// Serializes a flat profile to text.
pub fn write_flat(profile: &FlatProfile) -> String {
    let mut out = String::new();
    for (guid, fp) in &profile.funcs {
        let name = profile
            .names
            .get(guid)
            .cloned()
            .unwrap_or_else(|| format!("guid.{guid:x}"));
        write_flat_func(&mut out, "", &name, fp, 0, &profile.names);
    }
    out
}

fn write_flat_func(
    out: &mut String,
    header_prefix: &str,
    name: &str,
    fp: &FlatFuncProfile,
    depth: usize,
    names: &BTreeMap<u64, String>,
) {
    let pad = " ".repeat(depth);
    out.push_str(&format!(
        "{header_prefix}{name}:{}:{}\n",
        fp.total, fp.entry
    ));
    for (key, count) in &fp.body {
        if key.discriminator == 0 {
            out.push_str(&format!("{pad} {}: {count}\n", key.line_offset));
        } else {
            out.push_str(&format!(
                "{pad} {}.{}: {count}\n",
                key.line_offset, key.discriminator
            ));
        }
    }
    for ((key, callee), sub) in &fp.callsites {
        let callee_name = names
            .get(callee)
            .cloned()
            .unwrap_or_else(|| format!("guid.{callee:x}"));
        let k = if key.discriminator == 0 {
            format!("{}", key.line_offset)
        } else {
            format!("{}.{}", key.line_offset, key.discriminator)
        };
        let prefix = format!("{pad} {k}@");
        write_flat_func(out, &prefix, &callee_name, sub, depth + 1, names);
    }
}

/// Parses the flat text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_flat(text: &str) -> Result<FlatProfile, ParseError> {
    let mut profile = FlatProfile::default();
    // Stack of (indent, profile pointer path). We parse with an explicit
    // recursion over owned frames to keep borrows simple: collect into a
    // tree of temporary nodes first.
    struct Frame {
        indent: usize,
        name: String,
        fp: FlatFuncProfile,
        // The call-site key this frame hangs off in its parent.
        site: Option<LocKey>,
    }
    let mut stack: Vec<Frame> = Vec::new();

    fn pop_into(profile: &mut FlatProfile, stack: &mut Vec<Frame>) -> Result<(), ParseError> {
        let Some(frame) = stack.pop() else {
            return Ok(());
        };
        let guid = function_guid(&frame.name);
        profile.names.insert(guid, frame.name.clone());
        if let Some(parent) = stack.last_mut() {
            // A frame nested under another function must have come from a
            // `site@callee` line; an indented plain header has no call site
            // to hang off — malformed input, not an invariant violation.
            let site = frame.site.ok_or_else(|| {
                err(
                    0,
                    format!("nested function `{}` has no call site", frame.name),
                )
            })?;
            parent.fp.callsites.insert((site, guid), frame.fp);
        } else {
            profile.funcs.insert(guid, frame.fp);
        }
        Ok(())
    }

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if raw.trim().is_empty() || raw.trim_start().starts_with('#') {
            continue;
        }
        let indent = raw.len() - raw.trim_start().len();
        let line = raw.trim_start();

        // Close frames deeper or equal to this indent if this line starts a
        // new function header at that indent.
        let header_like = !line.contains('@') && line.split(':').count() == 3 && {
            let mut it = line.split(':');
            it.next();
            it.clone().all(|p| p.trim().parse::<u64>().is_ok())
        };
        let site_header = line.contains('@');

        if header_like && !site_header {
            while stack.last().map(|f| f.indent >= indent).unwrap_or(false) {
                pop_into(&mut profile, &mut stack)?;
            }
            let mut parts = line.split(':');
            let name = parts.next().ok_or_else(|| err(lineno, "missing name"))?;
            let total = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| err(lineno, "bad total"))?;
            let entry = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| err(lineno, "bad entry count"))?;
            stack.push(Frame {
                indent,
                name: name.to_string(),
                fp: FlatFuncProfile {
                    total,
                    entry,
                    ..FlatFuncProfile::default()
                },
                site: None,
            });
            continue;
        }

        if site_header {
            // `off[.disc]@name:total:entry` — a nested inlined profile.
            while stack.last().map(|f| f.indent >= indent).unwrap_or(false)
                && stack.len() > 1
                && stack.last().map(|f| f.indent >= indent).unwrap_or(false)
            {
                if stack.last().map(|f| f.indent < indent).unwrap_or(true) {
                    break;
                }
                pop_into(&mut profile, &mut stack)?;
            }
            let (key_part, rest) = line.split_once('@').ok_or_else(|| err(lineno, "bad @"))?;
            let site = parse_lockey(key_part.trim(), lineno)?;
            let mut parts = rest.split(':');
            let name = parts.next().ok_or_else(|| err(lineno, "missing callee"))?;
            let total = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| err(lineno, "bad total"))?;
            let entry = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| err(lineno, "bad entry count"))?;
            if stack.is_empty() {
                return Err(err(lineno, "call-site profile without a function"));
            }
            stack.push(Frame {
                indent,
                name: name.to_string(),
                fp: FlatFuncProfile {
                    total,
                    entry,
                    ..FlatFuncProfile::default()
                },
                site: Some(site),
            });
            continue;
        }

        // Body line: `off[.disc]: count`.
        let (key_part, count_part) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `off: count`"))?;
        let key = parse_lockey(key_part.trim(), lineno)?;
        let count: u64 = count_part
            .trim()
            .parse()
            .map_err(|_| err(lineno, "bad count"))?;
        // Attach to the innermost frame whose indent is shallower than ours.
        while stack.len() > 1 && stack.last().map(|f| f.indent >= indent).unwrap_or(false) {
            pop_into(&mut profile, &mut stack)?;
        }
        let frame = stack
            .last_mut()
            .ok_or_else(|| err(lineno, "body count without a function"))?;
        frame.fp.body.insert(key, count);
    }
    while !stack.is_empty() {
        pop_into(&mut profile, &mut stack)?;
    }
    Ok(profile)
}

fn parse_lockey(text: &str, lineno: usize) -> Result<LocKey, ParseError> {
    let (off, disc) = match text.split_once('.') {
        Some((o, d)) => (
            o.parse().map_err(|_| err(lineno, "bad offset"))?,
            d.parse().map_err(|_| err(lineno, "bad discriminator"))?,
        ),
        None => (text.parse().map_err(|_| err(lineno, "bad offset"))?, 0),
    };
    Ok(LocKey {
        line_offset: off,
        discriminator: disc,
    })
}

// ---------------------------------------------------------------------
// Context (CSSPGO-style)
// ---------------------------------------------------------------------

/// Serializes a context profile to text, one section per trie node with a
/// bracketed context line (as `llvm-profgen` prints CS profiles).
pub fn write_context(profile: &ContextProfile) -> String {
    let mut out = String::new();
    let name = |g: u64| {
        profile
            .names
            .get(&g)
            .cloned()
            .unwrap_or_else(|| format!("guid.{g:x}"))
    };
    fn walk(
        out: &mut String,
        node: &ContextNode,
        path: &mut Vec<FrameKey>,
        name: &dyn Fn(u64) -> String,
    ) {
        let mut ctx: Vec<String> = path
            .iter()
            .map(|f| format!("{}:{}", name(f.guid), f.probe))
            .collect();
        ctx.push(name(node.guid));
        out.push_str(&format!(
            "[{}]:{}:{}\n",
            ctx.join(" @ "),
            node.total(),
            node.entry
        ));
        if node.checksum != 0 {
            out.push_str(&format!(" checksum: {:#x}\n", node.checksum));
        }
        if node.inlined {
            out.push_str(" inlined: true\n");
        }
        for (probe, count) in &node.probes {
            out.push_str(&format!(" {probe}: {count}\n"));
        }
        for ((probe, _), child) in &node.children {
            path.push(FrameKey {
                guid: node.guid,
                probe: *probe,
            });
            walk(out, child, path, name);
            path.pop();
        }
    }
    for node in profile.roots.values() {
        walk(&mut out, node, &mut Vec::new(), &name);
    }
    out
}

/// Parses the context text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_context(text: &str) -> Result<ContextProfile, ParseError> {
    let mut profile = ContextProfile::new();
    let mut current: Option<(Vec<FrameKey>, u64)> = None; // (path, leaf guid)

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            let close = line
                .find(']')
                .ok_or_else(|| err(lineno, "unterminated context"))?;
            let ctx = &line[1..close];
            let rest = &line[close + 1..];
            let mut parts = rest.trim_start_matches(':').split(':');
            let _total: u64 = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| err(lineno, "bad total"))?;
            let entry: u64 = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| err(lineno, "bad entry"))?;

            let frames: Vec<&str> = ctx.split('@').map(str::trim).collect();
            let mut path = Vec::with_capacity(frames.len().saturating_sub(1));
            for f in &frames[..frames.len() - 1] {
                let (fname, probe) = f
                    .rsplit_once(':')
                    .ok_or_else(|| err(lineno, "frame needs `name:probe`"))?;
                path.push(FrameKey {
                    guid: function_guid(fname),
                    probe: probe.parse().map_err(|_| err(lineno, "bad probe index"))?,
                });
            }
            let leaf = frames.last().ok_or_else(|| err(lineno, "empty context"))?;
            let leaf_guid = function_guid(leaf);
            profile.names.insert(leaf_guid, leaf.to_string());
            for (f, key) in frames[..frames.len() - 1].iter().zip(&path) {
                let fname = f.rsplit_once(':').expect("validated above").0;
                profile.names.insert(key.guid, fname.to_string());
            }
            if entry > 0 {
                profile.add_entry(&path, leaf_guid, entry);
            } else {
                // Materialize the node even with no entries.
                profile.node_for_path_mut(&path, leaf_guid);
            }
            current = Some((path, leaf_guid));
            continue;
        }
        let (path, leaf) = current
            .as_ref()
            .ok_or_else(|| err(lineno, "counts before any context header"))?;
        if let Some(rest) = line.strip_prefix("checksum:") {
            let v = rest.trim().trim_start_matches("0x");
            let checksum = u64::from_str_radix(v, 16).map_err(|_| err(lineno, "bad checksum"))?;
            profile.node_for_path_mut(path, *leaf).checksum = checksum;
            continue;
        }
        if line.starts_with("inlined:") {
            profile.node_for_path_mut(path, *leaf).inlined = line.ends_with("true");
            continue;
        }
        let (probe, count) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `probe: count`"))?;
        let probe: u32 = probe.trim().parse().map_err(|_| err(lineno, "bad probe"))?;
        let count: u64 = count.trim().parse().map_err(|_| err(lineno, "bad count"))?;
        profile.add_probe_hit(path, *leaf, probe, count);
    }
    Ok(profile)
}

// ---------------------------------------------------------------------
// Probe profile (flat CSSPGO) — reuses the context writer through a
// conversion, plus direct JSON for lossless round-trips.
// ---------------------------------------------------------------------

/// Serializes a probe profile as JSON (lossless).
pub fn write_probe_json(profile: &ProbeProfile) -> String {
    serde_json::to_string_pretty(profile).expect("probe profiles are serializable")
}

/// Splits a stream-snapshot text (see
/// [`crate::stream::StreamAggregator::snapshot`]) at its `!context`
/// marker: the header/section lines before the marker, and the context
/// section body after it. Returns `None` when the marker is missing.
///
/// Shared by snapshot restore and by offline consumers (`csspgo_diff`)
/// that only need the embedded context profile.
pub fn split_snapshot_context(text: &str) -> Option<(&str, &str)> {
    let mut offset = 0usize;
    for line in text.lines() {
        let raw_len = line.len() + 1;
        if line.trim() == "!context" {
            // A snapshot truncated right at the marker has no trailing
            // newline, putting the body start one past the end: that is an
            // empty context section, not an out-of-bounds slice.
            let body = text.get(offset + raw_len..).unwrap_or("");
            return Some((&text[..offset], body));
        }
        offset += raw_len;
    }
    None
}

/// Parses a probe profile from JSON.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the JSON failure.
pub fn parse_probe_json(text: &str) -> Result<ProbeProfile, ParseError> {
    serde_json::from_str(text).map_err(|e| err(e.line(), e.to_string()))
}

/// Total nested profile nodes (a size metric for reports).
pub fn probe_profile_nodes(profile: &ProbeProfile) -> usize {
    fn nodes(p: &ProbeFuncProfile) -> usize {
        1 + p.callsites.values().map(nodes).sum::<usize>()
    }
    profile.funcs.values().map(nodes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_context_splits_at_marker() {
        let text = "# header\n!ranges\n1 2 3\n!context\n[main]:10:1\n 1: 10\n";
        let (head, ctx) = split_snapshot_context(text).unwrap();
        assert!(head.contains("!ranges"));
        assert!(!head.contains("!context"));
        assert!(ctx.starts_with("[main]"));
        // Marker with nothing after it: empty context, not a panic.
        let (_, ctx) = split_snapshot_context("# h\n!context").unwrap();
        assert_eq!(ctx, "");
        assert!(split_snapshot_context("# no marker\n").is_none());
    }

    fn sample_flat() -> FlatProfile {
        let mut p = FlatProfile::default();
        let main_guid = function_guid("main");
        let helper_guid = function_guid("helper");
        p.names.insert(main_guid, "main".into());
        p.names.insert(helper_guid, "helper".into());
        let fp = p.funcs.entry(main_guid).or_default();
        fp.entry = 25;
        fp.record_max(
            LocKey {
                line_offset: 1,
                discriminator: 0,
            },
            500,
        );
        fp.record_max(
            LocKey {
                line_offset: 2,
                discriminator: 1,
            },
            480,
        );
        let nested = fp.callsite_mut(
            LocKey {
                line_offset: 3,
                discriminator: 0,
            },
            helper_guid,
        );
        nested.entry = 25;
        nested.record_max(
            LocKey {
                line_offset: 0,
                discriminator: 0,
            },
            440,
        );
        p.funcs.get_mut(&main_guid).unwrap().recompute_totals();
        p
    }

    #[test]
    fn flat_roundtrip() {
        let p = sample_flat();
        let text = write_flat(&p);
        let back = parse_flat(&text).unwrap();
        assert_eq!(p.funcs, back.funcs, "text:\n{text}");
        assert_eq!(p.names, back.names);
    }

    #[test]
    fn flat_text_is_human_readable() {
        let text = write_flat(&sample_flat());
        assert!(text.contains("main:"), "{text}");
        assert!(text.contains(" 2.1: 480"), "{text}");
        assert!(text.contains("@helper:"), "{text}");
    }

    #[test]
    fn flat_parse_reports_line_numbers() {
        let e = parse_flat("main:10:5\n bogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn flat_parse_rejects_nested_header_without_call_site() {
        // An indented plain header has no `site@` to hang off its parent —
        // must surface as a ParseError, not a panic.
        let e = parse_flat("a:1:1\n  b:2:2\n").unwrap_err();
        assert!(e.message.contains("call site"), "{e}");
    }

    fn sample_context() -> ContextProfile {
        let mut p = ContextProfile::new();
        let main = function_guid("main");
        let helper = function_guid("helper");
        p.names.insert(main, "main".into());
        p.names.insert(helper, "helper".into());
        p.add_probe_hit(&[], main, 1, 100);
        p.add_entry(&[], main, 10);
        let f = FrameKey {
            guid: main,
            probe: 3,
        };
        p.add_probe_hit(&[f], helper, 1, 440);
        p.add_probe_hit(&[f], helper, 2, 60);
        p.add_entry(&[f], helper, 25);
        p.node_for_path_mut(&[f], helper).checksum = 0x1f2e;
        p.node_for_path_mut(&[f], helper).inlined = true;
        p
    }

    #[test]
    fn context_roundtrip() {
        let p = sample_context();
        let text = write_context(&p);
        let back = parse_context(&text).unwrap();
        assert_eq!(p.total(), back.total(), "text:\n{text}");
        assert_eq!(p.node_count(), back.node_count());
        let main = function_guid("main");
        let helper = function_guid("helper");
        let f = FrameKey {
            guid: main,
            probe: 3,
        };
        let node = back.node_for_path(&[f], helper).unwrap();
        assert_eq!(node.probes[&1], 440);
        assert_eq!(node.entry, 25);
        assert_eq!(node.checksum, 0x1f2e);
        assert!(node.inlined);
    }

    #[test]
    fn context_text_matches_llvm_profgen_shape() {
        let text = write_context(&sample_context());
        assert!(text.contains("[main]:"), "{text}");
        assert!(text.contains("[main:3 @ helper]:"), "{text}");
        assert!(text.contains(" checksum: 0x1f2e"), "{text}");
    }

    #[test]
    fn probe_json_roundtrip() {
        let mut p = ProbeProfile::default();
        let g = function_guid("f");
        p.names.insert(g, "f".into());
        let fp = p.funcs.entry(g).or_default();
        fp.checksum = 77;
        fp.record_sum(1, 10);
        fp.recompute_totals();
        let back = parse_probe_json(&write_probe_json(&p)).unwrap();
        assert_eq!(back.funcs[&g].probes[&1], 10);
        assert_eq!(probe_profile_nodes(&back), 1);
    }

    #[test]
    fn real_pipeline_profiles_roundtrip() {
        // Generate a real profile and round-trip it through text.
        use crate::correlate::dwarf_profile;
        use crate::ranges::RangeCounts;
        use csspgo_codegen::{lower_module, CodegenConfig};
        use csspgo_sim::{Machine, SimConfig};
        let src = r#"
fn h(x) { if (x % 3 == 0) { return x + 1; } return x; }
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + h(i); i = i + 1; }
    return s;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::run_pipeline(&mut m, &csspgo_opt::OptConfig::default());
        let b = lower_module(&m, &CodegenConfig::default());
        let mut machine = Machine::new(
            &b,
            SimConfig {
                sample_period: 37,
                ..SimConfig::default()
            },
        );
        machine.call("main", &[3000]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let profile = dwarf_profile(&b, &rc);
        let back = parse_flat(&write_flat(&profile)).unwrap();
        assert_eq!(profile.funcs, back.funcs);
    }
}
