//! Anchor-based stale-profile matching (the static salvage path).
//!
//! The checksum gate in [`crate::annotate`] is binary: a function whose CFG
//! drifted loses its *entire* profile, exactly where deployments need
//! profile quality most (the paper's §III.A drift story, and LLVM's
//! CSSPGO stale-profile matcher). This module recovers those counts
//! statically — no execution, pure profile/CFG analysis:
//!
//! 1. **Anchors.** Each side is reduced to its per-function anchor
//!    sequence. On the fresh-module side that is
//!    [`csspgo_ir::probe::anchor_sequence`] (call probes labeled by callee
//!    GUID, block probes unlabeled). On the profile side the call-site
//!    sub-profile keys `(probe index, callee GUID)` provide the same
//!    labeled sequence, and the remaining counted probes are the unlabeled
//!    block probes.
//! 2. **Alignment.** The two labeled call-anchor sequences are aligned
//!    with a longest-common-subsequence pass; matched anchors become
//!    *exact* probe mappings (and carry their nested inline sub-profiles
//!    across, recursively).
//! 3. **Interval mapping.** Unmatched (block) probes between two matched
//!    anchors are paired positionally from both ends of the interval —
//!    front-biased for appends, back-biased for prepends — and mapped as
//!    *fuzzy*. Leftovers are dropped, never guessed across an anchor.
//! 4. **Renames.** Profile functions whose GUID no longer exists in the
//!    module are compared against module functions missing from the
//!    profile, on two kinds of evidence: call-anchor-sequence similarity
//!    (with the candidate's *self*-call labels normalized to the orphan's
//!    GUID, so recursion counts as agreement rather than noise), and CFG
//!    checksum equality — a pure rename leaves the shape hash untouched,
//!    which is the strongest signal available when a function has too few
//!    call anchors. Because the shape hash collides on trivially-shaped
//!    functions, checksum evidence only counts when the orphan's probes
//!    fit the candidate's probe space and the anchor similarity does not
//!    contradict it. A confident match transplants the profile under the
//!    new GUID.
//!
//! The mapping is injective by construction — every old probe lands on at
//! most one fresh probe and every fresh probe receives at most one old
//! count — so recovered weight can never exceed the source profile's
//! weight (enforced defensively and property-tested). Functions whose
//! checksum still matches pass through **bit-identical**, so enabling
//! recovery on an undrifted profile is a no-op — with one exception: an
//! inlined sub-profile carries its *own* checksum, and a drifted inlinee
//! under an unchanged parent is re-matched in place (annotation's inline
//! replay applies nested counts by probe index and has no nested checksum
//! gate of its own).

use crate::profile::{ProbeFuncProfile, ProbeProfile};
use csspgo_ir::probe::{anchor_sequence, cfg_checksum, ProbeKind};
use csspgo_ir::{FuncId, Module};
use std::collections::{BTreeMap, BTreeSet};

/// How annotation treats checksum-mismatched (stale) functions. Lives in
/// [`crate::annotate::AnnotateConfig`] and is surfaced through
/// [`crate::pipeline::PipelineConfig`]'s builder.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StaleMatching {
    /// Today's behaviour: drop every mismatched function's counts.
    #[default]
    Off,
    /// Run the matcher for reporting (lints, `csspgo_diff`) but still drop
    /// the counts at annotation time.
    Report,
    /// Consume the recovered counts instead of zeroing them.
    Recover,
}

/// Matcher tuning.
#[derive(Clone, Copy, Debug)]
pub struct MatchConfig {
    /// Minimum anchor-sequence similarity (`2·LCS / (|a|+|b|)`) to adopt a
    /// rename candidate.
    pub rename_similarity: f64,
    /// Renames adopted below this similarity are flagged low-confidence
    /// (`SM005`).
    pub strong_rename_similarity: f64,
    /// Minimum call anchors on both sides before a rename is considered on
    /// anchor similarity alone (checksum-equal candidates are exempt: a
    /// pure rename keeps the CFG checksum, which substitutes for missing
    /// anchor evidence).
    pub min_rename_anchors: usize,
    /// Recursion cap for nested (inlined) sub-profile matching.
    pub max_depth: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            rename_similarity: 0.5,
            strong_rename_similarity: 0.9,
            min_rename_anchors: 2,
            max_depth: 8,
        }
    }
}

/// What the matcher decided for one profiled function.
#[derive(Clone, Debug, PartialEq)]
pub enum FuncMatchStatus {
    /// Checksum matched: profile passed through bit-identical.
    ChecksumMatch,
    /// Checksum mismatched; counts recovered by anchor alignment.
    Recovered,
    /// The GUID vanished from the module; counts transplanted onto an
    /// anchor-similar function.
    Renamed {
        /// The profiled (old) function's GUID.
        from_guid: u64,
        /// The profiled (old) function's name, when the profile knew it.
        from: String,
        /// Anchor-sequence similarity of the adopted candidate.
        similarity: f64,
    },
    /// Nothing recoverable: counts are lost (as they all were before this
    /// matcher existed).
    Dropped,
}

impl FuncMatchStatus {
    /// Short stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FuncMatchStatus::ChecksumMatch => "checksum-match",
            FuncMatchStatus::Recovered => "recovered",
            FuncMatchStatus::Renamed { .. } => "renamed",
            FuncMatchStatus::Dropped => "dropped",
        }
    }
}

/// Per-function match-quality record (nested sub-profile matching is
/// accumulated into the enclosing top-level function's record).
#[derive(Clone, Debug)]
pub struct FuncMatch {
    /// GUID the counts landed under (the fresh module's GUID; for
    /// [`FuncMatchStatus::Dropped`], the profile's).
    pub guid: u64,
    /// Function name, best effort (module name, else profile name table,
    /// else hex GUID).
    pub name: String,
    /// What happened.
    pub status: FuncMatchStatus,
    /// Probes mapped through an exact anchor (matched call anchors, and
    /// the structurally-pinned entry probe).
    pub matched_probes: usize,
    /// Probes mapped positionally between anchors.
    pub fuzzy_probes: usize,
    /// Profiled probes with no mapping (their counts are lost).
    pub dropped_probes: usize,
    /// Anchor labels that occur more than once on a side of an alignment —
    /// the alignment is positional there (`SM001`).
    pub ambiguous_anchors: usize,
    /// Mappings discarded because the target probe was already taken.
    /// Always 0 unless the matcher itself is broken (`SM002`).
    pub two_to_one: usize,
    /// Checksum matched but the call-anchor labels differ — the CFG shape
    /// is identical while call targets changed (`SM004`).
    pub anchor_drift: bool,
    /// Total weight of the source (old) profile for this function.
    pub old_weight: u64,
    /// Weight present in the recovered profile for this function.
    pub recovered_weight: u64,
}

impl FuncMatch {
    /// Fraction of the source weight that survived into the recovered
    /// profile (1.0 for an empty source).
    pub fn recovered_fraction(&self) -> f64 {
        if self.old_weight == 0 {
            1.0
        } else {
            self.recovered_weight as f64 / self.old_weight as f64
        }
    }
}

/// Everything one matching run produced.
#[derive(Clone, Debug)]
pub struct MatchOutcome {
    /// The recovered profile: checksum-matched functions bit-identical,
    /// drifted functions rebuilt against the fresh module's probe space,
    /// dropped functions absent.
    pub profile: ProbeProfile,
    /// Per-function reports, sorted by name then GUID.
    pub funcs: Vec<FuncMatch>,
}

impl MatchOutcome {
    /// Source weight held by checksum-mismatched functions (everything
    /// that is lost without the matcher).
    pub fn stale_old_weight(&self) -> u64 {
        self.funcs
            .iter()
            .filter(|f| f.status != FuncMatchStatus::ChecksumMatch)
            .map(|f| f.old_weight)
            .sum()
    }

    /// Weight recovered for checksum-mismatched functions.
    pub fn stale_recovered_weight(&self) -> u64 {
        self.funcs
            .iter()
            .filter(|f| f.status != FuncMatchStatus::ChecksumMatch)
            .map(|f| f.recovered_weight)
            .sum()
    }

    /// `stale_recovered_weight / stale_old_weight` (1.0 when nothing was
    /// stale).
    pub fn stale_recovered_fraction(&self) -> f64 {
        let old = self.stale_old_weight();
        if old == 0 {
            1.0
        } else {
            self.stale_recovered_weight() as f64 / old as f64
        }
    }

    /// Functions with the given status.
    pub fn count(&self, tag: &str) -> usize {
        self.funcs.iter().filter(|f| f.status.tag() == tag).count()
    }
}

// ---------------------------------------------------------------------
// Alignment machinery
// ---------------------------------------------------------------------

/// LCS cell budget before falling back to greedy alignment (keeps the DP
/// quadratic cost bounded on pathological inputs).
const MAX_LCS_CELLS: usize = 4_000_000;

/// Longest common subsequence of two label sequences, as index pairs,
/// strictly increasing on both sides.
fn lcs_pairs(a: &[u64], b: &[u64]) -> Vec<(usize, usize)> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Vec::new();
    }
    if n.saturating_mul(m) > MAX_LCS_CELLS {
        // Greedy fallback: two-pointer first-match scan.
        let mut out = Vec::new();
        let mut j = 0;
        for (i, &la) in a.iter().enumerate() {
            if let Some(k) = b[j..].iter().position(|&lb| lb == la) {
                out.push((i, j + k));
                j += k + 1;
                if j == m {
                    break;
                }
            }
        }
        return out;
    }
    let w = m + 1;
    let mut dp = vec![0u32; (n + 1) * w];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i * w + j] = if a[i] == b[j] {
                dp[(i + 1) * w + j + 1] + 1
            } else {
                dp[(i + 1) * w + j].max(dp[i * w + j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] && dp[i * w + j] == dp[(i + 1) * w + j + 1] + 1 {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[(i + 1) * w + j] >= dp[i * w + j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Distinct labels occurring more than once on either side (where the
/// alignment degenerates to positional choice).
fn ambiguous_labels(a: &[u64], b: &[u64]) -> usize {
    let mut mult: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for &l in a {
        mult.entry(l).or_default().0 += 1;
    }
    for &l in b {
        mult.entry(l).or_default().1 += 1;
    }
    mult.values().filter(|(ca, cb)| *ca > 1 || *cb > 1).count()
}

/// Anchor-sequence similarity: `2·LCS / (|a|+|b|)` (1.0 for two empty
/// sequences).
fn label_similarity(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * lcs_pairs(a, b).len() as f64 / (a.len() + b.len()) as f64
}

/// Nested-recursion stat accumulator, folded into one [`FuncMatch`].
#[derive(Clone, Copy, Debug, Default)]
struct Acc {
    matched: usize,
    fuzzy: usize,
    dropped: usize,
    ambiguous: usize,
    two_to_one: usize,
}

/// The profile side's labeled call anchors: per call-site probe index, the
/// callee GUID of the *heaviest* nested sub-profile (indirect call sites
/// can record several callees at one probe; the extra ones count as
/// ambiguity).
fn profile_call_anchors(fp: &ProbeFuncProfile) -> (Vec<(u32, u64)>, usize) {
    let mut by_probe: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for (&(probe, callee), sub) in &fp.callsites {
        by_probe.entry(probe).or_default().push((callee, sub.total));
    }
    let mut multi = 0;
    let anchors = by_probe
        .into_iter()
        .map(|(probe, mut callees)| {
            if callees.len() > 1 {
                multi += 1;
            }
            // Heaviest first; GUID breaks ties deterministically.
            callees.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            (probe, callees[0].0)
        })
        .collect();
    (anchors, multi)
}

/// The profile side's full probe set: everything counted plus every
/// call-site probe.
fn profile_probe_set(fp: &ProbeFuncProfile) -> BTreeSet<u32> {
    let mut set: BTreeSet<u32> = fp.probes.keys().copied().collect();
    set.extend(fp.callsites.keys().map(|&(p, _)| p));
    set
}

/// Matches one function profile onto `fid`, recursively matching nested
/// (inlined) sub-profiles. Checksum-matching (sub-)profiles pass through
/// bit-identical unless a nested sub-profile is itself stale, in which
/// case only the stale subtrees are re-matched.
fn match_func(
    module: &Module,
    fid: FuncId,
    fp: &ProbeFuncProfile,
    cfg: &MatchConfig,
    depth: usize,
    acc: &mut Acc,
) -> ProbeFuncProfile {
    let func = module.func(fid);
    let fresh = func.probe_checksum.unwrap_or_else(|| cfg_checksum(func));
    if fp.checksum == 0 || fp.checksum == fresh {
        acc.matched += fp.probes.len();
        if !has_stale_nested(module, fp) {
            return fp.clone();
        }
        // A drifted inlinee under an unchanged parent: the parent's probe
        // space passes through, but the stale sub-profiles must be rebuilt
        // — annotation's inline replay applies nested counts by probe
        // index against the *fresh* inlinee body and has no nested
        // checksum gate of its own.
        let mut out = fp.clone();
        for ((_, callee_guid), sub) in out.callsites.iter_mut() {
            if let Some(cfid) = module.find_function_by_guid(*callee_guid) {
                if depth < cfg.max_depth {
                    *sub = match_func(module, cfid, sub, cfg, depth + 1, acc);
                }
            }
        }
        out.recompute_totals();
        return out;
    }
    align_func(module, fid, fp, cfg, depth, acc)
}

/// Does any inlined sub-profile of `fp`, recursively, carry a checksum the
/// fresh module rejects? (Sub-profiles of functions the module no longer
/// defines cannot be judged and are left alone.)
fn has_stale_nested(module: &Module, fp: &ProbeFuncProfile) -> bool {
    fp.callsites.iter().any(|(&(_, callee_guid), sub)| {
        match module.find_function_by_guid(callee_guid) {
            Some(cfid) => {
                let func = module.func(cfid);
                let fresh = func.probe_checksum.unwrap_or_else(|| cfg_checksum(func));
                (sub.checksum != 0 && sub.checksum != fresh) || has_stale_nested(module, sub)
            }
            None => false,
        }
    })
}

/// The anchor-alignment core: rebuilds `fp` against `fid`'s fresh probe
/// space.
fn align_func(
    module: &Module,
    fid: FuncId,
    fp: &ProbeFuncProfile,
    cfg: &MatchConfig,
    depth: usize,
    acc: &mut Acc,
) -> ProbeFuncProfile {
    let func = module.func(fid);
    let fresh = func.probe_checksum.unwrap_or_else(|| cfg_checksum(func));

    let anchors = anchor_sequence(module, fid);
    // Labeled call anchors on the fresh side; unlabelable call probes
    // (indirect or probe-stripped calls) join the positional pool.
    let new_calls: Vec<(u32, u64)> = anchors
        .iter()
        .filter(|a| a.kind == ProbeKind::Call)
        .filter_map(|a| a.callee.map(|g| (a.index, g)))
        .collect();
    let labeled: BTreeSet<u32> = new_calls.iter().map(|&(i, _)| i).collect();
    let new_blocks: Vec<u32> = anchors
        .iter()
        .filter(|a| !labeled.contains(&a.index))
        .map(|a| a.index)
        .collect();

    let (old_calls, multi_callee) = profile_call_anchors(fp);
    acc.ambiguous += multi_callee;
    let old_set = profile_probe_set(fp);
    let old_call_set: BTreeSet<u32> = old_calls.iter().map(|&(p, _)| p).collect();
    let old_blocks: Vec<u32> = old_set
        .iter()
        .copied()
        .filter(|p| !old_call_set.contains(p))
        .collect();

    let old_labels: Vec<u64> = old_calls.iter().map(|&(_, l)| l).collect();
    let new_labels: Vec<u64> = new_calls.iter().map(|&(_, l)| l).collect();
    acc.ambiguous += ambiguous_labels(&old_labels, &new_labels);

    // old probe index -> (new probe index, exact?)
    let mut map: BTreeMap<u32, (u32, bool)> = BTreeMap::new();
    let mut boundaries: Vec<(u32, u32)> = vec![(0, 0)];
    // The entry-block probe is structurally pinned: both sides allocate
    // probe 1 to the entry block, so it is an exact anchor even though it
    // carries no label.
    let entry_pinned = old_blocks.contains(&1) && new_blocks.contains(&1);
    if entry_pinned {
        map.insert(1, (1, true));
        boundaries.push((1, 1));
    }
    for (i, j) in lcs_pairs(&old_labels, &new_labels) {
        let (op, _) = old_calls[i];
        let (np, _) = new_calls[j];
        map.insert(op, (np, true));
        boundaries.push((op, np));
    }
    boundaries.push((u32::MAX, u32::MAX));
    boundaries.sort_unstable();
    boundaries.dedup();

    // Interval mapping of the positional pool, paired from both ends.
    for pair in boundaries.windows(2) {
        let (lo_o, lo_n) = pair[0];
        let (hi_o, hi_n) = pair[1];
        let olds: Vec<u32> = old_blocks
            .iter()
            .copied()
            .filter(|&p| p > lo_o && p < hi_o && !map.contains_key(&p))
            .collect();
        let news: Vec<u32> = new_blocks
            .iter()
            .copied()
            .filter(|&p| p > lo_n && p < hi_n && !(entry_pinned && p == 1))
            .collect();
        let d = olds.len().min(news.len());
        let front = d.div_ceil(2);
        let back = d - front;
        for k in 0..front {
            map.insert(olds[k], (news[k], false));
        }
        for k in 0..back {
            map.insert(olds[olds.len() - 1 - k], (news[news.len() - 1 - k], false));
        }
    }

    // Transfer counts through the mapping; injectivity is defended with a
    // seen-set so a matcher bug can never double-count.
    let mut out = ProbeFuncProfile {
        checksum: fresh,
        entry: fp.entry,
        ..ProbeFuncProfile::default()
    };
    let mut seen_new: BTreeSet<u32> = BTreeSet::new();
    for (&old, &(new, exact)) in &map {
        if !seen_new.insert(new) {
            acc.two_to_one += 1;
            continue;
        }
        if exact {
            acc.matched += 1;
        } else {
            acc.fuzzy += 1;
        }
        if let Some(&c) = fp.probes.get(&old) {
            out.probes.insert(new, c);
        }
    }
    acc.dropped += old_set.iter().filter(|p| !map.contains_key(p)).count();

    // Nested inline sub-profiles ride across matched call anchors and are
    // matched recursively against their callee's fresh body.
    for (&(old_probe, callee_guid), sub) in &fp.callsites {
        let Some(&(new_probe, _)) = map.get(&old_probe) else {
            continue;
        };
        if out.callsites.contains_key(&(new_probe, callee_guid)) {
            acc.two_to_one += 1;
            continue;
        }
        let nested = match module.find_function_by_guid(callee_guid) {
            Some(cfid) if depth < cfg.max_depth => {
                match_func(module, cfid, sub, cfg, depth + 1, acc)
            }
            _ => sub.clone(),
        };
        out.callsites.insert((new_probe, callee_guid), nested);
    }
    out.recompute_totals();
    out
}

/// Checks whether a checksum-matching function's call anchors still agree
/// with the profile's call-site records (`SM004`: a call-target swap keeps
/// the CFG shape, and therefore the checksum, while silently changing what
/// the counts mean).
fn anchor_drift(module: &Module, fid: FuncId, fp: &ProbeFuncProfile) -> bool {
    let mut by_probe: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
    for &(probe, callee) in fp.callsites.keys() {
        by_probe.entry(probe).or_default().insert(callee);
    }
    if by_probe.is_empty() {
        return false;
    }
    let anchors = anchor_sequence(module, fid);
    for a in anchors {
        if a.kind != ProbeKind::Call {
            continue;
        }
        let (Some(label), Some(callees)) = (a.callee, by_probe.get(&a.index)) else {
            continue;
        };
        if !callees.contains(&label) {
            return true;
        }
    }
    false
}

/// A function's total profile weight (probe counts, nested included).
fn profile_weight(fp: &ProbeFuncProfile) -> u64 {
    fp.probes.values().sum::<u64>() + fp.callsites.values().map(profile_weight).sum::<u64>()
}

/// Matches `profile` (collected on an older build) against the fresh
/// `module`, producing a recovered profile plus per-function match-quality
/// reports. See the module docs for the algorithm.
pub fn match_stale_profile(
    module: &Module,
    profile: &ProbeProfile,
    cfg: &MatchConfig,
) -> MatchOutcome {
    let mut out = ProbeProfile {
        names: profile.names.clone(),
        ..ProbeProfile::default()
    };
    let mut funcs: Vec<FuncMatch> = Vec::new();
    let mut orphans: Vec<(u64, &ProbeFuncProfile)> = Vec::new();

    for (&guid, fp) in &profile.funcs {
        let Some(fid) = module.find_function_by_guid(guid) else {
            orphans.push((guid, fp));
            continue;
        };
        let func = module.func(fid);
        let fresh = func.probe_checksum.unwrap_or_else(|| cfg_checksum(func));
        let old_weight = profile_weight(fp);
        if fp.checksum == 0 || fp.checksum == fresh {
            // `match_func` passes a fully-clean profile through
            // bit-identical; with a stale inlinee it re-matches just those
            // subtrees, and the nested mapping stats land in this record.
            let mut acc = Acc::default();
            let rec = match_func(module, fid, fp, cfg, 0, &mut acc);
            let recovered_weight = profile_weight(&rec);
            out.funcs.insert(guid, rec);
            funcs.push(FuncMatch {
                guid,
                name: func.name.clone(),
                status: FuncMatchStatus::ChecksumMatch,
                matched_probes: acc.matched,
                fuzzy_probes: acc.fuzzy,
                dropped_probes: acc.dropped,
                ambiguous_anchors: acc.ambiguous,
                two_to_one: acc.two_to_one,
                anchor_drift: anchor_drift(module, fid, fp),
                old_weight,
                recovered_weight,
            });
            continue;
        }
        let mut acc = Acc::default();
        let rec = align_func(module, fid, fp, cfg, 0, &mut acc);
        let recovered_weight = profile_weight(&rec);
        let salvaged = recovered_weight > 0 || acc.matched + acc.fuzzy > 0;
        if salvaged {
            out.funcs.insert(guid, rec);
        }
        funcs.push(FuncMatch {
            guid,
            name: func.name.clone(),
            status: if salvaged {
                FuncMatchStatus::Recovered
            } else {
                FuncMatchStatus::Dropped
            },
            matched_probes: acc.matched,
            fuzzy_probes: acc.fuzzy,
            dropped_probes: acc.dropped,
            ambiguous_anchors: acc.ambiguous,
            two_to_one: acc.two_to_one,
            anchor_drift: false,
            old_weight,
            recovered_weight: if salvaged { recovered_weight } else { 0 },
        });
    }

    // Rename pass: profile GUIDs absent from the module vs module
    // functions absent from the profile, heaviest orphan first.
    let mut free: Vec<FuncId> = module
        .functions
        .iter()
        .filter(|f| !profile.funcs.contains_key(&f.guid))
        .map(|f| f.id)
        .collect();
    orphans.sort_by(|a, b| {
        profile_weight(b.1)
            .cmp(&profile_weight(a.1))
            .then(a.0.cmp(&b.0))
    });
    for (old_guid, fp) in orphans {
        // Per call-site probe, every recorded callee, heaviest first.
        // Multi-callee probes (indirect calls, tail-call unwinding) are
        // resolved *per candidate* below: if any recorded callee agrees
        // with the candidate's label we take that one — the question is
        // "could this candidate have produced these call records", not
        // "what was the hottest target".
        let mut old_by_probe: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        {
            let mut weighted: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
            for (&(probe, callee), sub) in &fp.callsites {
                weighted.entry(probe).or_default().push((callee, sub.total));
            }
            for (probe, mut callees) in weighted {
                callees.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
                old_by_probe.insert(probe, callees.into_iter().map(|(c, _)| c).collect());
            }
        }
        let old_name = profile
            .names
            .get(&old_guid)
            .cloned()
            .unwrap_or_else(|| format!("{old_guid:#018x}"));
        let old_weight = profile_weight(fp);

        // (checksum evidence, similarity, free-list slot, candidate).
        let mut best: Option<(bool, f64, usize, FuncId)> = None;
        for (slot, &fid) in free.iter().enumerate() {
            let func = module.func(fid);
            let cand_labels: Vec<u64> = anchor_sequence(module, fid)
                .iter()
                .filter(|a| a.kind == ProbeKind::Call)
                .filter_map(|a| a.callee)
                // A rename moves the function's own GUID: the candidate's
                // recursive calls carry the *new* GUID while the orphan's
                // carry the old one. Fold the candidate's self-labels onto
                // the orphan's GUID so recursion counts as agreement.
                .map(|g| if g == func.guid { old_guid } else { g })
                .collect();
            let cand_set: BTreeSet<u64> = cand_labels.iter().copied().collect();
            let old_labels: Vec<u64> = old_by_probe
                .values()
                .map(|callees| {
                    callees
                        .iter()
                        .copied()
                        .find(|c| cand_set.contains(c))
                        .unwrap_or(callees[0])
                })
                .collect();
            let sim = label_similarity(&old_labels, &cand_labels);

            // Checksum evidence: a pure rename keeps the CFG-shape hash.
            // The hash collides on trivially-shaped functions, so it only
            // counts when the orphan's probes fit the candidate's probe
            // space and the recorded call targets do not contradict the
            // candidate. With equal checksums the CFGs — and therefore the
            // probe indices — are directly comparable, so contradiction is
            // judged per probe: an anchor whose profile-recorded callees
            // all differ from the candidate's label. Probes with no
            // profile record (tail-called or never-sampled calls) are
            // *neutral*, not contradictory — absence of evidence.
            let fresh = func.probe_checksum.unwrap_or_else(|| cfg_checksum(func));
            let fits = profile_probe_set(fp)
                .iter()
                .all(|&p| p > 0 && p < func.next_probe_index);
            let cand_anchors: Vec<(u32, u64)> = anchor_sequence(module, fid)
                .iter()
                .filter(|a| a.kind == ProbeKind::Call)
                .filter_map(|a| a.callee.map(|g| (a.index, g)))
                .map(|(i, g)| (i, if g == func.guid { old_guid } else { g }))
                .collect();
            let common: Vec<bool> = cand_anchors
                .iter()
                .filter_map(|&(i, g)| old_by_probe.get(&i).map(|callees| callees.contains(&g)))
                .collect();
            let agreement = if common.is_empty() {
                1.0
            } else {
                common.iter().filter(|&&ok| ok).count() as f64 / common.len() as f64
            };
            let checksum_eq = fp.checksum != 0
                && fp.checksum == fresh
                && fits
                && agreement >= cfg.rename_similarity;
            let enough_anchors = old_labels.len() >= cfg.min_rename_anchors
                && cand_labels.len() >= cfg.min_rename_anchors;
            let anchors_agree = enough_anchors && sim >= cfg.rename_similarity;
            if !checksum_eq && !anchors_agree {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, bs, _, bfid)) => {
                    (checksum_eq, sim) > (bc, bs)
                        || (checksum_eq == bc && sim == bs && func.name < module.func(bfid).name)
                }
            };
            if better {
                best = Some((checksum_eq, sim, slot, fid));
            }
        }

        match best {
            Some((_, sim, slot, fid)) => {
                free.remove(slot);
                let func = module.func(fid);
                let mut acc = Acc::default();
                let rec = match_func(module, fid, fp, cfg, 0, &mut acc);
                let recovered_weight = profile_weight(&rec);
                out.funcs.insert(func.guid, rec);
                out.names.insert(func.guid, func.name.clone());
                funcs.push(FuncMatch {
                    guid: func.guid,
                    name: func.name.clone(),
                    status: FuncMatchStatus::Renamed {
                        from_guid: old_guid,
                        from: old_name,
                        similarity: sim,
                    },
                    matched_probes: acc.matched,
                    fuzzy_probes: acc.fuzzy,
                    dropped_probes: acc.dropped,
                    ambiguous_anchors: acc.ambiguous,
                    two_to_one: acc.two_to_one,
                    anchor_drift: false,
                    old_weight,
                    recovered_weight,
                });
            }
            _ => {
                funcs.push(FuncMatch {
                    guid: old_guid,
                    name: old_name,
                    status: FuncMatchStatus::Dropped,
                    matched_probes: 0,
                    fuzzy_probes: 0,
                    dropped_probes: profile_probe_set(fp).len(),
                    ambiguous_anchors: 0,
                    two_to_one: 0,
                    anchor_drift: false,
                    old_weight,
                    recovered_weight: 0,
                });
            }
        }
    }

    funcs.sort_by(|a, b| a.name.cmp(&b.name).then(a.guid.cmp(&b.guid)));
    MatchOutcome {
        profile: out,
        funcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::probe::function_guid;

    /// Compiles, probes, and returns the module.
    fn probed(src: &str) -> Module {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        m
    }

    /// A synthetic profile for `module`: every probe of every function gets
    /// a deterministic count, call probes gain a nested sub-profile entry.
    fn synthetic_profile(module: &Module) -> ProbeProfile {
        let mut p = ProbeProfile::default();
        for f in &module.functions {
            let fp = p.funcs.entry(f.guid).or_default();
            fp.checksum = f.probe_checksum.unwrap();
            fp.entry = 1000;
            for a in anchor_sequence(module, f.id) {
                fp.record_sum(a.index, 100 + a.index as u64);
                if let Some(callee) = a.callee {
                    fp.callsite_mut(a.index, callee).entry = 10;
                }
            }
            fp.recompute_totals();
            p.names.insert(f.guid, f.name.clone());
        }
        p
    }

    const SRC: &str = r#"
fn leaf(x) {
    if (x % 3 == 0) { return x * 2; }
    return x + 1;
}
fn mid(x) {
    let a = leaf(x);
    let b = leaf(x + 1);
    return a + b;
}
fn top(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + mid(i);
        i = i + 1;
    }
    return s;
}
"#;

    #[test]
    fn clean_profile_passes_through_bit_identical() {
        let m = probed(SRC);
        let p = synthetic_profile(&m);
        let out = match_stale_profile(&m, &p, &MatchConfig::default());
        assert_eq!(out.profile.funcs, p.funcs);
        assert!(out
            .funcs
            .iter()
            .all(|f| f.status == FuncMatchStatus::ChecksumMatch));
        assert!(!out.funcs.iter().any(|f| f.anchor_drift));
        assert_eq!(out.stale_old_weight(), 0);
    }

    #[test]
    fn stale_inlinee_under_matched_parent_is_rematched() {
        // Only `leaf` drifts. `mid`'s own CFG — and checksum — are
        // untouched, but the inlined leaf sub-profile recorded under mid's
        // call site carries leaf's now-stale checksum and must be rebuilt
        // against the fresh leaf body, not passed through.
        let m_old = probed(SRC);
        let leaf_guid = function_guid("leaf");
        let mid_guid = function_guid("mid");
        let old_leaf_fid = m_old.find_function_by_guid(leaf_guid).unwrap();
        let old_leaf_sum = m_old.func(old_leaf_fid).probe_checksum.unwrap();

        let mut p = synthetic_profile(&m_old);
        let mid_fp = p.funcs.get_mut(&mid_guid).unwrap();
        let nested_keys: Vec<(u32, u64)> = mid_fp
            .callsites
            .keys()
            .copied()
            .filter(|&(_, g)| g == leaf_guid)
            .collect();
        assert!(!nested_keys.is_empty(), "mid must record leaf call sites");
        for key in &nested_keys {
            let sub = mid_fp.callsites.get_mut(key).unwrap();
            sub.checksum = old_leaf_sum;
            for a in anchor_sequence(&m_old, old_leaf_fid) {
                sub.record_sum(a.index, 7 + a.index as u64);
            }
            sub.recompute_totals();
        }
        mid_fp.recompute_totals();
        let old_nested_weight: u64 = nested_keys
            .iter()
            .map(|k| profile_weight(&p.funcs[&mid_guid].callsites[k]))
            .sum();

        let drifted = SRC.replace(
            "fn leaf(x) {",
            "fn leaf(x) {\n    if (0 > 1) { return 0 - 1; }",
        );
        let m_new = probed(&drifted);
        let new_leaf = m_new.func(m_new.find_function_by_guid(leaf_guid).unwrap());
        assert_ne!(new_leaf.probe_checksum.unwrap(), old_leaf_sum);
        assert_eq!(
            m_new
                .func(m_new.find_function_by_guid(mid_guid).unwrap())
                .probe_checksum,
            m_old
                .func(m_old.find_function_by_guid(mid_guid).unwrap())
                .probe_checksum,
            "mid itself must not drift"
        );

        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        let mid_match = out.funcs.iter().find(|f| f.name == "mid").unwrap();
        assert_eq!(mid_match.status, FuncMatchStatus::ChecksumMatch);
        let rec_mid = &out.profile.funcs[&mid_guid];
        let mut rec_nested_weight = 0;
        for key in &nested_keys {
            let sub = &rec_mid.callsites[key];
            assert_eq!(
                sub.checksum,
                new_leaf.probe_checksum.unwrap(),
                "nested sub-profile must carry the fresh inlinee checksum"
            );
            rec_nested_weight += profile_weight(sub);
        }
        assert!(rec_nested_weight > 0, "nested counts must survive");
        assert!(
            rec_nested_weight <= old_nested_weight,
            "no weight inflation"
        );
        assert_eq!(mid_match.two_to_one, 0);
    }

    #[test]
    fn cfg_drift_recovers_most_weight() {
        let m_old = probed(SRC);
        let p = synthetic_profile(&m_old);
        let drifted = csspgo_workloads_free_drift(SRC);
        let m_new = probed(&drifted);
        // Every function's CFG changed: all checksums mismatch.
        for f in &m_new.functions {
            assert_ne!(
                f.probe_checksum,
                m_old.functions[f.id.index()].probe_checksum,
                "{} should have drifted",
                f.name
            );
        }
        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        assert_eq!(out.count("recovered"), 3, "{:#?}", out.funcs);
        assert!(
            out.stale_recovered_fraction() >= 0.6,
            "recovered only {:.2} of stale weight",
            out.stale_recovered_fraction()
        );
        // Soundness: never more than the source held, never two-to-one.
        for f in &out.funcs {
            assert!(f.recovered_weight <= f.old_weight, "{f:#?}");
            assert_eq!(f.two_to_one, 0, "{f:#?}");
        }
        // Recovered functions carry the fresh checksum so annotation
        // accepts them.
        for f in &m_new.functions {
            let fp = &out.profile.funcs[&f.guid];
            assert_eq!(fp.checksum, f.probe_checksum.unwrap());
        }
    }

    /// A dead guard prepended to each body, CFG-changing (mirrors
    /// `workloads::drift::change_cfg` without the crate dependency).
    fn csspgo_workloads_free_drift(source: &str) -> String {
        let mut out = String::new();
        for line in source.lines() {
            out.push_str(line);
            out.push('\n');
            if line.starts_with("fn ") && line.trim_end().ends_with('{') {
                out.push_str("    if (0 > 1) { return 0 - 1; }\n");
            }
        }
        out
    }

    #[test]
    fn call_anchors_map_exactly_across_drift() {
        let m_old = probed(SRC);
        let p = synthetic_profile(&m_old);
        let m_new = probed(&csspgo_workloads_free_drift(SRC));
        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        let mid = out
            .funcs
            .iter()
            .find(|f| f.name == "mid")
            .expect("mid reported");
        // mid has two labeled call anchors (leaf, leaf — ambiguous label)
        // plus the pinned entry probe.
        assert!(mid.matched_probes >= 3, "{mid:#?}");
        assert!(mid.ambiguous_anchors >= 1, "{mid:#?}");
        // Nested sub-profiles survive under the matched anchors.
        let mid_fp = &out.profile.funcs[&function_guid("mid")];
        assert_eq!(mid_fp.callsites.len(), 2, "{mid_fp:#?}");
        for (_, callee) in mid_fp.callsites.keys() {
            assert_eq!(*callee, function_guid("leaf"));
        }
    }

    #[test]
    fn renamed_function_is_transplanted() {
        let m_old = probed(SRC);
        let p = synthetic_profile(&m_old);
        let renamed_src = SRC.replace("mid", "mid_v2");
        let m_new = probed(&renamed_src);
        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        let rec = out
            .funcs
            .iter()
            .find(|f| f.name == "mid_v2")
            .expect("rename candidate reported");
        match &rec.status {
            FuncMatchStatus::Renamed {
                from, similarity, ..
            } => {
                assert_eq!(from, "mid");
                assert!(*similarity >= 0.5, "similarity {similarity}");
            }
            other => panic!("expected rename, got {other:?}"),
        }
        assert!(out.profile.funcs.contains_key(&function_guid("mid_v2")));
        assert!(!out.profile.funcs.contains_key(&function_guid("mid")));
        // `top` now calls mid_v2, an unknown label vs the profile's mid:
        // its call anchor drops but the rest of the function recovers.
        let top = out.funcs.iter().find(|f| f.name == "top").unwrap();
        assert_eq!(top.status, FuncMatchStatus::ChecksumMatch);
        assert!(top.anchor_drift, "call-target change under a stable CFG");
    }

    #[test]
    fn leaf_rename_is_adopted_on_checksum_evidence() {
        // `leaf` has no call anchors, so anchor similarity alone can never
        // reach min_rename_anchors — the unchanged CFG checksum is what
        // carries the rename.
        let m_old = probed(SRC);
        let p = synthetic_profile(&m_old);
        let m_new = probed(&SRC.replace("leaf", "leaf_v2"));
        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        let rec = out
            .funcs
            .iter()
            .find(|f| f.name == "leaf_v2")
            .expect("leaf_v2 reported");
        match &rec.status {
            FuncMatchStatus::Renamed { from, .. } => assert_eq!(from, "leaf"),
            other => panic!("expected rename, got {other:?}"),
        }
        assert!(out.profile.funcs.contains_key(&function_guid("leaf_v2")));
        assert_eq!(rec.recovered_weight, rec.old_weight);
    }

    #[test]
    fn recursive_rename_normalizes_self_call_labels() {
        let src = r#"
fn count(n) {
    if (n <= 0) { return 0; }
    return count(n - 1) + count(n - 2);
}
fn top(n) { return count(n); }
"#;
        let m_old = probed(src);
        let p = synthetic_profile(&m_old);
        let m_new = probed(&src.replace("count", "count_v2"));
        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        let rec = out
            .funcs
            .iter()
            .find(|f| f.name == "count_v2")
            .expect("count_v2 reported");
        match &rec.status {
            FuncMatchStatus::Renamed {
                from, similarity, ..
            } => {
                assert_eq!(from, "count");
                // Without self-label folding the two recursive anchors
                // would disagree (count vs count_v2) and similarity would
                // be 0; with it they match exactly.
                assert_eq!(*similarity, 1.0);
            }
            other => panic!("expected rename, got {other:?}"),
        }
    }

    #[test]
    fn unmatchable_function_is_dropped() {
        let m_old = probed(SRC);
        let p = synthetic_profile(&m_old);
        // A module with entirely different functions: nothing to match.
        let m_new = probed("fn other(a) { return a * 2; }");
        let out = match_stale_profile(&m_new, &p, &MatchConfig::default());
        assert!(out
            .funcs
            .iter()
            .all(|f| f.status == FuncMatchStatus::Dropped
                || matches!(f.status, FuncMatchStatus::Renamed { .. })));
        assert_eq!(out.stale_recovered_weight(), 0);
    }

    #[test]
    fn lcs_is_strictly_increasing_and_maximal() {
        let a = [1u64, 2, 3, 2, 5];
        let b = [2u64, 3, 9, 2, 5];
        let pairs = lcs_pairs(&a, &b);
        assert_eq!(pairs.len(), 4); // 2 3 2 5
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        assert!(lcs_pairs(&[], &b).is_empty());
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = [1u64, 2, 3];
        let b = [1u64, 9, 3];
        let s = label_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(s, label_similarity(&b, &a));
        assert_eq!(label_similarity(&a, &a), 1.0);
        assert_eq!(label_similarity(&[], &[]), 1.0);
    }
}
