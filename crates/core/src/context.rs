//! The context-sensitive profile trie (paper §III.B).
//!
//! Each node profiles one function *under one calling context*: the path of
//! `(function, call-site probe)` frames from an un-inlined root function.
//! Children are keyed by `(call-site probe index, callee GUID)` — the same
//! navigation as [`crate::profile::ProbeFuncProfile`], which is what the
//! trie collapses into once the pre-inliner has decided which contexts stay
//! inlined.
//!
//! Cold-context trimming ("we mitigate the profile size increase by only
//! keeping context-sensitive profile for hot functions and trim profiles for
//! cold functions to be context-insensitive") merges cold subtrees into the
//! per-function base profiles.

use crate::fasthash::FastMap;
use crate::profile::{ProbeFuncProfile, ProbeProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A frame in a context key: call-site probe `probe` inside function `guid`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FrameKey {
    pub guid: u64,
    pub probe: u32,
}

/// One function profiled under one calling context.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextNode {
    /// The profiled function.
    pub guid: u64,
    /// Its CFG checksum (from the profiled binary).
    pub checksum: u64,
    /// Calls observed entering this context.
    pub entry: u64,
    /// Probe counts within this context.
    pub probes: BTreeMap<u32, u64>,
    /// Deeper contexts: (call-site probe, callee GUID) → node.
    pub children: BTreeMap<(u32, u64), ContextNode>,
    /// Pre-inliner decision: this context will be inlined into its parent
    /// (Algorithm 2's `MarkContextInlined`).
    pub inlined: bool,
}

impl ContextNode {
    /// Samples attributed directly to this node (not children).
    pub fn self_total(&self) -> u64 {
        self.probes.values().sum()
    }

    /// Samples in this node and all children.
    pub fn total(&self) -> u64 {
        self.self_total() + self.children.values().map(|c| c.total()).sum::<u64>()
    }

    /// Number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .values()
            .map(|c| c.node_count())
            .sum::<usize>()
    }
}

/// The whole-program context trie.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextProfile {
    /// Root contexts (un-inlined outermost functions) by GUID.
    pub roots: BTreeMap<u64, ContextNode>,
    /// GUID → name.
    pub names: BTreeMap<u64, String>,
}

impl ContextProfile {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` samples of probe `probe_index` of function `owner_guid`
    /// reached via `path` (outer→inner frames; empty for top-level code).
    pub fn add_probe_hit(
        &mut self,
        path: &[FrameKey],
        owner_guid: u64,
        probe_index: u32,
        count: u64,
    ) {
        let node = self.node_for_path_mut(path, owner_guid);
        *node.probes.entry(probe_index).or_insert(0) += count;
    }

    /// Records a call entering `owner_guid` via `path`.
    pub fn add_entry(&mut self, path: &[FrameKey], owner_guid: u64, count: u64) {
        let node = self.node_for_path_mut(path, owner_guid);
        node.entry += count;
    }

    /// Finds or creates the node for `path` leading to `owner_guid`.
    ///
    /// `path[0].guid` is the root function; each `path[k]` is the call-site
    /// probe leading to `path[k+1].guid` (or `owner_guid` for the last).
    pub fn node_for_path_mut(&mut self, path: &[FrameKey], owner_guid: u64) -> &mut ContextNode {
        let root_guid = path.first().map(|f| f.guid).unwrap_or(owner_guid);
        let mut node = self.roots.entry(root_guid).or_insert_with(|| ContextNode {
            guid: root_guid,
            ..ContextNode::default()
        });
        for (k, frame) in path.iter().enumerate() {
            let callee = path.get(k + 1).map(|f| f.guid).unwrap_or(owner_guid);
            node = node
                .children
                .entry((frame.probe, callee))
                .or_insert_with(|| ContextNode {
                    guid: callee,
                    ..ContextNode::default()
                });
        }
        node
    }

    /// Looks a context up without creating it.
    pub fn node_for_path(&self, path: &[FrameKey], owner_guid: u64) -> Option<&ContextNode> {
        let root_guid = path.first().map(|f| f.guid).unwrap_or(owner_guid);
        let mut node = self.roots.get(&root_guid)?;
        for (k, frame) in path.iter().enumerate() {
            let callee = path.get(k + 1).map(|f| f.guid).unwrap_or(owner_guid);
            node = node.children.get(&(frame.probe, callee))?;
        }
        Some(node)
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.roots.values().map(|n| n.total()).sum()
    }

    /// Total trie nodes — the paper's profile-size proxy (§III.B
    /// "Scalability": up to 10x without trimming).
    pub fn node_count(&self) -> usize {
        self.roots.values().map(|n| n.node_count()).sum()
    }

    /// Fills per-node checksums from a GUID → checksum table.
    pub fn set_checksums(&mut self, table: &BTreeMap<u64, u64>) {
        fn walk(node: &mut ContextNode, table: &BTreeMap<u64, u64>) {
            if let Some(&c) = table.get(&node.guid) {
                node.checksum = c;
            }
            for child in node.children.values_mut() {
                walk(child, table);
            }
        }
        for node in self.roots.values_mut() {
            walk(node, table);
        }
    }

    /// Cold-context trimming: contexts with fewer than `threshold` total
    /// samples are merged (context-insensitively) into their function's
    /// base/root profile.
    pub fn trim_cold(&mut self, threshold: u64) {
        // Collect merges first to avoid aliasing the trie while walking it.
        let mut merges: Vec<ContextNode> = Vec::new();
        fn walk(node: &mut ContextNode, threshold: u64, merges: &mut Vec<ContextNode>) {
            let keys: Vec<(u32, u64)> = node.children.keys().copied().collect();
            for key in keys {
                let cold = node.children[&key].total() < threshold;
                if cold {
                    let child = node.children.remove(&key).expect("key collected above");
                    merges.push(child);
                } else {
                    walk(
                        node.children.get_mut(&key).expect("hot child"),
                        threshold,
                        merges,
                    );
                }
            }
        }
        let roots: Vec<u64> = self.roots.keys().copied().collect();
        for g in roots {
            walk(
                self.roots.get_mut(&g).expect("root"),
                threshold,
                &mut merges,
            );
        }
        while let Some(node) = merges.pop() {
            self.merge_into_base(node, &mut merges);
        }
        // Roots that lost all content to trimming are dropped.
        self.roots
            .retain(|_, n| n.entry > 0 || !n.probes.is_empty() || !n.children.is_empty());
    }

    /// Evicts one depth-1 context subtree — root `root` calling `callee`
    /// through call-site probe `probe` — folding every count in the subtree
    /// context-insensitively into the functions' base/root profiles (the
    /// same conservation rule as [`Self::trim_cold`]). This is the
    /// compaction granule of the fleet's shared context store: cold
    /// subtrees stop costing trie nodes but their weight survives, so
    /// [`Self::total`] is unchanged.
    ///
    /// Returns `(nodes_detached, weight_folded)` — the subtree's node count
    /// and total sample weight — or `None` when no such edge exists.
    pub fn evict_subtree(&mut self, root: u64, probe: u32, callee: u64) -> Option<(usize, u64)> {
        let node = self
            .roots
            .get_mut(&root)?
            .children
            .remove(&(probe, callee))?;
        let nodes = node.node_count();
        let weight = node.total();
        let mut queue = vec![node];
        while let Some(n) = queue.pop() {
            self.merge_into_base(n, &mut queue);
        }
        Some((nodes, weight))
    }

    /// Merges a detached context node into its function's root profile,
    /// queueing its children for the same treatment.
    fn merge_into_base(&mut self, node: ContextNode, queue: &mut Vec<ContextNode>) {
        let base = self.roots.entry(node.guid).or_insert_with(|| ContextNode {
            guid: node.guid,
            checksum: node.checksum,
            ..ContextNode::default()
        });
        base.entry += node.entry;
        if base.checksum == 0 {
            base.checksum = node.checksum;
        }
        for (p, c) in node.probes {
            *base.probes.entry(p).or_insert(0) += c;
        }
        for (_, child) in node.children {
            queue.push(child);
        }
    }

    /// Collapses the trie into a [`ProbeProfile`]: contexts marked inlined
    /// stay as nested call-site profiles; everything else merges into base
    /// profiles (Algorithm 2's `MoveContextProfileToBaseProfile`).
    ///
    /// Non-inlined call edges leave a zero-body callsite *stub* (entry
    /// count + callee checksum, no probes) in the caller, preserving which
    /// target each call-site probe reached. Stubs carry no weight — probe
    /// totals, replay eligibility, and annotation are identical with or
    /// without them — but they are the call anchors the stale matcher's
    /// rename detection aligns on.
    pub fn to_probe_profile(&self) -> ProbeProfile {
        let mut out = ProbeProfile {
            names: self.names.clone(),
            ..ProbeProfile::default()
        };
        // Queue of (node, Option<destination nested profile path>) — we
        // process roots, descending into inlined children in place and
        // deferring non-inlined children to their own base profiles.
        fn convert(
            node: &ContextNode,
            dest: &mut ProbeFuncProfile,
            deferred: &mut Vec<ContextNode>,
        ) {
            dest.checksum = node.checksum;
            dest.entry += node.entry;
            for (p, c) in &node.probes {
                *dest.probes.entry(*p).or_insert(0) += c;
            }
            for ((probe, callee), child) in &node.children {
                if child.inlined {
                    let slot = dest.callsites.entry((*probe, *callee)).or_default();
                    convert(child, slot, deferred);
                } else {
                    // The child's counts move to its base profile, but the
                    // call *edge* — which target this call-site probe
                    // reached, and how often — is profile data in its own
                    // right (the stale matcher's call anchors). Keep it as
                    // a zero-body stub: entry and checksum only, so totals,
                    // replay gates, and annotation are untouched.
                    let stub = dest.callsites.entry((*probe, *callee)).or_default();
                    stub.entry += child.entry;
                    if stub.checksum == 0 {
                        stub.checksum = child.checksum;
                    }
                    deferred.push(child.clone());
                }
            }
        }

        let mut deferred: Vec<ContextNode> = Vec::new();
        for (g, node) in &self.roots {
            let dest = out.funcs.entry(*g).or_default();
            convert(node, dest, &mut deferred);
        }
        while let Some(node) = deferred.pop() {
            let mut flat = ContextProfile::default();
            flat.roots.insert(node.guid, node);
            for (g, n) in &flat.roots {
                let dest = out.funcs.entry(*g).or_default();
                convert(n, dest, &mut deferred);
            }
        }
        for f in out.funcs.values_mut() {
            f.recompute_totals();
        }
        out
    }
}

/// Dense identifier of one interned context in a [`ContextTrieBuilder`].
pub type ContextId = u32;

/// Arena node of the hash-consed builder trie. Counts use plain `HashMap`s
/// during ingestion; the sort into `BTreeMap`s happens once, at
/// [`ContextTrieBuilder::into_profile`] time.
#[derive(Debug, Default)]
struct BuilderNode {
    guid: u64,
    entry: u64,
    probes: FastMap<u32, u64>,
    /// Child edges in creation order: `((call-site probe, callee), id)`.
    children: Vec<((u32, u64), ContextId)>,
}

/// A hash-consed write-optimized context trie, the ingestion-side
/// counterpart of [`ContextProfile`].
///
/// [`ContextProfile::node_for_path_mut`] walks a chain of `BTreeMap`s —
/// one ordered-map lookup (with its pointer-chasing rebalance-ready nodes)
/// *per frame per hit*, which dominates CSSPGO correlation time. The
/// builder instead interns each `(parent, call-site probe, callee)` edge
/// into a dense [`ContextId`] arena through one flat hash map, so walking
/// a hot path that has been seen before is a few `HashMap` probes over
/// integer keys, and extending it allocates nothing but the arena slot.
///
/// The builder is **order-insensitive by construction**: all counters are
/// `+=` and [`into_profile`](Self::into_profile) sorts every map, so the
/// resulting [`ContextProfile`] is bit-identical to one built through
/// `add_probe_hit`/`add_entry` from the same hits in any order (property
/// tests in `tests/proptest_kernel.rs` pin this).
#[derive(Debug, Default)]
pub struct ContextTrieBuilder {
    nodes: Vec<BuilderNode>,
    roots: FastMap<u64, ContextId>,
    /// Edge interner: `(parent id, call-site probe, callee guid)` → child.
    edges: FastMap<(ContextId, u32, u64), ContextId>,
}

impl ContextTrieBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned contexts (arena size).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn alloc(&mut self, guid: u64) -> ContextId {
        let id = self.nodes.len() as ContextId;
        self.nodes.push(BuilderNode {
            guid,
            ..BuilderNode::default()
        });
        id
    }

    /// Interns the context reached by `path` into `owner_guid`, returning
    /// its dense id. Same navigation as
    /// [`ContextProfile::node_for_path_mut`]: `path[0].guid` roots the
    /// walk, each frame's probe selects the edge to the next frame's
    /// function (or `owner_guid` for the last).
    pub fn intern(&mut self, path: &[FrameKey], owner_guid: u64) -> ContextId {
        let root_guid = path.first().map(|f| f.guid).unwrap_or(owner_guid);
        let mut id = match self.roots.get(&root_guid) {
            Some(&id) => id,
            None => {
                let id = self.alloc(root_guid);
                self.roots.insert(root_guid, id);
                id
            }
        };
        for (k, frame) in path.iter().enumerate() {
            let callee = path.get(k + 1).map(|f| f.guid).unwrap_or(owner_guid);
            id = match self.edges.get(&(id, frame.probe, callee)) {
                Some(&child) => child,
                None => {
                    let child = self.alloc(callee);
                    self.edges.insert((id, frame.probe, callee), child);
                    self.nodes[id as usize]
                        .children
                        .push(((frame.probe, callee), child));
                    child
                }
            };
        }
        id
    }

    /// Adds `count` samples of `probe_index` at an already-interned context.
    pub fn add_probe_hit_at(&mut self, id: ContextId, probe_index: u32, count: u64) {
        *self.nodes[id as usize]
            .probes
            .entry(probe_index)
            .or_insert(0) += count;
    }

    /// Records `count` calls entering an already-interned context.
    pub fn add_entry_at(&mut self, id: ContextId, count: u64) {
        self.nodes[id as usize].entry += count;
    }

    /// Convenience: intern + probe hit.
    pub fn add_probe_hit(
        &mut self,
        path: &[FrameKey],
        owner_guid: u64,
        probe_index: u32,
        count: u64,
    ) {
        let id = self.intern(path, owner_guid);
        self.add_probe_hit_at(id, probe_index, count);
    }

    /// Convenience: intern + entry.
    pub fn add_entry(&mut self, path: &[FrameKey], owner_guid: u64, count: u64) {
        let id = self.intern(path, owner_guid);
        self.add_entry_at(id, count);
    }

    /// Sorts the arena into a canonical [`ContextProfile`]. Checksums and
    /// inline marks are ingestion-time zero/false, exactly as
    /// `add_probe_hit` leaves them.
    pub fn into_profile(self) -> ContextProfile {
        fn build(nodes: &[BuilderNode], id: ContextId) -> ContextNode {
            let n = &nodes[id as usize];
            ContextNode {
                guid: n.guid,
                checksum: 0,
                entry: n.entry,
                probes: n.probes.iter().map(|(&k, &v)| (k, v)).collect(),
                children: n
                    .children
                    .iter()
                    .map(|&(key, child)| (key, build(nodes, child)))
                    .collect(),
                inlined: false,
            }
        }
        let mut out = ContextProfile::new();
        for (&guid, &id) in &self.roots {
            out.roots.insert(guid, build(&self.nodes, id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fk(guid: u64, probe: u32) -> FrameKey {
        FrameKey { guid, probe }
    }

    #[test]
    fn paths_build_nested_nodes() {
        let mut cp = ContextProfile::new();
        // main --(probe 3)--> foo --(probe 2)--> bar
        cp.add_probe_hit(&[fk(1, 3), fk(2, 2)], 3, 7, 10);
        let node = cp.node_for_path(&[fk(1, 3), fk(2, 2)], 3).unwrap();
        assert_eq!(node.guid, 3);
        assert_eq!(node.probes[&7], 10);
        assert_eq!(cp.node_count(), 3);
    }

    #[test]
    fn same_function_different_contexts_stay_separate() {
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[fk(1, 3)], 9, 1, 100); // via add-path
        cp.add_probe_hit(&[fk(2, 5)], 9, 1, 50); // via sub-path
        let a = cp.node_for_path(&[fk(1, 3)], 9).unwrap();
        let b = cp.node_for_path(&[fk(2, 5)], 9).unwrap();
        assert_eq!(a.probes[&1], 100);
        assert_eq!(b.probes[&1], 50);
    }

    #[test]
    fn trim_merges_cold_contexts_into_base() {
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[fk(1, 3)], 9, 1, 100); // hot context
        cp.add_probe_hit(&[fk(2, 5)], 9, 1, 2); // cold context
        let before = cp.node_count();
        cp.trim_cold(10);
        assert!(cp.node_count() < before);
        // Cold context merged into base profile of guid 9.
        let base = cp.roots.get(&9).expect("base profile created");
        assert_eq!(base.probes[&1], 2);
        // Hot context untouched.
        assert_eq!(cp.node_for_path(&[fk(1, 3)], 9).unwrap().probes[&1], 100);
        // Totals preserved.
        assert_eq!(cp.total(), 102);
    }

    #[test]
    fn to_probe_profile_respects_inline_marks() {
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[], 1, 1, 5); // main body
        cp.add_probe_hit(&[fk(1, 3)], 9, 1, 100); // callee via probe 3
        cp.add_probe_hit(&[fk(1, 4)], 9, 1, 40); // callee via probe 4
                                                 // Mark only the probe-3 context inlined.
        cp.roots
            .get_mut(&1)
            .unwrap()
            .children
            .get_mut(&(3, 9))
            .unwrap()
            .inlined = true;
        let pp = cp.to_probe_profile();
        // Inlined context stays nested under main.
        assert_eq!(pp.funcs[&1].callsites[&(3, 9)].probes[&1], 100);
        // Non-inlined context became guid 9's base profile...
        assert_eq!(pp.funcs[&9].probes[&1], 40);
        // ...but leaves a weightless call-edge stub behind: the anchor
        // label survives, the counts do not.
        let stub = &pp.funcs[&1].callsites[&(4, 9)];
        assert!(stub.probes.is_empty());
        assert_eq!(stub.total, 0, "stubs must not add weight");
        // Total weight is conserved: 5 (main) + 100 (inlined) + 40 (base).
        let total: u64 = pp.funcs.values().map(|f| f.total).sum();
        assert_eq!(total, 145);
    }

    #[test]
    fn evict_subtree_conserves_totals() {
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[], 1, 2, 5); // root body
        cp.add_probe_hit(&[fk(1, 3)], 9, 1, 100); // context to evict
        cp.add_probe_hit(&[fk(1, 3), fk(9, 2)], 7, 4, 12); // nested context
        cp.add_probe_hit(&[fk(1, 4)], 9, 1, 40); // same callee, other context
        let before_total = cp.total();
        let (nodes, weight) = cp.evict_subtree(1, 3, 9).expect("edge exists");
        assert_eq!(nodes, 2, "callee + nested grand-callee detached");
        assert_eq!(weight, 112);
        assert_eq!(cp.total(), before_total, "eviction must conserve weight");
        // Counts fold into base profiles; the surviving context is intact.
        assert_eq!(cp.roots[&9].probes[&1], 100);
        assert_eq!(cp.roots[&7].probes[&4], 12);
        assert_eq!(cp.node_for_path(&[fk(1, 4)], 9).unwrap().probes[&1], 40);
        // Evicting a missing edge is a no-op.
        assert!(cp.evict_subtree(1, 3, 9).is_none());
        assert!(cp.evict_subtree(42, 0, 0).is_none());
    }

    #[test]
    fn checksums_propagate() {
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[fk(1, 3)], 9, 1, 1);
        let mut table = BTreeMap::new();
        table.insert(1u64, 0xaau64);
        table.insert(9u64, 0xbbu64);
        cp.set_checksums(&table);
        assert_eq!(cp.roots[&1].checksum, 0xaa);
        assert_eq!(cp.node_for_path(&[fk(1, 3)], 9).unwrap().checksum, 0xbb);
    }

    #[test]
    fn builder_matches_btreemap_path() {
        let hits: Vec<(Vec<FrameKey>, u64, u32, u64)> = vec![
            (vec![], 1, 1, 5),
            (vec![fk(1, 3)], 9, 1, 100),
            (vec![fk(1, 3), fk(9, 2)], 7, 4, 12),
            (vec![fk(1, 3)], 9, 1, 1), // repeat path reuses interned node
            (vec![fk(2, 5)], 9, 1, 50),
        ];
        let mut reference = ContextProfile::new();
        let mut builder = ContextTrieBuilder::new();
        for (path, owner, probe, count) in &hits {
            reference.add_probe_hit(path, *owner, *probe, *count);
            builder.add_probe_hit(path, *owner, *probe, *count);
        }
        reference.add_entry(&[fk(1, 3)], 9, 7);
        builder.add_entry(&[fk(1, 3)], 9, 7);
        let built = builder.into_profile();
        assert_eq!(built, reference);
        assert_eq!(
            serde_json::to_string(&built).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
    }

    #[test]
    fn builder_interning_is_stable() {
        let mut b = ContextTrieBuilder::new();
        let a = b.intern(&[fk(1, 3)], 9);
        let again = b.intern(&[fk(1, 3)], 9);
        assert_eq!(a, again, "same path must intern to the same id");
        let other = b.intern(&[fk(1, 4)], 9);
        assert_ne!(a, other);
        assert_eq!(b.node_count(), 3); // root + two contexts
    }

    #[test]
    fn totals_roll_up() {
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[], 1, 1, 5);
        cp.add_probe_hit(&[fk(1, 2)], 2, 1, 7);
        assert_eq!(cp.total(), 12);
        assert_eq!(cp.roots[&1].total(), 12);
        assert_eq!(cp.roots[&1].self_total(), 5);
    }
}
