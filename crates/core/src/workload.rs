//! The workload abstraction consumed by the PGO pipelines: MiniLang source,
//! global-array staging data, and separate train/eval request streams.

use serde::{Deserialize, Serialize};

/// A benchmarkable workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Workload {
    /// Display name (e.g. `ad_ranker`).
    pub name: String,
    /// MiniLang source text.
    pub source: String,
    /// Entry function called per request.
    pub entry: String,
    /// Global arrays to stage before any request: `(name, values)`.
    pub setup: Vec<(String, Vec<i64>)>,
    /// Requests issued while profiling ("production traffic").
    pub train_calls: Vec<Vec<i64>>,
    /// Requests issued during evaluation (same distribution, different
    /// seed — the train/eval split).
    pub eval_calls: Vec<Vec<i64>>,
}

impl Workload {
    /// Creates a workload with no staged globals.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        entry: impl Into<String>,
        train_calls: Vec<Vec<i64>>,
        eval_calls: Vec<Vec<i64>>,
    ) -> Self {
        Workload {
            name: name.into(),
            source: source.into(),
            entry: entry.into(),
            setup: Vec::new(),
            train_calls,
            eval_calls,
        }
    }

    /// Returns a copy whose train/eval request streams are scaled down by
    /// `factor` (for quick tests: `scaled(0.1)` keeps every 10th request).
    pub fn scaled(&self, factor: f64) -> Workload {
        let keep = |calls: &[Vec<i64>]| -> Vec<Vec<i64>> {
            if factor >= 1.0 {
                return calls.to_vec();
            }
            let n = ((calls.len() as f64 * factor).ceil() as usize).max(1);
            let stride = (calls.len() as f64 / n as f64).max(1.0);
            (0..n)
                .map(|i| calls[((i as f64 * stride) as usize).min(calls.len() - 1)].clone())
                .collect()
        };
        Workload {
            name: self.name.clone(),
            source: self.source.clone(),
            entry: self.entry.clone(),
            setup: self.setup.clone(),
            train_calls: keep(&self.train_calls),
            eval_calls: keep(&self.eval_calls),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_keeps_at_least_one_call() {
        let w = Workload::new(
            "w",
            "fn f(){return 0;}",
            "f",
            vec![vec![1]; 100],
            vec![vec![2]; 100],
        );
        let s = w.scaled(0.01);
        assert_eq!(s.train_calls.len(), 1);
        let s = w.scaled(0.25);
        assert_eq!(s.train_calls.len(), 25);
        let s = w.scaled(2.0);
        assert_eq!(s.train_calls.len(), 100);
    }
}
