//! Applying generated profiles back onto fresh IR — the compiler side of
//! PGO ("sample loader").
//!
//! Three paths, one per correlation mechanism:
//!
//! * [`autofdo_annotate`] — looks counts up by `(line offset,
//!   discriminator)` through debug inline stacks, replaying the profiling
//!   build's inlining where the profile has nested call-site sub-profiles
//!   (AutoFDO's early inliner and its "partial context-sensitivity").
//! * [`csspgo_annotate`] — looks counts up by pseudo-probe, rejecting
//!   functions whose CFG checksum mismatches (source drift). With an
//!   [`InlinePlan`] it replays the *pre-inliner's* global decisions instead
//!   of profile-shaped replay (full CSSPGO); without one it replays nested
//!   probe profiles (probe-only CSSPGO).
//! * [`instr_annotate`] — exact counter values (ground truth).
//!
//! All sampling paths finish with profile inference
//! ([`crate::inference::infer_counts`], min-cost-flow by default), which
//! also attaches flow-consistent [`csspgo_ir::EdgeCounts`] when the MCF
//! solver runs.

use crate::inference::{infer_counts, InferenceMode, InferenceStats};
use crate::profile::{FlatFuncProfile, FlatProfile, LocKey, ProbeFuncProfile, ProbeProfile};
use crate::stalematch::{match_stale_profile, FuncMatchStatus, MatchConfig, StaleMatching};
use csspgo_ir::annot::InlinePlan;
use csspgo_ir::debuginfo::DebugLoc;
use csspgo_ir::inst::InstKind;
use csspgo_ir::probe::{cfg_checksum, ProbeKind, ProbeSite};
use csspgo_ir::{BlockId, FuncId, Module, Provenance, ProvenanceMap};
use csspgo_opt::inliner::{inline_call, real_size};
use std::collections::{HashMap, HashSet};

/// Annotation tuning.
#[derive(Clone, Copy, Debug)]
pub struct AnnotateConfig {
    /// Minimum nested-profile total to replay an inline.
    pub replay_min_total: u64,
    /// Maximum callee size (IR instructions) for replayed inlining.
    pub replay_max_callee_size: usize,
    /// Maximum replayed inlines per function.
    pub inline_budget: usize,
    /// How checksum-mismatched (stale) functions are handled: dropped
    /// ([`StaleMatching::Off`], [`StaleMatching::Report`]) or salvaged
    /// through the anchor-based matcher ([`StaleMatching::Recover`]).
    pub stale_matching: StaleMatching,
    /// Which inference algorithm repairs the correlated counts (runs after
    /// stale recovery, so salvaged partial profiles become fully usable).
    pub inference: InferenceMode,
}

impl Default for AnnotateConfig {
    fn default() -> Self {
        AnnotateConfig {
            replay_min_total: 8,
            replay_max_callee_size: 200,
            inline_budget: 64,
            stale_matching: StaleMatching::Off,
            inference: InferenceMode::default(),
        }
    }
}

/// What annotation did (for reporting and the drift experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnnotateStats {
    /// Functions annotated with counts.
    pub annotated: usize,
    /// Functions whose checksum mismatched and whose counts were dropped
    /// (all of them when stale matching is off; only the unsalvageable
    /// ones under [`StaleMatching::Recover`]).
    pub stale_dropped: usize,
    /// Checksum-mismatched functions whose counts the stale matcher
    /// recovered (always 0 unless [`StaleMatching::Recover`] is on).
    pub stale_recovered: usize,
    /// Inlines replayed from the profile or plan.
    pub replayed_inlines: usize,
    /// Aggregate profile-inference work across all annotated functions.
    pub inference: InferenceStats,
    /// Annotated weight summed by provenance tag across all functions.
    pub provenance: ProvenanceTotals,
}

impl AnnotateStats {
    /// Every function that failed the checksum gate, salvaged or not (the
    /// old `stale` counter).
    pub fn stale_total(&self) -> usize {
        self.stale_dropped + self.stale_recovered
    }
}

/// Annotated weight (block counts) summed by [`Provenance`] tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceTotals {
    /// Weight from raw samples or exact counters on a matching build.
    pub sampled: u64,
    /// Weight transferred by the stale matcher.
    pub stale_matched: u64,
    /// Weight invented or materially adjusted by inference.
    pub inferred: u64,
    /// Weight recovered from sparse counters by Kirchhoff elimination.
    pub reconstructed: u64,
}

impl ProvenanceTotals {
    /// Adds `weight` under `tag`.
    pub fn add(&mut self, tag: Provenance, weight: u64) {
        match tag {
            Provenance::Sampled => self.sampled += weight,
            Provenance::StaleMatched => self.stale_matched += weight,
            Provenance::Inferred => self.inferred += weight,
            Provenance::Reconstructed => self.reconstructed += weight,
        }
    }

    /// Total annotated weight.
    pub fn total(&self) -> u64 {
        self.sampled + self.stale_matched + self.inferred + self.reconstructed
    }
}

/// Whether inference changed a raw count enough that the result should be
/// tagged [`Provenance::Inferred`] rather than inherit the measurement's
/// tag: the block had no raw count at all (and got weight), or the final
/// count moved beyond both an absolute and a 25% relative slack. Small
/// smoothing of sampled counts keeps the measurement tag — the solver is
/// calibrating, not inventing.
fn materially_adjusted(raw: Option<u64>, finalc: u64) -> bool {
    match raw {
        None => finalc > 0,
        Some(r) => {
            let d = finalc.abs_diff(r);
            d > 16 && d * 4 > r
        }
    }
}

// ---------------------------------------------------------------------
// AutoFDO path
// ---------------------------------------------------------------------

/// Navigates a flat profile by a debug location's inline stack; returns the
/// sub-profile containing the location's leaf.
fn flat_navigate<'p>(
    fp: &'p FlatFuncProfile,
    module: &Module,
    loc: &DebugLoc,
) -> Option<&'p FlatFuncProfile> {
    let mut cur = fp;
    for (k, site) in loc.inline_stack.iter().enumerate() {
        let start = module.func(site.func).start_line;
        let key = LocKey::new(site.line, start, site.discriminator);
        let callee = loc
            .inline_stack
            .get(k + 1)
            .map(|s| s.func)
            .unwrap_or(loc.scope);
        if callee == FuncId::INVALID {
            return None;
        }
        let callee_guid = module.func(callee).guid;
        cur = cur.callsites.get(&(key, callee_guid))?;
    }
    Some(cur)
}

/// Body-count lookup for one instruction location.
fn flat_lookup(fp: &FlatFuncProfile, module: &Module, loc: &DebugLoc) -> Option<u64> {
    if loc.scope == FuncId::INVALID || loc.line == 0 {
        return None;
    }
    let sub = flat_navigate(fp, module, loc)?;
    let start = module.func(loc.scope).start_line;
    sub.body
        .get(&LocKey::new(loc.line, start, loc.discriminator))
        .copied()
}

/// Annotates `module` from an AutoFDO-style profile.
pub fn autofdo_annotate(
    module: &mut Module,
    profile: &FlatProfile,
    cfg: &AnnotateConfig,
) -> AnnotateStats {
    let mut stats = AnnotateStats::default();
    let order = csspgo_opt::callgraph::CallGraph::build(module).top_down_order();

    for fid in order {
        let guid = module.func(fid).guid;
        let Some(fp) = profile.funcs.get(&guid) else {
            continue;
        };
        let fp = fp.clone();

        // ---- early inline replay ----
        let mut budget = cfg.inline_budget;
        while budget > 0 {
            let mut candidate: Option<(BlockId, usize)> = None;
            'scan: for (bid, block) in module.func(fid).iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let InstKind::Call { callee, .. } = &inst.kind else {
                        continue;
                    };
                    if *callee == fid {
                        continue;
                    }
                    let Some(enclosing) = flat_navigate(&fp, module, &inst.loc) else {
                        continue;
                    };
                    if inst.loc.scope == FuncId::INVALID {
                        continue;
                    }
                    let start = module.func(inst.loc.scope).start_line;
                    let key = LocKey::new(inst.loc.line, start, inst.loc.discriminator);
                    let callee_guid = module.func(*callee).guid;
                    let Some(nested) = enclosing.callsites.get(&(key, callee_guid)) else {
                        continue;
                    };
                    if nested.total >= cfg.replay_min_total
                        && real_size(module.func(*callee)) <= cfg.replay_max_callee_size
                    {
                        candidate = Some((bid, i));
                        break 'scan;
                    }
                }
            }
            match candidate {
                Some((bid, i)) => {
                    if inline_call(module, fid, bid, i).is_some() {
                        stats.replayed_inlines += 1;
                    }
                    budget -= 1;
                }
                None => break,
            }
        }

        // ---- block counts by MAX over per-instruction lookups ----
        let mut raw: HashMap<BlockId, u64> = HashMap::new();
        for (bid, block) in module.func(fid).iter_blocks() {
            let mut best: Option<u64> = None;
            for inst in &block.insts {
                if let Some(c) = flat_lookup(&fp, module, &inst.loc) {
                    best = Some(best.unwrap_or(0).max(c));
                }
            }
            if let Some(c) = best {
                raw.insert(bid, c);
            }
        }
        let entry = fp
            .entry
            .max(raw.get(&module.func(fid).entry).copied().unwrap_or(0));
        apply(
            module,
            fid,
            &raw,
            entry,
            cfg.inference,
            Provenance::Sampled,
            &mut stats,
        );
        stats.annotated += 1;
    }
    stats
}

// ---------------------------------------------------------------------
// CSSPGO path
// ---------------------------------------------------------------------

/// Navigates a probe profile by a probe inline stack.
fn probe_navigate<'p>(
    fp: &'p ProbeFuncProfile,
    module: &Module,
    stack: &[ProbeSite],
    owner: FuncId,
) -> Option<&'p ProbeFuncProfile> {
    let mut cur = fp;
    for (k, site) in stack.iter().enumerate() {
        let callee = stack.get(k + 1).map(|s| s.func).unwrap_or(owner);
        let callee_guid = module.func(callee).guid;
        cur = cur.callsites.get(&(site.probe_index, callee_guid))?;
    }
    Some(cur)
}

/// Annotates `module` (which must already carry pseudo-probes) from a probe
/// profile. `plan` switches between full-CSSPGO (replay the pre-inliner's
/// decisions) and probe-only (replay profile-observed inlining).
pub fn csspgo_annotate(
    module: &mut Module,
    profile: &ProbeProfile,
    plan: Option<&InlinePlan>,
    cfg: &AnnotateConfig,
) -> AnnotateStats {
    let mut stats = AnnotateStats::default();

    // Stale-profile salvage (the paper's drift story, §III.A): instead of
    // dropping checksum-mismatched functions below, statically re-map
    // their counts onto the fresh probe space first. Checksum-matched
    // functions pass through the matcher bit-identical, so this is a
    // no-op on undrifted profiles.
    let salvaged;
    // Fresh-module GUIDs whose counts came through the matcher rather than
    // a clean checksum match — their annotated weight is `StaleMatched`.
    let mut salvaged_guids: HashSet<u64> = HashSet::new();
    let profile = if cfg.stale_matching == StaleMatching::Recover {
        let outcome = match_stale_profile(module, profile, &MatchConfig::default());
        for f in &outcome.funcs {
            match f.status {
                FuncMatchStatus::Recovered | FuncMatchStatus::Renamed { .. } => {
                    stats.stale_recovered += 1;
                    salvaged_guids.insert(f.guid);
                }
                FuncMatchStatus::Dropped if module.find_function_by_guid(f.guid).is_some() => {
                    stats.stale_dropped += 1;
                }
                _ => {}
            }
        }
        salvaged = outcome.profile;
        &salvaged
    } else {
        profile
    };

    let order = csspgo_opt::callgraph::CallGraph::build(module).top_down_order();

    for fid in order {
        let guid = module.func(fid).guid;
        let Some(fp) = profile.funcs.get(&guid) else {
            continue;
        };
        let fp = fp.clone();

        // Source-drift detection: the profile's checksum must match the
        // fresh IR's CFG checksum. (Under `Recover`, salvaged functions
        // carry the fresh checksum and sail through.)
        let fresh_checksum = module
            .func(fid)
            .probe_checksum
            .unwrap_or_else(|| cfg_checksum(module.func(fid)));
        if fp.checksum != 0 && fp.checksum != fresh_checksum {
            stats.stale_dropped += 1;
            continue;
        }

        // ---- inline replay ----
        let mut budget = cfg.inline_budget;
        while budget > 0 {
            let mut candidate: Option<(BlockId, usize)> = None;
            'scan: for (bid, block) in module.func(fid).iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let InstKind::Call { callee, .. } = &inst.kind else {
                        continue;
                    };
                    if *callee == fid {
                        continue;
                    }
                    // The call's probe (immediately preceding instruction).
                    let Some((probe_owner, probe_idx, probe_stack)) =
                        call_probe_of(module, fid, bid, i)
                    else {
                        continue;
                    };
                    let should = match plan {
                        Some(plan) => {
                            // The path is the probe's inline chain plus the
                            // probe itself, attributed to its *original
                            // owner* (an inlined call site keeps its owner).
                            let mut path = probe_stack.clone();
                            path.push(ProbeSite {
                                func: probe_owner,
                                probe_index: probe_idx,
                            });
                            plan.should_inline(&path)
                        }
                        None => {
                            let enclosing = probe_navigate(&fp, module, &probe_stack, fid);
                            match enclosing {
                                Some(e) => {
                                    let callee_guid = module.func(*callee).guid;
                                    e.callsites
                                        .get(&(probe_idx, callee_guid))
                                        .map(|n| {
                                            n.total >= cfg.replay_min_total
                                                && real_size(module.func(*callee))
                                                    <= cfg.replay_max_callee_size
                                        })
                                        .unwrap_or(false)
                                }
                                None => false,
                            }
                        }
                    };
                    if should {
                        candidate = Some((bid, i));
                        break 'scan;
                    }
                }
            }
            match candidate {
                Some((bid, i)) => {
                    if inline_call(module, fid, bid, i).is_some() {
                        stats.replayed_inlines += 1;
                    }
                    budget -= 1;
                }
                None => break,
            }
        }

        // ---- block counts via block probes ----
        let mut raw: HashMap<BlockId, u64> = HashMap::new();
        for (bid, block) in module.func(fid).iter_blocks() {
            for inst in &block.insts {
                let InstKind::PseudoProbe {
                    owner,
                    index,
                    kind: ProbeKind::Block,
                    inline_stack,
                    ..
                } = &inst.kind
                else {
                    continue;
                };
                // Only the block's own anchoring probe (the first block
                // probe) sets the count; the rest came from inlining and
                // describe the same block.
                let count = probe_navigate(&fp, module, inline_stack, *owner)
                    .and_then(|sub| sub.probes.get(index).copied());
                if let Some(c) = count {
                    let slot = raw.entry(bid).or_insert(0);
                    *slot = (*slot).max(c);
                }
            }
        }
        let entry = fp
            .entry
            .max(raw.get(&module.func(fid).entry).copied().unwrap_or(0));
        let base = if salvaged_guids.contains(&guid) {
            Provenance::StaleMatched
        } else {
            Provenance::Sampled
        };
        apply(module, fid, &raw, entry, cfg.inference, base, &mut stats);
        stats.annotated += 1;
    }
    stats
}

/// The call probe guarding the call at `(bid, i)`: its owner, index and
/// inline stack.
fn call_probe_of(
    module: &Module,
    fid: FuncId,
    bid: BlockId,
    i: usize,
) -> Option<(FuncId, u32, Vec<ProbeSite>)> {
    if i == 0 {
        return None;
    }
    match &module.func(fid).block(bid).insts[i - 1].kind {
        InstKind::PseudoProbe {
            owner,
            index,
            kind: ProbeKind::Call,
            inline_stack,
            ..
        } => Some((*owner, *index, inline_stack.clone())),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Instrumentation path (ground truth)
// ---------------------------------------------------------------------

/// Annotates exact counter values measured on an identically-shaped fresh
/// IR (instrumentation-based PGO). Every written count is exact, so it is
/// tagged [`Provenance::Sampled`].
pub fn instr_annotate(
    module: &mut Module,
    counts: &HashMap<(FuncId, BlockId), u64>,
) -> AnnotateStats {
    instr_annotate_tagged(module, counts, Provenance::Sampled, &HashMap::new())
}

/// Annotates block counts recovered from a sparse spanning-tree counter
/// placement by Kirchhoff elimination ([`csspgo_ir::flow::reconstruct`]):
/// functions in `edges` carry solved counts (tagged
/// [`Provenance::Reconstructed`], with the recovered edge counts attached
/// so downstream flow lints can reconcile them); functions without an
/// entry carried exact full-fallback counters and stay
/// [`Provenance::Sampled`].
pub fn instr_annotate_reconstructed(
    module: &mut Module,
    counts: &HashMap<(FuncId, BlockId), u64>,
    edges: &HashMap<FuncId, Vec<(BlockId, BlockId, u64)>>,
) -> AnnotateStats {
    instr_annotate_tagged(module, counts, Provenance::Reconstructed, edges)
}

fn instr_annotate_tagged(
    module: &mut Module,
    counts: &HashMap<(FuncId, BlockId), u64>,
    reconstructed_tag: Provenance,
    edges: &HashMap<FuncId, Vec<(BlockId, BlockId, u64)>>,
) -> AnnotateStats {
    let mut stats = AnnotateStats::default();
    for fid in 0..module.functions.len() {
        let fid = FuncId::from_index(fid);
        let tag = if edges.contains_key(&fid) {
            reconstructed_tag
        } else {
            Provenance::Sampled
        };
        let ids: Vec<BlockId> = module.func(fid).iter_blocks().map(|(b, _)| b).collect();
        let mut any = false;
        let mut tags = Vec::new();
        for bid in &ids {
            if let Some(&c) = counts.get(&(fid, *bid)) {
                module.func_mut(fid).block_mut(*bid).count = Some(c);
                stats.provenance.add(tag, c);
                tags.push((*bid, tag));
                any = true;
            }
        }
        if any {
            let entry = counts
                .get(&(fid, module.func(fid).entry))
                .copied()
                .unwrap_or(0);
            let f = module.func_mut(fid);
            f.entry_count = Some(entry);
            f.count_provenance = Some(ProvenanceMap::new(tags));
            if let Some(es) = edges.get(&fid) {
                f.edge_counts = Some(csspgo_ir::EdgeCounts::new(es.clone()));
            }
            stats.annotated += 1;
        }
    }
    stats
}

/// Runs the configured inference on the raw counts and writes the repaired
/// block (and, under MCF, edge) counts onto the function, tagging each
/// block's provenance: `base` (how the raw count was measured) when
/// inference kept it close, [`Provenance::Inferred`] when inference
/// invented or materially adjusted it. Merges inference and provenance
/// accounting into `stats`.
fn apply(
    module: &mut Module,
    fid: FuncId,
    raw: &HashMap<BlockId, u64>,
    entry: u64,
    mode: InferenceMode,
    base: Provenance,
    stats: &mut AnnotateStats,
) {
    let result = infer_counts(module.func(fid), raw, entry, mode);
    let ids: Vec<BlockId> = module.func(fid).iter_blocks().map(|(b, _)| b).collect();
    let f = module.func_mut(fid);
    let mut tags = Vec::with_capacity(ids.len());
    for bid in ids {
        let count = result.counts.get(&bid).copied().unwrap_or(0);
        f.block_mut(bid).count = Some(count);
        let tag = if materially_adjusted(raw.get(&bid).copied(), count) {
            Provenance::Inferred
        } else {
            base
        };
        stats.provenance.add(tag, count);
        tags.push((bid, tag));
    }
    f.entry_count = Some(entry);
    f.edge_counts = result.edges.map(csspgo_ir::EdgeCounts::new);
    f.count_provenance = Some(ProvenanceMap::new(tags));
    stats.inference.merge(&result.stats);
}

/// Snapshot of per-function block counts keyed by GUID (for the overlap
/// metric).
pub fn collect_block_counts(module: &Module) -> crate::overlap::BlockCounts {
    let mut out = crate::overlap::BlockCounts::new();
    for f in &module.functions {
        let mut m = HashMap::new();
        for (bid, b) in f.iter_blocks() {
            if let Some(c) = b.count {
                m.insert(bid, c);
            }
        }
        if !m.is_empty() {
            out.insert(f.guid, m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_annotation_is_exact() {
        let src = "fn f(a) { if (a > 0) { return 1; } return 2; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        let fid = FuncId(0);
        let mut counts = HashMap::new();
        counts.insert((fid, BlockId(0)), 100u64);
        counts.insert((fid, BlockId(1)), 70u64);
        counts.insert((fid, BlockId(2)), 30u64);
        let stats = instr_annotate(&mut m, &counts);
        assert_eq!(stats.annotated, 1);
        assert_eq!(m.functions[0].block(BlockId(1)).count, Some(70));
        assert_eq!(m.functions[0].entry_count, Some(100));
    }

    #[test]
    fn collect_block_counts_roundtrips() {
        let src = "fn f(a) { return a; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        m.functions[0].block_mut(BlockId(0)).count = Some(9);
        let bc = collect_block_counts(&m);
        let guid = m.functions[0].guid;
        assert_eq!(bc[&guid][&BlockId(0)], 9);
    }

    #[test]
    fn stale_checksum_rejects_profile() {
        let src = "fn f(a) { if (a > 0) { return 1; } return 2; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::probes::run(&mut m);
        let guid = m.functions[0].guid;
        let mut profile = ProbeProfile::default();
        let fp = profile.funcs.entry(guid).or_default();
        fp.checksum = 0x1234; // wrong on purpose
        fp.record_sum(1, 50);
        let stats = csspgo_annotate(&mut m, &profile, None, &AnnotateConfig::default());
        assert_eq!(stats.stale_dropped, 1);
        assert_eq!(stats.stale_total(), 1);
        assert_eq!(stats.annotated, 0);
        assert_eq!(m.functions[0].block(BlockId(0)).count, None);
    }

    #[test]
    fn stale_matching_recover_salvages_mismatched_counts() {
        // The same CFG compiled twice; the profile's checksum is forced
        // wrong so the gate rejects it, then `Recover` salvages it via the
        // (trivial) anchor alignment.
        let src = "fn f(a) { if (a > 0) { return 1; } return 2; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::probes::run(&mut m);
        let guid = m.functions[0].guid;
        let mut profile = ProbeProfile::default();
        let fp = profile.funcs.entry(guid).or_default();
        fp.checksum = 0x1234; // mismatch on purpose
        fp.record_sum(1, 100);
        fp.record_sum(2, 80);
        fp.record_sum(3, 20);
        fp.entry = 100;
        fp.recompute_totals();
        let cfg = AnnotateConfig {
            stale_matching: StaleMatching::Recover,
            ..AnnotateConfig::default()
        };
        let stats = csspgo_annotate(&mut m, &profile, None, &cfg);
        assert_eq!(stats.stale_recovered, 1);
        assert_eq!(stats.stale_dropped, 0);
        assert_eq!(stats.annotated, 1);
        assert!(m.functions[0].block(BlockId(0)).count.is_some());
    }

    #[test]
    fn probe_annotation_sets_counts() {
        let src = "fn f(a) { if (a > 0) { return 1; } return 2; }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::probes::run(&mut m);
        let guid = m.functions[0].guid;
        let checksum = m.functions[0].probe_checksum.unwrap();
        // Probe 1 = entry block probe, probes 2/3 = arms (insertion order).
        let mut profile = ProbeProfile::default();
        let fp = profile.funcs.entry(guid).or_default();
        fp.checksum = checksum;
        fp.record_sum(1, 100);
        fp.record_sum(2, 80);
        fp.record_sum(3, 20);
        fp.entry = 100;
        fp.recompute_totals();
        let stats = csspgo_annotate(&mut m, &profile, None, &AnnotateConfig::default());
        assert_eq!(stats.annotated, 1);
        let probe_map = m.functions[0].block_probe_map();
        let b_of = |p: u32| probe_map[&p];
        let c = |b: BlockId| m.functions[0].block(b).count.unwrap();
        assert_eq!(c(b_of(1)), 100);
        assert!(c(b_of(2)) > c(b_of(3)), "bias preserved through inference");
    }

    #[test]
    fn annotation_attaches_edge_counts_under_mcf_only() {
        let src = "fn f(a) { if (a > 0) { return 1; } return 2; }";
        let build = || {
            let mut m = csspgo_lang::compile(src, "t").unwrap();
            csspgo_opt::probes::run(&mut m);
            m
        };
        let mut m = build();
        let guid = m.functions[0].guid;
        let mut profile = ProbeProfile::default();
        let fp = profile.funcs.entry(guid).or_default();
        fp.checksum = m.functions[0].probe_checksum.unwrap();
        fp.record_sum(1, 100);
        fp.record_sum(2, 80);
        fp.record_sum(3, 20);
        fp.entry = 100;
        fp.recompute_totals();

        let stats = csspgo_annotate(&mut m, &profile, None, &AnnotateConfig::default());
        let edges = m.functions[0].edge_counts.as_ref().expect("mcf edges");
        assert!(!edges.is_empty());
        assert_eq!(edges.out_total(m.functions[0].entry), 100);
        assert_eq!(stats.inference.functions, 1);

        let mut m2 = build();
        let cfg = AnnotateConfig {
            inference: InferenceMode::Heuristic,
            ..AnnotateConfig::default()
        };
        csspgo_annotate(&mut m2, &profile, None, &cfg);
        assert!(
            m2.functions[0].edge_counts.is_none(),
            "heuristic produces block counts only"
        );
    }

    #[test]
    fn autofdo_annotation_uses_line_offsets() {
        let src = "fn f(a) {\n    if (a > 0) {\n        return 1;\n    }\n    return 2;\n}";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        let guid = m.functions[0].guid;
        let mut profile = FlatProfile::default();
        let fp = profile.funcs.entry(guid).or_default();
        // fn on line 1; cond on line 2 (offset 1); return 1 on line 3
        // (offset 2); return 2 on line 5 (offset 4).
        fp.record_max(
            LocKey {
                line_offset: 1,
                discriminator: 0,
            },
            100,
        );
        fp.record_max(
            LocKey {
                line_offset: 2,
                discriminator: 0,
            },
            90,
        );
        fp.record_max(
            LocKey {
                line_offset: 4,
                discriminator: 0,
            },
            10,
        );
        fp.entry = 100;
        fp.recompute_totals();
        let stats = autofdo_annotate(&mut m, &profile, &AnnotateConfig::default());
        assert_eq!(stats.annotated, 1);
        let f = &m.functions[0];
        let then_c = f.block(BlockId(1)).count.unwrap();
        let else_c = f.block(BlockId(2)).count.unwrap();
        assert!(then_c > else_c * 4, "then {then_c} vs else {else_c}");
    }
}
