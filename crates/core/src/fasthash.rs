//! A fast, non-cryptographic hasher for the correlation kernel's internal
//! maps (the Fx/rustc multiply-rotate construction).
//!
//! The kernel's hot maps — sample dedup keys, context interners, range
//! memos, trie edges — are keyed by integers and small integer tuples that
//! the process never exposes to untrusted input, so SipHash's DoS
//! resistance buys nothing here while costing a large slice of correlate
//! time (it showed up as the single hottest symbol when profiling the
//! unwind). Wire formats and user-facing maps keep the std default.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher: one rotate + xor + multiply per 8-byte word.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` keyed through [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed through [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        let a = (7u64, vec![(1u64, 2u64)], vec![3u64]);
        let b = (7u64, vec![(1u64, 2u64)], vec![3u64]);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn distinct_small_keys_spread() {
        let hashes: FastSet<u64> = (0u64..10_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000, "trivial collisions on dense keys");
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FastMap<(u32, u64), u64> = FastMap::default();
        for i in 0..1000u64 {
            *m.entry((i as u32 % 17, i)).or_insert(0) += i;
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(0, 17)], 17);
    }
}
