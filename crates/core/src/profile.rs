//! Profile data models.
//!
//! Two shapes mirror the two correlation mechanisms:
//!
//! * [`FlatProfile`] — the AutoFDO-style profile: per function, counts keyed
//!   by `(line offset, discriminator)`, with *nested* sub-profiles for call
//!   sites whose callees were observed inlined in the profiled binary (this
//!   is what lets AutoFDO's early inliner replay profiling-build inlining,
//!   the paper's §II.B "partial context-sensitivity").
//! * [`ProbeProfile`] — the CSSPGO probe profile: counts keyed by pseudo-
//!   probe index, same nesting by call-site probe, plus the CFG checksum for
//!   staleness detection.
//!
//! The fully context-sensitive trie lives in [`crate::context`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An AutoFDO body-count key: line offset from the function header plus
/// discriminator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LocKey {
    /// `line - function_start_line` (0 when the line precedes the header,
    /// which can happen under source drift).
    pub line_offset: u32,
    /// DWARF discriminator.
    pub discriminator: u32,
}

impl LocKey {
    /// Builds a key from an absolute line and its function's header line.
    pub fn new(line: u32, start_line: u32, discriminator: u32) -> Self {
        LocKey {
            line_offset: line.saturating_sub(start_line),
            discriminator,
        }
    }
}

/// AutoFDO-style per-function profile (possibly nested under a call site).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatFuncProfile {
    /// Total samples attributed to this (sub-)profile.
    pub total: u64,
    /// Calls observed entering this function (LBR call edges).
    pub entry: u64,
    /// Body counts (MAX over machine instructions sharing a key — the
    /// debug-info heuristic the paper dissects).
    pub body: BTreeMap<LocKey, u64>,
    /// Nested profiles for call sites whose callees were inlined in the
    /// profiled binary, keyed by (call-site location, callee GUID).
    pub callsites: BTreeMap<(LocKey, u64), FlatFuncProfile>,
}

impl FlatFuncProfile {
    /// Registers `count` at `key`, keeping the maximum (the debug-info MAX
    /// heuristic).
    pub fn record_max(&mut self, key: LocKey, count: u64) {
        let slot = self.body.entry(key).or_insert(0);
        *slot = (*slot).max(count);
    }

    /// Child profile for a call site, creating it on first use.
    pub fn callsite_mut(&mut self, key: LocKey, callee_guid: u64) -> &mut FlatFuncProfile {
        self.callsites.entry((key, callee_guid)).or_default()
    }

    /// Recomputes `total` as the sum of body counts plus nested totals.
    pub fn recompute_totals(&mut self) -> u64 {
        let mut t: u64 = self.body.values().sum();
        for child in self.callsites.values_mut() {
            t += child.recompute_totals();
        }
        self.total = t;
        t
    }
}

/// A whole-program AutoFDO-style profile.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatProfile {
    /// Top-level (outermost) function profiles by GUID.
    pub funcs: BTreeMap<u64, FlatFuncProfile>,
    /// GUID → name, for reporting.
    pub names: BTreeMap<u64, String>,
}

impl FlatProfile {
    /// Total samples across all functions.
    pub fn total(&self) -> u64 {
        self.funcs.values().map(|f| f.total).sum()
    }
}

/// CSSPGO probe-based per-function profile (possibly nested).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeFuncProfile {
    /// Total samples attributed here.
    pub total: u64,
    /// Calls observed entering this function.
    pub entry: u64,
    /// The CFG checksum recorded in the profiled binary.
    pub checksum: u64,
    /// Counts per probe index (SUM over duplicated probes — the probe
    /// advantage over the MAX heuristic).
    pub probes: BTreeMap<u32, u64>,
    /// Nested profiles keyed by (call-site probe index, callee GUID).
    pub callsites: BTreeMap<(u32, u64), ProbeFuncProfile>,
}

impl ProbeFuncProfile {
    /// Adds `count` at probe `index` (duplicated probes sum).
    pub fn record_sum(&mut self, index: u32, count: u64) {
        *self.probes.entry(index).or_insert(0) += count;
    }

    /// Child profile for a call-site probe, creating it on first use.
    pub fn callsite_mut(&mut self, probe: u32, callee_guid: u64) -> &mut ProbeFuncProfile {
        self.callsites.entry((probe, callee_guid)).or_default()
    }

    /// Recomputes `total` recursively.
    pub fn recompute_totals(&mut self) -> u64 {
        let mut t: u64 = self.probes.values().sum();
        for child in self.callsites.values_mut() {
            t += child.recompute_totals();
        }
        self.total = t;
        t
    }
}

/// A whole-program probe profile (probe-only CSSPGO).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeProfile {
    /// Top-level function profiles by GUID.
    pub funcs: BTreeMap<u64, ProbeFuncProfile>,
    /// GUID → name.
    pub names: BTreeMap<u64, String>,
}

impl ProbeProfile {
    /// Total samples across all functions.
    pub fn total(&self) -> u64 {
        self.funcs.values().map(|f| f.total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockey_offsets_are_relative_to_header() {
        let k = LocKey::new(12, 10, 1);
        assert_eq!(k.line_offset, 2);
        assert_eq!(k.discriminator, 1);
        // Drifted line before the header saturates instead of wrapping.
        assert_eq!(LocKey::new(5, 10, 0).line_offset, 0);
    }

    #[test]
    fn flat_profile_keeps_max() {
        let mut p = FlatFuncProfile::default();
        let k = LocKey {
            line_offset: 1,
            discriminator: 0,
        };
        p.record_max(k, 10);
        p.record_max(k, 4); // duplicated copy with lower count: ignored
        p.record_max(k, 12);
        assert_eq!(p.body[&k], 12);
    }

    #[test]
    fn probe_profile_sums() {
        let mut p = ProbeFuncProfile::default();
        p.record_sum(3, 10);
        p.record_sum(3, 4); // duplicated probe: summed
        assert_eq!(p.probes[&3], 14);
    }

    #[test]
    fn nested_totals_roll_up() {
        let mut p = FlatFuncProfile::default();
        p.record_max(
            LocKey {
                line_offset: 0,
                discriminator: 0,
            },
            5,
        );
        let child = p.callsite_mut(
            LocKey {
                line_offset: 1,
                discriminator: 0,
            },
            42,
        );
        child.record_max(
            LocKey {
                line_offset: 0,
                discriminator: 0,
            },
            7,
        );
        assert_eq!(p.recompute_totals(), 12);
    }

    #[test]
    fn profiles_serialize_roundtrip() {
        let mut p = ProbeProfile::default();
        let f = p.funcs.entry(99).or_default();
        f.record_sum(1, 3);
        f.checksum = 0xdead;
        p.names.insert(99, "f".into());
        let json = serde_json::to_string(&p).unwrap();
        let back: ProbeProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.funcs[&99].probes[&1], 3);
        assert_eq!(back.funcs[&99].checksum, 0xdead);
    }
}
