//! `binprof` — the compact binary profile serialization (DESIGN.md §10).
//!
//! Textprof ([`crate::textprof`]) remains the human-readable debug format;
//! this module is the *production* wire format, shaped after LLVM's
//! ExtBinary sample-profile container: a fixed header (magic + version +
//! payload kind), then a sequence of independently-skippable sections, each
//! framed as `tag byte + varint byte length + payload`. All integers are
//! LEB128 varints; sorted key sequences (probe indices, GUID tables,
//! location keys) are delta-encoded so hot functions with dense probe maps
//! cost ~1 byte per entry; function names are deduplicated through a string
//! table and referenced by index.
//!
//! Encoding is **canonical**: every map in the profile data model is a
//! `BTreeMap`, so iteration order — and therefore the byte stream — is a
//! pure function of the profile value. Equal profiles encode to equal
//! bytes, which the snapshot tests rely on.

use crate::context::{ContextNode, ContextProfile};
use crate::profile::{FlatFuncProfile, FlatProfile, LocKey, ProbeFuncProfile, ProbeProfile};
use std::collections::BTreeMap;
use std::fmt;

/// File magic: first 8 bytes of every binprof payload.
pub const MAGIC: [u8; 8] = *b"CSPGOBIN";
/// Current format version. Decoders reject anything else.
pub const VERSION: u16 = 1;

/// Payload kind, byte 10 of the header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Kind {
    /// A [`ContextProfile`] (the context trie).
    Context = 1,
    /// A [`ProbeProfile`].
    Probe = 2,
    /// A [`FlatProfile`] (AutoFDO-style).
    Flat = 3,
    /// A [`crate::stream::StreamAggregator`] snapshot.
    StreamSnapshot = 4,
}

/// Section tags. Unknown tags are skipped by length, so future versions can
/// append sections without breaking old readers of the same version line.
pub mod section {
    /// Deduplicated string table.
    pub const STRINGS: u8 = 1;
    /// GUID → string-table-index name map.
    pub const NAMES: u8 = 2;
    /// Context-trie roots.
    pub const CONTEXT_ROOTS: u8 = 3;
    /// Probe-profile function bodies.
    pub const PROBE_FUNCS: u8 = 4;
    /// Flat-profile function bodies.
    pub const FLAT_FUNCS: u8 = 5;
    /// Stream-snapshot scalar metadata (fingerprint, epochs, samples).
    pub const STREAM_META: u8 = 6;
    /// Stream-snapshot tail-call graph edges.
    pub const STREAM_TAILGRAPH: u8 = 7;
    /// Stream-snapshot LBR range counts.
    pub const STREAM_RANGES: u8 = 8;
    /// Stream-snapshot branch counts.
    pub const STREAM_BRANCHES: u8 = 9;
    /// Stream-snapshot previous-epoch probe weights.
    pub const STREAM_WEIGHTS: u8 = 10;
    /// Stream-snapshot embedded context profile (a nested binprof payload).
    pub const STREAM_CONTEXT: u8 = 11;
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload does not start with [`MAGIC`].
    BadMagic,
    /// The version field is not [`VERSION`].
    Version { found: u16, supported: u16 },
    /// The kind byte does not match what the caller asked to decode.
    Kind { found: u8, expected: u8 },
    /// The payload ended mid-field.
    Truncated,
    /// A structural invariant failed (bad section framing, overlong varint,
    /// invalid UTF-8, dangling string index, …).
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a binprof payload (bad magic)"),
            DecodeError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported binprof version {found} (supported: {supported})"
                )
            }
            DecodeError::Kind { found, expected } => {
                write!(
                    f,
                    "binprof kind mismatch: found {found}, expected {expected}"
                )
            }
            DecodeError::Truncated => write!(f, "binprof payload truncated"),
            DecodeError::Corrupt(what) => write!(f, "corrupt binprof payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

/// Appends `v` as a LEB128 unsigned varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// A cursor over a byte slice with varint/typed readers.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `bytes` starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a LEB128 unsigned varint.
    pub fn uvarint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::Corrupt("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::Corrupt("varint too long"));
            }
        }
    }

    /// Reads a varint and narrows it to usize, guarding against payloads
    /// that claim more elements than bytes remain (allocation bombs).
    fn len_prefixed(&mut self) -> Result<usize, DecodeError> {
        let n = self.uvarint()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::Corrupt("length prefix exceeds payload"));
        }
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------------------
// Header + section framing
// ---------------------------------------------------------------------------

/// Writes the fixed header for `kind` into a fresh buffer.
pub fn header(kind: Kind) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(kind as u8);
    buf
}

/// Validates the header of `bytes` and returns a reader positioned at the
/// first section.
pub fn check_header(bytes: &[u8], kind: Kind) -> Result<Reader<'_>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let ver = u16::from_le_bytes(r.take(2)?.try_into().expect("two bytes"));
    if ver != VERSION {
        return Err(DecodeError::Version {
            found: ver,
            supported: VERSION,
        });
    }
    let k = r.byte()?;
    if k != kind as u8 {
        return Err(DecodeError::Kind {
            found: k,
            expected: kind as u8,
        });
    }
    Ok(r)
}

/// Appends one section: `tag`, varint payload length, payload bytes. The
/// explicit length is what lets decoders skip sections they don't need
/// without parsing them.
pub fn put_section(buf: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    buf.push(tag);
    put_uvarint(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
}

/// Splits the remainder of `r` into `(tag, payload)` sections.
pub fn read_sections<'a>(r: &mut Reader<'a>) -> Result<Vec<(u8, &'a [u8])>, DecodeError> {
    let mut out = Vec::new();
    while !r.at_end() {
        let tag = r.byte()?;
        let len = r.len_prefixed()?;
        out.push((tag, r.take(len)?));
    }
    Ok(out)
}

/// Finds a required section by tag.
fn require<'a>(sections: &[(u8, &'a [u8])], tag: u8) -> Result<&'a [u8], DecodeError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or(DecodeError::Corrupt("missing required section"))
}

// ---------------------------------------------------------------------------
// String table + name maps
// ---------------------------------------------------------------------------

/// Deduplicating string table builder. Interning the same string twice
/// returns the same index; the encoded table lists each string once.
#[derive(Default)]
pub struct StringTable {
    strings: Vec<String>,
    index: std::collections::HashMap<String, u32>,
}

impl StringTable {
    /// Interns `s`, returning its table index.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }

    /// Encodes the table: varint count, then per string varint length +
    /// UTF-8 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, self.strings.len() as u64);
        for s in &self.strings {
            put_uvarint(&mut buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        buf
    }

    /// Decodes a table encoded by [`StringTable::encode`].
    pub fn decode(payload: &[u8]) -> Result<Vec<String>, DecodeError> {
        let mut r = Reader::new(payload);
        let n = r.len_prefixed()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.len_prefixed()?;
            let s = std::str::from_utf8(r.take(len)?)
                .map_err(|_| DecodeError::Corrupt("string table entry is not UTF-8"))?;
            out.push(s.to_string());
        }
        if !r.at_end() {
            return Err(DecodeError::Corrupt("trailing bytes in string table"));
        }
        Ok(out)
    }
}

/// Encodes a GUID → name map against `table`: varint count, then per entry
/// a delta-encoded GUID (ascending `BTreeMap` order) + string index.
fn encode_names(names: &BTreeMap<u64, String>, table: &mut StringTable) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uvarint(&mut buf, names.len() as u64);
    let mut prev = 0u64;
    for (&guid, name) in names {
        put_uvarint(&mut buf, guid.wrapping_sub(prev));
        put_uvarint(&mut buf, u64::from(table.intern(name)));
        prev = guid;
    }
    buf
}

fn decode_names(payload: &[u8], strings: &[String]) -> Result<BTreeMap<u64, String>, DecodeError> {
    let mut r = Reader::new(payload);
    let n = r.len_prefixed()?;
    let mut out = BTreeMap::new();
    let mut prev = 0u64;
    for _ in 0..n {
        let guid = prev.wrapping_add(r.uvarint()?);
        let idx = r.uvarint()? as usize;
        let name = strings
            .get(idx)
            .ok_or(DecodeError::Corrupt("name references missing string"))?;
        out.insert(guid, name.clone());
        prev = guid;
    }
    if !r.at_end() {
        return Err(DecodeError::Corrupt("trailing bytes in name map"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Count maps (sorted u32 → u64, delta-encoded keys)
// ---------------------------------------------------------------------------

fn encode_u32_counts(buf: &mut Vec<u8>, counts: &BTreeMap<u32, u64>) {
    put_uvarint(buf, counts.len() as u64);
    let mut prev = 0u32;
    for (&k, &v) in counts {
        put_uvarint(buf, u64::from(k.wrapping_sub(prev)));
        put_uvarint(buf, v);
        prev = k;
    }
}

fn decode_u32_counts(r: &mut Reader<'_>) -> Result<BTreeMap<u32, u64>, DecodeError> {
    let n = r.len_prefixed()?;
    let mut out = BTreeMap::new();
    let mut prev = 0u32;
    for _ in 0..n {
        let delta = r.uvarint()?;
        let k = prev.wrapping_add(
            u32::try_from(delta).map_err(|_| DecodeError::Corrupt("probe index overflow"))?,
        );
        out.insert(k, r.uvarint()?);
        prev = k;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Context profile
// ---------------------------------------------------------------------------

fn encode_context_node(buf: &mut Vec<u8>, node: &ContextNode) {
    buf.push(u8::from(node.inlined));
    put_uvarint(buf, node.guid);
    put_uvarint(buf, node.checksum);
    put_uvarint(buf, node.entry);
    encode_u32_counts(buf, &node.probes);
    put_uvarint(buf, node.children.len() as u64);
    let mut prev_probe = 0u32;
    for (&(probe, callee), child) in &node.children {
        put_uvarint(buf, u64::from(probe.wrapping_sub(prev_probe)));
        put_uvarint(buf, callee);
        encode_context_node(buf, child);
        prev_probe = probe;
    }
}

fn decode_context_node(r: &mut Reader<'_>, depth: usize) -> Result<ContextNode, DecodeError> {
    if depth > 512 {
        return Err(DecodeError::Corrupt("context trie too deep"));
    }
    let flags = r.byte()?;
    if flags > 1 {
        return Err(DecodeError::Corrupt("unknown context-node flags"));
    }
    let mut node = ContextNode {
        inlined: flags == 1,
        guid: r.uvarint()?,
        checksum: r.uvarint()?,
        entry: r.uvarint()?,
        ..ContextNode::default()
    };
    node.probes = decode_u32_counts(r)?;
    let n_children = r.len_prefixed()?;
    let mut prev_probe = 0u32;
    for _ in 0..n_children {
        let delta = r.uvarint()?;
        let probe = prev_probe.wrapping_add(
            u32::try_from(delta).map_err(|_| DecodeError::Corrupt("callsite probe overflow"))?,
        );
        let callee = r.uvarint()?;
        let child = decode_context_node(r, depth + 1)?;
        node.children.insert((probe, callee), child);
        prev_probe = probe;
    }
    Ok(node)
}

/// Serializes a [`ContextProfile`] to the binprof wire format.
pub fn encode_context(profile: &ContextProfile) -> Vec<u8> {
    let mut table = StringTable::default();
    let names = encode_names(&profile.names, &mut table);

    let mut roots = Vec::new();
    put_uvarint(&mut roots, profile.roots.len() as u64);
    let mut prev = 0u64;
    for (&guid, node) in &profile.roots {
        put_uvarint(&mut roots, guid.wrapping_sub(prev));
        encode_context_node(&mut roots, node);
        prev = guid;
    }

    let mut buf = header(Kind::Context);
    put_section(&mut buf, section::STRINGS, &table.encode());
    put_section(&mut buf, section::NAMES, &names);
    put_section(&mut buf, section::CONTEXT_ROOTS, &roots);
    buf
}

/// Deserializes a [`ContextProfile`] from the binprof wire format.
pub fn decode_context(bytes: &[u8]) -> Result<ContextProfile, DecodeError> {
    let mut r = check_header(bytes, Kind::Context)?;
    let sections = read_sections(&mut r)?;
    let strings = StringTable::decode(require(&sections, section::STRINGS)?)?;
    let names = decode_names(require(&sections, section::NAMES)?, &strings)?;

    let mut rr = Reader::new(require(&sections, section::CONTEXT_ROOTS)?);
    let n = rr.len_prefixed()?;
    let mut roots = BTreeMap::new();
    let mut prev = 0u64;
    for _ in 0..n {
        let guid = prev.wrapping_add(rr.uvarint()?);
        roots.insert(guid, decode_context_node(&mut rr, 0)?);
        prev = guid;
    }
    if !rr.at_end() {
        return Err(DecodeError::Corrupt("trailing bytes in context roots"));
    }
    Ok(ContextProfile { roots, names })
}

// ---------------------------------------------------------------------------
// Probe profile
// ---------------------------------------------------------------------------

fn encode_probe_func(buf: &mut Vec<u8>, f: &ProbeFuncProfile) {
    put_uvarint(buf, f.total);
    put_uvarint(buf, f.entry);
    put_uvarint(buf, f.checksum);
    encode_u32_counts(buf, &f.probes);
    put_uvarint(buf, f.callsites.len() as u64);
    let mut prev_probe = 0u32;
    for (&(probe, callee), child) in &f.callsites {
        put_uvarint(buf, u64::from(probe.wrapping_sub(prev_probe)));
        put_uvarint(buf, callee);
        encode_probe_func(buf, child);
        prev_probe = probe;
    }
}

fn decode_probe_func(r: &mut Reader<'_>, depth: usize) -> Result<ProbeFuncProfile, DecodeError> {
    if depth > 512 {
        return Err(DecodeError::Corrupt("probe profile too deep"));
    }
    let mut f = ProbeFuncProfile {
        total: r.uvarint()?,
        entry: r.uvarint()?,
        checksum: r.uvarint()?,
        ..ProbeFuncProfile::default()
    };
    f.probes = decode_u32_counts(r)?;
    let n = r.len_prefixed()?;
    let mut prev_probe = 0u32;
    for _ in 0..n {
        let delta = r.uvarint()?;
        let probe = prev_probe.wrapping_add(
            u32::try_from(delta).map_err(|_| DecodeError::Corrupt("callsite probe overflow"))?,
        );
        let callee = r.uvarint()?;
        f.callsites
            .insert((probe, callee), decode_probe_func(r, depth + 1)?);
        prev_probe = probe;
    }
    Ok(f)
}

/// Serializes a [`ProbeProfile`] to the binprof wire format.
pub fn encode_probe(profile: &ProbeProfile) -> Vec<u8> {
    let mut table = StringTable::default();
    let names = encode_names(&profile.names, &mut table);

    let mut funcs = Vec::new();
    put_uvarint(&mut funcs, profile.funcs.len() as u64);
    let mut prev = 0u64;
    for (&guid, f) in &profile.funcs {
        put_uvarint(&mut funcs, guid.wrapping_sub(prev));
        encode_probe_func(&mut funcs, f);
        prev = guid;
    }

    let mut buf = header(Kind::Probe);
    put_section(&mut buf, section::STRINGS, &table.encode());
    put_section(&mut buf, section::NAMES, &names);
    put_section(&mut buf, section::PROBE_FUNCS, &funcs);
    buf
}

/// Deserializes a [`ProbeProfile`] from the binprof wire format.
pub fn decode_probe(bytes: &[u8]) -> Result<ProbeProfile, DecodeError> {
    let mut r = check_header(bytes, Kind::Probe)?;
    let sections = read_sections(&mut r)?;
    let strings = StringTable::decode(require(&sections, section::STRINGS)?)?;
    let names = decode_names(require(&sections, section::NAMES)?, &strings)?;

    let mut rr = Reader::new(require(&sections, section::PROBE_FUNCS)?);
    let n = rr.len_prefixed()?;
    let mut funcs = BTreeMap::new();
    let mut prev = 0u64;
    for _ in 0..n {
        let guid = prev.wrapping_add(rr.uvarint()?);
        funcs.insert(guid, decode_probe_func(&mut rr, 0)?);
        prev = guid;
    }
    if !rr.at_end() {
        return Err(DecodeError::Corrupt("trailing bytes in probe funcs"));
    }
    Ok(ProbeProfile { funcs, names })
}

// ---------------------------------------------------------------------------
// Flat (AutoFDO-style) profile
// ---------------------------------------------------------------------------

fn put_lockey(buf: &mut Vec<u8>, prev: &mut u32, key: LocKey) {
    put_uvarint(buf, u64::from(key.line_offset.wrapping_sub(*prev)));
    put_uvarint(buf, u64::from(key.discriminator));
    *prev = key.line_offset;
}

fn get_lockey(r: &mut Reader<'_>, prev: &mut u32) -> Result<LocKey, DecodeError> {
    let delta = r.uvarint()?;
    let line_offset = prev.wrapping_add(
        u32::try_from(delta).map_err(|_| DecodeError::Corrupt("line offset overflow"))?,
    );
    let discriminator =
        u32::try_from(r.uvarint()?).map_err(|_| DecodeError::Corrupt("discriminator overflow"))?;
    *prev = line_offset;
    Ok(LocKey {
        line_offset,
        discriminator,
    })
}

fn encode_flat_func(buf: &mut Vec<u8>, f: &FlatFuncProfile) {
    put_uvarint(buf, f.total);
    put_uvarint(buf, f.entry);
    put_uvarint(buf, f.body.len() as u64);
    let mut prev = 0u32;
    for (&key, &count) in &f.body {
        put_lockey(buf, &mut prev, key);
        put_uvarint(buf, count);
    }
    put_uvarint(buf, f.callsites.len() as u64);
    let mut prev = 0u32;
    for (&(key, callee), child) in &f.callsites {
        put_lockey(buf, &mut prev, key);
        put_uvarint(buf, callee);
        encode_flat_func(buf, child);
    }
}

fn decode_flat_func(r: &mut Reader<'_>, depth: usize) -> Result<FlatFuncProfile, DecodeError> {
    if depth > 512 {
        return Err(DecodeError::Corrupt("flat profile too deep"));
    }
    let mut f = FlatFuncProfile {
        total: r.uvarint()?,
        entry: r.uvarint()?,
        ..FlatFuncProfile::default()
    };
    let n_body = r.len_prefixed()?;
    let mut prev = 0u32;
    for _ in 0..n_body {
        let key = get_lockey(r, &mut prev)?;
        f.body.insert(key, r.uvarint()?);
    }
    let n_sites = r.len_prefixed()?;
    let mut prev = 0u32;
    for _ in 0..n_sites {
        let key = get_lockey(r, &mut prev)?;
        let callee = r.uvarint()?;
        f.callsites
            .insert((key, callee), decode_flat_func(r, depth + 1)?);
    }
    Ok(f)
}

/// Serializes a [`FlatProfile`] to the binprof wire format.
pub fn encode_flat(profile: &FlatProfile) -> Vec<u8> {
    let mut table = StringTable::default();
    let names = encode_names(&profile.names, &mut table);

    let mut funcs = Vec::new();
    put_uvarint(&mut funcs, profile.funcs.len() as u64);
    let mut prev = 0u64;
    for (&guid, f) in &profile.funcs {
        put_uvarint(&mut funcs, guid.wrapping_sub(prev));
        encode_flat_func(&mut funcs, f);
        prev = guid;
    }

    let mut buf = header(Kind::Flat);
    put_section(&mut buf, section::STRINGS, &table.encode());
    put_section(&mut buf, section::NAMES, &names);
    put_section(&mut buf, section::FLAT_FUNCS, &funcs);
    buf
}

/// Deserializes a [`FlatProfile`] from the binprof wire format.
pub fn decode_flat(bytes: &[u8]) -> Result<FlatProfile, DecodeError> {
    let mut r = check_header(bytes, Kind::Flat)?;
    let sections = read_sections(&mut r)?;
    let strings = StringTable::decode(require(&sections, section::STRINGS)?)?;
    let names = decode_names(require(&sections, section::NAMES)?, &strings)?;

    let mut rr = Reader::new(require(&sections, section::FLAT_FUNCS)?);
    let n = rr.len_prefixed()?;
    let mut funcs = BTreeMap::new();
    let mut prev = 0u64;
    for _ in 0..n {
        let guid = prev.wrapping_add(rr.uvarint()?);
        funcs.insert(guid, decode_flat_func(&mut rr, 0)?);
        prev = guid;
    }
    if !rr.at_end() {
        return Err(DecodeError::Corrupt("trailing bytes in flat funcs"));
    }
    Ok(FlatProfile { funcs, names })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FrameKey;

    fn sample_context() -> ContextProfile {
        let mut cp = ContextProfile::new();
        let fk = |guid, probe| FrameKey { guid, probe };
        cp.add_probe_hit(&[], 1, 1, 5);
        cp.add_probe_hit(&[fk(1, 3)], 9, 1, 100);
        cp.add_probe_hit(&[fk(1, 3), fk(9, 2)], 7, 4, 12);
        cp.add_entry(&[fk(1, 3)], 9, 17);
        cp.names.insert(1, "main".into());
        cp.names.insert(9, "helper".into());
        cp.names.insert(7, "leaf".into());
        cp.roots.get_mut(&1).unwrap().checksum = 0xdead_beef;
        cp.roots
            .get_mut(&1)
            .unwrap()
            .children
            .get_mut(&(3, 9))
            .unwrap()
            .inlined = true;
        cp
    }

    #[test]
    fn uvarint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.uvarint().unwrap(), v);
        }
        assert!(r.at_end());
    }

    #[test]
    fn context_roundtrip_is_lossless() {
        let cp = sample_context();
        let bytes = encode_context(&cp);
        let back = decode_context(&bytes).unwrap();
        assert_eq!(back, cp);
        // Canonical: equal values → equal bytes.
        assert_eq!(encode_context(&back), bytes);
    }

    #[test]
    fn probe_roundtrip_is_lossless() {
        let pp = sample_context().to_probe_profile();
        let bytes = encode_probe(&pp);
        let back = decode_probe(&bytes).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&pp).unwrap()
        );
        assert_eq!(encode_probe(&back), bytes);
    }

    #[test]
    fn flat_roundtrip_is_lossless() {
        let mut fp = FlatProfile::default();
        let f = fp.funcs.entry(42).or_default();
        f.record_max(
            LocKey {
                line_offset: 2,
                discriminator: 0,
            },
            9,
        );
        f.record_max(
            LocKey {
                line_offset: 2,
                discriminator: 3,
            },
            4,
        );
        let child = f.callsite_mut(
            LocKey {
                line_offset: 5,
                discriminator: 0,
            },
            77,
        );
        child.record_max(
            LocKey {
                line_offset: 0,
                discriminator: 0,
            },
            3,
        );
        f.entry = 2;
        f.recompute_totals();
        fp.names.insert(42, "f".into());
        fp.names.insert(77, "g".into());
        let bytes = encode_flat(&fp);
        let back = decode_flat(&bytes).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&fp).unwrap()
        );
    }

    #[test]
    fn rejects_bad_magic_version_and_kind() {
        let cp = sample_context();
        let bytes = encode_context(&cp);

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_context(&bad), Err(DecodeError::BadMagic));

        let mut bad = bytes.clone();
        bad[8] = 0xff; // version low byte
        assert!(matches!(
            decode_context(&bad),
            Err(DecodeError::Version { .. })
        ));

        assert!(matches!(
            decode_probe(&bytes),
            Err(DecodeError::Kind { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_context(&sample_context());
        for cut in [0, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_context(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn string_table_deduplicates() {
        let mut t = StringTable::default();
        let a = t.intern("same");
        let b = t.intern("same");
        let c = t.intern("other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            StringTable::decode(&t.encode()).unwrap(),
            vec!["same", "other"]
        );
    }
}
