//! The missing-frame inferrer (paper §III.B, "Reliable stack sampling").
//!
//! Tail-call elimination removes the tail-calling function's frame from the
//! frame-pointer chain, so stack samples miss frames. The mitigation: "build
//! a dynamic call graph that consists of only tail call edges constructed
//! from LBR samples and do a DFS-search on that graph to find a unique path
//! for a given pair of parent and child frame ... there could be multiple
//! tail-call paths available ... in which case the inference will fail."

use crate::ranges::RangeCounts;
use csspgo_codegen::minst::MInstKind;
use csspgo_codegen::Binary;
use std::collections::{HashMap, HashSet};

/// The dynamic tail-call graph.
#[derive(Clone, Debug, Default)]
pub struct TailCallGraph {
    /// Edges: caller function index → set of callee function indices,
    /// each with one representative tail-call instruction index.
    edges: HashMap<u32, HashMap<u32, usize>>,
}

/// Result counters for the recovery-rate experiment (paper: "more than
/// two-thirds of the missing tail call frames can be recovered").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Gaps bridged with a unique path.
    pub recovered: u64,
    /// Gaps with no or ambiguous paths.
    pub failed: u64,
}

impl TailCallGraph {
    /// Builds the graph from observed LBR branches.
    pub fn build(binary: &Binary, rc: &RangeCounts) -> Self {
        let mut g = TailCallGraph::default();
        for &(from, to) in rc.branches.keys() {
            if matches!(binary.insts[from].kind, MInstKind::TailCall { .. }) {
                let caller = binary.func_of[from];
                let callee = binary.func_of[to];
                g.edges.entry(caller).or_default().insert(callee, from);
            }
        }
        g
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    /// All edges as `(caller, callee, tail-call instruction)` triples, in
    /// unspecified order. Pairs with [`TailCallGraph::insert_edge`] so the
    /// streaming snapshot ([`crate::stream`]) can persist and restore the
    /// exact graph a profile was unwound with.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, usize)> + '_ {
        self.edges
            .iter()
            .flat_map(|(&caller, m)| m.iter().map(move |(&callee, &inst)| (caller, callee, inst)))
    }

    /// Inserts one edge (see [`TailCallGraph::edges`]).
    pub fn insert_edge(&mut self, caller: u32, callee: u32, inst: usize) {
        self.edges.entry(caller).or_default().insert(callee, inst);
    }

    /// Finds the unique tail-call path `from → … → to`, returning the
    /// tail-call *instruction indices* along it (one per missing frame).
    /// Returns `None` when no path or more than one path exists.
    pub fn unique_path(&self, from: u32, to: u32) -> Option<Vec<usize>> {
        const MAX_DEPTH: usize = 6;
        let mut found: Option<Vec<usize>> = None;
        let mut stack_path: Vec<usize> = Vec::new();
        let mut visited: HashSet<u32> = HashSet::new();

        #[allow(clippy::too_many_arguments)]
        fn dfs(
            g: &HashMap<u32, HashMap<u32, usize>>,
            cur: u32,
            to: u32,
            depth: usize,
            stack_path: &mut Vec<usize>,
            visited: &mut HashSet<u32>,
            found: &mut Option<Vec<usize>>,
            ambiguous: &mut bool,
        ) {
            if *ambiguous || depth > MAX_DEPTH {
                return;
            }
            let Some(nexts) = g.get(&cur) else { return };
            for (&n, &inst) in nexts {
                if *ambiguous {
                    return;
                }
                stack_path.push(inst);
                if n == to {
                    if found.is_some() {
                        *ambiguous = true;
                    } else {
                        *found = Some(stack_path.clone());
                    }
                } else if visited.insert(n) {
                    dfs(g, n, to, depth + 1, stack_path, visited, found, ambiguous);
                    visited.remove(&n);
                }
                stack_path.pop();
            }
        }

        let mut ambiguous = false;
        visited.insert(from);
        dfs(
            &self.edges,
            from,
            to,
            0,
            &mut stack_path,
            &mut visited,
            &mut found,
            &mut ambiguous,
        );
        if ambiguous {
            None
        } else {
            found
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    /// a tail-calls b tail-calls c (a loop keeps c busy so samples land).
    const SRC: &str = r#"
fn c(n) {
    let i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
fn b(n) { return c(n); }
fn a(n) { return b(n); }
fn main(n) { let r = a(n); return r; }
"#;

    fn setup() -> (Binary, RangeCounts) {
        let m = csspgo_lang::compile(SRC, "t").unwrap();
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 13,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[5000]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        (b, rc)
    }

    #[test]
    fn graph_captures_tail_edges() {
        let (b, rc) = setup();
        let g = TailCallGraph::build(&b, &rc);
        assert!(
            g.edge_count() >= 2,
            "a->b and b->c expected, got {}",
            g.edge_count()
        );
        let _ = b;
    }

    #[test]
    fn unique_chain_is_recovered() {
        let (b, rc) = setup();
        let g = TailCallGraph::build(&b, &rc);
        let fidx = |name: &str| b.funcs.iter().position(|f| f.name == name).unwrap() as u32;
        // main's frame shows a; execution is in c: the missing frames a→b→c.
        let path = g
            .unique_path(fidx("a"), fidx("c"))
            .expect("unique path a->..->c");
        assert_eq!(path.len(), 2, "two tail-call frames (in a and b)");
        // And a direct edge query.
        let short = g.unique_path(fidx("b"), fidx("c")).unwrap();
        assert_eq!(short.len(), 1);
    }

    #[test]
    fn ambiguity_fails_inference() {
        // Two distinct tail-call paths x->z: via y1 and via y2.
        let src = r#"
fn z(n) {
    let i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
fn y1(n) { return z(n); }
fn y2(n) { return z(n); }
fn x(n) {
    if (n % 2 == 0) { return y1(n); }
    return y2(n);
}
fn main(n) {
    let s = x(n) + x(n + 1);
    return s;
}
"#;
        let m = csspgo_lang::compile(src, "t").unwrap();
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 13,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call("main", &[4000]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let g = TailCallGraph::build(&b, &rc);
        let fidx = |name: &str| b.funcs.iter().position(|f| f.name == name).unwrap() as u32;
        assert_eq!(
            g.unique_path(fidx("x"), fidx("z")),
            None,
            "two paths must make inference fail"
        );
    }

    #[test]
    fn no_path_returns_none() {
        let (b, rc) = setup();
        let g = TailCallGraph::build(&b, &rc);
        let fidx = |name: &str| b.funcs.iter().position(|f| f.name == name).unwrap() as u32;
        assert_eq!(g.unique_path(fidx("c"), fidx("a")), None);
    }
}
