//! The paper's contribution: context-sensitive sampling-based PGO with
//! pseudo-instrumentation.
//!
//! This crate turns PMU samples from `csspgo-sim` into compiler profiles and
//! drives complete PGO cycles:
//!
//! * [`ranges`] — LBR snapshots → linear execution ranges and branch edges;
//! * [`profile`] — the AutoFDO-style nested line profile and the CSSPGO
//!   probe profile;
//! * [`context`] — the context-sensitive profile trie with cold-context
//!   trimming (paper §III.B "Scalability");
//! * [`correlate`] — debug-info correlation (MAX heuristic, the paper's
//!   §III.A foil) and pseudo-probe correlation (1:1 anchors, SUM over
//!   duplication, CFG-checksum staleness detection);
//! * [`unwind`] — **Algorithm 1**: reconstructing the calling context of
//!   every LBR range from synchronized LBR + stack samples;
//! * [`shard`] — parallel sharded sample ingestion (chunk → partial
//!   profiles → count-additive merge, bit-identical to sequential);
//! * [`binprof`] — the compact binary profile wire format (ExtBinary-shaped
//!   header/sections/varints), the production serialization behind
//!   snapshots and pipeline hand-off; textprof stays the debug format;
//! * [`tailcall`] — the missing-frame inferrer for tail-call-broken stacks;
//! * [`inference`] — profile inference (min-cost-flow flow-conservation
//!   repair — real Profi — used by *all* sampling variants, per the paper's
//!   setup, with the old local fixpoint heuristic as a selectable fallback);
//! * [`preinline`] — **Algorithms 2 and 3**: the context-sensitive
//!   pre-inliner with binary-extracted size estimates;
//! * [`annotate`] — applying profiles onto fresh IR, replaying inline
//!   decisions (AutoFDO's early inliner and CSSPGO's plan-driven inliner);
//! * [`stalematch`] — static anchor-based stale-profile matching: recovers
//!   checksum-mismatched counts by LCS-aligning call anchors and interval-
//!   mapping block probes (the salvage path behind
//!   [`stalematch::StaleMatching`]);
//! * [`overlap`] — the block-overlap profile-quality metric of Table I;
//! * [`pipeline`] — end-to-end PGO cycles for every variant the paper
//!   evaluates ([`pipeline::PgoVariant`]), fed by pluggable
//!   [`pipeline::ProfileSource`]s;
//! * [`stream`] — the streaming aggregation service: epoch-incremental
//!   bounded-memory profile folding with snapshot/restore and drift
//!   detection (the continuous-profiling deployment mode);
//! * [`fleet`] — the multi-tenant profile-continuum service: N tenants ×
//!   M binary versions of per-tenant aggregators behind a registry, with
//!   LRU-by-epoch cold-context eviction, drift watchdogs scheduling
//!   bounded-queue refreshes, and rayon fan-out across tenants;
//! * [`workload`] — the workload abstraction consumed by the pipelines.

pub mod annotate;
pub mod binprof;
pub mod context;
pub mod correlate;
pub mod fasthash;
pub mod fleet;
pub mod inference;
pub mod merge;
pub mod overlap;
pub mod pipeline;
pub mod preinline;
pub mod profile;
pub mod ranges;
pub mod release_train;
pub mod shard;
pub mod stalematch;
pub mod stream;
pub mod tailcall;
pub mod textprof;
pub mod unwind;
pub mod workload;

pub use fleet::{
    EpochEvent, FleetBinaries, FleetConfig, FleetConfigBuilder, FleetError, FleetEvent, FleetRun,
    FleetService, FleetStats, RefreshEvent, TenantId, TenantSpec, TrafficShare, VersionSpec,
};
pub use pipeline::{
    run_pgo_cycle, run_pgo_cycle_with, BatchSource, EpochSource, PgoOutcome, PgoVariant,
    PipelineConfig, PipelineConfigBuilder, PipelineError, ProfileSource, StageTimes,
};
pub use release_train::{
    run_release_train, CanaryReport, ReleaseReport, ReleaseSpec, TrainBenchDoc, TrainConfig,
    TrainReport, TRAIN_SCHEMA,
};
pub use stream::{
    ContextEdge, EpochSummary, EvictStats, SnapshotFormat, StreamAggregator, StreamConfig,
};
pub use workload::Workload;
