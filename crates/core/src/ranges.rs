//! LBR post-processing: turning raw samples into linear execution ranges
//! and branch edges.
//!
//! "From which we can derive a sequence of linear execution paths. By
//! accumulating the linear execution paths from all samples, we can then
//! construct control-flow profile for functions" (paper §III.B).

use csspgo_codegen::Binary;
use csspgo_sim::Sample;
use std::collections::HashMap;

/// Aggregated LBR-derived counts, in flat instruction indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RangeCounts {
    /// `[begin, end]` (inclusive) linear ranges with occurrence counts.
    pub ranges: HashMap<(usize, usize), u64>,
    /// Taken branch edges `(from, to)` with counts.
    pub branches: HashMap<(usize, usize), u64>,
}

impl RangeCounts {
    /// Accumulates one LBR snapshot. Ranges span from one branch's target to
    /// the next branch's source.
    pub fn add_lbr(&mut self, binary: &Binary, lbr: &[(u64, u64)]) {
        for window in lbr.windows(2) {
            let (_, to_prev) = window[0];
            let (from_next, _) = window[1];
            let (Some(begin), Some(end)) = (
                binary.index_of_addr(to_prev),
                binary.index_of_addr(from_next),
            ) else {
                continue;
            };
            // A sane linear range stays within one function and moves
            // forward.
            if begin <= end && binary.func_of[begin] == binary.func_of[end] {
                *self.ranges.entry((begin, end)).or_insert(0) += 1;
            }
        }
        for &(from, to) in lbr {
            let (Some(f), Some(t)) = (binary.index_of_addr(from), binary.index_of_addr(to)) else {
                continue;
            };
            *self.branches.entry((f, t)).or_insert(0) += 1;
        }
    }

    /// Accumulates all samples of a run.
    pub fn add_samples(&mut self, binary: &Binary, samples: &[Sample]) {
        for s in samples {
            self.add_lbr(binary, &s.lbr);
        }
    }

    /// Merges another accumulation into this one (count-additive; used to
    /// combine per-shard partial counts).
    pub fn merge(&mut self, other: &RangeCounts) {
        for (&key, &c) in &other.ranges {
            *self.ranges.entry(key).or_insert(0) += c;
        }
        for (&key, &c) in &other.branches {
            *self.branches.entry(key).or_insert(0) += c;
        }
    }

    /// Derives per-instruction execution counts from the ranges.
    pub fn inst_counts(&self, binary: &Binary) -> Vec<u64> {
        let mut counts = vec![0u64; binary.len()];
        for (&(begin, end), &c) in &self.ranges {
            for slot in &mut counts[begin..=end.min(binary.len() - 1)] {
                *slot += c;
            }
        }
        counts
    }

    /// Call-edge counts into each function entry: function index → count.
    pub fn entry_counts(&self, binary: &Binary) -> HashMap<u32, u64> {
        let mut out: HashMap<u32, u64> = HashMap::new();
        for (&(_, to), &c) in &self.branches {
            let fidx = binary.func_of[to];
            if binary.funcs[fidx as usize].entry == to {
                *out.entry(fidx).or_insert(0) += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    fn run_and_collect(src: &str, entry: &str, arg: i64) -> (Binary, RangeCounts) {
        let m = csspgo_lang::compile(src, "t").unwrap();
        let b = lower_module(&m, &CodegenConfig::default());
        let cfg = SimConfig {
            sample_period: 31,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(&b, cfg);
        machine.call(entry, &[arg]).unwrap();
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        (b, rc)
    }

    const SRC: &str = r#"
fn hot(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
fn main(n) {
    let r = hot(n);
    return r;
}
"#;

    #[test]
    fn loop_instructions_dominate_counts() {
        let (b, rc) = run_and_collect(SRC, "main", 5000);
        let counts = rc.inst_counts(&b);
        let hot_f = b.func_by_name("hot").unwrap();
        let hot_max: u64 = (hot_f.hot_range.0..hot_f.hot_range.1)
            .map(|i| counts[i])
            .max()
            .unwrap();
        let main_f = b.func_by_name("main").unwrap();
        let main_max: u64 = (main_f.hot_range.0..main_f.hot_range.1)
            .map(|i| counts[i])
            .max()
            .unwrap_or(0);
        assert!(
            hot_max > main_max * 10,
            "loop body must dominate: hot={hot_max} main={main_max}"
        );
    }

    #[test]
    fn call_edges_register_entry_counts() {
        let (b, rc) = run_and_collect(SRC, "main", 5000);
        let entries = rc.entry_counts(&b);
        // `hot` is called once; depending on sample timing the single call
        // edge may or may not be in some LBR window, but the *loop back
        // edge* guarantees branches inside hot. The call edge should appear
        // at least once across thousands of samples because LBR windows
        // cover early execution too.
        let hot_idx = b.funcs.iter().position(|f| f.name == "hot").unwrap() as u32;
        // Weak assertion: map exists and contains no impossible entries.
        for (fidx, c) in &entries {
            assert!(*c > 0);
            assert!((*fidx as usize) < b.funcs.len());
        }
        let _ = hot_idx;
    }

    #[test]
    fn ranges_stay_within_functions() {
        let (b, rc) = run_and_collect(SRC, "main", 2000);
        for &(begin, end) in rc.ranges.keys() {
            assert!(begin <= end);
            assert_eq!(b.func_of[begin], b.func_of[end]);
        }
    }
}
