//! The context-sensitive pre-inliner (paper §III.B, Algorithms 2 and 3).
//!
//! Runs *offline, as part of profile generation*, making global top-down
//! inline decisions over the profiled call graph — the paper's workaround
//! for ThinLTO-style isolated compilation, where cross-module profile
//! adjustment at compile time is impossible.
//!
//! * **Algorithm 3** extracts context-sensitive function sizes from the
//!   profiling *binary* ("usually more accurate than cost estimate on
//!   early-stage IR"; "extracted size can often accurately tell the
//!   pre-inliner that certain functions will eventually be fully optimized
//!   away").
//! * **Algorithm 2** walks functions top-down, pulls the most beneficial
//!   candidates off a queue, marks their contexts inlined under a size
//!   budget, and merges not-inlined context profiles back into base
//!   profiles.
//!
//! The decisions are persisted as inline paths (call-site probe chains) that
//! the compiler's sample loader replays
//! ([`crate::annotate::csspgo_annotate`]).

use crate::context::{ContextNode, ContextProfile, FrameKey};
use csspgo_codegen::Binary;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Pre-inliner tuning.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PreInlineConfig {
    /// Call-site sample total at or above which a context is hot.
    pub hot_threshold: u64,
    /// Maximum callee size (bytes) for hot call sites.
    pub size_limit: u64,
    /// Callee size (bytes) below which hot-enough candidates always inline.
    pub small_size: u64,
    /// Stop growing a function past `growth_factor ×` its original size
    /// (Algorithm 2's `FuncSize < Limit`), floored by `growth_floor` bytes
    /// so small functions can still absorb a helper.
    pub growth_factor: u64,
    /// Absolute floor for the per-function growth budget, in bytes.
    pub growth_floor: u64,
}

impl Default for PreInlineConfig {
    fn default() -> Self {
        PreInlineConfig {
            hot_threshold: 24,
            size_limit: 280,
            small_size: 80,
            growth_factor: 3,
            growth_floor: 400,
        }
    }
}

/// **Algorithm 3**: context-sensitive function sizes extracted from the
/// profiling binary. Keys are GUID paths (outermost function first).
pub fn context_sizes(binary: &Binary) -> HashMap<Vec<u64>, u64> {
    let mut sizes: HashMap<Vec<u64>, u64> = HashMap::new();
    for idx in 0..binary.len() {
        let mut path: Vec<u64> = binary
            .inlined_funcs(idx)
            .map(|f| binary.funcs[f.index()].guid)
            .collect();
        if path.is_empty() {
            continue;
        }
        let size = binary.insts[idx].size as u64;
        *sizes.entry(path.clone()).or_insert(0) += size;
        // Ensure every ancestor context exists (possibly at 0), so "fully
        // optimized away" inline instances are distinguishable from
        // "unknown".
        while path.len() > 1 {
            path.pop();
            sizes.entry(path.clone()).or_insert(0);
        }
    }
    sizes
}

/// The pre-inliner outcome.
#[derive(Clone, Debug, Default)]
pub struct PreInlineResult {
    /// Decided inline chains, as call-site frame paths (outer→inner).
    pub plan_paths: Vec<Vec<FrameKey>>,
    /// Contexts considered.
    pub considered: usize,
    /// Contexts inlined.
    pub inlined: usize,
}

/// Standalone (context-free) size of a function in the binary.
fn standalone_size(binary: &Binary, guid: u64) -> u64 {
    binary
        .func_by_guid(guid)
        .map(|f| {
            let hot: u64 = (f.hot_range.0..f.hot_range.1)
                .map(|i| binary.insts[i].size as u64)
                .sum();
            let cold: u64 = (f.cold_range.0..f.cold_range.1)
                .map(|i| binary.insts[i].size as u64)
                .sum();
            hot + cold
        })
        .unwrap_or(u64::MAX / 4)
}

/// **Algorithm 2**: top-down pre-inlining over the context trie. Mutates
/// `profile` (inlined marks, promotion of not-inlined contexts into base
/// profiles) and returns the decided plan.
pub fn run_preinliner(
    profile: &mut ContextProfile,
    binary: &Binary,
    cfg: &PreInlineConfig,
) -> PreInlineResult {
    let sizes = context_sizes(binary);
    let size_of = |path: &[u64]| -> u64 {
        sizes
            .get(path)
            .copied()
            .unwrap_or_else(|| standalone_size(binary, *path.last().expect("non-empty path")))
    };

    let mut result = PreInlineResult::default();
    let mut processed: HashSet<u64> = HashSet::new();
    let mut promotions: Vec<ContextNode> = Vec::new();

    // Call hotness (Algorithm 2's `GetCallHotness`): the call-site probe's
    // count in the caller (covers inlined call sites) plus physically
    // observed call edges, judged *relative* to the whole profile (a
    // ProfileSummary-style cutoff) with the configured threshold as an
    // absolute floor.
    let hot_cutoff = cfg.hot_threshold.max(profile.total() / 256);

    // Top-down: repeatedly process the hottest unprocessed root. Promotions
    // of not-inlined contexts create/augment other roots, which are then
    // processed in turn.
    loop {
        let next = profile
            .roots
            .iter()
            .filter(|(g, _)| !processed.contains(*g))
            .max_by_key(|(g, n)| (n.total(), u64::MAX - **g));
        let Some((&root_guid, _)) = next else { break };
        processed.insert(root_guid);

        let mut root = profile
            .roots
            .remove(&root_guid)
            .expect("root selected above");
        process_root(
            &mut root,
            root_guid,
            &size_of,
            cfg,
            hot_cutoff,
            &mut result,
            &mut promotions,
        );
        profile.roots.insert(root_guid, root);

        // Merge promotions structurally into their functions' base roots.
        for node in promotions.drain(..) {
            let guid = node.guid;
            let base = profile.roots.entry(guid).or_insert_with(|| ContextNode {
                guid,
                ..ContextNode::default()
            });
            merge_structural(base, node);
        }
    }
    result
}

/// Candidate in the benefit queue: ordered by call hotness (entries into
/// the context), identified by its child-key path from the root.
#[derive(PartialEq, Eq)]
struct Candidate {
    hotness: u64,
    path: Vec<(u32, u64)>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.hotness
            .cmp(&other.hotness)
            .then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn node_mut<'a>(root: &'a mut ContextNode, path: &[(u32, u64)]) -> &'a mut ContextNode {
    let mut cur = root;
    for key in path {
        cur = cur.children.get_mut(key).expect("path stays valid");
    }
    cur
}

fn process_root(
    root: &mut ContextNode,
    root_guid: u64,
    size_of: &dyn Fn(&[u64]) -> u64,
    cfg: &PreInlineConfig,
    hot_cutoff: u64,
    result: &mut PreInlineResult,
    promotions: &mut Vec<ContextNode>,
) {
    let call_hotness = |parent: &ContextNode, key: (u32, u64)| -> u64 {
        parent.probes.get(&key.0).copied().unwrap_or(0)
            + parent.children.get(&key).map(|c| c.entry).unwrap_or(0)
    };
    let mut func_size = size_of(&[root_guid]);
    let growth_limit = (func_size * cfg.growth_factor).max(cfg.growth_floor);
    let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();
    for key in root.children.keys() {
        queue.push(Candidate {
            hotness: call_hotness(root, *key),
            path: vec![*key],
        });
    }

    let mut inlined_paths: HashSet<Vec<(u32, u64)>> = HashSet::new();
    while let Some(cand) = queue.pop() {
        result.considered += 1;
        // GUID path for the size table: root plus each callee on the way.
        let mut guid_path = vec![root_guid];
        guid_path.extend(cand.path.iter().map(|&(_, callee)| callee));
        let cand_size = size_of(&guid_path);
        let hot = cand.hotness >= hot_cutoff;
        let should = func_size < growth_limit
            && hot
            && (cand_size <= cfg.small_size || cand_size <= cfg.size_limit);
        let node = node_mut(root, &cand.path);
        if should {
            node.inlined = true;
            result.inlined += 1;
            func_size += cand_size;
            inlined_paths.insert(cand.path.clone());
            let keys: Vec<(u32, u64)> = node.children.keys().copied().collect();
            let hots: Vec<u64> = keys.iter().map(|k| call_hotness(node, *k)).collect();
            for (key, hot) in keys.into_iter().zip(hots) {
                let mut p = cand.path.clone();
                p.push(key);
                queue.push(Candidate {
                    hotness: hot,
                    path: p,
                });
            }
            // Record the plan path: frame k is (function containing the
            // call-site probe, probe index).
            let mut frames = Vec::with_capacity(cand.path.len());
            let mut host = root_guid;
            for &(probe, callee) in &cand.path {
                frames.push(FrameKey { guid: host, probe });
                host = callee;
            }
            result.plan_paths.push(frames);
        }
    }

    // Detach every not-inlined child context (whose parent chain is fully
    // inlined or the root) for promotion into its own base profile.
    detach_not_inlined(root, promotions);
}

/// Removes not-inlined children (recursively stopping at them) and queues
/// them for base-profile promotion.
fn detach_not_inlined(node: &mut ContextNode, promotions: &mut Vec<ContextNode>) {
    let keys: Vec<(u32, u64)> = node.children.keys().copied().collect();
    for key in keys {
        let inlined = node.children[&key].inlined;
        if inlined {
            detach_not_inlined(node.children.get_mut(&key).expect("child"), promotions);
        } else {
            let child = node.children.remove(&key).expect("child");
            promotions.push(child);
        }
    }
}

/// Structurally merges `src` into `dst` (same function).
fn merge_structural(dst: &mut ContextNode, src: ContextNode) {
    debug_assert!(
        dst.guid == 0 || dst.guid == src.guid || dst.probes.is_empty() || src.probes.is_empty()
    );
    if dst.guid == 0 {
        dst.guid = src.guid;
    }
    dst.entry += src.entry;
    if dst.checksum == 0 {
        dst.checksum = src.checksum;
    }
    for (p, c) in src.probes {
        *dst.probes.entry(p).or_insert(0) += c;
    }
    for (key, child) in src.children {
        let slot = dst.children.entry(key).or_insert_with(|| ContextNode {
            guid: child.guid,
            ..ContextNode::default()
        });
        merge_structural(slot, child);
    }
}

/// Converts guid-based plan paths into an IR [`csspgo_ir::InlinePlan`] for
/// a concrete (fresh) module.
pub fn to_inline_plan(
    paths: &[Vec<FrameKey>],
    module: &csspgo_ir::Module,
) -> csspgo_ir::InlinePlan {
    let by_guid: HashMap<u64, csspgo_ir::FuncId> =
        module.functions.iter().map(|f| (f.guid, f.id)).collect();
    let mut plan = csspgo_ir::InlinePlan::new();
    'outer: for path in paths {
        let mut sites = Vec::with_capacity(path.len());
        for frame in path {
            let Some(&fid) = by_guid.get(&frame.guid) else {
                continue 'outer;
            };
            sites.push(csspgo_ir::ProbeSite {
                func: fid,
                probe_index: frame.probe,
            });
        }
        if !sites.is_empty() {
            plan.add(sites);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};

    fn fk(guid: u64, probe: u32) -> FrameKey {
        FrameKey { guid, probe }
    }

    /// A tiny binary for size lookups.
    fn tiny_binary() -> Binary {
        let src = "fn hot(x) { return x + 1; }\nfn cold(x) { return x - 1; }\nfn main(a) { return hot(a) + cold(a); }";
        let m = csspgo_lang::compile(src, "t").unwrap();
        lower_module(&m, &CodegenConfig::default())
    }

    #[test]
    fn algorithm3_sizes_cover_functions() {
        let b = tiny_binary();
        let sizes = context_sizes(&b);
        let main_guid = b.func_by_name("main").unwrap().guid;
        assert!(sizes[&vec![main_guid]] > 0);
    }

    #[test]
    fn algorithm3_tracks_inlined_instances() {
        let src = "fn h(x) { return x + 1; }\nfn main(a) { return h(a); }";
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::run_pipeline(&mut m, &csspgo_opt::OptConfig::default());
        let b = lower_module(&m, &CodegenConfig::default());
        let sizes = context_sizes(&b);
        let main_guid = b.func_by_name("main").unwrap().guid;
        let h_guid = b.func_by_name("h").unwrap().guid;
        assert!(
            sizes.contains_key(&vec![main_guid, h_guid]),
            "inlined instance of h must have a context size: {sizes:?}"
        );
    }

    #[test]
    fn hot_context_inlined_cold_promoted() {
        let b = tiny_binary();
        let hot_guid = b.func_by_name("hot").unwrap().guid;
        let cold_guid = b.func_by_name("cold").unwrap().guid;
        let main_guid = b.func_by_name("main").unwrap().guid;
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[], main_guid, 1, 50);
        cp.add_probe_hit(&[fk(main_guid, 3)], hot_guid, 1, 500);
        cp.add_entry(&[fk(main_guid, 3)], hot_guid, 500);
        cp.add_probe_hit(&[fk(main_guid, 4)], cold_guid, 1, 2);
        cp.add_entry(&[fk(main_guid, 4)], cold_guid, 2);

        let result = run_preinliner(&mut cp, &b, &PreInlineConfig::default());
        assert_eq!(result.inlined, 1, "only the hot context inlines");
        assert_eq!(result.plan_paths, vec![vec![fk(main_guid, 3)]]);
        // Hot context still nested & marked.
        let hot_node = cp.roots[&main_guid]
            .children
            .get(&(3, hot_guid))
            .expect("hot child kept");
        assert!(hot_node.inlined);
        // Cold context promoted to its own base.
        assert!(cp.roots.contains_key(&cold_guid));
        assert_eq!(cp.roots[&cold_guid].probes[&1], 2);
    }

    #[test]
    fn growth_limit_stops_inlining() {
        let b = tiny_binary();
        let hot_guid = b.func_by_name("hot").unwrap().guid;
        let main_guid = b.func_by_name("main").unwrap().guid;
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[fk(main_guid, 3)], hot_guid, 1, 500);
        cp.add_entry(&[fk(main_guid, 3)], hot_guid, 500);
        let cfg = PreInlineConfig {
            growth_factor: 0,
            growth_floor: 0,
            ..PreInlineConfig::default()
        };
        let result = run_preinliner(&mut cp, &b, &cfg);
        assert_eq!(result.inlined, 0);
    }

    #[test]
    fn plan_conversion_maps_guids_to_func_ids() {
        let src = "fn hot(x) { return x + 1; }\nfn main(a) { return hot(a); }";
        let m = csspgo_lang::compile(src, "t").unwrap();
        let main_guid = m.functions[m.find_function("main").unwrap().index()].guid;
        let paths = vec![vec![fk(main_guid, 2)]];
        let plan = to_inline_plan(&paths, &m);
        assert_eq!(plan.len(), 1);
        let main_id = m.find_function("main").unwrap();
        assert!(plan.should_inline(&[csspgo_ir::ProbeSite {
            func: main_id,
            probe_index: 2
        }]));
    }

    #[test]
    fn nested_hot_chains_inline_transitively() {
        // main -(3)-> mid (hot) -(2)-> leaf (hot): both should inline.
        let src = "fn leaf(x) { return x; }\nfn mid(x) { return leaf(x); }\nfn main(a) { return mid(a); }";
        let m = csspgo_lang::compile(src, "t").unwrap();
        let b = lower_module(&m, &CodegenConfig::default());
        let g = |n: &str| b.func_by_name(n).unwrap().guid;
        let mut cp = ContextProfile::new();
        cp.add_probe_hit(&[fk(g("main"), 3)], g("mid"), 1, 500);
        cp.add_entry(&[fk(g("main"), 3)], g("mid"), 500);
        cp.add_probe_hit(&[fk(g("main"), 3), fk(g("mid"), 2)], g("leaf"), 1, 400);
        cp.add_entry(&[fk(g("main"), 3), fk(g("mid"), 2)], g("leaf"), 400);
        let result = run_preinliner(&mut cp, &b, &PreInlineConfig::default());
        assert_eq!(result.inlined, 2, "{:?}", result.plan_paths);
        assert!(result
            .plan_paths
            .contains(&vec![fk(g("main"), 3), fk(g("mid"), 2)]));
    }
}
