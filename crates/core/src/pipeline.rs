//! End-to-end PGO cycles: build → profile in "production" → generate
//! profile → rebuild with the profile → evaluate.
//!
//! Mirrors the paper's evaluation setup (§IV.A): Profi-style inference,
//! ext-TSP layout and function splitting are enabled for *every* variant, so
//! measured differences come from correlation quality and
//! context-sensitivity — the two things CSSPGO changes.

use crate::annotate::{
    autofdo_annotate, collect_block_counts, csspgo_annotate, instr_annotate_reconstructed,
    AnnotateConfig, AnnotateStats,
};
use crate::correlate::{dwarf_profile, probe_profile};
use crate::overlap::BlockCounts;
use crate::preinline::{run_preinliner, to_inline_plan, PreInlineConfig};
use crate::shard::{sharded_context_profile, sharded_range_counts};
use crate::stream::StreamConfig;
use crate::tailcall::{InferStats, TailCallGraph};
use crate::workload::Workload;
use csspgo_codegen::{lower_module, Binary, CodegenConfig, SectionSizes};
use csspgo_ir::Module;
use csspgo_opt::OptConfig;
use csspgo_sim::Sample;
use csspgo_sim::{Machine, RunStats, SimConfig};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// The PGO variants evaluated in the paper.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so future variants (e.g. streaming-refresh hybrids) are not breaking
/// changes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PgoVariant {
    /// Plain optimized build, no profile (the pre-PGO baseline).
    O2,
    /// Instrumentation-based PGO (exact counts, heavy profiling run).
    Instr,
    /// Sampling-based PGO with debug-info correlation (the baseline PGO).
    AutoFdo,
    /// CSSPGO using only pseudo-instrumentation (paper's "probe-only").
    CsspgoProbeOnly,
    /// Full CSSPGO: pseudo-instrumentation + context-sensitive profiling +
    /// the pre-inliner.
    CsspgoFull,
}

impl PgoVariant {
    /// All variants, in presentation order.
    pub const ALL: [PgoVariant; 5] = [
        PgoVariant::O2,
        PgoVariant::Instr,
        PgoVariant::AutoFdo,
        PgoVariant::CsspgoProbeOnly,
        PgoVariant::CsspgoFull,
    ];

    /// Whether the variant inserts pseudo-probes.
    pub fn uses_probes(self) -> bool {
        matches!(self, PgoVariant::CsspgoProbeOnly | PgoVariant::CsspgoFull)
    }
}

impl fmt::Display for PgoVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PgoVariant::O2 => "O2",
            PgoVariant::Instr => "Instr PGO",
            PgoVariant::AutoFdo => "AutoFDO",
            PgoVariant::CsspgoProbeOnly => "CSSPGO (probe-only)",
            PgoVariant::CsspgoFull => "CSSPGO (full)",
        };
        f.write_str(s)
    }
}

/// Pipeline configuration.
///
/// Construct via [`PipelineConfig::default`] (always valid) or the
/// validating [`PipelineConfig::builder`], which rejects inconsistent
/// combinations up front instead of letting them fail deep inside a cycle.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Optimizer knobs (shared across variants for fair comparison).
    pub opt: OptConfig,
    /// Code generation knobs.
    pub codegen: CodegenConfig,
    /// Annotation / replay knobs.
    pub annotate: AnnotateConfig,
    /// Pre-inliner knobs (full CSSPGO).
    pub preinline: PreInlineConfig,
    /// Streaming-aggregation knobs (epoch ingestion; see [`crate::stream`]).
    pub stream: StreamConfig,
    /// Counter-placement knobs for the instrumented variant.
    pub instrument: csspgo_opt::instrument::InstrumentConfig,
    /// Cold-context trimming threshold (full CSSPGO).
    pub trim_threshold: u64,
    /// PMU sampling period in cycles.
    pub sample_period: u64,
    /// LBR depth.
    pub lbr_size: usize,
    /// Precise sampling (PEBS).
    pub pebs: bool,
    /// Deterministic seed.
    pub seed: u64,
    /// Simulator step budget per run.
    pub max_steps: u64,
    /// Sample-ingestion shard count (`0` = one shard per available thread).
    /// Any value produces bit-identical profiles; see [`crate::shard`].
    pub ingest_shards: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            opt: OptConfig::default(),
            codegen: CodegenConfig::default(),
            annotate: AnnotateConfig::default(),
            preinline: PreInlineConfig::default(),
            stream: StreamConfig::default(),
            instrument: csspgo_opt::instrument::InstrumentConfig::default(),
            trim_threshold: 16,
            sample_period: 199,
            lbr_size: 16,
            pebs: true,
            seed: 0xC55,
            max_steps: 40_000_000_000,
            ingest_shards: 0,
        }
    }
}

/// Hard cap on explicit shard requests; anything beyond this is a typo, not
/// a parallelism plan.
const MAX_INGEST_SHARDS: usize = 1 << 16;

impl PipelineConfig {
    /// Starts a validating builder seeded with the default configuration.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: PipelineConfig::default(),
        }
    }

    /// Checks the configuration's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] describing the first
    /// rejected combination.
    pub fn validate(&self) -> Result<(), PipelineError> {
        let fail = |msg: String| Err(PipelineError::InvalidConfig(msg));
        if self.sample_period == 0 {
            return fail(
                "sample_period must be non-zero: sampling variants would collect no samples \
                 (and sharded ingestion would have nothing to shard)"
                    .into(),
            );
        }
        if self.lbr_size < 2 {
            return fail(format!(
                "lbr_size {} is too small: range derivation needs at least two LBR entries",
                self.lbr_size
            ));
        }
        if self.max_steps == 0 {
            return fail("max_steps must be non-zero: every run would exceed its budget".into());
        }
        if self.ingest_shards > MAX_INGEST_SHARDS {
            return fail(format!(
                "ingest_shards {} exceeds the {MAX_INGEST_SHARDS} cap (0 means auto)",
                self.ingest_shards
            ));
        }
        if self.stream.max_pending_samples == 0 {
            return fail(
                "stream.max_pending_samples must be non-zero: no batch could ever be pushed".into(),
            );
        }
        if !(0.0..=1.0).contains(&self.stream.drift_threshold) {
            return fail(format!(
                "stream.drift_threshold {} is not a fraction in [0, 1]",
                self.stream.drift_threshold
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`PipelineConfig`].
///
/// Every setter overwrites one field; [`PipelineConfigBuilder::build`]
/// validates the combination and returns
/// [`PipelineError::InvalidConfig`] on inconsistency.
#[derive(Clone, Debug)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Sets the optimizer knobs.
    #[must_use]
    pub fn opt(mut self, opt: OptConfig) -> Self {
        self.cfg.opt = opt;
        self
    }

    /// Sets the code-generation knobs.
    #[must_use]
    pub fn codegen(mut self, codegen: CodegenConfig) -> Self {
        self.cfg.codegen = codegen;
        self
    }

    /// Sets the annotation / replay knobs.
    #[must_use]
    pub fn annotate(mut self, annotate: AnnotateConfig) -> Self {
        self.cfg.annotate = annotate;
        self
    }

    /// Sets the stale-profile handling mode (`off | report | recover`) —
    /// shorthand for overriding just that field of the annotate knobs.
    #[must_use]
    pub fn stale_matching(mut self, mode: crate::stalematch::StaleMatching) -> Self {
        self.cfg.annotate.stale_matching = mode;
        self
    }

    /// Sets the profile-inference algorithm (`off | heuristic | mcf`) —
    /// shorthand for overriding just that field of the annotate knobs.
    #[must_use]
    pub fn inference(mut self, mode: crate::inference::InferenceMode) -> Self {
        self.cfg.annotate.inference = mode;
        self
    }

    /// Sets the pre-inliner knobs.
    #[must_use]
    pub fn preinline(mut self, preinline: PreInlineConfig) -> Self {
        self.cfg.preinline = preinline;
        self
    }

    /// Sets the streaming-aggregation knobs.
    #[must_use]
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.cfg.stream = stream;
        self
    }

    /// Sets the counter-placement policy for the instrumented variant
    /// (`full | spanning_tree`) — shorthand for overriding just that field
    /// of the instrumentation knobs.
    #[must_use]
    pub fn placement(mut self, placement: csspgo_opt::instrument::Placement) -> Self {
        self.cfg.instrument.placement = placement;
        self
    }

    /// Sets the cold-context trimming threshold.
    #[must_use]
    pub fn trim_threshold(mut self, threshold: u64) -> Self {
        self.cfg.trim_threshold = threshold;
        self
    }

    /// Sets the PMU sampling period in cycles.
    #[must_use]
    pub fn sample_period(mut self, period: u64) -> Self {
        self.cfg.sample_period = period;
        self
    }

    /// Sets the LBR depth.
    #[must_use]
    pub fn lbr_size(mut self, size: usize) -> Self {
        self.cfg.lbr_size = size;
        self
    }

    /// Enables or disables precise sampling (PEBS).
    #[must_use]
    pub fn pebs(mut self, pebs: bool) -> Self {
        self.cfg.pebs = pebs;
        self
    }

    /// Sets the deterministic seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the simulator step budget per run.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.cfg.max_steps = max_steps;
        self
    }

    /// Sets the sample-ingestion shard count (`0` = auto).
    #[must_use]
    pub fn ingest_shards(mut self, shards: usize) -> Self {
        self.cfg.ingest_shards = shards;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] when the combination is
    /// inconsistent (see [`PipelineConfig::validate`]).
    pub fn build(self) -> Result<PipelineConfig, PipelineError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Per-stage wall times of one PGO cycle, in milliseconds. Emitted into
/// `BENCH_pipeline.json` by the bench harness so perf work has a measurable
/// trajectory across PRs.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StageTimes {
    /// Profiling build (frontend + opt + lowering).
    pub compile_ms: f64,
    /// Profiling run under the simulator.
    pub simulate_ms: f64,
    /// Profile generation: range counts, correlation / context unwinding,
    /// trimming — everything between samples and a compiler profile,
    /// *except* the pre-inliner.
    pub correlate_ms: f64,
    /// Pre-inliner (full CSSPGO only; 0 otherwise).
    pub preinline_ms: f64,
    /// Encoding the generated profile to the binprof wire format
    /// ([`crate::binprof`]); 0 for variants that hand off no profile.
    pub serialize_ms: f64,
    /// Decoding the binprof payload back into the compiler-side profile.
    pub deserialize_ms: f64,
    /// Profile inference during annotation ([`crate::inference`]); carved
    /// out of the rebuild so MCF-vs-heuristic cost is directly visible.
    /// (Old bench records without this stage stay readable through the
    /// lenient all-`Option` parse in `csspgo-bench`.)
    pub inference_ms: f64,
    /// Optimized rebuild (annotate + opt + lowering), *excluding* the
    /// inference time reported separately above.
    pub recompile_ms: f64,
    /// Evaluation run on the final binary.
    pub evaluate_ms: f64,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total_ms(&self) -> f64 {
        self.compile_ms
            + self.simulate_ms
            + self.correlate_ms
            + self.preinline_ms
            + self.serialize_ms
            + self.deserialize_ms
            + self.inference_ms
            + self.recompile_ms
            + self.evaluate_ms
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Pipeline failure.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes are not breaking changes.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Frontend rejected the workload source.
    Compile(csspgo_lang::CompileError),
    /// The simulator failed.
    Sim(csspgo_sim::SimError),
    /// A configuration combination rejected by the builder
    /// ([`PipelineConfig::validate`]).
    InvalidConfig(String),
    /// Malformed profile or snapshot text.
    Profile(crate::textprof::ParseError),
    /// Malformed binary profile payload (see [`crate::binprof`]).
    Decode(crate::binprof::DecodeError),
    /// Streaming-aggregation misuse: buffer overflow, binary mismatch,
    /// malformed snapshot structure (see [`crate::stream`]).
    Stream(String),
    /// An internal invariant on sample/profile data did not hold.
    Inconsistent(&'static str),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation error: {e}"),
            PipelineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::Profile(e) => write!(f, "profile data error: {e}"),
            PipelineError::Decode(e) => write!(f, "profile decode error: {e}"),
            PipelineError::Stream(msg) => write!(f, "stream aggregation error: {msg}"),
            PipelineError::Inconsistent(msg) => write!(f, "internal inconsistency: {msg}"),
        }
    }
}

impl Error for PipelineError {}

impl From<csspgo_lang::CompileError> for PipelineError {
    fn from(e: csspgo_lang::CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<csspgo_sim::SimError> for PipelineError {
    fn from(e: csspgo_sim::SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<crate::textprof::ParseError> for PipelineError {
    fn from(e: crate::textprof::ParseError) -> Self {
        PipelineError::Profile(e)
    }
}

impl From<crate::binprof::DecodeError> for PipelineError {
    fn from(e: crate::binprof::DecodeError) -> Self {
        PipelineError::Decode(e)
    }
}

/// Everything one PGO cycle produced.
#[derive(Clone, Debug)]
pub struct PgoOutcome {
    /// Which variant ran.
    pub variant: PgoVariant,
    /// Stats of the profiling run (empty for `O2`).
    pub profiling: RunStats,
    /// Stats of the evaluation run on the final binary.
    pub eval: RunStats,
    /// Hash of all evaluation return values (must agree across variants).
    pub eval_result_hash: u64,
    /// Sections of the final optimized binary.
    pub sections: SectionSizes,
    /// Sections of the profiling binary (Fig. 9 uses these).
    pub profiling_sections: SectionSizes,
    /// Annotation outcome.
    pub annotate_stats: AnnotateStats,
    /// Fresh-IR block counts used for the quality metric (no inline
    /// replay, same CFG for every variant).
    pub quality_counts: BlockCounts,
    /// Context-trie size before trimming (full CSSPGO).
    pub context_nodes_before_trim: usize,
    /// Context-trie size after trimming.
    pub context_nodes_after_trim: usize,
    /// Pre-inliner plan size (full CSSPGO).
    pub plan_len: usize,
    /// Counter sites placed in the profiling build (instrumented variant
    /// only; 0 elsewhere). Each site lowers to one counter instruction.
    pub counter_sites: usize,
    /// Tail-call missing-frame inference stats (full CSSPGO).
    pub infer_stats: InferStats,
    /// Wall time spent in each pipeline stage.
    pub stage_times: StageTimes,
}

/// Where a PGO cycle's PMU samples come from.
///
/// The pipeline builds the profiling binary and the machine; the source
/// decides how the workload's training traffic is driven and how samples
/// are drained. [`BatchSource`] reproduces the classic one-shot run;
/// [`EpochSource`] drains samples in epoch-sized batches, the shape the
/// streaming aggregator ([`crate::stream`]) consumes in production. Both
/// must return the *complete, ordered* sample stream of the run — the
/// simulator is deterministic, so any faithful drainage yields the same
/// stream and therefore a bit-identical profile.
pub trait ProfileSource {
    /// Short description used in diagnostics.
    fn describe(&self) -> String;

    /// Drives the workload's training traffic on `machine` and returns the
    /// full ordered sample stream of the run.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when a training call fails (e.g. step
    /// budget exceeded).
    fn collect(
        &mut self,
        machine: &mut Machine<'_>,
        workload: &Workload,
    ) -> Result<Vec<Sample>, PipelineError>;
}

/// One-shot batch profiling: run all training traffic, drain once.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchSource;

impl ProfileSource for BatchSource {
    fn describe(&self) -> String {
        "batch".into()
    }

    fn collect(
        &mut self,
        machine: &mut Machine<'_>,
        workload: &Workload,
    ) -> Result<Vec<Sample>, PipelineError> {
        for args in &workload.train_calls {
            machine.call(&workload.entry, args)?;
        }
        Ok(machine.take_samples())
    }
}

/// Streaming-style profiling: training traffic is issued in epochs of
/// `calls_per_epoch` requests, samples drained after each epoch — the
/// AlwaysOn-collection shape. The concatenated stream is identical to a
/// [`BatchSource`] run, so the downstream profile is bit-identical; the
/// per-epoch batch sizes are recorded in [`EpochSource::batch_sizes`] for
/// callers that feed a [`crate::stream::StreamAggregator`].
#[derive(Clone, Debug)]
pub struct EpochSource {
    /// Training calls per epoch (0 degenerates to one epoch).
    pub calls_per_epoch: usize,
    /// Sample count of each collected epoch, filled by `collect`.
    pub batch_sizes: Vec<usize>,
}

impl EpochSource {
    /// An epoch source draining every `calls_per_epoch` training calls.
    pub fn new(calls_per_epoch: usize) -> Self {
        EpochSource {
            calls_per_epoch,
            batch_sizes: Vec::new(),
        }
    }
}

impl ProfileSource for EpochSource {
    fn describe(&self) -> String {
        format!("epochs of {} calls", self.calls_per_epoch)
    }

    fn collect(
        &mut self,
        machine: &mut Machine<'_>,
        workload: &Workload,
    ) -> Result<Vec<Sample>, PipelineError> {
        self.batch_sizes.clear();
        let chunk = if self.calls_per_epoch == 0 {
            workload.train_calls.len().max(1)
        } else {
            self.calls_per_epoch
        };
        let mut samples = Vec::new();
        for epoch_calls in workload.train_calls.chunks(chunk) {
            for args in epoch_calls {
                machine.call(&workload.entry, args)?;
            }
            let batch = machine.take_samples();
            self.batch_sizes.push(batch.len());
            samples.extend(batch);
        }
        Ok(samples)
    }
}

/// Runs one full PGO cycle for `workload` with `variant`, profiling via the
/// classic one-shot [`BatchSource`].
///
/// # Errors
///
/// Returns [`PipelineError`] if the source fails to compile or a simulation
/// exceeds its budget.
pub fn run_pgo_cycle(
    workload: &Workload,
    variant: PgoVariant,
    config: &PipelineConfig,
) -> Result<PgoOutcome, PipelineError> {
    run_pgo_cycle_with(
        workload,
        variant,
        config,
        &mut BatchSource,
        &workload.source,
    )
}

/// Like [`run_pgo_cycle`] but the *optimized* build compiles
/// `build_source` instead of the profiled source — the paper's source-drift
/// scenario (profile collected on last week's binary, build uses today's
/// code).
///
/// # Errors
///
/// Returns [`PipelineError`] if either source fails to compile or a
/// simulation exceeds its budget.
pub fn run_pgo_cycle_drifted(
    workload: &Workload,
    variant: PgoVariant,
    config: &PipelineConfig,
    build_source: &str,
) -> Result<PgoOutcome, PipelineError> {
    run_pgo_cycle_with(workload, variant, config, &mut BatchSource, build_source)
}

/// The unified PGO-cycle entry point: one signature accepts any
/// [`ProfileSource`] (batch or streaming epochs) and any build source
/// (fresh or drifted). [`run_pgo_cycle`] and [`run_pgo_cycle_drifted`] are
/// thin wrappers over this.
///
/// # Errors
///
/// Returns [`PipelineError`] if a source fails to compile or a simulation
/// exceeds its budget.
pub fn run_pgo_cycle_with(
    workload: &Workload,
    variant: PgoVariant,
    config: &PipelineConfig,
    source: &mut dyn ProfileSource,
    build_source: &str,
) -> Result<PgoOutcome, PipelineError> {
    let mut outcome = PgoOutcome {
        variant,
        profiling: RunStats::default(),
        eval: RunStats::default(),
        eval_result_hash: 0,
        sections: SectionSizes::default(),
        profiling_sections: SectionSizes::default(),
        annotate_stats: AnnotateStats::default(),
        quality_counts: BlockCounts::new(),
        context_nodes_before_trim: 0,
        context_nodes_after_trim: 0,
        plan_len: 0,
        counter_sites: 0,
        infer_stats: InferStats::default(),
        stage_times: StageTimes::default(),
    };

    // ---------- profiling build ----------
    let stage_start = Instant::now();
    let mut counter_map = None;
    let profiling_binary = if variant == PgoVariant::O2 {
        None
    } else {
        let mut module = csspgo_lang::compile(&workload.source, &workload.name)?;
        csspgo_opt::discriminators::run(&mut module);
        if variant.uses_probes() {
            csspgo_opt::probes::run(&mut module);
        }
        if variant == PgoVariant::Instr {
            let map = csspgo_opt::instrument::run_with(&mut module, &config.instrument);
            outcome.counter_sites = map.len();
            counter_map = Some(map);
        }
        csspgo_opt::run_pipeline(&mut module, &config.opt);
        Some(lower_module(&module, &config.codegen))
    };
    outcome.stage_times.compile_ms = ms_since(stage_start);

    // ---------- profiling run ("in production") ----------
    let stage_start = Instant::now();
    let mut samples = Vec::new();
    let mut counters: Vec<u64> = Vec::new();
    if let Some(binary) = &profiling_binary {
        outcome.profiling_sections = binary.sections;
        let sim_cfg = SimConfig {
            lbr_size: config.lbr_size,
            pebs: config.pebs,
            sample_period: if variant == PgoVariant::Instr {
                0
            } else {
                config.sample_period
            },
            seed: config.seed,
            max_steps: config.max_steps,
            ..SimConfig::default()
        };
        let mut machine = Machine::new(binary, sim_cfg);
        for (name, values) in &workload.setup {
            machine.set_global(name, values);
        }
        samples = source.collect(&mut machine, workload)?;
        outcome.profiling = *machine.stats();
        counters = machine.counters().to_vec();
    }
    outcome.stage_times.simulate_ms = ms_since(stage_start);

    // ---------- profile generation ----------
    enum Generated {
        None,
        Flat(crate::profile::FlatProfile),
        Probe(crate::profile::ProbeProfile, Option<csspgo_ir::InlinePlan>),
        /// Exact per-block counts plus, under sparse placement, the
        /// Kirchhoff-recovered edge counts per function.
        Counters(
            std::collections::HashMap<(csspgo_ir::FuncId, csspgo_ir::BlockId), u64>,
            std::collections::HashMap<
                csspgo_ir::FuncId,
                Vec<(csspgo_ir::BlockId, csspgo_ir::BlockId, u64)>,
            >,
        ),
    }

    // The plan references the *fresh build module*; compile it first.
    // (Frontend time for the optimized build counts toward `recompile_ms`.)
    let stage_start = Instant::now();
    let mut build_module = csspgo_lang::compile(build_source, &workload.name)?;
    csspgo_opt::discriminators::run(&mut build_module);
    if variant.uses_probes() {
        csspgo_opt::probes::run(&mut build_module);
    }
    let build_frontend_ms = ms_since(stage_start);

    let stage_start = Instant::now();
    let mut preinline_ms = 0.0;
    let generated = match (variant, &profiling_binary) {
        (PgoVariant::O2, _) | (_, None) => Generated::None,
        (PgoVariant::AutoFdo, Some(binary)) => {
            let rc = sharded_range_counts(binary, &samples, config.ingest_shards);
            Generated::Flat(dwarf_profile(binary, &rc))
        }
        (PgoVariant::CsspgoProbeOnly, Some(binary)) => {
            let rc = sharded_range_counts(binary, &samples, config.ingest_shards);
            Generated::Probe(probe_profile(binary, &rc), None)
        }
        (PgoVariant::CsspgoFull, Some(binary)) => {
            let rc = sharded_range_counts(binary, &samples, config.ingest_shards);
            let tail_graph = TailCallGraph::build(binary, &rc);
            let unwound =
                sharded_context_profile(binary, Some(&tail_graph), &samples, config.ingest_shards);
            let mut ctx_profile = unwound.profile;
            outcome.infer_stats = unwound.infer_stats;
            let checksums = binary
                .funcs
                .iter()
                .filter_map(|f| f.probe_checksum.map(|c| (f.guid, c)))
                .collect();
            ctx_profile.set_checksums(&checksums);
            outcome.context_nodes_before_trim = ctx_profile.node_count();
            ctx_profile.trim_cold(config.trim_threshold);
            outcome.context_nodes_after_trim = ctx_profile.node_count();
            let preinline_start = Instant::now();
            let pre = run_preinliner(&mut ctx_profile, binary, &config.preinline);
            outcome.plan_len = pre.plan_paths.len();
            let plan = to_inline_plan(&pre.plan_paths, &build_module);
            preinline_ms = ms_since(preinline_start);
            let mut probe_prof = ctx_profile.to_probe_profile();
            // Context entry counts can be sparse; fall back to plain LBR
            // entry counts where missing.
            for (fidx, c) in rc.entry_counts(binary) {
                let guid = binary.funcs[fidx as usize].guid;
                if let Some(fp) = probe_prof.funcs.get_mut(&guid) {
                    fp.entry = fp.entry.max(c);
                }
            }
            Generated::Probe(probe_prof, Some(plan))
        }
        (PgoVariant::Instr, Some(_)) => {
            let map = counter_map.take().ok_or(PipelineError::Inconsistent(
                "instrumented build produced no counter map",
            ))?;
            let mut exact = std::collections::HashMap::new();
            for ((fid, bid), counter) in map.by_block {
                exact.insert((fid, bid), counters[counter as usize]);
            }
            let mut recovered_edges = std::collections::HashMap::new();
            if !map.by_edge.is_empty() {
                // Sparse measurements are solved back to full flow against
                // the profiling build's pre-instrumentation CFG (the one
                // the placement was planned on).
                let mut ref_module = csspgo_lang::compile(&workload.source, &workload.name)?;
                csspgo_opt::discriminators::run(&mut ref_module);
                let mut per_func: std::collections::HashMap<
                    csspgo_ir::FuncId,
                    std::collections::HashMap<csspgo_ir::flow::FlowEdge, u64>,
                > = std::collections::HashMap::new();
                for (fid, edge, counter) in map.by_edge {
                    per_func
                        .entry(fid)
                        .or_default()
                        .insert(edge, counters[counter as usize]);
                }
                for (fid, measured) in per_func {
                    let flow = csspgo_ir::flow::reconstruct(ref_module.func(fid), &measured)
                        .ok_or(PipelineError::Inconsistent(
                            "sparse counter placement failed to reconstruct full flow",
                        ))?;
                    for (bid, c) in &flow.block_counts {
                        exact.insert((fid, *bid), *c);
                    }
                    recovered_edges.insert(fid, flow.edge_counts);
                }
            }
            Generated::Counters(exact, recovered_edges)
        }
    };
    outcome.stage_times.correlate_ms = ms_since(stage_start) - preinline_ms;
    outcome.stage_times.preinline_ms = preinline_ms;

    // ---------- profile hand-off through the binary wire format ----------
    // Production profiles travel between collector and compiler as binprof
    // payloads; the pipeline serializes the generated profile and compiles
    // from the decoded copy, so the wire format is load-bearing — a lossy
    // encode or a decode regression fails the cycle, and both costs are
    // visible as stage times.
    let generated = match generated {
        Generated::Flat(p) => {
            let t = Instant::now();
            let bytes = crate::binprof::encode_flat(&p);
            outcome.stage_times.serialize_ms = ms_since(t);
            let t = Instant::now();
            let decoded = crate::binprof::decode_flat(&bytes)?;
            outcome.stage_times.deserialize_ms = ms_since(t);
            Generated::Flat(decoded)
        }
        Generated::Probe(p, plan) => {
            let t = Instant::now();
            let bytes = crate::binprof::encode_probe(&p);
            outcome.stage_times.serialize_ms = ms_since(t);
            let t = Instant::now();
            let decoded = crate::binprof::decode_probe(&bytes)?;
            outcome.stage_times.deserialize_ms = ms_since(t);
            Generated::Probe(decoded, plan)
        }
        other => other,
    };

    // ---------- quality snapshot (no replay, common CFG) ----------
    {
        let mut q_module = csspgo_lang::compile(build_source, &workload.name)?;
        csspgo_opt::discriminators::run(&mut q_module);
        if variant.uses_probes() {
            csspgo_opt::probes::run(&mut q_module);
        }
        let no_replay = AnnotateConfig {
            inline_budget: 0,
            ..config.annotate
        };
        match &generated {
            Generated::None => {}
            Generated::Flat(p) => {
                autofdo_annotate(&mut q_module, p, &no_replay);
            }
            Generated::Probe(p, _) => {
                csspgo_annotate(&mut q_module, p, None, &no_replay);
            }
            Generated::Counters(c, e) => {
                instr_annotate_reconstructed(&mut q_module, c, e);
            }
        }
        outcome.quality_counts = collect_block_counts(&q_module);
    }

    // ---------- optimized build ----------
    let stage_start = Instant::now();
    match &generated {
        Generated::None => {}
        Generated::Flat(p) => {
            outcome.annotate_stats = autofdo_annotate(&mut build_module, p, &config.annotate);
        }
        Generated::Probe(p, plan) => {
            outcome.annotate_stats =
                csspgo_annotate(&mut build_module, p, plan.as_ref(), &config.annotate);
        }
        Generated::Counters(c, e) => {
            outcome.annotate_stats = instr_annotate_reconstructed(&mut build_module, c, e);
        }
    }
    // Full CSSPGO honors the pre-inliner's global decisions: the bottom-up
    // inliner is restricted to trivially-small callees so it cannot undo the
    // pre-inliner's selectivity (paper §III.B: the compiler "will try to
    // honor the decision made by pre-inliner when possible").
    let mut opt_cfg = config.opt.clone();
    if variant == PgoVariant::CsspgoFull {
        opt_cfg.inline_hot_size = opt_cfg.inline_small_size;
    }
    csspgo_opt::run_pipeline(&mut build_module, &opt_cfg);
    // Link-time GC: fully-inlined functions lose their standalone bodies.
    if let Some(root) = build_module.find_function(&workload.entry) {
        csspgo_opt::strip::run(&mut build_module, &[root]);
    }
    let final_binary = lower_module(&build_module, &config.codegen);
    outcome.sections = final_binary.sections;
    let inference_ms = outcome.annotate_stats.inference.elapsed_us as f64 / 1e3;
    outcome.stage_times.inference_ms = inference_ms;
    outcome.stage_times.recompile_ms =
        (build_frontend_ms + ms_since(stage_start) - inference_ms).max(0.0);

    // ---------- evaluation run ----------
    let stage_start = Instant::now();
    let (stats, hash) = evaluate(&final_binary, workload, config)?;
    outcome.eval = stats;
    outcome.eval_result_hash = hash;
    outcome.stage_times.evaluate_ms = ms_since(stage_start);
    Ok(outcome)
}

/// Runs the evaluation traffic on `binary`, returning stats and a hash of
/// the results (for cross-variant correctness checking).
pub fn evaluate(
    binary: &Binary,
    workload: &Workload,
    config: &PipelineConfig,
) -> Result<(RunStats, u64), PipelineError> {
    let sim_cfg = SimConfig {
        lbr_size: config.lbr_size,
        pebs: config.pebs,
        sample_period: 0,
        seed: config.seed,
        max_steps: config.max_steps,
        ..SimConfig::default()
    };
    let mut machine = Machine::new(binary, sim_cfg);
    for (name, values) in &workload.setup {
        machine.set_global(name, values);
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for args in &workload.eval_calls {
        let r = machine.call(&workload.entry, args)?;
        hash ^= r as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok((*machine.stats(), hash))
}

/// Compiles and evaluates `module_source` without any PGO — a helper for
/// overhead experiments that need a custom build (e.g. probes on/off).
pub fn build_and_run(
    workload: &Workload,
    with_probes: bool,
    config: &PipelineConfig,
) -> Result<(RunStats, SectionSizes), PipelineError> {
    let mut module = csspgo_lang::compile(&workload.source, &workload.name)?;
    csspgo_opt::discriminators::run(&mut module);
    if with_probes {
        csspgo_opt::probes::run(&mut module);
    }
    csspgo_opt::run_pipeline(&mut module, &config.opt);
    if let Some(root) = module.find_function(&workload.entry) {
        csspgo_opt::strip::run(&mut module, &[root]);
    }
    let binary = lower_module(&module, &config.codegen);
    let (stats, _) = evaluate(&binary, workload, config)?;
    Ok((stats, binary.sections))
}

/// Fresh-IR compile helper used by quality experiments.
pub fn fresh_module(workload: &Workload, probes: bool) -> Result<Module, PipelineError> {
    let mut m = csspgo_lang::compile(&workload.source, &workload.name)?;
    csspgo_opt::discriminators::run(&mut m);
    if probes {
        csspgo_opt::probes::run(&mut m);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Workload {
        let src = r#"
fn weight(i) {
    if (i % 7 == 0) { return 3; }
    return 1;
}
fn score(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + weight(i) * i;
        i = i + 1;
    }
    return s;
}
"#;
        Workload::new("tiny", src, "score", vec![vec![900]; 4], vec![vec![901]; 4])
    }

    fn quick_config() -> PipelineConfig {
        PipelineConfig::builder()
            .sample_period(61)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn all_variants_compute_identical_results() {
        let w = tiny_workload();
        let cfg = quick_config();
        let mut hashes = Vec::new();
        for v in PgoVariant::ALL {
            let o = run_pgo_cycle(&w, v, &cfg).unwrap_or_else(|e| panic!("{v}: {e}"));
            hashes.push((v, o.eval_result_hash));
        }
        let first = hashes[0].1;
        for (v, h) in &hashes {
            assert_eq!(*h, first, "variant {v} changed program behaviour");
        }
    }

    #[test]
    fn sampling_variants_profile_and_annotate() {
        let w = tiny_workload();
        let cfg = quick_config();
        for v in [
            PgoVariant::AutoFdo,
            PgoVariant::CsspgoProbeOnly,
            PgoVariant::CsspgoFull,
        ] {
            let o = run_pgo_cycle(&w, v, &cfg).unwrap();
            assert!(o.profiling.samples > 0, "{v} must sample");
            assert!(o.annotate_stats.annotated > 0, "{v} must annotate");
            assert!(!o.quality_counts.is_empty(), "{v} must snapshot quality");
        }
    }

    #[test]
    fn instrumented_profiling_is_much_slower() {
        let w = tiny_workload();
        let cfg = quick_config();
        let auto = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg).unwrap();
        let instr = run_pgo_cycle(&w, PgoVariant::Instr, &cfg).unwrap();
        let ratio = instr.profiling.cycles as f64 / auto.profiling.cycles as f64;
        assert!(
            ratio > 1.2,
            "instrumented profiling should be much slower, got {ratio:.2}x"
        );
    }

    #[test]
    fn csspgo_full_produces_contexts_and_plan() {
        let w = tiny_workload();
        let cfg = quick_config();
        let o = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).unwrap();
        assert!(o.context_nodes_before_trim > 0);
        assert!(o.context_nodes_after_trim <= o.context_nodes_before_trim);
    }

    #[test]
    fn probe_binary_carries_metadata_section() {
        let w = tiny_workload();
        let cfg = quick_config();
        let o = run_pgo_cycle(&w, PgoVariant::CsspgoProbeOnly, &cfg).unwrap();
        assert!(o.profiling_sections.pseudo_probe > 0);
        let a = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg).unwrap();
        assert_eq!(a.profiling_sections.pseudo_probe, 0);
    }

    #[test]
    fn pgo_beats_o2_on_layout_sensitive_workload() {
        // A rare-but-bulky error path: without profile the cold arm sits on
        // the fall-through path and pollutes the i-cache; with profile it is
        // laid out away (and split out), the hot arm falls through.
        let src = r#"
global stats[8];
fn classify(x) {
    if (x % 97 == 0) {
        stats[0] = stats[0] + x;
        stats[1] = stats[1] + x * 3;
        stats[2] = stats[2] + x * 5;
        stats[3] = stats[3] + x * 7;
        stats[4] = stats[4] + x * 11;
        stats[5] = stats[5] + x * 13;
        stats[6] = stats[6] + x * 17;
        stats[7] = stats[7] + x * 19;
        return 0 - x;
    }
    return x + 1;
}
fn score(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + classify(i);
        i = i + 1;
    }
    return s;
}
"#;
        let w = Workload::new(
            "layouty",
            src,
            "score",
            vec![vec![1500]; 3],
            vec![vec![1501]; 3],
        );
        let cfg = quick_config();
        let o2 = run_pgo_cycle(&w, PgoVariant::O2, &cfg).unwrap();
        let instr = run_pgo_cycle(&w, PgoVariant::Instr, &cfg).unwrap();
        assert_eq!(instr.eval_result_hash, o2.eval_result_hash);
        assert!(
            instr.eval.cycles < o2.eval.cycles,
            "instr PGO {} should beat O2 {}",
            instr.eval.cycles,
            o2.eval.cycles
        );
    }

    #[test]
    fn builder_accepts_valid_and_rejects_invalid_combos() {
        let cfg = PipelineConfig::builder()
            .sample_period(97)
            .ingest_shards(4)
            .trim_threshold(8)
            .build()
            .expect("valid combo");
        assert_eq!(cfg.sample_period, 97);
        assert_eq!(cfg.ingest_shards, 4);

        for bad in [
            PipelineConfig::builder().sample_period(0).build(),
            PipelineConfig::builder().lbr_size(1).build(),
            PipelineConfig::builder().max_steps(0).build(),
            PipelineConfig::builder()
                .ingest_shards(MAX_INGEST_SHARDS + 1)
                .build(),
            PipelineConfig::builder()
                .stream(StreamConfig {
                    drift_threshold: 1.5,
                    ..StreamConfig::default()
                })
                .build(),
            PipelineConfig::builder()
                .stream(StreamConfig {
                    max_pending_samples: 0,
                    ..StreamConfig::default()
                })
                .build(),
        ] {
            let err = bad.expect_err("combo must be rejected");
            assert!(
                matches!(err, PipelineError::InvalidConfig(_)),
                "wrong error: {err}"
            );
        }

        // `Default` stays valid by construction.
        PipelineConfig::default().validate().expect("default valid");
    }

    #[test]
    fn builder_inference_shorthand_and_stage_carveout() {
        use crate::inference::InferenceMode;
        let cfg = PipelineConfig::builder()
            .sample_period(61)
            .inference(InferenceMode::Heuristic)
            .build()
            .expect("valid combo");
        assert_eq!(cfg.annotate.inference, InferenceMode::Heuristic);
        assert_eq!(
            PipelineConfig::default().annotate.inference,
            InferenceMode::Mcf,
            "mcf is the default, per the paper's always-on Profi"
        );

        let w = tiny_workload();
        let o = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &quick_config()).unwrap();
        assert!(o.annotate_stats.inference.functions > 0);
        assert!(o.stage_times.inference_ms >= 0.0);
        assert!(
            o.stage_times.total_ms() >= o.stage_times.inference_ms,
            "inference is part of the total"
        );
    }

    #[test]
    fn epoch_source_matches_batch_source_bit_for_bit() {
        let w = tiny_workload();
        let cfg = quick_config();
        for v in [PgoVariant::AutoFdo, PgoVariant::CsspgoFull] {
            let batch = run_pgo_cycle(&w, v, &cfg).unwrap();
            let mut epochs = EpochSource::new(1);
            let streamed = run_pgo_cycle_with(&w, v, &cfg, &mut epochs, &w.source).unwrap();
            assert!(epochs.batch_sizes.len() > 1, "traffic split into epochs");
            assert_eq!(batch.eval_result_hash, streamed.eval_result_hash);
            assert_eq!(batch.eval.cycles, streamed.eval.cycles);
            assert_eq!(batch.sections.text, streamed.sections.text);
            assert_eq!(batch.profiling.samples, streamed.profiling.samples);
            assert_eq!(batch.plan_len, streamed.plan_len);
        }
    }
}
