//! Sharded sample ingestion: the profile-generation analogue of
//! distributed profiling hosts, run across local threads.
//!
//! The sample stream of a profiling run is split into contiguous chunks;
//! each shard builds a partial [`RangeCounts`] / [`ContextProfile`]
//! independently, and partials are combined through the same count-additive
//! merge machinery that already services cross-host profile merging
//! ([`crate::merge`]). Because every per-sample contribution is an
//! order-independent `+=` into keyed maps — and the unwinder carries no
//! cross-sample state — the merged result is **identical** to the
//! sequential path for any shard count (proven by tests here and property
//! tests in `tests/`).

use crate::context::ContextProfile;
use crate::merge::merge_context;
use crate::ranges::RangeCounts;
use crate::tailcall::{InferStats, TailCallGraph};
use crate::unwind::Unwinder;
use csspgo_codegen::Binary;
use csspgo_sim::Sample;
use rayon::prelude::*;

/// Resolves a shard-count request: `0` means one shard per available
/// thread (`RAYON_NUM_THREADS` honored).
pub fn resolve_shards(requested: usize, n_samples: usize) -> usize {
    let shards = if requested == 0 {
        rayon::current_num_threads()
    } else {
        requested
    };
    shards.clamp(1, n_samples.max(1))
}

/// Splits `samples` into at most `shards` contiguous chunks.
fn chunked(samples: &[Sample], shards: usize) -> Vec<&[Sample]> {
    if samples.is_empty() {
        return Vec::new();
    }
    let size = samples.len().div_ceil(shards);
    samples.chunks(size).collect()
}

/// Builds [`RangeCounts`] from `samples`, `shards`-way parallel
/// (`0` = auto). Identical to a sequential
/// [`RangeCounts::add_samples`] over the full stream.
pub fn sharded_range_counts(binary: &Binary, samples: &[Sample], shards: usize) -> RangeCounts {
    let shards = resolve_shards(shards, samples.len());
    if shards <= 1 {
        let mut rc = RangeCounts::default();
        rc.add_samples(binary, samples);
        return rc;
    }
    let partials: Vec<RangeCounts> = chunked(samples, shards)
        .into_par_iter()
        .map(|chunk| {
            let mut rc = RangeCounts::default();
            rc.add_samples(binary, chunk);
            rc
        })
        .collect();
    let mut merged = RangeCounts::default();
    for p in &partials {
        merged.merge(p);
    }
    merged
}

/// Context-profile construction result, including the unwinder's
/// diagnostic counters (summed across shards).
pub struct UnwindOutput {
    pub profile: ContextProfile,
    pub infer_stats: InferStats,
    pub broken_stacks: u64,
}

/// Unwinds `samples` into a [`ContextProfile`], `shards`-way parallel
/// (`0` = auto). Each shard runs the batched fast path
/// ([`Unwinder::unwind_batched`]: sample dedup + hash-consed trie), itself
/// bit-identical to sequential [`Unwinder::unwind_into`]; the unwinder
/// processes each sample independently, so chunking plus [`merge_context`]
/// reproduces the sequential trie exactly.
pub fn sharded_context_profile(
    binary: &Binary,
    tail_graph: Option<&TailCallGraph>,
    samples: &[Sample],
    shards: usize,
) -> UnwindOutput {
    let shards = resolve_shards(shards, samples.len());
    if shards <= 1 {
        let mut uw = Unwinder::new(binary, tail_graph);
        let profile = uw.unwind_batched(samples);
        return UnwindOutput {
            profile,
            infer_stats: uw.infer_stats,
            broken_stacks: uw.broken_stacks,
        };
    }
    let partials: Vec<(ContextProfile, InferStats, u64)> = chunked(samples, shards)
        .into_par_iter()
        .map(|chunk| {
            let mut uw = Unwinder::new(binary, tail_graph);
            let profile = uw.unwind_batched(chunk);
            (profile, uw.infer_stats, uw.broken_stacks)
        })
        .collect();
    let mut out = UnwindOutput {
        profile: ContextProfile::new(),
        infer_stats: InferStats::default(),
        broken_stacks: 0,
    };
    for (profile, stats, broken) in &partials {
        merge_context(&mut out.profile, profile);
        out.infer_stats.recovered += stats.recovered;
        out.infer_stats.failed += stats.failed;
        out.broken_stacks += broken;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    const SRC: &str = r#"
fn helper(x) {
    if (x % 3 == 0) { return x * 2; }
    return x + 1;
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    return s;
}
"#;

    fn profiled() -> (Binary, Vec<Sample>) {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        let b = lower_module(&m, &CodegenConfig::default());
        let mut machine = Machine::new(
            &b,
            SimConfig {
                sample_period: 23,
                ..SimConfig::default()
            },
        );
        machine.call("main", &[6000]).unwrap();
        let samples = machine.take_samples();
        assert!(samples.len() > 50, "need a meaningful stream to shard");
        (b, samples)
    }

    #[test]
    fn sharded_range_counts_equal_sequential_for_any_shard_count() {
        let (b, samples) = profiled();
        let mut seq = RangeCounts::default();
        seq.add_samples(&b, &samples);
        for shards in [1, 2, 3, 7, 16, samples.len()] {
            let par = sharded_range_counts(&b, &samples, shards);
            assert_eq!(par, seq, "{shards} shards diverged");
        }
    }

    #[test]
    fn sharded_context_profile_equals_sequential() {
        let (b, samples) = profiled();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let graph = TailCallGraph::build(&b, &rc);

        let mut seq = ContextProfile::new();
        let mut uw = Unwinder::new(&b, Some(&graph));
        uw.unwind_into(&samples, &mut seq);

        for shards in [1, 2, 5, 13] {
            let out = sharded_context_profile(&b, Some(&graph), &samples, shards);
            assert_eq!(out.profile, seq, "{shards} shards diverged");
            assert_eq!(out.infer_stats.recovered, uw.infer_stats.recovered);
            assert_eq!(out.infer_stats.failed, uw.infer_stats.failed);
            assert_eq!(out.broken_stacks, uw.broken_stacks);
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let (b, _) = profiled();
        let rc = sharded_range_counts(&b, &[], 0);
        assert!(rc.ranges.is_empty() && rc.branches.is_empty());
        let out = sharded_context_profile(&b, None, &[], 4);
        assert_eq!(out.profile.total(), 0);
    }
}
