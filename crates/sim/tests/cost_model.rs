//! Cost-model behaviour tests: the simulator must reward exactly the levers
//! the paper's optimizations pull.

use csspgo_codegen::{lower_module, CodegenConfig};
use csspgo_sim::{Machine, SimConfig};

fn build(src: &str) -> csspgo_codegen::Binary {
    let m = csspgo_lang::compile(src, "t").unwrap();
    lower_module(&m, &CodegenConfig::default())
}

#[test]
fn call_overhead_scales_with_call_count() {
    let src = r#"
fn leaf(x) { return x + 1; }
fn with_calls(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = leaf(s); i = i + 1; }
    return s;
}
fn without_calls(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + 1; i = i + 1; }
    return s;
}
"#;
    let b = build(src);
    let mut m1 = Machine::new(&b, SimConfig::default());
    m1.call("with_calls", &[1000]).unwrap();
    let c1 = m1.stats().cycles;
    let mut m2 = Machine::new(&b, SimConfig::default());
    m2.call("without_calls", &[1000]).unwrap();
    let c2 = m2.stats().cycles;
    assert!(
        c1 > c2 + 1000 * 5,
        "1000 call/ret pairs must cost >5 cycles each: {c1} vs {c2}"
    );
}

#[test]
fn predictable_branches_beat_random_ones() {
    let src = r#"
global noise[1024];
fn steady(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        if (i >= 0) { s = s + 1; } else { s = s - 1; }
        i = i + 1;
    }
    return s;
}
fn noisy(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        if (noise[i % 1024] == 1) { s = s + 1; } else { s = s - 1; }
        i = i + 1;
    }
    return s;
}
"#;
    let m = csspgo_lang::compile(src, "t").unwrap();
    // NB: no optimization — keep both branches as real branches.
    let b = lower_module(&m, &CodegenConfig::default());
    // Pseudo-random 0/1 noise.
    let noise: Vec<i64> = (0..1024).map(|i: i64| (i * 2654435761) >> 13 & 1).collect();
    let mut m1 = Machine::new(&b, SimConfig::default());
    m1.set_global("noise", &noise);
    m1.call("steady", &[4000]).unwrap();
    let steady_mis = m1.stats().mispredicts;
    let mut m2 = Machine::new(&b, SimConfig::default());
    m2.set_global("noise", &noise);
    m2.call("noisy", &[4000]).unwrap();
    let noisy_mis = m2.stats().mispredicts;
    assert!(
        noisy_mis > steady_mis * 10,
        "random branch must mispredict: {noisy_mis} vs {steady_mis}"
    );
}

#[test]
fn icache_punishes_scattered_execution() {
    // Two functions ping-ponging across a large gap (one is placed in the
    // cold section) should miss more than a tight loop.
    let src = r#"
fn a(x) { return x * 3 + 1; }
fn b(x) { return x * 5 + 2; }
fn pingpong(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = a(s) + b(s); i = i + 1; }
    return s;
}
"#;
    let b = build(src);
    let mut m = Machine::new(&b, SimConfig::default());
    m.call("pingpong", &[2000]).unwrap();
    // The whole program is tiny: after warm-up everything fits; misses must
    // be bounded by the number of distinct lines, not the iteration count.
    assert!(
        m.stats().icache_misses < 64,
        "tiny program must fit in the i-cache: {}",
        m.stats().icache_misses
    );
}

#[test]
fn jump_table_dispatch_is_predicted_by_last_target() {
    let src = r#"
fn dispatch(op) {
    switch (op) {
        case 0 { return 10; }
        case 1 { return 20; }
        case 2 { return 30; }
        default { return 0; }
    }
}
fn steady(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + dispatch(1); i = i + 1; }
    return s;
}
fn rotating(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + dispatch(i % 3); i = i + 1; }
    return s;
}
"#;
    let b = build(src);
    let mut m1 = Machine::new(&b, SimConfig::default());
    m1.call("steady", &[3000]).unwrap();
    let mut m2 = Machine::new(&b, SimConfig::default());
    m2.call("rotating", &[3000]).unwrap();
    assert!(
        m2.stats().mispredicts > m1.stats().mispredicts + 1000,
        "rotating dispatch targets must mispredict: {} vs {}",
        m2.stats().mispredicts,
        m1.stats().mispredicts
    );
}

#[test]
fn globals_are_readable_after_runs() {
    let src = r#"
global out[4];
fn write_it(v) { out[2] = v * 2; return v; }
"#;
    let b = build(src);
    let mut m = Machine::new(&b, SimConfig::default());
    m.call("write_it", &[21]).unwrap();
    assert_eq!(m.global("out").unwrap()[2], 42);
    assert!(m.global("nonexistent").is_none());
}

#[test]
fn lbr_capacity_32_is_respected() {
    let src = r#"
fn f(n) {
    let i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
"#;
    let b = build(src);
    let cfg = SimConfig {
        lbr_size: 32,
        sample_period: 50,
        ..SimConfig::default()
    };
    let mut m = Machine::new(&b, cfg);
    m.call("f", &[5000]).unwrap();
    let samples = m.take_samples();
    assert!(!samples.is_empty());
    assert!(samples.iter().all(|s| s.lbr.len() <= 32));
    assert!(
        samples.iter().any(|s| s.lbr.len() > 16),
        "deep LBR must actually fill past 16"
    );
}

#[test]
fn sample_pc_points_into_the_binary() {
    let src = "fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }";
    let b = build(src);
    let cfg = SimConfig {
        sample_period: 31,
        ..SimConfig::default()
    };
    let mut m = Machine::new(&b, cfg);
    m.call("f", &[4000]).unwrap();
    for s in m.take_samples() {
        assert!(b.index_of_addr(s.pc).is_some(), "pc {:#x} unmapped", s.pc);
    }
}
