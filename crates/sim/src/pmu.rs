//! The performance-monitoring unit: LBR ring, branch predictor, i-cache,
//! and the sampling machinery.

use crate::rng::XorShift64;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One PMU sample: a synchronized LBR + call-stack snapshot (paper Fig. 5).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Cycle at which the sample fired.
    pub cycle: u64,
    /// Precise instruction address at the sample point.
    pub pc: u64,
    /// The LBR: (source, target) addresses of the most recent *taken*
    /// branches, oldest first, newest last.
    pub lbr: Vec<(u64, u64)>,
    /// The sampled call stack as return addresses, leaf first:
    /// `stack[0]` is the sampled PC, `stack[1]` the leaf frame's return
    /// address, and so on up to the root.
    pub stack: Vec<u64>,
}

/// Last Branch Record ring buffer.
#[derive(Clone, Debug)]
pub struct Lbr {
    ring: VecDeque<(u64, u64)>,
    capacity: usize,
}

impl Lbr {
    /// Creates an LBR with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Lbr {
            ring: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records a taken branch.
    pub fn record(&mut self, from: u64, to: u64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back((from, to));
    }

    /// Snapshot, oldest first.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.ring.iter().copied().collect()
    }
}

/// A 2-bit saturating-counter branch predictor plus a last-target BTB for
/// indirect jumps.
#[derive(Clone, Debug)]
pub struct Predictor {
    counters: Vec<u8>,
    btb: Vec<u64>,
}

const PRED_ENTRIES: usize = 4096;

impl Predictor {
    /// A fresh predictor (weakly not-taken).
    pub fn new() -> Self {
        Predictor {
            counters: vec![1; PRED_ENTRIES],
            btb: vec![0; PRED_ENTRIES],
        }
    }

    fn slot(addr: u64) -> usize {
        ((addr >> 1) as usize) % PRED_ENTRIES
    }

    /// Predicts and updates for a conditional branch at `addr`; returns
    /// whether the prediction was wrong.
    pub fn conditional(&mut self, addr: u64, taken: bool) -> bool {
        let c = &mut self.counters[Self::slot(addr)];
        let predicted_taken = *c >= 2;
        if taken && *c < 3 {
            *c += 1;
        }
        if !taken && *c > 0 {
            *c -= 1;
        }
        predicted_taken != taken
    }

    /// Predicts and updates for an indirect jump at `addr` going to
    /// `target`; returns whether the prediction was wrong.
    pub fn indirect(&mut self, addr: u64, target: u64) -> bool {
        let slot = &mut self.btb[Self::slot(addr)];
        let miss = *slot != target;
        *slot = target;
        miss
    }
}

impl Default for Predictor {
    fn default() -> Self {
        Predictor::new()
    }
}

/// A direct-mapped instruction cache (line-granular).
#[derive(Clone, Debug)]
pub struct ICache {
    tags: Vec<u64>,
    line_bytes: u64,
    lines: usize,
}

impl ICache {
    /// 16 KiB, 64-byte lines, direct-mapped.
    pub fn new() -> Self {
        ICache {
            tags: vec![u64::MAX; 256],
            line_bytes: 64,
            lines: 256,
        }
    }

    /// Fetches the line containing `addr`; returns whether it missed.
    pub fn fetch(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let idx = (line as usize) % self.lines;
        let miss = self.tags[idx] != line;
        self.tags[idx] = line;
        miss
    }
}

impl Default for ICache {
    fn default() -> Self {
        ICache::new()
    }
}

/// Decides when the next sample fires: a fixed period with deterministic
/// jitter, like a real cycles event with randomization.
#[derive(Clone, Debug)]
pub struct SampleTimer {
    period: u64,
    next_at: u64,
    rng: XorShift64,
}

impl SampleTimer {
    /// A timer firing roughly every `period` cycles (never when 0).
    pub fn new(period: u64, seed: u64) -> Self {
        let mut rng = XorShift64::new(seed);
        let jitter = if period > 0 {
            rng.below(period / 8 + 1)
        } else {
            0
        };
        SampleTimer {
            period,
            next_at: period + jitter,
            rng,
        }
    }

    /// Whether a sample fires at `cycle`; advances the timer when it does.
    pub fn should_fire(&mut self, cycle: u64) -> bool {
        if self.period == 0 || cycle < self.next_at {
            return false;
        }
        let jitter = self.rng.below(self.period / 8 + 1);
        self.next_at = cycle + self.period + jitter;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbr_keeps_newest_entries() {
        let mut lbr = Lbr::new(3);
        for i in 0..5u64 {
            lbr.record(i, i + 100);
        }
        let snap = lbr.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0], (2, 102));
        assert_eq!(snap[2], (4, 104));
    }

    #[test]
    fn predictor_learns_a_steady_branch() {
        let mut p = Predictor::new();
        // Warm up.
        for _ in 0..4 {
            p.conditional(0x40, true);
        }
        assert!(!p.conditional(0x40, true), "steady branch predicted");
        assert!(p.conditional(0x40, false), "surprise flips mispredict");
    }

    #[test]
    fn btb_mispredicts_on_target_change() {
        let mut p = Predictor::new();
        p.indirect(0x80, 0x1000);
        assert!(!p.indirect(0x80, 0x1000));
        assert!(p.indirect(0x80, 0x2000));
    }

    #[test]
    fn icache_hits_within_a_line_and_misses_far() {
        let mut c = ICache::new();
        assert!(c.fetch(0));
        assert!(!c.fetch(32)); // same line
        assert!(c.fetch(64)); // next line
                              // Aliasing at 16 KiB (256 lines * 64B): evicts.
        assert!(c.fetch(64 + 256 * 64));
        assert!(c.fetch(64));
    }

    #[test]
    fn timer_fires_roughly_at_period() {
        let mut t = SampleTimer::new(1000, 9);
        let mut fired = 0;
        for cycle in 0..100_000u64 {
            if t.should_fire(cycle) {
                fired += 1;
            }
        }
        assert!((80..=100).contains(&fired), "fired {fired} times");
    }

    #[test]
    fn zero_period_never_fires() {
        let mut t = SampleTimer::new(0, 9);
        assert!(!t.should_fire(10_000));
    }
}
