//! A simulated CPU with a performance-monitoring unit.
//!
//! The simulator interprets a [`csspgo_codegen::Binary`] with a cycle cost
//! model (branch predictor, i-cache, call overhead, memory ops) and exposes
//! the profiling hardware the paper relies on:
//!
//! * a **Last Branch Record** ring of the most recent *taken* branches
//!   (including calls and returns) with source/target addresses;
//! * **synchronized stack sampling**: on each PMU sample the frame-pointer
//!   chain is walked at the same instant the LBR is snapshotted (paper
//!   §III.B, Fig. 5);
//! * **PEBS on/off**: without PEBS the stack sample can lag the LBR by one
//!   frame (sampling skid), which is the paper's motivation for
//!   `:upp`-precision events;
//! * **tail-call frames**: tail calls replace their caller's frame, so the
//!   sampled stack genuinely misses frames — food for the paper's
//!   missing-frame inferrer;
//! * **instrumentation counters** for ground-truth block counts.

pub mod machine;
pub mod pmu;
pub mod rng;

pub use machine::{Machine, RunStats, SimError};
pub use pmu::Sample;

use serde::{Deserialize, Serialize};

/// Simulator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// LBR capacity (the paper: "16 or 32 pairs").
    pub lbr_size: usize,
    /// Precise event-based sampling: when false, stack samples may lag the
    /// LBR by one frame (skid).
    pub pebs: bool,
    /// Cycles between PMU samples (0 disables sampling).
    pub sample_period: u64,
    /// RNG seed (sampling jitter, skid).
    pub seed: u64,
    /// Hard step limit; exceeded means a runaway program.
    pub max_steps: u64,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            lbr_size: 16,
            pebs: true,
            sample_period: 0,
            seed: 0x5eed,
            max_steps: 2_000_000_000,
            cost: CostModel::default(),
        }
    }
}

/// Cycle costs. Values are a plausible abstraction of a Skylake-class core;
/// only their relative magnitudes matter.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Base cost of every instruction.
    pub base: u64,
    /// Extra cost of a data-memory access (load/store/spill).
    pub mem_op: u64,
    /// Extra cost of an instrumentation counter increment (load+add+store).
    pub counter: u64,
    /// Front-end bubble for any taken branch.
    pub taken_branch: u64,
    /// Branch misprediction penalty.
    pub mispredict: u64,
    /// Call overhead (frame setup), plus one cycle per argument.
    pub call: u64,
    /// Return overhead.
    pub ret: u64,
    /// I-cache miss penalty.
    pub icache_miss: u64,
    /// Extra cost of a select (cmov dependency).
    pub select: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base: 1,
            mem_op: 2,
            counter: 4,
            taken_branch: 1,
            mispredict: 14,
            call: 3,
            ret: 2,
            icache_miss: 24,
            select: 1,
        }
    }
}
