//! A tiny deterministic xorshift64* generator.
//!
//! Used for sampling jitter and skid modelling; seeded, so every simulation
//! is exactly reproducible.

/// Deterministic 64-bit generator.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_works() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(42);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = XorShift64::new(1);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
