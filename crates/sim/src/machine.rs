//! The machine: interprets a [`Binary`] with the cost model and PMU.

use crate::pmu::{ICache, Lbr, Predictor, Sample, SampleTimer};
use crate::rng::XorShift64;
use crate::SimConfig;
use csspgo_codegen::minst::MInstKind;
use csspgo_codegen::Binary;
use csspgo_ir::inst::Operand;
use csspgo_ir::VReg;
use std::error::Error;
use std::fmt;

/// Simulation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The configured step limit was exceeded.
    StepLimit(u64),
    /// The named entry function does not exist.
    NoSuchFunction(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StepLimit(n) => write!(f, "step limit of {n} instructions exceeded"),
            SimError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
        }
    }
}

impl Error for SimError {}

/// Aggregate run statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Calls executed (including tail calls).
    pub calls: u64,
    /// PMU samples taken.
    pub samples: u64,
}

struct Frame {
    func: u32,
    regs: Vec<i64>,
    /// Flat index to resume at in the caller (usize::MAX for the root).
    ret_pc: usize,
    /// Caller register receiving the return value.
    ret_dst: Option<VReg>,
}

/// An executing machine. Globals persist across [`Machine::call`]s, so a
/// workload can stage data and issue many requests against one image.
pub struct Machine<'b> {
    binary: &'b Binary,
    config: SimConfig,
    globals: Vec<Vec<i64>>,
    counters: Vec<u64>,
    stats: RunStats,
    samples: Vec<Sample>,
    lbr: Lbr,
    predictor: Predictor,
    icache: ICache,
    timer: SampleTimer,
    skid_rng: XorShift64,
}

impl<'b> Machine<'b> {
    /// Creates a machine over `binary`.
    pub fn new(binary: &'b Binary, config: SimConfig) -> Self {
        let globals = binary
            .globals
            .iter()
            .map(|g| {
                let mut v = g.init.clone();
                v.resize(g.size, 0);
                v
            })
            .collect();
        Machine {
            binary,
            globals,
            counters: vec![0; binary.num_counters as usize],
            stats: RunStats::default(),
            samples: Vec::new(),
            lbr: Lbr::new(config.lbr_size),
            predictor: Predictor::new(),
            icache: ICache::new(),
            timer: SampleTimer::new(config.sample_period, config.seed),
            skid_rng: XorShift64::new(config.seed ^ 0xabcd_ef01),
            config,
        }
    }

    /// Overwrites a global array's contents (workload staging).
    ///
    /// # Panics
    ///
    /// Panics if the global does not exist.
    pub fn set_global(&mut self, name: &str, values: &[i64]) {
        let idx = self
            .binary
            .globals
            .iter()
            .position(|g| g.name == name)
            .unwrap_or_else(|| panic!("no global named `{name}`"));
        let g = &mut self.globals[idx];
        for (i, v) in values.iter().enumerate().take(g.len()) {
            g[i] = *v;
        }
    }

    /// Reads a global array.
    pub fn global(&self, name: &str) -> Option<&[i64]> {
        let idx = self.binary.globals.iter().position(|g| g.name == name)?;
        Some(&self.globals[idx])
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Instrumentation counter values.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Takes the collected PMU samples.
    pub fn take_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.samples)
    }

    /// Samples collected but not yet taken.
    pub fn pending_samples(&self) -> usize {
        self.samples.len()
    }

    /// Drains up to `max` of the oldest pending samples, leaving the rest
    /// for a later batch. Draining in batches concatenates to exactly the
    /// stream [`Machine::take_samples`] would have returned in one shot —
    /// the hook streaming ingestion (`csspgo-core`'s `stream` module) uses
    /// to feed an aggregator while the workload keeps running.
    pub fn take_sample_batch(&mut self, max: usize) -> Vec<Sample> {
        let n = max.min(self.samples.len());
        let rest = self.samples.split_off(n);
        std::mem::replace(&mut self.samples, rest)
    }

    /// Calls `name(args)` and runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchFunction`] for an unknown entry, or
    /// [`SimError::StepLimit`] if execution exceeds the configured limit.
    pub fn call(&mut self, name: &str, args: &[i64]) -> Result<i64, SimError> {
        let func = self
            .binary
            .func_by_name(name)
            .ok_or_else(|| SimError::NoSuchFunction(name.to_string()))?;
        let mut regs = vec![0i64; func.num_vregs.max(args.len())];
        regs[..args.len()].copy_from_slice(args);
        let mut frames = vec![Frame {
            func: self.binary.func_of[func.entry],
            regs,
            ret_pc: usize::MAX,
            ret_dst: None,
        }];
        let mut pc = func.entry;
        let cost = self.config.cost;
        let mut steps_left = self
            .config
            .max_steps
            .saturating_sub(self.stats.instructions);

        macro_rules! frame {
            () => {
                frames.last_mut().expect("non-empty frame stack")
            };
        }

        loop {
            if steps_left == 0 {
                return Err(SimError::StepLimit(self.config.max_steps));
            }
            steps_left -= 1;

            let inst = &self.binary.insts[pc];
            let addr = self.binary.addrs[pc];
            self.stats.instructions += 1;
            let mut cycles = cost.base;

            // Instruction fetch.
            if self.icache.fetch(addr) {
                cycles += cost.icache_miss;
                self.stats.icache_misses += 1;
            }

            let regs = &mut frame!().regs;
            let val = |o: Operand, regs: &Vec<i64>| -> i64 {
                match o {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(v) => v,
                }
            };

            let mut next_pc = pc + 1;
            let mut branch_to: Option<(usize, bool)> = None; // (target, record_in_lbr)

            match &inst.kind {
                MInstKind::Copy { dst, src } => {
                    regs[dst.index()] = val(*src, regs);
                }
                MInstKind::Bin { op, dst, lhs, rhs } => {
                    regs[dst.index()] = op.eval(val(*lhs, regs), val(*rhs, regs));
                }
                MInstKind::Cmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    regs[dst.index()] = pred.eval(val(*lhs, regs), val(*rhs, regs));
                }
                MInstKind::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => {
                    regs[dst.index()] = if val(*cond, regs) != 0 {
                        val(*on_true, regs)
                    } else {
                        val(*on_false, regs)
                    };
                    cycles += cost.select;
                }
                MInstKind::Load { dst, global, index } => {
                    let i = val(*index, regs);
                    let g = &self.globals[global.index()];
                    regs[dst.index()] = if i >= 0 && (i as usize) < g.len() {
                        g[i as usize]
                    } else {
                        0
                    };
                    cycles += cost.mem_op;
                }
                MInstKind::Store {
                    global,
                    index,
                    value,
                } => {
                    let i = val(*index, regs);
                    let v = val(*value, regs);
                    let g = &mut self.globals[global.index()];
                    if i >= 0 && (i as usize) < g.len() {
                        g[i as usize] = v;
                    }
                    cycles += cost.mem_op;
                }
                MInstKind::CounterIncr { counter } => {
                    self.counters[*counter as usize] += 1;
                    cycles += cost.counter;
                }
                MInstKind::SpillLoad { .. } | MInstKind::SpillStore { .. } => {
                    cycles += cost.mem_op;
                }
                MInstKind::Call { dst, callee, args } => {
                    let target = &self.binary.funcs[*callee as usize];
                    let mut new_regs = vec![0i64; target.num_vregs.max(args.len())];
                    for (i, a) in args.iter().enumerate() {
                        new_regs[i] = val(*a, regs);
                    }
                    cycles += cost.call + args.len() as u64;
                    self.stats.calls += 1;
                    frames.push(Frame {
                        func: *callee,
                        regs: new_regs,
                        ret_pc: pc + 1,
                        ret_dst: *dst,
                    });
                    branch_to = Some((target.entry, true));
                }
                MInstKind::TailCall { callee, args } => {
                    let target = &self.binary.funcs[*callee as usize];
                    let mut new_regs = vec![0i64; target.num_vregs.max(args.len())];
                    for (i, a) in args.iter().enumerate() {
                        new_regs[i] = val(*a, regs);
                    }
                    cycles += cost.call;
                    self.stats.calls += 1;
                    // The frame is *replaced*: the caller disappears from
                    // the frame-pointer chain (TCE, paper §III.B).
                    let f = frame!();
                    f.func = *callee;
                    f.regs = new_regs;
                    branch_to = Some((target.entry, true));
                }
                MInstKind::Ret { value } => {
                    let v = value.map(|o| val(o, regs)).unwrap_or(0);
                    cycles += cost.ret;
                    let finished = frames.pop().expect("ret with a frame");
                    if frames.is_empty() {
                        self.stats.cycles += cycles;
                        return Ok(v);
                    }
                    if let Some(d) = finished.ret_dst {
                        frame!().regs[d.index()] = v;
                    }
                    branch_to = Some((finished.ret_pc, true));
                }
                MInstKind::Jmp { target } => {
                    branch_to = Some((*target, true));
                }
                MInstKind::JmpIf {
                    cond,
                    negate,
                    target,
                } => {
                    let taken = (val(*cond, regs) != 0) ^ negate;
                    if self.predictor.conditional(addr, taken) {
                        cycles += cost.mispredict;
                        self.stats.mispredicts += 1;
                    }
                    if taken {
                        branch_to = Some((*target, true));
                    }
                }
                MInstKind::JmpTable {
                    value,
                    targets,
                    default,
                } => {
                    let v = val(*value, regs);
                    let t = targets
                        .iter()
                        .find(|&&(k, _)| k == v)
                        .map(|&(_, t)| t)
                        .unwrap_or(*default);
                    let target_addr = self.binary.addrs[t];
                    if self.predictor.indirect(addr, target_addr) {
                        cycles += cost.mispredict;
                        self.stats.mispredicts += 1;
                    }
                    cycles += 1; // table load
                    branch_to = Some((t, true));
                }
            }

            if let Some((t, record)) = branch_to {
                next_pc = t;
                if record {
                    let from = addr;
                    let to = self.binary.addrs[t];
                    self.lbr.record(from, to);
                    self.stats.taken_branches += 1;
                    cycles += cost.taken_branch;
                }
            }

            self.stats.cycles += cycles;

            // PMU sampling: synchronized LBR + stack snapshot.
            if self.timer.should_fire(self.stats.cycles) {
                self.stats.samples += 1;
                let sample_pc = self.binary.addrs[next_pc.min(self.binary.len() - 1)];
                let mut stack: Vec<u64> = Vec::with_capacity(frames.len());
                stack.push(sample_pc);
                for f in frames.iter().rev() {
                    if f.ret_pc != usize::MAX {
                        stack.push(self.binary.addrs[f.ret_pc]);
                    }
                }
                // Sampling skid: without PEBS the stack can lag the LBR by
                // one frame (paper §III.B, "Synchronizing LBR and stack
                // sample").
                if !self.config.pebs && stack.len() > 1 && self.skid_rng.chance(1, 3) {
                    stack.remove(0);
                }
                self.samples.push(Sample {
                    cycle: self.stats.cycles,
                    pc: sample_pc,
                    lbr: self.lbr.snapshot(),
                    stack,
                });
            }

            pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_opt::OptConfig;

    fn build(src: &str, optimize: bool) -> Binary {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        if optimize {
            csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
        }
        lower_module(&m, &CodegenConfig::default())
    }

    const FIB: &str = r#"
fn fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
"#;

    #[test]
    fn computes_fibonacci() {
        let b = build(FIB, false);
        let mut m = Machine::new(&b, SimConfig::default());
        assert_eq!(m.call("fib", &[10]).unwrap(), 55);
    }

    #[test]
    fn optimized_code_is_equivalent_and_faster() {
        let src = r#"
fn helper(x) { return x * 2 + 1; }
fn work(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    return s;
}
"#;
        let plain = build(src, false);
        let opt = build(src, true);
        let mut mp = Machine::new(&plain, SimConfig::default());
        let mut mo = Machine::new(&opt, SimConfig::default());
        let rp = mp.call("work", &[500]).unwrap();
        let ro = mo.call("work", &[500]).unwrap();
        assert_eq!(rp, ro);
        assert!(
            mo.stats().cycles < mp.stats().cycles,
            "optimized {} vs plain {}",
            mo.stats().cycles,
            mp.stats().cycles
        );
    }

    #[test]
    fn globals_persist_across_calls() {
        let src = r#"
global acc[1];
fn bump(x) { acc[0] = acc[0] + x; return acc[0]; }
"#;
        let b = build(src, false);
        let mut m = Machine::new(&b, SimConfig::default());
        assert_eq!(m.call("bump", &[5]).unwrap(), 5);
        assert_eq!(m.call("bump", &[7]).unwrap(), 12);
        m.set_global("acc", &[100]);
        assert_eq!(m.call("bump", &[1]).unwrap(), 101);
    }

    #[test]
    fn determinism() {
        let b = build(FIB, false);
        let mut m1 = Machine::new(
            &b,
            SimConfig {
                sample_period: 97,
                ..SimConfig::default()
            },
        );
        let mut m2 = Machine::new(
            &b,
            SimConfig {
                sample_period: 97,
                ..SimConfig::default()
            },
        );
        m1.call("fib", &[15]).unwrap();
        m2.call("fib", &[15]).unwrap();
        assert_eq!(m1.stats(), m2.stats());
        assert_eq!(m1.take_samples().len(), m2.take_samples().len());
    }

    #[test]
    fn batched_sample_draining_concatenates_to_one_shot() {
        let cfg = SimConfig {
            sample_period: 37,
            ..SimConfig::default()
        };
        let b = build(FIB, false);
        let mut one_shot = Machine::new(&b, cfg.clone());
        one_shot.call("fib", &[18]).unwrap();
        let reference = one_shot.take_samples();
        assert!(reference.len() > 8, "need several samples");

        let mut batched = Machine::new(&b, cfg);
        batched.call("fib", &[18]).unwrap();
        assert_eq!(batched.pending_samples(), reference.len());
        let mut drained = Vec::new();
        while batched.pending_samples() > 0 {
            let batch = batched.take_sample_batch(3);
            assert!(!batch.is_empty() && batch.len() <= 3);
            drained.extend(batch);
        }
        assert_eq!(drained, reference);
        assert!(batched.take_sample_batch(3).is_empty());
    }

    #[test]
    fn lbr_records_taken_branches_with_calls_and_returns() {
        let b = build(FIB, false);
        let cfg = SimConfig {
            sample_period: 50,
            ..SimConfig::default()
        };
        let mut m = Machine::new(&b, cfg);
        m.call("fib", &[12]).unwrap();
        let samples = m.take_samples();
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.lbr.len() <= 16);
            // Every LBR source must decode to a branch instruction.
            for &(from, _) in &s.lbr {
                let idx = b.index_of_addr(from).expect("LBR source resolves");
                assert!(b.insts[idx].kind.is_branch(), "{:?}", b.insts[idx].kind);
            }
        }
    }

    #[test]
    fn stack_samples_walk_frames() {
        let src = r#"
fn leaf(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + i; i = i + 1; }
    return s;
}
fn mid(n) { let x = leaf(n); return x; }
fn top(n) { let x = mid(n); return x; }
"#;
        let b = build(src, false);
        let cfg = SimConfig {
            sample_period: 23,
            ..SimConfig::default()
        };
        let mut m = Machine::new(&b, cfg);
        m.call("top", &[3000]).unwrap();
        let samples = m.take_samples();
        assert!(!samples.is_empty());
        // Most samples land in leaf's loop: stack should be 3 deep
        // (leaf pc, ret->mid, ret->top).
        let deep = samples.iter().filter(|s| s.stack.len() == 3).count();
        assert!(
            deep * 2 > samples.len(),
            "expected mostly 3-deep stacks, got {deep}/{}",
            samples.len()
        );
    }

    #[test]
    fn tail_calls_lose_frames() {
        let src = r#"
fn leaf(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = s + i; i = i + 1; }
    return s;
}
fn mid(n) { return leaf(n); }
fn top(n) { let r = mid(n); return r; }
"#;
        let b = build(src, false);
        // mid's call is a tail call: its frame vanishes.
        let cfg = SimConfig {
            sample_period: 23,
            ..SimConfig::default()
        };
        let mut m = Machine::new(&b, cfg);
        m.call("top", &[3000]).unwrap();
        let samples = m.take_samples();
        let deep = samples.iter().filter(|s| s.stack.len() >= 3).count();
        assert_eq!(
            deep, 0,
            "mid must be missing from all stacks (tail-call elimination)"
        );
    }

    #[test]
    fn skid_shortens_some_stacks_without_pebs() {
        let src = r#"
fn leaf(n) { let i = 0; while (i < n) { i = i + 1; } return i; }
fn top(n) { let x = leaf(n); return x; }
"#;
        let b = build(src, false);
        let precise = SimConfig {
            sample_period: 23,
            pebs: true,
            ..SimConfig::default()
        };
        let skiddy = SimConfig {
            sample_period: 23,
            pebs: false,
            ..SimConfig::default()
        };
        let mut mp = Machine::new(&b, precise);
        mp.call("top", &[5000]).unwrap();
        let p_short = mp
            .take_samples()
            .iter()
            .filter(|s| s.stack.len() < 2)
            .count();
        let mut ms = Machine::new(&b, skiddy);
        ms.call("top", &[5000]).unwrap();
        let s_samples = ms.take_samples();
        let s_short = s_samples.iter().filter(|s| s.stack.len() < 2).count();
        assert!(s_short > p_short, "skid must truncate some stacks");
    }

    #[test]
    fn counters_give_exact_counts() {
        let src = r#"
fn f(n) {
    let i = 0;
    while (i < n) { i = i + 1; }
    return i;
}
"#;
        let mut module = csspgo_lang::compile(src, "t").unwrap();
        let map = csspgo_opt::instrument::run(&mut module);
        let b = lower_module(&module, &CodegenConfig::default());
        let mut m = Machine::new(&b, SimConfig::default());
        m.call("f", &[77]).unwrap();
        // The loop-body block must have executed exactly 77 times.
        let max = m.counters().iter().max().copied().unwrap();
        assert_eq!(max, 77 + 1, "header executes n+1 times");
        assert_eq!(map.len(), m.counters().len());
    }

    #[test]
    fn step_limit_reported() {
        let src = "fn f() { while (1) { } return 0; }";
        let b = build(src, false);
        let cfg = SimConfig {
            max_steps: 10_000,
            ..SimConfig::default()
        };
        let mut m = Machine::new(&b, cfg);
        assert!(matches!(m.call("f", &[]), Err(SimError::StepLimit(_))));
    }

    #[test]
    fn unknown_function_reported() {
        let b = build(FIB, false);
        let mut m = Machine::new(&b, SimConfig::default());
        assert!(matches!(
            m.call("nope", &[]),
            Err(SimError::NoSuchFunction(_))
        ));
    }
}
