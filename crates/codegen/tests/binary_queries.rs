//! Binary-image query tests: symbolization and section accounting, which
//! the correlators and Algorithm 3 rely on.

use csspgo_codegen::{lower_module, CodegenConfig};
use csspgo_opt::OptConfig;

const SRC: &str = r#"
fn helper(x) {
    if (x > 3) { return x * 2; }
    return x + 1;
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    return s;
}
"#;

fn build(optimize: bool) -> csspgo_codegen::Binary {
    let mut m = csspgo_lang::compile(SRC, "t").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    if optimize {
        csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
    }
    lower_module(&m, &CodegenConfig::default())
}

#[test]
fn symbol_lookup_by_name_and_guid_agree() {
    let b = build(false);
    for f in &b.funcs {
        assert_eq!(b.func_by_name(&f.name).unwrap().guid, f.guid);
        assert_eq!(b.func_by_guid(f.guid).unwrap().name, f.name);
    }
    assert!(b.func_by_name("nope").is_none());
    assert!(b.func_by_guid(0xdead_beef).is_none());
}

#[test]
fn every_instruction_belongs_to_its_function_range() {
    let b = build(true);
    for idx in 0..b.len() {
        let f = b.func_at(idx);
        assert!(f.contains(idx), "inst {idx} outside {}", f.name);
    }
}

#[test]
fn debug_frames_leaf_scope_defaults_to_containing_function() {
    let b = build(false);
    let main = b.func_by_name("main").unwrap();
    // Every located instruction in main's (un-inlined) body resolves with
    // main itself as the leaf frame.
    for idx in main.hot_range.0..main.hot_range.1 {
        let frames = b.debug_frames(idx);
        if frames.is_empty() {
            continue;
        }
        assert_eq!(frames.last().unwrap().0, main.id);
    }
}

#[test]
fn inlined_funcs_report_the_frame_chain() {
    let b = build(true);
    let main = b.func_by_name("main").unwrap();
    let helper = b.func_by_name("helper").unwrap();
    let mut saw_inlined = false;
    for idx in main.hot_range.0..main.hot_range.1 {
        let funcs: Vec<_> = b.inlined_funcs(idx).collect();
        if funcs.len() >= 2 {
            assert_eq!(funcs[0], main.id, "outermost frame is the host");
            if funcs.contains(&helper.id) {
                saw_inlined = true;
            }
        }
    }
    assert!(saw_inlined, "helper must appear inlined in main");
}

#[test]
fn section_totals_are_consistent() {
    let b = build(true);
    let text: u64 = b.insts.iter().map(|i| i.size as u64).sum();
    assert_eq!(b.sections.text, text);
    assert_eq!(
        b.sections.total(),
        b.sections.text + b.sections.debug_line + b.sections.pseudo_probe
    );
    assert!(b.sections.pseudo_probe > 0, "probed build carries metadata");
}

#[test]
fn addr_lookup_rejects_gaps_and_out_of_range() {
    let b = build(true);
    let last = b.len() - 1;
    let end = b.addr_of(last) + b.insts[last].size as u64;
    assert_eq!(b.index_of_addr(end), None, "one past the end");
    assert_eq!(b.index_of_addr(u64::MAX), None);
    // Alignment padding between functions must not resolve.
    for w in 0..b.len() - 1 {
        let gap_start = b.addr_of(w) + b.insts[w].size as u64;
        let next = b.addr_of(w + 1);
        if next > gap_start {
            assert_eq!(
                b.index_of_addr(gap_start),
                None,
                "padding byte {gap_start:#x} must not resolve"
            );
        }
    }
}

#[test]
fn stripped_functions_emit_stub_text() {
    let mut m = csspgo_lang::compile(SRC, "t").unwrap();
    let full = lower_module(&m, &CodegenConfig::default());
    let main = m.find_function("main").unwrap();
    // Strip helper away (pretend main no longer calls it).
    let helper = m.find_function("helper").unwrap();
    let ids: Vec<csspgo_ir::BlockId> = m.func(main).iter_blocks().map(|(b, _)| b).collect();
    for bid in ids {
        m.func_mut(main)
            .block_mut(bid)
            .insts
            .retain(|i| !matches!(i.kind, csspgo_ir::inst::InstKind::Call { .. }));
    }
    // Re-terminate any block whose call got removed mid-block is unnecessary
    // here (calls were not terminators); verify still holds:
    assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    csspgo_opt::strip::run(&mut m, &[main]);
    let stripped = lower_module(&m, &CodegenConfig::default());
    assert!(
        stripped.sections.text < full.sections.text,
        "stripping must shrink text: {} vs {}",
        stripped.sections.text,
        full.sections.text
    );
    let h = stripped.func_by_guid(m.func(helper).guid).unwrap();
    assert_eq!(h.hot_range.1 - h.hot_range.0, 1, "stub is one ret");
}
