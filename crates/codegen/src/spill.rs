//! The profile-sensitive spill model.
//!
//! When a function's register pressure exceeds the physical register count,
//! some values must live in memory. A real allocator places spill code where
//! it *believes* execution is cold; our model does the same: spill
//! candidates are ordered by **believed cost** (the sum of annotated counts
//! of the blocks that use or define the register), cheapest-believed first.
//!
//! The spilled registers then pay a reload before each using instruction and
//! a store after each def — so when the profile is wrong about which blocks
//! are hot, spill traffic lands on the real hot path. This reproduces the
//! paper's post-inline profile-quality effect on register allocation
//! ("potentially causing sub-optimal spill placement", §III.B).

use crate::liveness::Liveness;
use csspgo_ir::inst::Operand;
use csspgo_ir::{BlockId, Function, VReg};
use std::collections::{HashMap, HashSet};

/// Which registers spill, and their assigned spill slots.
#[derive(Clone, Debug, Default)]
pub struct SpillPlan {
    /// Spilled registers with their slot numbers.
    pub slots: HashMap<VReg, u32>,
}

impl SpillPlan {
    /// Whether `r` is spilled.
    pub fn is_spilled(&self, r: VReg) -> bool {
        self.slots.contains_key(&r)
    }

    /// Number of spilled registers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing spills.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Decides which registers spill for `func` under `num_regs` physical
/// registers, using annotated block counts as the (possibly wrong) belief.
pub fn plan_spills(func: &Function, num_regs: usize) -> SpillPlan {
    let lv = Liveness::compute(func);

    // Believed cost of spilling each register: total believed count of
    // blocks that use or define it (each use pays a reload).
    let mut believed_cost: HashMap<VReg, u64> = HashMap::new();
    let mut blocks_of: HashMap<VReg, Vec<BlockId>> = HashMap::new();
    for (bid, block) in func.iter_blocks() {
        let w = block.count.unwrap_or(1); // no profile: uniform belief
        let mut touched: HashSet<VReg> = HashSet::new();
        for inst in &block.insts {
            for op in inst.kind.uses() {
                if let Operand::Reg(r) = op {
                    touched.insert(r);
                }
            }
            if let Some(d) = inst.kind.def() {
                touched.insert(d);
            }
        }
        for r in touched {
            *believed_cost.entry(r).or_insert(0) += w;
            blocks_of.entry(r).or_default().push(bid);
        }
    }

    // Point-precise per-block pressure: walk instructions backward from
    // live-out, tracking the live set; the block's pressure is its maximum
    // over all program points. (Counting every def in a block as
    // simultaneously live would overestimate wildly for large post-inline
    // blocks and punish inlining with phantom spills.)
    let point_pressure = |bid: BlockId, spilled: &HashMap<VReg, u32>| -> usize {
        let block = func.block(bid);
        let mut live: HashSet<VReg> = lv.live_out[bid.index()]
            .iter()
            .copied()
            .filter(|r| !spilled.contains_key(r))
            .collect();
        let mut maxp = live.len();
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.kind.def() {
                if !spilled.contains_key(&d) {
                    maxp = maxp.max(live.len() + usize::from(!live.contains(&d)));
                    live.remove(&d);
                }
            }
            for op in inst.kind.uses() {
                if let Operand::Reg(r) = op {
                    if !spilled.contains_key(&r) {
                        live.insert(r);
                    }
                }
            }
            maxp = maxp.max(live.len());
        }
        maxp
    };

    let live_ids: Vec<BlockId> = func.iter_blocks().map(|(b, _)| b).collect();
    let mut plan = SpillPlan::default();
    let mut next_slot = 0u32;
    loop {
        // Find the most pressured block.
        let worst = live_ids
            .iter()
            .map(|&b| (b, point_pressure(b, &plan.slots)))
            .max_by_key(|&(_, p)| p);
        let Some((worst_bid, pressure)) = worst else {
            break;
        };
        if pressure <= num_regs {
            break;
        }
        // Spill candidates: values live *through* the block (block-local
        // temps cannot usefully spill). Believed-cheapest first, with a
        // deterministic tiebreak on the register number.
        let through: HashSet<VReg> = lv.live_in[worst_bid.index()]
            .union(&lv.live_out[worst_bid.index()])
            .copied()
            .collect();
        let victim = through
            .iter()
            .filter(|r| !plan.is_spilled(**r))
            .min_by_key(|r| (believed_cost.get(r).copied().unwrap_or(0), r.0));
        let Some(&victim) = victim else { break };
        plan.slots.insert(victim, next_slot);
        next_slot += 1;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A function with many simultaneously-live values.
    fn pressured(k: usize) -> csspgo_ir::Module {
        // let v0..v{k-1} each computed from the param, all summed at the end
        // via a call boundary... a long expression keeps them alive.
        let decls: String = (0..k)
            .map(|i| format!("    let v{i} = a + {i};\n"))
            .collect();
        let sum = (0..k)
            .map(|i| format!("v{i}"))
            .collect::<Vec<_>>()
            .join(" + ");
        // A branch in the middle keeps the values live across blocks.
        let src =
            format!("fn f(a) {{\n{decls}    if (a > 0) {{ a = a + 1; }}\n    return {sum};\n}}");
        csspgo_lang::compile(&src, "t").unwrap()
    }

    #[test]
    fn no_spills_under_low_pressure() {
        let m = pressured(4);
        let plan = plan_spills(&m.functions[0], 12);
        assert!(plan.is_empty(), "{plan:?}");
    }

    #[test]
    fn spills_appear_beyond_register_count() {
        let m = pressured(20);
        let plan = plan_spills(&m.functions[0], 12);
        assert!(!plan.is_empty());
        // After spilling, point-precise pressure must be within budget in
        // every block.
        let f = &m.functions[0];
        let lv = Liveness::compute(f);
        for (bid, block) in f.iter_blocks() {
            let mut live: HashSet<VReg> = lv.live_out[bid.index()]
                .iter()
                .copied()
                .filter(|r| !plan.is_spilled(*r))
                .collect();
            let mut maxp = live.len();
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.kind.def() {
                    if !plan.is_spilled(d) {
                        maxp = maxp.max(live.len() + usize::from(!live.contains(&d)));
                        live.remove(&d);
                    }
                }
                for op in inst.kind.uses() {
                    if let Operand::Reg(r) = op {
                        if !plan.is_spilled(r) {
                            live.insert(r);
                        }
                    }
                }
                maxp = maxp.max(live.len());
            }
            assert!(maxp <= 12, "block {bid} still over budget: {maxp}");
        }
    }

    #[test]
    fn believed_cold_registers_spill_first() {
        let mut m = pressured(20);
        let f = &mut m.functions[0];
        // Mark every block hot except one; registers used only in the
        // "cold" block should be preferred victims. Here all registers are
        // used in the entry, so we simply verify determinism instead.
        let ids: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        for bid in ids {
            f.block_mut(bid).count = Some(10);
        }
        let p1 = plan_spills(f, 12);
        let p2 = plan_spills(f, 12);
        assert_eq!(p1.slots, p2.slots, "spill choice must be deterministic");
    }
}
