//! IR → machine lowering and binary assembly.
//!
//! Placement: every function's hot part in module order, then a far "cold
//! section" holding every function's cold part (function splitting).
//! Branch polarity is chosen at emission: the conditional jump always
//! targets the non-fall-through successor, which is the layout pass's
//! branch inversion made concrete.

use crate::binary::{BinFunc, Binary, SectionSizes};
use crate::minst::{MInst, MInstKind, ProbeNote};
use crate::spill::{plan_spills, SpillPlan};
use crate::CodegenConfig;
use csspgo_ir::inst::{InstKind, Operand};
use csspgo_ir::{BlockId, Function, Module, VReg};
use std::collections::HashMap;

/// Bytes of alignment padding between functions.
const FUNC_ALIGN: u64 = 16;
/// Byte offset separating the cold section from the hot section.
const COLD_SECTION_GAP: u64 = 1 << 20;

/// Lowers a whole module to a laid-out [`Binary`].
pub fn lower_module(module: &Module, config: &CodegenConfig) -> Binary {
    let lowerings: Vec<FuncLowering> = module
        .functions
        .iter()
        .map(|f| lower_function(module, f, config))
        .collect();

    // ----- placement: hot parts, then cold parts -----
    let mut hot_start = vec![0usize; lowerings.len()];
    let mut cold_start = vec![0usize; lowerings.len()];
    let mut cursor = 0usize;
    for (i, l) in lowerings.iter().enumerate() {
        hot_start[i] = cursor;
        cursor += l.hot.len();
    }
    for (i, l) in lowerings.iter().enumerate() {
        cold_start[i] = cursor;
        cursor += l.cold.len();
    }
    let total = cursor;

    // Flat start index for every block.
    let mut block_flat: Vec<HashMap<BlockId, usize>> = Vec::with_capacity(lowerings.len());
    for (i, l) in lowerings.iter().enumerate() {
        let mut map = HashMap::new();
        for &(b, pos) in &l.hot_blocks {
            map.insert(b, hot_start[i] + pos);
        }
        for &(b, pos) in &l.cold_blocks {
            map.insert(b, cold_start[i] + pos);
        }
        block_flat.push(map);
    }

    // ----- assemble + fixups -----
    let mut insts: Vec<MInst> = Vec::with_capacity(total);
    let mut func_of: Vec<u32> = Vec::with_capacity(total);
    for (i, l) in lowerings.iter().enumerate() {
        let mut stream = l.hot.clone();
        apply_fixups(&mut stream, &l.hot_fixups, &block_flat[i]);
        insts.extend(stream);
        func_of.extend(std::iter::repeat_n(i as u32, l.hot.len()));
    }
    for (i, l) in lowerings.iter().enumerate() {
        let mut stream = l.cold.clone();
        apply_fixups(&mut stream, &l.cold_fixups, &block_flat[i]);
        insts.extend(stream);
        func_of.extend(std::iter::repeat_n(i as u32, l.cold.len()));
    }

    // ----- addresses -----
    let mut addrs = Vec::with_capacity(total);
    let mut addr = 0u64;
    let mut prev_func = u32::MAX;
    let hot_insts: usize = lowerings.iter().map(|l| l.hot.len()).sum();
    for (idx, inst) in insts.iter().enumerate() {
        if idx == hot_insts && idx != 0 {
            addr += COLD_SECTION_GAP; // cold section starts far away
        }
        if func_of[idx] != prev_func {
            addr = addr.div_ceil(FUNC_ALIGN) * FUNC_ALIGN;
            prev_func = func_of[idx];
        }
        addrs.push(addr);
        addr += inst.size as u64;
    }

    // ----- symbols -----
    let mut funcs = Vec::with_capacity(lowerings.len());
    for (i, (l, f)) in lowerings.iter().zip(&module.functions).enumerate() {
        let entry = *block_flat[i]
            .get(&f.entry)
            .expect("entry block placed in hot part");
        funcs.push(BinFunc {
            id: f.id,
            guid: f.guid,
            name: f.name.clone(),
            start_line: f.start_line,
            num_vregs: f.num_vregs(),
            probe_checksum: f.probe_checksum,
            entry,
            hot_range: (hot_start[i], hot_start[i] + l.hot.len()),
            cold_range: (cold_start[i], cold_start[i] + l.cold.len()),
        });
    }

    let sections = measure_sections(&insts, &funcs);
    let (frame_table, frame_spans) = Binary::compute_frame_table(&insts, &func_of, &funcs);

    Binary {
        insts,
        addrs,
        func_of,
        funcs,
        sections,
        num_counters: module.num_counters,
        globals: module.globals.clone(),
        frame_table,
        frame_spans,
    }
}

/// Encoded-size model for the metadata sections.
fn measure_sections(insts: &[MInst], funcs: &[BinFunc]) -> SectionSizes {
    let text: u64 = insts.iter().map(|i| i.size as u64).sum();

    // Debug line: one row whenever (line, disc, stack) changes, 3 bytes per
    // row plus 6 bytes per inline frame of the row; 24-byte unit header per
    // function.
    let mut debug_line: u64 = funcs.len() as u64 * 24;
    let mut prev: Option<(&csspgo_ir::DebugLoc,)> = None;
    for inst in insts {
        let changed = match prev {
            Some((p,)) => p != &inst.loc,
            None => true,
        };
        if changed && !inst.loc.is_none() {
            debug_line += 3 + 6 * inst.loc.inline_stack.len() as u64;
        }
        prev = Some((&inst.loc,));
    }

    // Pseudo-probe section: per-function descriptor (guid + checksum + name)
    // and per-probe entries (index/type/addr-delta ULEBs + inline frames).
    let probed = funcs.iter().any(|f| f.probe_checksum.is_some());
    let mut pseudo_probe: u64 = 0;
    if probed {
        for f in funcs {
            pseudo_probe += 16 + f.name.len() as u64;
        }
        for inst in insts {
            for p in &inst.probes {
                pseudo_probe += 3 + 2 * p.inline_stack.len() as u64;
            }
        }
    }

    SectionSizes {
        text,
        debug_line,
        pseudo_probe,
    }
}

/// How one pending branch target must be written back.
#[derive(Clone, Debug)]
enum Slot {
    Jmp,
    JmpIf,
    TableCase(usize),
    TableDefault,
}

#[derive(Clone, Debug)]
struct Fixup {
    pos: usize,
    slot: Slot,
    block: BlockId,
}

fn apply_fixups(stream: &mut [MInst], fixups: &[Fixup], block_flat: &HashMap<BlockId, usize>) {
    for f in fixups {
        let target = *block_flat
            .get(&f.block)
            .expect("branch target block was placed");
        match (&mut stream[f.pos].kind, &f.slot) {
            (MInstKind::Jmp { target: t }, Slot::Jmp) => *t = target,
            (MInstKind::JmpIf { target: t, .. }, Slot::JmpIf) => *t = target,
            (MInstKind::JmpTable { targets, .. }, Slot::TableCase(i)) => targets[*i].1 = target,
            (MInstKind::JmpTable { default, .. }, Slot::TableDefault) => *default = target,
            (k, s) => unreachable!("fixup mismatch: {k:?} vs {s:?}"),
        }
    }
}

struct FuncLowering {
    hot: Vec<MInst>,
    cold: Vec<MInst>,
    hot_fixups: Vec<Fixup>,
    cold_fixups: Vec<Fixup>,
    /// (block, start position in stream) — empty blocks naturally share the
    /// next block's start.
    hot_blocks: Vec<(BlockId, usize)>,
    cold_blocks: Vec<(BlockId, usize)>,
}

fn lower_function(module: &Module, func: &Function, config: &CodegenConfig) -> FuncLowering {
    let spills = plan_spills(func, config.num_regs);

    let (hot_order, cold_order): (Vec<BlockId>, Vec<BlockId>) = match &func.layout {
        Some(l) => (l.hot.clone(), l.cold.clone()),
        None => (func.iter_blocks().map(|(b, _)| b).collect(), vec![]),
    };

    let (hot, hot_fixups, hot_blocks) = lower_stream(module, func, &hot_order, &spills, config);
    let (cold, cold_fixups, cold_blocks) = lower_stream(module, func, &cold_order, &spills, config);

    FuncLowering {
        hot,
        cold,
        hot_fixups,
        cold_fixups,
        hot_blocks,
        cold_blocks,
    }
}

fn lower_stream(
    module: &Module,
    func: &Function,
    order: &[BlockId],
    spills: &SpillPlan,
    config: &CodegenConfig,
) -> (Vec<MInst>, Vec<Fixup>, Vec<(BlockId, usize)>) {
    let mut out: Vec<MInst> = Vec::new();
    let mut fixups: Vec<Fixup> = Vec::new();
    let mut blocks: Vec<(BlockId, usize)> = Vec::new();
    let mut pending_probes: Vec<ProbeNote> = Vec::new();

    let emit = |out: &mut Vec<MInst>, pending: &mut Vec<ProbeNote>, mut inst: MInst| {
        inst.probes.append(pending);
        out.push(inst);
    };

    for (pos, &bid) in order.iter().enumerate() {
        blocks.push((bid, out.len()));
        let next = order.get(pos + 1).copied();
        let block = func.block(bid);
        let n = block.insts.len();

        let mut i = 0usize;
        while i < n {
            let inst = &block.insts[i];
            let loc = inst.loc.clone();

            // Spill reloads for the instruction's uses.
            let mut reloaded: Vec<u32> = Vec::new();
            for op in inst.kind.uses() {
                if let Operand::Reg(r) = op {
                    if let Some(&slot) = spills.slots.get(&r) {
                        if !reloaded.contains(&slot) {
                            reloaded.push(slot);
                            emit(
                                &mut out,
                                &mut pending_probes,
                                MInst::new(MInstKind::SpillLoad { slot }, loc.clone()),
                            );
                        }
                    }
                }
            }

            match &inst.kind {
                InstKind::PseudoProbe {
                    owner,
                    index,
                    kind,
                    inline_stack,
                    ..
                } => {
                    pending_probes.push(ProbeNote {
                        owner: *owner,
                        owner_guid: module.func(*owner).guid,
                        index: *index,
                        kind: *kind,
                        inline_stack: inline_stack.clone(),
                    });
                }
                InstKind::CounterIncr { counter } => {
                    emit(
                        &mut out,
                        &mut pending_probes,
                        MInst::new(MInstKind::CounterIncr { counter: *counter }, loc),
                    );
                }
                InstKind::Copy { dst, src } => {
                    lower_simple(
                        &mut out,
                        &mut pending_probes,
                        MInstKind::Copy {
                            dst: *dst,
                            src: *src,
                        },
                        loc,
                        inst.kind.def(),
                        spills,
                    );
                }
                InstKind::Bin { op, dst, lhs, rhs } => {
                    lower_simple(
                        &mut out,
                        &mut pending_probes,
                        MInstKind::Bin {
                            op: *op,
                            dst: *dst,
                            lhs: *lhs,
                            rhs: *rhs,
                        },
                        loc,
                        inst.kind.def(),
                        spills,
                    );
                }
                InstKind::Cmp {
                    pred,
                    dst,
                    lhs,
                    rhs,
                } => {
                    lower_simple(
                        &mut out,
                        &mut pending_probes,
                        MInstKind::Cmp {
                            pred: *pred,
                            dst: *dst,
                            lhs: *lhs,
                            rhs: *rhs,
                        },
                        loc,
                        inst.kind.def(),
                        spills,
                    );
                }
                InstKind::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => {
                    lower_simple(
                        &mut out,
                        &mut pending_probes,
                        MInstKind::Select {
                            dst: *dst,
                            cond: *cond,
                            on_true: *on_true,
                            on_false: *on_false,
                        },
                        loc,
                        inst.kind.def(),
                        spills,
                    );
                }
                InstKind::Load { dst, global, index } => {
                    lower_simple(
                        &mut out,
                        &mut pending_probes,
                        MInstKind::Load {
                            dst: *dst,
                            global: *global,
                            index: *index,
                        },
                        loc,
                        inst.kind.def(),
                        spills,
                    );
                }
                InstKind::Store {
                    global,
                    index,
                    value,
                } => {
                    emit(
                        &mut out,
                        &mut pending_probes,
                        MInst::new(
                            MInstKind::Store {
                                global: *global,
                                index: *index,
                                value: *value,
                            },
                            loc,
                        ),
                    );
                }
                InstKind::Call { dst, callee, args } => {
                    // Tail-call elimination: `x = call f(...); ret x` (with
                    // only probes in between) becomes a tail jump.
                    if config.tail_call_elim && is_tail_position(block, i, *dst) {
                        emit(
                            &mut out,
                            &mut pending_probes,
                            MInst::new(
                                MInstKind::TailCall {
                                    callee: callee.0,
                                    args: args.clone(),
                                },
                                loc,
                            ),
                        );
                        // Skip the remaining probes + ret: consumed.
                        break;
                    }
                    lower_simple(
                        &mut out,
                        &mut pending_probes,
                        MInstKind::Call {
                            dst: *dst,
                            callee: callee.0,
                            args: args.clone(),
                        },
                        loc,
                        *dst,
                        spills,
                    );
                }
                InstKind::Ret { value } => {
                    emit(
                        &mut out,
                        &mut pending_probes,
                        MInst::new(MInstKind::Ret { value: *value }, loc),
                    );
                }
                InstKind::Br { target } => {
                    if next != Some(*target) {
                        fixups.push(Fixup {
                            pos: out.len(),
                            slot: Slot::Jmp,
                            block: *target,
                        });
                        emit(
                            &mut out,
                            &mut pending_probes,
                            MInst::new(MInstKind::Jmp { target: usize::MAX }, loc),
                        );
                    }
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    // Branch inversion: jump to the non-fall-through side.
                    let (jump_to, negate, also_jmp) = if next == Some(*else_bb) {
                        (*then_bb, false, None)
                    } else if next == Some(*then_bb) {
                        (*else_bb, true, None)
                    } else {
                        (*then_bb, false, Some(*else_bb))
                    };
                    fixups.push(Fixup {
                        pos: out.len(),
                        slot: Slot::JmpIf,
                        block: jump_to,
                    });
                    emit(
                        &mut out,
                        &mut pending_probes,
                        MInst::new(
                            MInstKind::JmpIf {
                                cond: *cond,
                                negate,
                                target: usize::MAX,
                            },
                            loc.clone(),
                        ),
                    );
                    if let Some(e) = also_jmp {
                        fixups.push(Fixup {
                            pos: out.len(),
                            slot: Slot::Jmp,
                            block: e,
                        });
                        emit(
                            &mut out,
                            &mut pending_probes,
                            MInst::new(MInstKind::Jmp { target: usize::MAX }, loc),
                        );
                    }
                }
                InstKind::Switch {
                    value,
                    cases,
                    default,
                } => {
                    for (ci, (_, b)) in cases.iter().enumerate() {
                        fixups.push(Fixup {
                            pos: out.len(),
                            slot: Slot::TableCase(ci),
                            block: *b,
                        });
                    }
                    fixups.push(Fixup {
                        pos: out.len(),
                        slot: Slot::TableDefault,
                        block: *default,
                    });
                    emit(
                        &mut out,
                        &mut pending_probes,
                        MInst::new(
                            MInstKind::JmpTable {
                                value: *value,
                                targets: cases.iter().map(|&(k, _)| (k, usize::MAX)).collect(),
                                default: usize::MAX,
                            },
                            loc,
                        ),
                    );
                }
            }
            i += 1;
        }
    }

    // Leftover probes (e.g. a trailing probe in a fully-elided block at the
    // end of the stream) attach to the last instruction.
    if !pending_probes.is_empty() {
        if let Some(last) = out.last_mut() {
            last.probes.append(&mut pending_probes);
        }
    }

    (out, fixups, blocks)
}

/// Emits a register-writing instruction plus its spill store.
fn lower_simple(
    out: &mut Vec<MInst>,
    pending: &mut Vec<ProbeNote>,
    kind: MInstKind,
    loc: csspgo_ir::DebugLoc,
    def: Option<VReg>,
    spills: &SpillPlan,
) {
    let mut inst = MInst::new(kind, loc.clone());
    inst.probes.append(pending);
    out.push(inst);
    if let Some(d) = def {
        if let Some(&slot) = spills.slots.get(&d) {
            out.push(MInst::new(MInstKind::SpillStore { slot }, loc));
        }
    }
}

/// Whether the call at `idx` is in tail position: everything after it (bar
/// probes) is a `ret` of exactly the call's result (or a bare `ret` for a
/// result-less call).
fn is_tail_position(block: &csspgo_ir::BasicBlock, idx: usize, dst: Option<VReg>) -> bool {
    let mut j = idx + 1;
    while j < block.insts.len() {
        match &block.insts[j].kind {
            InstKind::PseudoProbe { .. } => j += 1,
            InstKind::Ret { value } => {
                return match (value, dst) {
                    (Some(Operand::Reg(r)), Some(d)) => *r == d,
                    (None, _) => true,
                    _ => false,
                }
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_opt::OptConfig;

    fn build(src: &str, probes: bool, pipeline: bool) -> Binary {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        if probes {
            csspgo_opt::probes::run(&mut m);
        }
        if pipeline {
            csspgo_opt::run_pipeline(&mut m, &OptConfig::default());
        }
        lower_module(&m, &CodegenConfig::default())
    }

    const SRC: &str = r#"
global t[8];
fn helper(x) {
    if (x > 3) { return x * 2; }
    return x + 1;
}
fn tailer(x) {
    return helper(x + 1);
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    t[0] = s;
    return s;
}
"#;

    #[test]
    fn addresses_are_monotonic_and_sized() {
        let b = build(SRC, false, false);
        assert!(!b.is_empty());
        for w in b.addrs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(b.addrs.len(), b.insts.len());
        // index_of_addr roundtrips.
        for idx in 0..b.len() {
            assert_eq!(b.index_of_addr(b.addr_of(idx)), Some(idx));
            assert_eq!(b.index_of_addr(b.addr_of(idx) + 1), {
                if b.insts[idx].size > 1 {
                    Some(idx)
                } else {
                    b.index_of_addr(b.addr_of(idx) + 1)
                }
            });
        }
    }

    #[test]
    fn branch_targets_resolved() {
        let b = build(SRC, false, false);
        for inst in &b.insts {
            match &inst.kind {
                MInstKind::Jmp { target } => assert!(*target < b.len()),
                MInstKind::JmpIf { target, .. } => assert!(*target < b.len()),
                MInstKind::JmpTable {
                    targets, default, ..
                } => {
                    assert!(*default < b.len());
                    for (_, t) in targets {
                        assert!(*t < b.len());
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn tail_call_emitted() {
        let b = build(SRC, false, false);
        let has_tail = b
            .insts
            .iter()
            .any(|i| matches!(i.kind, MInstKind::TailCall { .. }));
        assert!(has_tail, "`tailer` should lower to a tail call");
    }

    #[test]
    fn tail_call_disabled_by_config() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        let b = lower_module(
            &m,
            &CodegenConfig {
                tail_call_elim: false,
                ..CodegenConfig::default()
            },
        );
        assert!(!b
            .insts
            .iter()
            .any(|i| matches!(i.kind, MInstKind::TailCall { .. })),);
        m.name.clear(); // silence unused-mut lint paranoia
    }

    #[test]
    fn probes_attach_to_next_physical_inst() {
        let b = build(SRC, true, false);
        let total_probes: usize = b.insts.iter().map(|i| i.probes.len()).sum();
        assert!(total_probes > 0, "probe notes must be materialized");
        // Probes add no text bytes: a probe-built binary has the same text
        // size as a probe-free one (modulo none here since no opt ran).
        let plain = build(SRC, false, false);
        assert_eq!(
            b.sections.text, plain.sections.text,
            "probes are metadata-only"
        );
        assert!(b.sections.pseudo_probe > 0);
        assert_eq!(plain.sections.pseudo_probe, 0);
    }

    #[test]
    fn entry_points_into_own_hot_range() {
        let b = build(SRC, false, true);
        for f in &b.funcs {
            assert!(f.entry >= f.hot_range.0 && f.entry < f.hot_range.1, "{f:?}");
        }
    }

    #[test]
    fn debug_frames_present_after_inlining() {
        let b = build(SRC, false, true);
        // After the pipeline, helper is inlined into main somewhere: some
        // instruction must carry a 2-deep frame stack.
        let deep = (0..b.len()).any(|i| b.debug_frames(i).len() >= 2);
        assert!(deep, "expected inlined debug frames");
    }

    #[test]
    fn counters_lower_to_real_code() {
        let mut m = csspgo_lang::compile(SRC, "t").unwrap();
        csspgo_opt::instrument::run(&mut m);
        let instr = lower_module(&m, &CodegenConfig::default());
        let plain = build(SRC, false, false);
        assert!(
            instr.sections.text > plain.sections.text,
            "instrumentation must grow the text section"
        );
    }

    #[test]
    fn cold_section_is_far_away() {
        let src = r#"
fn f(a) {
    if (a > 0) { return 1; }
    return 2;
}
"#;
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        // Annotate: else-arm cold.
        let ids: Vec<BlockId> = m.functions[0].iter_blocks().map(|(b, _)| b).collect();
        for bid in ids {
            m.functions[0].block_mut(bid).count = Some(100);
        }
        // find the `return 2` block: mark cold
        let cold_bid = m.functions[0]
            .iter_blocks()
            .filter(|(b, _)| *b != m.functions[0].entry)
            .map(|(b, _)| b)
            .last()
            .unwrap();
        m.functions[0].block_mut(cold_bid).count = Some(0);
        csspgo_opt::layout::run(&mut m, &OptConfig::default());
        let b = lower_module(&m, &CodegenConfig::default());
        let f = &b.funcs[0];
        assert!(f.cold_range.1 > f.cold_range.0, "function must be split");
        let hot_end_addr = b.addr_of(f.hot_range.1 - 1);
        let cold_start_addr = b.addr_of(f.cold_range.0);
        assert!(cold_start_addr > hot_end_addr + COLD_SECTION_GAP / 2);
    }
}
