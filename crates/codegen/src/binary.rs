//! The binary image: flat machine code with addresses, symbols, debug-line
//! metadata and the pseudo-probe metadata section.

use crate::minst::MInst;
use csspgo_ir::{FuncId, Global};
use serde::{Deserialize, Serialize};

/// Encoded sizes of the binary's sections, in bytes (Fig. 9's metric).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SectionSizes {
    /// Machine code.
    pub text: u64,
    /// DWARF-style line table + inline descriptors.
    pub debug_line: u64,
    /// Pseudo-probe metadata (self-contained, never loaded at run time).
    pub pseudo_probe: u64,
}

impl SectionSizes {
    /// Total binary size (text + debug info; the probe section is
    /// included since Fig. 9 reports it as a percentage of this total).
    pub fn total(&self) -> u64 {
        self.text + self.debug_line + self.pseudo_probe
    }
}

/// Per-function symbol information.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinFunc {
    /// The function's id in the module this binary was built from.
    pub id: FuncId,
    /// Stable GUID (name hash).
    pub guid: u64,
    /// Source name.
    pub name: String,
    /// Source line of the function header.
    pub start_line: u32,
    /// Number of virtual registers the function uses (frame size).
    pub num_vregs: usize,
    /// CFG checksum recorded at probe insertion, if the build had probes.
    pub probe_checksum: Option<u64>,
    /// Flat index of the entry instruction.
    pub entry: usize,
    /// `[start, end)` flat indices of the hot part.
    pub hot_range: (usize, usize),
    /// `[start, end)` flat indices of the cold part (empty if not split).
    pub cold_range: (usize, usize),
}

impl BinFunc {
    /// Whether flat index `idx` belongs to this function.
    pub fn contains(&self, idx: usize) -> bool {
        (idx >= self.hot_range.0 && idx < self.hot_range.1)
            || (idx >= self.cold_range.0 && idx < self.cold_range.1)
    }
}

/// One debug frame: `(scope function, line, discriminator)`.
pub type DebugFrame = (FuncId, u32, u32);

/// A fully laid-out program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Binary {
    /// All instructions, hot parts first (in module function order), then
    /// every function's cold part.
    pub insts: Vec<MInst>,
    /// Start byte address of each instruction.
    pub addrs: Vec<u64>,
    /// Function index (into [`Binary::funcs`]) per instruction.
    pub func_of: Vec<u32>,
    /// Function symbols, indexed in module order (so `FuncId` indexes this
    /// table directly).
    pub funcs: Vec<BinFunc>,
    /// Encoded section sizes.
    pub sections: SectionSizes,
    /// Number of instrumentation counters referenced by the code.
    pub num_counters: u32,
    /// Data memory image (copied from the module's globals).
    pub globals: Vec<Global>,
    /// Flat frame arena: every instruction's debug-frame chain
    /// (outermost call site first, leaf last), concatenated. Built once at
    /// construction so [`Binary::debug_frames`] is an allocation-free slice
    /// borrow; correlation queries it per nonzero-count instruction.
    pub frame_table: Vec<DebugFrame>,
    /// Per-instruction `(start, len)` span into [`Binary::frame_table`].
    pub frame_spans: Vec<(u32, u32)>,
}

/// Dense byte→instruction map: O(1) [`Binary::index_of_addr`] for the
/// sample-resolution hot path, where every LBR entry and stack frame costs
/// an address lookup. The text segment of a laid-out binary is contiguous
/// and small, so one `u32` slot per code byte buys a plain array load in
/// place of a branchy binary search.
pub struct AddrIndex {
    base: u64,
    /// Instruction index per byte offset from `base`; `u32::MAX` = gap.
    map: Vec<u32>,
}

impl AddrIndex {
    /// Builds the map from a laid-out binary.
    pub fn build(binary: &Binary) -> Self {
        let (Some(&first), Some(&last), Some(last_inst)) = (
            binary.addrs.first(),
            binary.addrs.last(),
            binary.insts.last(),
        ) else {
            return AddrIndex {
                base: 0,
                map: Vec::new(),
            };
        };
        let mut map = vec![u32::MAX; (last + last_inst.size as u64 - first) as usize];
        for (i, &a) in binary.addrs.iter().enumerate() {
            let start = (a - first) as usize;
            for slot in &mut map[start..start + binary.insts[i].size as usize] {
                *slot = i as u32;
            }
        }
        AddrIndex { base: first, map }
    }

    /// The flat index of the instruction whose byte range contains `addr`;
    /// agrees with [`Binary::index_of_addr`] on every address.
    #[inline]
    pub fn index_of_addr(&self, addr: u64) -> Option<usize> {
        let off = addr.checked_sub(self.base)?;
        match self.map.get(usize::try_from(off).ok()?) {
            Some(&v) if v != u32::MAX => Some(v as usize),
            _ => None,
        }
    }
}

impl Binary {
    /// The flat index of the instruction whose byte range contains `addr`.
    pub fn index_of_addr(&self, addr: u64) -> Option<usize> {
        if self.addrs.is_empty() {
            return None;
        }
        let i = self.addrs.partition_point(|&a| a <= addr);
        if i == 0 {
            return None;
        }
        let idx = i - 1;
        let size = self.insts[idx].size as u64;
        (addr < self.addrs[idx] + size).then_some(idx)
    }

    /// Start address of instruction `idx`.
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.addrs[idx]
    }

    /// The function containing instruction `idx`.
    pub fn func_at(&self, idx: usize) -> &BinFunc {
        &self.funcs[self.func_of[idx] as usize]
    }

    /// Looks a function up by GUID.
    pub fn func_by_guid(&self, guid: u64) -> Option<&BinFunc> {
        self.funcs.iter().find(|f| f.guid == guid)
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<&BinFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Builds the flat frame arena for a laid-out instruction stream: the
    /// per-instruction debug-frame chains of [`Binary::debug_frames`],
    /// concatenated, plus the `(start, len)` span of each instruction.
    pub fn compute_frame_table(
        insts: &[MInst],
        func_of: &[u32],
        funcs: &[BinFunc],
    ) -> (Vec<DebugFrame>, Vec<(u32, u32)>) {
        let mut table = Vec::new();
        let mut spans = Vec::with_capacity(insts.len());
        for (idx, inst) in insts.iter().enumerate() {
            let loc = &inst.loc;
            let start = table.len() as u32;
            if loc.is_none() {
                spans.push((start, 0));
                continue;
            }
            table.extend(
                loc.inline_stack
                    .iter()
                    .map(|s| (s.func, s.line, s.discriminator)),
            );
            let leaf_scope = if loc.scope == FuncId::INVALID {
                funcs[func_of[idx] as usize].id
            } else {
                loc.scope
            };
            table.push((leaf_scope, loc.line, loc.discriminator));
            spans.push((start, table.len() as u32 - start));
        }
        (table, spans)
    }

    /// DWARF-style symbolization of instruction `idx`: the chain of
    /// `(function, line, discriminator)` frames, outermost call site first,
    /// the instruction's own (leaf) frame last. Empty when the instruction
    /// has no line info. Borrows from the precomputed frame arena — no
    /// allocation per query.
    pub fn debug_frames(&self, idx: usize) -> &[DebugFrame] {
        let (start, len) = self.frame_spans[idx];
        &self.frame_table[start as usize..(start + len) as usize]
    }

    /// The *function identity* inline stack at `idx`: outermost function
    /// first, leaf (innermost inlined) function last. This is the
    /// `GetInlinedFrames` of the paper's Algorithms 1 and 3.
    pub fn inlined_funcs(&self, idx: usize) -> impl Iterator<Item = FuncId> + '_ {
        self.debug_frames(idx).iter().map(|&(f, _, _)| f)
    }

    /// Total number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the binary is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}
