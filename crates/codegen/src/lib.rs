//! Code generation: IR → a flat machine-code [`Binary`] with byte
//! addresses, DWARF-like line/inline metadata, and the pseudo-probe
//! metadata section.
//!
//! What the paper's machinery needs from a binary, this crate provides:
//!
//! * **addresses** — every machine instruction has a byte address; block
//!   layout and hot/cold splitting decide placement, so i-cache behaviour
//!   and branch distances respond to profile quality;
//! * **debug-line metadata** — per-instruction `(scope, line, discriminator,
//!   inline stack)`, the AutoFDO correlation anchor, with its encoded size
//!   measured for Fig. 9;
//! * **pseudo-probe metadata** — probes materialize "as metadata against the
//!   location of the physical instruction next to" them (paper §III.A); the
//!   encoded section size is Fig. 9's headline number;
//! * **tail-call elimination** — calls in return position become jumps,
//!   breaking frame-pointer chains exactly the way the paper's
//!   missing-frame inferrer expects;
//! * **a register-pressure spill model** — believed-cold registers spill
//!   first, so a *wrong* profile puts spill code on the real hot path (the
//!   paper's "sub-optimal spill placement").

pub mod binary;
pub mod liveness;
pub mod lower;
pub mod minst;
pub mod spill;

pub use binary::{AddrIndex, BinFunc, Binary, SectionSizes};
pub use lower::lower_module;
pub use minst::{MInst, MInstKind, ProbeNote};

use serde::{Deserialize, Serialize};

/// Code-generation knobs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CodegenConfig {
    /// Number of physical registers before spilling kicks in.
    pub num_regs: usize,
    /// Whether calls in return position become tail jumps (breaking the
    /// frame chain for the profiler).
    pub tail_call_elim: bool,
}

impl Default for CodegenConfig {
    fn default() -> Self {
        CodegenConfig {
            num_regs: 12,
            tail_call_elim: true,
        }
    }
}
