//! Backward block-level liveness over virtual registers.

use csspgo_ir::inst::Operand;
use csspgo_ir::{cfg, BlockId, Function, VReg};
use std::collections::HashSet;

/// Per-block liveness sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live on entry to each block (indexed by block id).
    pub live_in: Vec<HashSet<VReg>>,
    /// Registers live on exit from each block.
    pub live_out: Vec<HashSet<VReg>>,
    /// Registers defined in each block.
    pub defs: Vec<HashSet<VReg>>,
}

impl Liveness {
    /// Computes block-level liveness for `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut gen_: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        for (bid, block) in func.iter_blocks() {
            let g = &mut gen_[bid.index()];
            let d = &mut defs[bid.index()];
            for inst in &block.insts {
                for op in inst.kind.uses() {
                    if let Operand::Reg(r) = op {
                        if !d.contains(&r) {
                            g.insert(r);
                        }
                    }
                }
                if let Some(r) = inst.kind.def() {
                    d.insert(r);
                }
            }
        }

        let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
        // Iterate to fixpoint (reverse order helps convergence).
        let order: Vec<BlockId> = {
            let mut o = cfg::reverse_post_order(func);
            o.reverse();
            o
        };
        loop {
            let mut changed = false;
            for &b in &order {
                let mut out: HashSet<VReg> = HashSet::new();
                for s in cfg::successors(func, b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<VReg> = gen_[b.index()].clone();
                for &r in &out {
                    if !defs[b.index()].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[b.index()] || inn != live_in[b.index()] {
                    live_out[b.index()] = out;
                    live_in[b.index()] = inn;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Liveness {
            live_in,
            live_out,
            defs,
        }
    }

    /// Register pressure of a block: values simultaneously alive there.
    pub fn pressure(&self, b: BlockId) -> usize {
        let mut s: HashSet<VReg> = self.live_in[b.index()].clone();
        s.extend(self.live_out[b.index()].iter().copied());
        s.extend(self.defs[b.index()].iter().copied());
        s.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_variable_is_live_through_loop() {
        let src = r#"
fn f(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
"#;
        let m = csspgo_lang::compile(src, "t").unwrap();
        let f = &m.functions[0];
        let lv = Liveness::compute(f);
        // The loop header (block with condbr) must have i, s, n live in.
        let header = f
            .iter_blocks()
            .find(|(_, b)| {
                matches!(
                    b.terminator().map(|t| &t.kind),
                    Some(csspgo_ir::inst::InstKind::CondBr { .. })
                )
            })
            .map(|(b, _)| b)
            .unwrap();
        assert!(lv.live_in[header.index()].len() >= 3, "{:?}", lv.live_in);
    }

    #[test]
    fn dead_values_are_not_live() {
        let src = "fn f(a) { let x = a + 1; return a; }";
        let m = csspgo_lang::compile(src, "t").unwrap();
        let f = &m.functions[0];
        let lv = Liveness::compute(f);
        // x (%1... defined but unused) must not be live out of any block.
        for out in &lv.live_out {
            for r in out {
                assert_eq!(*r, VReg(0), "only the param flows");
            }
        }
    }

    #[test]
    fn pressure_counts_defs() {
        let src = "fn f(a, b) { return a * b + a - b; }";
        let m = csspgo_lang::compile(src, "t").unwrap();
        let f = &m.functions[0];
        let lv = Liveness::compute(f);
        assert!(lv.pressure(f.entry) >= 4);
    }
}
