//! Machine instructions.
//!
//! The machine keeps virtual-register operational semantics (spills are
//! cost-only pseudo-instructions; see DESIGN.md §5) but is otherwise a real
//! linear machine program: byte-sized instructions, flat branch targets,
//! fall-through execution, call/return/tail-call control transfer.

use csspgo_ir::debuginfo::DebugLoc;
use csspgo_ir::inst::{BinOp, CmpPred, Operand};
use csspgo_ir::probe::{ProbeKind, ProbeSite};
use csspgo_ir::{FuncId, GlobalId, VReg};
use serde::{Deserialize, Serialize};

/// A flat-index branch target (index into [`crate::Binary::insts`]).
pub type Target = usize;

/// Machine operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MInstKind {
    /// `dst = src`.
    Copy { dst: VReg, src: Operand },
    /// `dst = lhs <op> rhs`.
    Bin {
        op: BinOp,
        dst: VReg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = lhs <pred> rhs`.
    Cmp {
        pred: CmpPred,
        dst: VReg,
        lhs: Operand,
        rhs: Operand,
    },
    /// Conditional move.
    Select {
        dst: VReg,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// `dst = global[index]` (a data-memory access).
    Load {
        dst: VReg,
        global: GlobalId,
        index: Operand,
    },
    /// `global[index] = value` (a data-memory access).
    Store {
        global: GlobalId,
        index: Operand,
        value: Operand,
    },
    /// Instrumentation counter increment: a real load+add+store.
    CounterIncr { counter: u32 },
    /// Direct call (pushes a frame).
    Call {
        dst: Option<VReg>,
        callee: u32,
        args: Vec<Operand>,
    },
    /// Tail call (replaces the current frame; the caller vanishes from the
    /// frame-pointer chain).
    TailCall { callee: u32, args: Vec<Operand> },
    /// Return.
    Ret { value: Option<Operand> },
    /// Unconditional jump.
    Jmp { target: Target },
    /// Conditional jump: taken when `cond != 0` (xor `negate`).
    JmpIf {
        cond: Operand,
        negate: bool,
        target: Target,
    },
    /// Jump table (lowered `switch`).
    JmpTable {
        value: Operand,
        targets: Vec<(i64, Target)>,
        default: Target,
    },
    /// Cost-only reload of a spilled register (no operational effect).
    SpillLoad { slot: u32 },
    /// Cost-only store of a spilled register (no operational effect).
    SpillStore { slot: u32 },
}

impl MInstKind {
    /// Encoded size in bytes (a plausible x86-64-flavoured model; absolute
    /// values only matter relatively, for layout distances and Fig. 9).
    pub fn size(&self) -> u32 {
        match self {
            MInstKind::Copy { .. } => 3,
            MInstKind::Bin { .. } => 4,
            MInstKind::Cmp { .. } => 4,
            MInstKind::Select { .. } => 6,
            MInstKind::Load { .. } | MInstKind::Store { .. } => 5,
            MInstKind::CounterIncr { .. } => 12,
            MInstKind::Call { .. } => 5,
            MInstKind::TailCall { .. } => 5,
            MInstKind::Ret { .. } => 1,
            MInstKind::Jmp { .. } => 5,
            MInstKind::JmpIf { .. } => 6,
            MInstKind::JmpTable { targets, .. } => 8 + 4 * targets.len() as u32,
            MInstKind::SpillLoad { .. } | MInstKind::SpillStore { .. } => 4,
        }
    }

    /// Whether this is a control-transfer instruction.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            MInstKind::Call { .. }
                | MInstKind::TailCall { .. }
                | MInstKind::Ret { .. }
                | MInstKind::Jmp { .. }
                | MInstKind::JmpIf { .. }
                | MInstKind::JmpTable { .. }
        )
    }
}

/// A pseudo-probe note attached to a machine instruction: the probe
/// "materialized as metadata against the location of the physical
/// instruction next to it" (paper §III.A).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeNote {
    /// Function that originally owned the probe.
    pub owner: FuncId,
    /// GUID of that function (stable across builds).
    pub owner_guid: u64,
    /// Probe index within the owner.
    pub index: u32,
    /// Block or call-site probe.
    pub kind: ProbeKind,
    /// Chain of call-site probes this probe was inlined through.
    pub inline_stack: Vec<ProbeSite>,
}

/// One machine instruction with its metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MInst {
    pub kind: MInstKind,
    /// Encoded size in bytes.
    pub size: u32,
    /// Debug-line metadata (the AutoFDO anchor).
    pub loc: DebugLoc,
    /// Pseudo-probe notes anchored at this instruction.
    pub probes: Vec<ProbeNote>,
}

impl MInst {
    /// Wraps a kind with its natural size and the given location.
    pub fn new(kind: MInstKind, loc: DebugLoc) -> Self {
        let size = kind.size();
        MInst {
            kind,
            size,
            loc,
            probes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive_and_table_grows() {
        assert!(MInstKind::Ret { value: None }.size() >= 1);
        let small = MInstKind::JmpTable {
            value: Operand::Imm(0),
            targets: vec![(0, 0)],
            default: 0,
        };
        let big = MInstKind::JmpTable {
            value: Operand::Imm(0),
            targets: vec![(0, 0); 10],
            default: 0,
        };
        assert!(big.size() > small.size());
    }

    #[test]
    fn branch_classification() {
        assert!(MInstKind::Ret { value: None }.is_branch());
        assert!(MInstKind::Jmp { target: 0 }.is_branch());
        assert!(!MInstKind::Copy {
            dst: VReg(0),
            src: Operand::Imm(1)
        }
        .is_branch());
    }

    #[test]
    fn counter_incr_is_expensive() {
        // The instrumented build's overhead comes from here.
        assert!(
            MInstKind::CounterIncr { counter: 0 }.size()
                > MInstKind::Copy {
                    dst: VReg(0),
                    src: Operand::Imm(0)
                }
                .size()
        );
    }
}
