//! Synthetic workloads mirroring the paper's evaluation set (§IV.A).
//!
//! Each workload reproduces the *structural* properties of its production
//! counterpart that the paper's machinery responds to:
//!
//! | Workload | Mirrors | Key structure |
//! |---|---|---|
//! | [`ad_ranker`] | AdRanker | scoring loops; a shared combiner whose branch bias depends on the caller (paper Fig. 4 at scale); register pressure |
//! | [`ad_retriever`] | AdRetriever | index scans, branchy filters, tail-call chains |
//! | [`ad_finder`] | AdFinder | hash probing with collision chains; shared lookup helper |
//! | [`hhvm`] | HHVM | bytecode interpreter: switch dispatch, biased handlers, shared value-stack helpers |
//! | [`haas`] | HaaS/Hermes | second VM: expression evaluation, recursion, tail calls |
//! | [`client_compiler`] | Clang bootstrap | many functions touched briefly — wide coverage, short run (the client-workload sampling ceiling) |
//!
//! Traffic is generated deterministically from seeds; training and
//! evaluation use the same distribution with different seeds (the paper's
//! "live traffic duplicated through two systems" becomes a train/eval
//! split).

pub mod drift;
mod programs;

pub use csspgo_core::workload::Workload;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic request stream: `n` calls of `arity` arguments in
/// `[lo, hi)`.
fn requests(seed: u64, n: usize, args: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            args.iter()
                .map(|&(lo, hi)| rng.random_range(lo..hi))
                .collect()
        })
        .collect()
}

/// Deterministic array contents.
fn table(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// Builds every server workload (the Fig. 6/7 set).
pub fn server_workloads() -> Vec<Workload> {
    vec![ad_ranker(), ad_retriever(), ad_finder(), hhvm(), haas()]
}

/// AdRanker: feature-vector scoring. Two ranking heads (`rank_clicks`,
/// `rank_convs`) drive the shared `combine` helper with *opposite* branch
/// bias — the paper's Fig. 4 context-sensitivity pattern — and the scoring
/// loop keeps enough live state to pressure the register allocator.
pub fn ad_ranker() -> Workload {
    let mut w = Workload::new(
        "ad_ranker",
        programs::AD_RANKER,
        "serve",
        requests(11, 220, &[(0, 48), (1, 4)]),
        requests(12, 220, &[(0, 48), (1, 4)]),
    );
    w.setup = vec![
        ("features".into(), table(101, 4096, -64, 64)),
        ("weights_click".into(), table(102, 64, 0, 32)),
        ("weights_conv".into(), table(103, 64, 0, 32)),
    ];
    w
}

/// AdRetriever: posting-list scans with branchy filters and a tail-call
/// filter chain (frame-pointer chains genuinely break here).
pub fn ad_retriever() -> Workload {
    let mut w = Workload::new(
        "ad_retriever",
        programs::AD_RETRIEVER,
        "retrieve",
        requests(21, 260, &[(0, 512), (1, 9)]),
        requests(22, 260, &[(0, 512), (1, 9)]),
    );
    w.setup = vec![
        ("index".into(), table(201, 8192, 0, 1024)),
        ("bounds".into(), table(202, 64, 8, 120)),
    ];
    w
}

/// AdFinder: open-addressing hash probing with collision chains; the probe
/// helper is shared between the lookup and insert paths.
pub fn ad_finder() -> Workload {
    let mut w = Workload::new(
        "ad_finder",
        programs::AD_FINDER,
        "find_batch",
        requests(31, 240, &[(1, 1 << 30), (24, 72)]),
        requests(32, 240, &[(1, 1 << 30), (24, 72)]),
    );
    w.setup = vec![("htable".into(), vec![0; 4096])];
    w
}

/// HHVM: a bytecode interpreter with switch dispatch, strongly biased
/// opcode mix, and shared value-stack helpers called from every handler.
pub fn hhvm() -> Workload {
    // The "bytecode" programs the VM executes: a mix dominated by
    // arithmetic and compare-branches, with rare expensive opcodes.
    let mut rng = StdRng::seed_from_u64(41);
    let mut code: Vec<i64> = Vec::new();
    for _ in 0..600 {
        // opcode distribution: 0..=9, heavily biased
        let op: i64 = match rng.random_range(0..100) {
            0..=34 => 0,  // push-const
            35..=59 => 1, // add
            60..=74 => 2, // sub
            75..=84 => 3, // mul
            85..=90 => 4, // dup
            91..=94 => 5, // cmp-lt
            95..=96 => 6, // jump-if (short hop)
            97 => 7,      // mod
            98 => 8,      // expensive: checksum loop
            _ => 9,       // swap
        };
        code.push(op);
        code.push(rng.random_range(1..50)); // operand
    }
    let mut w = Workload::new(
        "hhvm",
        programs::HHVM,
        "run_vm",
        requests(42, 110, &[(0, 280), (220, 560)]),
        requests(43, 110, &[(0, 280), (220, 560)]),
    );
    w.setup = vec![("code".into(), code), ("vstack".into(), vec![0; 256])];
    w
}

/// HaaS: a Hermes-flavoured second VM — recursive expression evaluation
/// over a tree encoded in globals, with tail-called evaluation helpers.
pub fn haas() -> Workload {
    // Expression tree nodes: kind (0 leaf, 1 add, 2 mul, 3 max, 4 call),
    // lhs index, rhs index / value.
    let mut rng = StdRng::seed_from_u64(51);
    let n = 512usize;
    let mut kind = vec![0i64; n];
    let mut lhs = vec![0i64; n];
    let mut rhs = vec![0i64; n];
    for i in 1..n {
        // children always at lower indices: an acyclic DAG
        if i < 8 {
            kind[i] = 0;
            rhs[i] = rng.random_range(1..100);
        } else {
            kind[i] = match rng.random_range(0..100) {
                0..=39 => 1,
                40..=69 => 2,
                70..=89 => 3,
                _ => 4,
            };
            lhs[i] = rng.random_range(1..i as i64);
            rhs[i] = rng.random_range(1..i as i64);
        }
    }
    let mut w = Workload::new(
        "haas",
        programs::HAAS,
        "execute",
        requests(52, 200, &[(8, 40), (1, 64)]),
        requests(53, 200, &[(8, 40), (1, 64)]),
    );
    w.setup = vec![
        ("nkind".into(), kind),
        ("nlhs".into(), lhs),
        ("nrhs".into(), rhs),
    ];
    w
}

/// The client workload (§IV.D): a compiler-shaped program with *many* small
/// phases, each touched briefly, run a handful of times — so sampling
/// covers far less of the executed code than instrumentation does.
pub fn client_compiler() -> Workload {
    let mut w = Workload::new(
        "client_compiler",
        programs::CLIENT_COMPILER,
        "compile_unit",
        requests(61, 24, &[(1, 1 << 20), (3, 30)]),
        requests(62, 24, &[(1, 1 << 20), (3, 30)]),
    );
    w.setup = vec![("src".into(), table(601, 2048, 1, 96))];
    w
}

/// Tenant-specific arrival order: a copy of `w` whose train and eval
/// request streams are re-dealt by a deterministic Fisher–Yates permutation
/// seeded per tenant. The request *multiset* is unchanged — two tenants
/// serving the same service see the same traffic in different
/// interleavings, so their folded context profiles must converge to the
/// same totals.
pub fn tenant_traffic_mix(w: &Workload, tenant_seed: u64) -> Workload {
    let mut out = w.clone();
    let mut rng = StdRng::seed_from_u64(tenant_seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    shuffle(&mut out.train_calls, &mut rng);
    shuffle(&mut out.eval_calls, &mut rng);
    out
}

/// In-place Fisher–Yates (the vendored `rand` exposes no `shuffle`).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..(i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Diurnal phase shift: reorders training traffic so the request mix drifts
/// across epochs (calls sorted by argument `arg`, stable), then pins that
/// argument in the eval stream to the *low* end of the spectrum. The eval
/// epoch's probe-weight distribution diverges from the steady-state tail —
/// exactly the pattern a fleet drift watchdog exists to catch.
pub fn phase_shifted(w: &Workload, arg: usize) -> Workload {
    let mut out = w.clone();
    out.train_calls
        .sort_by_key(|c| c.get(arg).copied().unwrap_or(0));
    let lo = out
        .train_calls
        .iter()
        .filter_map(|c| c.get(arg))
        .copied()
        .min()
        .unwrap_or(0);
    for call in &mut out.eval_calls {
        if let Some(v) = call.get_mut(arg) {
            *v = lo;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_codegen::{lower_module, CodegenConfig};
    use csspgo_sim::{Machine, SimConfig};

    fn smoke(w: &Workload) -> (u64, i64) {
        let m = csspgo_lang::compile(&w.source, &w.name).expect("workload compiles");
        let b = lower_module(&m, &CodegenConfig::default());
        let mut machine = Machine::new(&b, SimConfig::default());
        for (name, vals) in &w.setup {
            machine.set_global(name, vals);
        }
        let mut acc = 0i64;
        for args in w.train_calls.iter().take(3) {
            acc = acc.wrapping_add(machine.call(&w.entry, args).expect("runs"));
        }
        (machine.stats().instructions, acc)
    }

    #[test]
    fn all_workloads_compile_and_run() {
        for w in server_workloads().iter().chain([client_compiler()].iter()) {
            let (insts, _) = smoke(w);
            assert!(insts > 1_000, "{} too trivial: {insts} insts", w.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let (i1, r1) = smoke(&ad_ranker());
        let (i2, r2) = smoke(&ad_ranker());
        assert_eq!(i1, i2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn train_and_eval_streams_differ() {
        for w in server_workloads() {
            assert_ne!(w.train_calls, w.eval_calls, "{}", w.name);
            assert_eq!(w.train_calls.len(), w.eval_calls.len());
        }
    }

    #[test]
    fn optimized_workloads_stay_correct() {
        for w in server_workloads().iter().chain([client_compiler()].iter()) {
            let mut m = csspgo_lang::compile(&w.source, &w.name).unwrap();
            let plain = lower_module(&m, &CodegenConfig::default());
            csspgo_opt::run_pipeline(&mut m, &csspgo_opt::OptConfig::default());
            let opt = lower_module(&m, &CodegenConfig::default());

            let run = |b: &csspgo_codegen::Binary| {
                let mut machine = Machine::new(b, SimConfig::default());
                for (name, vals) in &w.setup {
                    machine.set_global(name, vals);
                }
                let mut acc = 0i64;
                for args in w.eval_calls.iter().take(3) {
                    acc = acc.wrapping_add(machine.call(&w.entry, args).unwrap());
                }
                acc
            };
            assert_eq!(run(&plain), run(&opt), "{} miscompiled", w.name);
        }
    }

    #[test]
    fn tenant_traffic_mix_permutes_without_changing_the_multiset() {
        let base = ad_ranker();
        let mixed = tenant_traffic_mix(&base, 3);
        assert_ne!(base.train_calls, mixed.train_calls);
        let sorted = |mut v: Vec<Vec<i64>>| {
            v.sort();
            v
        };
        assert_eq!(
            sorted(base.train_calls.clone()),
            sorted(mixed.train_calls.clone())
        );
        assert_eq!(
            sorted(base.eval_calls.clone()),
            sorted(mixed.eval_calls.clone())
        );
        // Deterministic per seed.
        assert_eq!(mixed.train_calls, tenant_traffic_mix(&base, 3).train_calls);
        assert_ne!(mixed.train_calls, tenant_traffic_mix(&base, 4).train_calls);
    }

    #[test]
    fn phase_shifted_sorts_train_and_pins_eval() {
        let shifted = phase_shifted(&ad_ranker(), 1);
        let keys: Vec<i64> = shifted.train_calls.iter().map(|c| c[1]).collect();
        assert!(keys.windows(2).all(|p| p[0] <= p[1]), "train not sorted");
        let lo = *keys.first().unwrap();
        assert!(shifted.eval_calls.iter().all(|c| c[1] == lo));
    }

    #[test]
    fn hhvm_bytecode_is_biased() {
        let w = hhvm();
        let code = &w.setup[0].1;
        let cheap = code.chunks(2).filter(|c| c[0] <= 3).count();
        let total = code.len() / 2;
        assert!(cheap * 2 > total, "arithmetic ops should dominate");
    }
}
