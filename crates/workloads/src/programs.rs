//! MiniLang source text for every workload.

/// AdRanker: two ranking heads drive a shared combiner with opposite branch
/// bias; the service entry keeps many values live (register pressure).
pub const AD_RANKER: &str = r#"
global features[4096];
global weights_click[64];
global weights_conv[64];

fn combine(mode, acc, v) {
    if (mode == 1) {
        if (v > 0) {
            return acc + v;
        }
        return acc + v / 4;
    }
    if (v > acc) {
        return v;
    }
    return acc;
}

fn boost(x, k) {
    let b = x;
    if (b < 0) {
        b = 0 - b;
    }
    let j = 0;
    while (j < k) {
        b = b + (b >> 3) + 1;
        j = j + 1;
    }
    return b;
}

fn dot_click(base, len) {
    let i = 0;
    let acc = 0;
    while (i < len) {
        let f = features[(base + i) % 4096];
        let w = weights_click[i % 64];
        acc = combine(1, acc, f * w);
        i = i + 1;
    }
    return acc;
}

fn dot_conv(base, len) {
    let i = 0;
    let acc = 0;
    while (i < len) {
        let f = features[(base + i) % 4096];
        let w = weights_conv[i % 64];
        acc = combine(2, acc, f * w);
        i = i + 1;
    }
    return acc;
}

fn calibrate(score, slot) {
    if (slot % 31 == 0) {
        // rare recalibration path: bulky, cold
        let t0 = score * 3 + 11;
        let t1 = t0 * 5 + 13;
        let t2 = t1 * 7 + 17;
        let t3 = t2 * 11 + 19;
        let t4 = t3 % 1000003;
        let t5 = t4 + t0 % 97;
        let t6 = t5 + t1 % 89;
        let t7 = t6 + t2 % 83;
        return t7 % 100000;
    }
    return score;
}

fn serve(slot, lane) {
    let base = slot * 64;
    let a0 = dot_click(base, 48);
    let a1 = dot_conv(base, 48);
    let a2 = dot_click(base + 7, 24);
    let a3 = dot_conv(base + 7, 24);
    let b0 = boost(a0, 3);
    let b1 = boost(a1, 5);
    let b2 = boost(a2, 2);
    let b3 = boost(a3, 4);
    let c0 = a0 + b1;
    let c1 = a1 + b0;
    let c2 = a2 + b3;
    let c3 = a3 + b2;
    let d0 = c0 * 3 - c1;
    let d1 = c2 * 3 - c3;
    let mix = d0 + d1 + (b0 - b3) * lane;
    let cal = calibrate(mix, slot);
    return cal + c0 + c1 + c2 + c3 - b1 - b2;
}
"#;

/// AdRetriever: posting-list scan through a tail-called filter chain, with
/// a rare heavy rerank path.
pub const AD_RETRIEVER: &str = r#"
global index[8192];
global bounds[64];

fn accept(v) {
    if ((v >> 4) % 5 == 0) {
        return 2;
    }
    return 1;
}

fn filter_odd(v) {
    if ((v & 1) == 1) {
        return accept(v);
    }
    return 0;
}

fn filter_mod(v) {
    if (v % 3 == 0) {
        return accept(v);
    }
    return filter_odd(v);
}

fn filter_range(v, lo) {
    if (v < lo) {
        return 0;
    }
    return filter_mod(v);
}

fn rerank(acc, start) {
    let i = 0;
    let r = acc;
    while (i < 40) {
        r = r + index[(start + i * 17) % 8192] % 13;
        i = i + 1;
    }
    return r;
}

fn scan(start, len, lo) {
    let i = 0;
    let hits = 0;
    while (i < len) {
        let v = index[(start + i) % 8192];
        hits = hits + filter_range(v, lo);
        i = i + 1;
    }
    return hits;
}

fn retrieve(start, sel) {
    let lo = bounds[sel % 64];
    let len = 48 + (sel % 9) * 8;
    let hits = scan(start, len, lo);
    if (hits % 97 == 0) {
        hits = rerank(hits, start);
    }
    return hits;
}
"#;

/// AdFinder: open-addressing hash table; the probe loop is shared between
/// the lookup path (mostly hits) and the insert path (mostly finds empty
/// slots) — divergent behaviour per context.
pub const AD_FINDER: &str = r#"
global htable[4096];

fn hashmix(k) {
    let h = k ^ (k >> 13);
    h = h * 2654435761;
    h = h ^ (h >> 17);
    if (h < 0) {
        h = 0 - h;
    }
    return h;
}

fn probe(key, want_empty) {
    let h = hashmix(key) % 4096;
    let i = 0;
    let found = 0 - 1;
    while (i < 24) {
        let slot = (h + i) % 4096;
        let cur = htable[slot];
        if (want_empty == 1) {
            if (cur == 0) {
                found = slot;
                break;
            }
        } else {
            if (cur == key) {
                found = slot;
                break;
            }
            if (cur == 0) {
                break;
            }
        }
        i = i + 1;
    }
    return found;
}

fn insert(key) {
    let slot = probe(key, 1);
    if (slot >= 0) {
        htable[slot] = key;
        return 1;
    }
    return 0;
}

fn lookup(key) {
    let slot = probe(key, 0);
    if (slot >= 0) {
        return 1;
    }
    return 0;
}

fn find_batch(seed, n) {
    let s = seed;
    let i = 0;
    let found = 0;
    while (i < n) {
        s = (s * 1103515245 + 12345) % 2147483647;
        if (s < 0) {
            s = 0 - s;
        }
        let key = s % 50021 + 1;
        if (i % 11 == 0) {
            found = found + insert(key);
        } else {
            found = found + lookup(key);
        }
        i = i + 1;
    }
    return found;
}
"#;

/// HHVM: a stack-machine bytecode interpreter. Dispatch is a switch over a
/// biased opcode mix; stack helpers are shared by every handler.
pub const HHVM: &str = r#"
global code[1200];
global vstack[256];

fn push(sp, v) {
    if (sp < 256) {
        vstack[sp] = v;
    }
    return sp + 1;
}

fn top(sp) {
    if (sp > 0) {
        return vstack[sp - 1];
    }
    return 0;
}

fn checksum(x, n) {
    let i = 0;
    let h = x;
    while (i < n) {
        h = (h * 31 + 7) % 1000003;
        i = i + 1;
    }
    return h;
}

fn binop_add(sp) {
    if (sp >= 2) {
        let b = vstack[sp - 1];
        let a = vstack[sp - 2];
        vstack[sp - 2] = a + b;
        return sp - 1;
    }
    return push(sp, 1);
}

fn binop_sub(sp) {
    if (sp >= 2) {
        let b = vstack[sp - 1];
        let a = vstack[sp - 2];
        vstack[sp - 2] = a - b;
        return sp - 1;
    }
    return push(sp, 2);
}

fn binop_mul(sp) {
    if (sp >= 2) {
        let b = vstack[sp - 1];
        let a = vstack[sp - 2];
        vstack[sp - 2] = (a * b) % 1000003;
        return sp - 1;
    }
    return push(sp, 3);
}

fn run_vm(entry, steps) {
    let pc = entry * 2;
    let sp = 0;
    let acc = 0;
    let step = 0;
    while (step < steps) {
        let op = code[pc];
        let arg = code[pc + 1];
        switch (op) {
            case 0 {
                sp = push(sp, arg);
            }
            case 1 {
                sp = binop_add(sp);
            }
            case 2 {
                sp = binop_sub(sp);
            }
            case 3 {
                sp = binop_mul(sp);
            }
            case 4 {
                sp = push(sp, top(sp));
            }
            case 5 {
                let t = top(sp);
                if (t < arg) {
                    sp = push(sp, 1);
                } else {
                    sp = push(sp, 0);
                }
            }
            case 6 {
                if (top(sp) != 0) {
                    pc = pc + 2 * (arg % 7);
                }
            }
            case 7 {
                if (sp >= 1) {
                    vstack[sp - 1] = vstack[sp - 1] % (arg + 1);
                }
            }
            case 8 {
                acc = acc + checksum(arg, 60);
            }
            default {
                if (sp >= 2) {
                    let a = vstack[sp - 1];
                    vstack[sp - 1] = vstack[sp - 2];
                    vstack[sp - 2] = a;
                }
            }
        }
        if (sp > 200) {
            sp = 8;
        }
        pc = pc + 2;
        if (pc >= 1198) {
            pc = 0;
        }
        step = step + 1;
    }
    return acc + sp + top(sp);
}
"#;

/// HaaS: a Hermes-flavoured VM evaluating an expression DAG with recursion
/// and a tail-called dispatch helper.
pub const HAAS: &str = r#"
global nkind[512];
global nlhs[512];
global nrhs[512];

fn max2(a, b) {
    if (a > b) {
        return a;
    }
    return b;
}

fn clampmul(a, b) {
    let m = a * b;
    if (m > 1000003) {
        m = m % 1000003;
    }
    if (m < 0 - 1000003) {
        m = m % 1000003;
    }
    return m;
}

fn dispatch_call(ix, depth) {
    return eval_node(ix % 512, depth + 1);
}

fn eval_node(ix, depth) {
    if (depth > 20) {
        return 1;
    }
    let k = nkind[ix];
    if (k == 0) {
        return nrhs[ix];
    }
    if (k == 1) {
        return eval_node(nlhs[ix], depth + 1) + eval_node(nrhs[ix], depth + 1);
    }
    if (k == 2) {
        return clampmul(eval_node(nlhs[ix], depth + 1), eval_node(nrhs[ix], depth + 1));
    }
    if (k == 3) {
        return max2(eval_node(nlhs[ix], depth + 1), eval_node(nrhs[ix], depth + 1));
    }
    return dispatch_call(nlhs[ix], depth);
}

fn execute(root, reps) {
    let i = 0;
    let acc = 0;
    while (i < reps) {
        acc = (acc + eval_node((root + i) % 512, 0)) % 100000007;
        i = i + 1;
    }
    return acc;
}
"#;

/// The client workload: a compiler-shaped program. Many distinct small
/// phases each run briefly per "translation unit", so one short training
/// run leaves large parts of the code under-sampled — the paper's client
/// workload coverage ceiling.
pub const CLIENT_COMPILER: &str = r#"
global src[2048];
global toks[2048];
global syms[512];

fn is_space(c) {
    if (c == 32) { return 1; }
    if (c == 9) { return 1; }
    return 0;
}
fn is_digit(c) {
    if (c >= 48) {
        if (c <= 57) { return 1; }
    }
    return 0;
}
fn is_alpha(c) {
    if (c >= 65) {
        if (c <= 90) { return 1; }
    }
    if (c >= 97) {
        if (c <= 122) { return 1; }
    }
    return 0;
}
fn classify(c) {
    if (is_space(c) == 1) { return 0; }
    if (is_digit(c) == 1) { return 1; }
    if (is_alpha(c) == 1) { return 2; }
    return 3;
}
fn lex(n) {
    let i = 0;
    let t = 0;
    while (i < n) {
        let c = src[i];
        toks[t] = classify(c) * 256 + c;
        t = t + 1;
        i = i + 1;
    }
    return t;
}
fn hash_name(h, c) {
    return (h * 33 + c) % 511;
}
fn intern(tok) {
    let h = hash_name(5381, tok) % 512;
    let i = 0;
    while (i < 8) {
        let slot = (h + i) % 512;
        if (syms[slot] == tok) { return slot; }
        if (syms[slot] == 0) {
            syms[slot] = tok;
            return slot;
        }
        i = i + 1;
    }
    return h;
}
fn parse_primary(t, n) {
    if (t >= n) { return 1; }
    let k = toks[t] >> 8;
    if (k == 1) { return 2; }
    if (k == 2) {
        intern(toks[t]);
        return 2;
    }
    return 1;
}
fn parse_expr(t, n, depth) {
    if (depth > 6) { return 1; }
    let w = parse_primary(t, n);
    if (t + w < n) {
        let k = toks[t + w] >> 8;
        if (k == 3) {
            return w + 1 + parse_expr(t + w + 1, n, depth + 1);
        }
    }
    return w;
}
fn parse(n) {
    let t = 0;
    let stmts = 0;
    while (t < n) {
        t = t + parse_expr(t, n, 0);
        stmts = stmts + 1;
    }
    return stmts;
}
fn fold_constants(n) {
    let i = 0;
    let folded = 0;
    while (i + 2 < n) {
        let a = toks[i] >> 8;
        let b = toks[i + 2] >> 8;
        if (a == 1) {
            if (b == 1) {
                toks[i] = 1 * 256 + 48;
                folded = folded + 1;
                i = i + 2;
            }
        }
        i = i + 1;
    }
    return folded;
}
fn strength_reduce(x) {
    if (x % 2 == 0) { return x >> 1; }
    if (x % 3 == 0) { return x / 3; }
    return x;
}
fn licm_score(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + strength_reduce(toks[i] & 255);
        i = i + 1;
    }
    return s;
}
fn regalloc_pressure(n) {
    let i = 0;
    let p = 0;
    let live = 0;
    while (i < n) {
        let k = toks[i] >> 8;
        if (k == 2) { live = live + 1; }
        if (k == 0) {
            if (live > 0) { live = live - 1; }
        }
        if (live > p) { p = live; }
        i = i + 1;
    }
    return p;
}
fn sched_weight(op) {
    switch (op) {
        case 0 { return 1; }
        case 1 { return 2; }
        case 2 { return 2; }
        case 3 { return 4; }
        default { return 3; }
    }
}
fn schedule(n) {
    let i = 0;
    let cost = 0;
    while (i < n) {
        cost = cost + sched_weight(toks[i] >> 8);
        i = i + 1;
    }
    return cost;
}
fn emit_inst(k, c) {
    let enc = k * 1024 + c;
    if (k == 3) {
        enc = enc + 65536;
    }
    return enc;
}
fn emit(n) {
    let i = 0;
    let bytes = 0;
    while (i < n) {
        let e = emit_inst(toks[i] >> 8, toks[i] & 255);
        bytes = bytes + (e & 7) + 2;
        i = i + 1;
    }
    return bytes;
}
fn peephole(n) {
    let i = 0;
    let wins = 0;
    while (i + 1 < n) {
        let a = toks[i] & 255;
        let b = toks[i + 1] & 255;
        if (a == b) { wins = wins + 1; }
        i = i + 1;
    }
    return wins;
}
fn link_relocs(n, seed) {
    let i = 0;
    let h = seed;
    while (i < n) {
        h = hash_name(h, toks[i] & 255);
        i = i + 4;
    }
    return h;
}
fn compile_unit(seed, passes) {
    let n = 512 + seed % 1024;
    if (n > 2048) { n = 2048; }
    let t = lex(n);
    let stmts = parse(t);
    let total = stmts;
    let p = 0;
    while (p < passes) {
        total = total + fold_constants(t) + licm_score(t) % 97;
        total = total + regalloc_pressure(t) + schedule(t) % 89;
        total = total + peephole(t) % 83;
        p = p + 1;
    }
    total = total + emit(t) % 79 + link_relocs(t, seed) % 73;
    return total % 1000000007;
}
"#;
