//! Source-drift mutators (paper §III.A).
//!
//! "A minor change in the source code such as adding or removing a program
//! comment, can cause location of subsequent code to shift ... we have
//! observed minor source drift causing 8% performance loss for a server
//! workload. This problem is mitigated with pseudo-instrumentation where a
//! checksum reflecting the shape of the IR control-flow graph is computed
//! and persisted in the profile."

/// Inserts a comment line before every function definition, shifting every
/// subsequent line number while leaving the CFG untouched.
///
/// AutoFDO's line-offset correlation breaks (offsets within each function
/// stay intact only for the *first* function; all call-site lines shift);
/// CSSPGO's checksums still match, so the probe profile applies cleanly.
pub fn insert_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    for line in source.lines() {
        if line.starts_with("fn ") {
            out.push_str("// drift: reviewed in Q3, see T12345\n");
            out.push_str("// drift: perf-sensitive, do not touch\n");
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Inserts a line-shifting comment *inside* every function body (after the
/// header), so even intra-function line offsets move. Still CFG-neutral.
pub fn insert_body_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            out.push_str("    // drift: refactor pending\n");
        }
    }
    out
}

/// A drift that *changes the CFG* of every function: a dead guard branch is
/// added at the top of each body. CSSPGO must detect this via checksum
/// mismatch and reject the stale profile rather than mis-apply it.
pub fn change_cfg(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 512);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            out.push_str("    if (0 > 1) { return 0 - 987654321; }\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::probe::cfg_checksum;

    const SRC: &str = "fn f(a) {\n    if (a > 0) {\n        return 1;\n    }\n    return 2;\n}\n";

    fn checksums(src: &str) -> Vec<u64> {
        let m = csspgo_lang::compile(src, "t").unwrap();
        m.functions.iter().map(cfg_checksum).collect()
    }

    #[test]
    fn comment_drift_keeps_cfg_checksums() {
        assert_eq!(checksums(SRC), checksums(&insert_comments(SRC)));
        assert_eq!(checksums(SRC), checksums(&insert_body_comments(SRC)));
    }

    #[test]
    fn comment_drift_shifts_lines() {
        let drifted = insert_body_comments(SRC);
        let m0 = csspgo_lang::compile(SRC, "t").unwrap();
        let m1 = csspgo_lang::compile(&drifted, "t").unwrap();
        let first_line = |m: &csspgo_ir::Module| {
            m.functions[0]
                .iter_blocks()
                .flat_map(|(_, b)| &b.insts)
                .map(|i| i.loc.line)
                .find(|&l| l != 0)
                .unwrap()
        };
        assert_ne!(first_line(&m0), first_line(&m1));
    }

    #[test]
    fn cfg_drift_changes_checksums() {
        assert_ne!(checksums(SRC), checksums(&change_cfg(SRC)));
    }

    #[test]
    fn drifted_sources_still_compile_for_all_workloads() {
        for w in crate::server_workloads() {
            csspgo_lang::compile(&insert_comments(&w.source), "d1").unwrap();
            csspgo_lang::compile(&insert_body_comments(&w.source), "d2").unwrap();
            csspgo_lang::compile(&change_cfg(&w.source), "d3").unwrap();
        }
    }

    #[test]
    fn drift_preserves_behaviour_for_comment_mutations() {
        // Comment drift must not change program semantics.
        use csspgo_codegen::{lower_module, CodegenConfig};
        use csspgo_sim::{Machine, SimConfig};
        let w = crate::ad_finder();
        let run = |src: &str| {
            let m = csspgo_lang::compile(src, "t").unwrap();
            let b = lower_module(&m, &CodegenConfig::default());
            let mut machine = Machine::new(&b, SimConfig::default());
            for (name, vals) in &w.setup {
                machine.set_global(name, vals);
            }
            machine.call(&w.entry, &w.eval_calls[0]).unwrap()
        };
        assert_eq!(run(&w.source), run(&insert_comments(&w.source)));
        assert_eq!(run(&w.source), run(&change_cfg(&w.source)));
    }
}
