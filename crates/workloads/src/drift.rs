//! Source-drift mutators (paper §III.A).
//!
//! "A minor change in the source code such as adding or removing a program
//! comment, can cause location of subsequent code to shift ... we have
//! observed minor source drift causing 8% performance loss for a server
//! workload. This problem is mitigated with pseudo-instrumentation where a
//! checksum reflecting the shape of the IR control-flow graph is computed
//! and persisted in the profile."

/// Inserts a comment line before every function definition, shifting every
/// subsequent line number while leaving the CFG untouched.
///
/// AutoFDO's line-offset correlation breaks (offsets within each function
/// stay intact only for the *first* function; all call-site lines shift);
/// CSSPGO's checksums still match, so the probe profile applies cleanly.
pub fn insert_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    for line in source.lines() {
        if line.starts_with("fn ") {
            out.push_str("// drift: reviewed in Q3, see T12345\n");
            out.push_str("// drift: perf-sensitive, do not touch\n");
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Inserts a line-shifting comment *inside* every function body (after the
/// header), so even intra-function line offsets move. Still CFG-neutral.
pub fn insert_body_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            out.push_str("    // drift: refactor pending\n");
        }
    }
    out
}

/// A drift that *changes the CFG* of every function: a dead guard branch is
/// added at the top of each body. CSSPGO must detect this via checksum
/// mismatch and reject the stale profile rather than mis-apply it.
pub fn change_cfg(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 512);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            out.push_str("    if (0 > 1) { return 0 - 987654321; }\n");
        }
    }
    out
}

/// Renames every function whose name is *not* in `keep` by appending
/// `_v2` — definition and all call sites, whole-word. Call sites inside
/// kept functions retarget too, so the rename is behaviour-preserving.
///
/// GUIDs are name hashes, so a renamed function vanishes from the profile's
/// GUID space entirely: the stale matcher's rename detection (anchor-set
/// similarity) is the only way its counts survive.
pub fn rename_functions(source: &str, keep: &[&str]) -> String {
    let mut names: Vec<String> = Vec::new();
    for line in source.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("fn ") {
            if let Some(name) = rest.split('(').next() {
                let name = name.trim();
                if !name.is_empty() && !keep.contains(&name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    // Longest first so `helper_fast` is not clobbered by a `helper` pass.
    names.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    let mut out = source.to_string();
    for name in &names {
        let mut rewritten = String::with_capacity(out.len() + 64);
        let bytes = out.as_bytes();
        let mut i = 0;
        while let Some(pos) = out[i..].find(name.as_str()) {
            let start = i + pos;
            let end = start + name.len();
            let before_ok = start == 0
                || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
            let after_ok =
                end == out.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
            rewritten.push_str(&out[i..end]);
            if before_ok && after_ok {
                rewritten.push_str("_v2");
            }
            i = end;
        }
        rewritten.push_str(&out[i..]);
        out = rewritten;
    }
    out
}

/// Inserts a harmless-but-CFG-visible statement (`let`-free dead loop
/// guard) after the `nth` function header (0-based, wrapping), leaving the
/// other functions untouched — a *partial* drift where only some checksums
/// mismatch. Used by the matcher soundness property tests to generate
/// varied edits.
pub fn insert_statement(source: &str, nth: usize) -> String {
    let headers = source
        .lines()
        .filter(|l| l.starts_with("fn ") && l.trim_end().ends_with('{'))
        .count();
    if headers == 0 {
        return source.to_string();
    }
    let target = nth % headers;
    let mut seen = 0usize;
    let mut out = String::with_capacity(source.len() + 64);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            if seen == target {
                out.push_str("    if (1 > 2) { return 0 - 424242; }\n");
            }
            seen += 1;
        }
    }
    out
}

/// Deletes the first single-line guard (`if (...) { ...; }`) from the
/// `nth` function that has one (0-based, wrapping). CFG-changing in the
/// *shrinking* direction — the probe space loses indices instead of
/// gaining them. Unlike the other mutators this may change behaviour;
/// it exists for matcher *soundness* property tests, which only assert
/// structural invariants of the mapping, not result equality.
pub fn delete_statement(source: &str, nth: usize) -> String {
    let is_guard = |l: &str| l.trim_start().starts_with("if (") && l.trim_end().ends_with("; }");
    let mut fn_starts: Vec<usize> = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    for (i, l) in lines.iter().enumerate() {
        if l.starts_with("fn ")
            && l.trim_end().ends_with('{')
            && lines[i..].iter().any(|x| is_guard(x))
        {
            fn_starts.push(i);
        }
    }
    if fn_starts.is_empty() {
        return source.to_string();
    }
    let start = fn_starts[nth % fn_starts.len()];
    let mut removed = false;
    let mut out = String::with_capacity(source.len());
    for (i, l) in lines.iter().enumerate() {
        if !removed && i > start && is_guard(l) {
            removed = true;
            continue;
        }
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::probe::cfg_checksum;

    const SRC: &str = "fn f(a) {\n    if (a > 0) {\n        return 1;\n    }\n    return 2;\n}\n";

    fn checksums(src: &str) -> Vec<u64> {
        let m = csspgo_lang::compile(src, "t").unwrap();
        m.functions.iter().map(cfg_checksum).collect()
    }

    #[test]
    fn comment_drift_keeps_cfg_checksums() {
        assert_eq!(checksums(SRC), checksums(&insert_comments(SRC)));
        assert_eq!(checksums(SRC), checksums(&insert_body_comments(SRC)));
    }

    #[test]
    fn comment_drift_shifts_lines() {
        let drifted = insert_body_comments(SRC);
        let m0 = csspgo_lang::compile(SRC, "t").unwrap();
        let m1 = csspgo_lang::compile(&drifted, "t").unwrap();
        let first_line = |m: &csspgo_ir::Module| {
            m.functions[0]
                .iter_blocks()
                .flat_map(|(_, b)| &b.insts)
                .map(|i| i.loc.line)
                .find(|&l| l != 0)
                .unwrap()
        };
        assert_ne!(first_line(&m0), first_line(&m1));
    }

    #[test]
    fn cfg_drift_changes_checksums() {
        assert_ne!(checksums(SRC), checksums(&change_cfg(SRC)));
    }

    #[test]
    fn rename_rewrites_definition_and_call_sites() {
        let src = "fn helper(x) { return x; }\nfn main(n) { return helper(n); }\n";
        let renamed = rename_functions(src, &["main"]);
        assert!(renamed.contains("fn helper_v2(x)"), "{renamed}");
        assert!(renamed.contains("return helper_v2(n);"), "{renamed}");
        assert!(renamed.contains("fn main(n)"), "kept name must not change");
        // Behaviour-preserving: still compiles and the call resolves.
        csspgo_lang::compile(&renamed, "t").unwrap();
        // Whole-word only: `helper_fast` must not become `helper_v2_fast`.
        let tricky = "fn helper(x) { return x; }\nfn helper_fast(x) { return helper(x); }\n";
        let r = rename_functions(tricky, &["helper_fast"]);
        assert!(
            r.contains("fn helper_fast(x) { return helper_v2(x); }"),
            "{r}"
        );
    }

    #[test]
    fn statement_mutators_change_one_functions_checksum() {
        let two = "fn a(x) {\n    if (x > 0) { return 1; }\n    return 2;\n}\nfn b(x) {\n    return x;\n}\n";
        let base = checksums(two);
        let ins = checksums(&insert_statement(two, 1));
        assert_eq!(base[0], ins[0], "untargeted function untouched");
        assert_ne!(base[1], ins[1], "targeted function must drift");
        let del = checksums(&delete_statement(two, 0));
        assert_ne!(base[0], del[0], "guard removal must drift");
        assert_eq!(base[1], del[1]);
        // No-ops degrade gracefully.
        assert_eq!(
            delete_statement("fn c() { return 0; }\n", 0),
            "fn c() { return 0; }\n"
        );
    }

    #[test]
    fn drifted_sources_still_compile_for_all_workloads() {
        for w in crate::server_workloads() {
            csspgo_lang::compile(&insert_comments(&w.source), "d1").unwrap();
            csspgo_lang::compile(&insert_body_comments(&w.source), "d2").unwrap();
            csspgo_lang::compile(&change_cfg(&w.source), "d3").unwrap();
        }
    }

    #[test]
    fn drift_preserves_behaviour_for_comment_mutations() {
        // Comment drift must not change program semantics.
        use csspgo_codegen::{lower_module, CodegenConfig};
        use csspgo_sim::{Machine, SimConfig};
        let w = crate::ad_finder();
        let run = |src: &str| {
            let m = csspgo_lang::compile(src, "t").unwrap();
            let b = lower_module(&m, &CodegenConfig::default());
            let mut machine = Machine::new(&b, SimConfig::default());
            for (name, vals) in &w.setup {
                machine.set_global(name, vals);
            }
            machine.call(&w.entry, &w.eval_calls[0]).unwrap()
        };
        assert_eq!(run(&w.source), run(&insert_comments(&w.source)));
        assert_eq!(run(&w.source), run(&change_cfg(&w.source)));
    }
}
