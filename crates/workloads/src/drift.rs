//! Source-drift mutators (paper §III.A).
//!
//! "A minor change in the source code such as adding or removing a program
//! comment, can cause location of subsequent code to shift ... we have
//! observed minor source drift causing 8% performance loss for a server
//! workload. This problem is mitigated with pseudo-instrumentation where a
//! checksum reflecting the shape of the IR control-flow graph is computed
//! and persisted in the profile."

/// Inserts a comment line before every function definition, shifting every
/// subsequent line number while leaving the CFG untouched.
///
/// AutoFDO's line-offset correlation breaks (offsets within each function
/// stay intact only for the *first* function; all call-site lines shift);
/// CSSPGO's checksums still match, so the probe profile applies cleanly.
pub fn insert_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    for line in source.lines() {
        if line.starts_with("fn ") {
            out.push_str("// drift: reviewed in Q3, see T12345\n");
            out.push_str("// drift: perf-sensitive, do not touch\n");
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Inserts a line-shifting comment *inside* every function body (after the
/// header), so even intra-function line offsets move. Still CFG-neutral.
pub fn insert_body_comments(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            out.push_str("    // drift: refactor pending\n");
        }
    }
    out
}

/// A drift that *changes the CFG* of every function: a dead guard branch is
/// added at the top of each body. CSSPGO must detect this via checksum
/// mismatch and reject the stale profile rather than mis-apply it.
pub fn change_cfg(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 512);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            out.push_str("    if (0 > 1) { return 0 - 987654321; }\n");
        }
    }
    out
}

/// Renames every function whose name is *not* in `keep` by appending
/// `_v2` — definition and all call sites, whole-word. Call sites inside
/// kept functions retarget too, so the rename is behaviour-preserving.
///
/// GUIDs are name hashes, so a renamed function vanishes from the profile's
/// GUID space entirely: the stale matcher's rename detection (anchor-set
/// similarity) is the only way its counts survive.
pub fn rename_functions(source: &str, keep: &[&str]) -> String {
    let mut names: Vec<String> = Vec::new();
    for line in source.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("fn ") {
            if let Some(name) = rest.split('(').next() {
                let name = name.trim();
                if !name.is_empty() && !keep.contains(&name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    // Longest first so `helper_fast` is not clobbered by a `helper` pass.
    names.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    let mut out = source.to_string();
    for name in &names {
        let mut rewritten = String::with_capacity(out.len() + 64);
        let bytes = out.as_bytes();
        let mut i = 0;
        while let Some(pos) = out[i..].find(name.as_str()) {
            let start = i + pos;
            let end = start + name.len();
            let before_ok = start == 0
                || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
            let after_ok =
                end == out.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
            rewritten.push_str(&out[i..end]);
            if before_ok && after_ok {
                rewritten.push_str("_v2");
            }
            i = end;
        }
        rewritten.push_str(&out[i..]);
        out = rewritten;
    }
    out
}

/// Parses a multi-line MiniLang function header (`fn name(params) {` at
/// column 0) into `(name, params)`. Single-line functions — header and
/// body on one line — are not headers in this sense and return `None`,
/// matching the convention of every other mutator in this module.
fn parse_header(line: &str) -> Option<(&str, &str)> {
    let rest = line.strip_prefix("fn ")?;
    if !line.trim_end().ends_with('{') {
        return None;
    }
    let open = rest.find('(')?;
    let close = rest.find(')')?;
    if close < open {
        return None;
    }
    let name = rest[..open].trim();
    if name.is_empty() {
        return None;
    }
    Some((name, rest[open + 1..close].trim()))
}

/// Replaces every whole-word occurrence of `from` with `to` — the same
/// word-boundary rule `rename_functions` uses (an adjacent alphanumeric
/// or `_` suppresses the match).
fn replace_whole_word(text: &str, from: &str, to: &str) -> String {
    let mut out = String::with_capacity(text.len() + 64);
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(pos) = text[i..].find(from) {
        let start = i + pos;
        let end = start + from.len();
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end == text.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            out.push_str(&text[i..start]);
            out.push_str(to);
        } else {
            out.push_str(&text[i..end]);
        }
        i = end;
    }
    out.push_str(&text[i..]);
    out
}

/// Splits the `nth` eligible function (0-based, wrapping) into a thin
/// forwarder plus a `<name>_impl` twin holding the original body — the
/// classic extract-function refactor. Behaviour-preserving: every call
/// site still calls `<name>`, which tail-calls the twin.
///
/// For the profile this is a *structural* release change: the original
/// GUID keeps only the forwarder's trivial CFG (checksum mismatch), while
/// all its historical weight belongs to a GUID that did not exist in the
/// previous release.
///
/// Eligible functions are multi-line, not already `_impl` twins, and have
/// no `<name>_impl` defined yet. No-op if nothing is eligible.
pub fn split_function(source: &str, nth: usize) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let headers: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| {
            let (name, _) = parse_header(l)?;
            let defines_twin = lines
                .iter()
                .any(|x| x.starts_with(&format!("fn {name}_impl(")));
            (!name.ends_with("_impl") && !defines_twin).then_some(i)
        })
        .collect();
    if headers.is_empty() {
        return source.to_string();
    }
    let h = headers[nth % headers.len()];
    let (name, params) = parse_header(lines[h]).expect("header re-parse");
    let mut out = String::with_capacity(source.len() + 96);
    for (i, l) in lines.iter().enumerate() {
        if i == h {
            out.push_str(&format!("fn {name}({params}) {{\n"));
            out.push_str(&format!("    return {name}_impl({params});\n"));
            out.push_str("}\n");
            out.push_str(&format!("fn {name}_impl({params}) {{\n"));
        } else {
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

/// Merges the `nth` forwarder function (0-based, wrapping) back into its
/// callee: the inverse refactor of [`split_function`]. A forwarder is a
/// three-line function whose whole body is `return callee(<params>);`
/// with the argument list textually equal to its own parameter list and
/// `callee` defined in the same source. The forwarder is deleted and the
/// callee takes over its name (whole-word rename of definition and every
/// call site), so behaviour is preserved. No-op if no forwarder exists.
///
/// Applied right after a [`split_function`] release it restores the
/// original source exactly — the round-trip the release-train harness
/// leans on for "refactor churn" steps.
pub fn merge_functions(source: &str, nth: usize) -> String {
    let norm = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
    let lines: Vec<&str> = source.lines().collect();
    let mut forwarders: Vec<(usize, String, String)> = Vec::new();
    for i in 0..lines.len() {
        let Some((name, params)) = parse_header(lines[i]) else {
            continue;
        };
        if i + 2 >= lines.len() || lines[i + 2] != "}" {
            continue;
        }
        let body = lines[i + 1].trim();
        let Some(call) = body
            .strip_prefix("return ")
            .and_then(|r| r.strip_suffix(");"))
        else {
            continue;
        };
        let Some(open) = call.find('(') else {
            continue;
        };
        let callee = call[..open].trim();
        if callee == name || norm(&call[open + 1..]) != norm(params) {
            continue;
        }
        let callee_defined = lines
            .iter()
            .any(|l| parse_header(l).is_some_and(|(n, _)| n == callee));
        if callee_defined {
            forwarders.push((i, name.to_string(), callee.to_string()));
        }
    }
    if forwarders.is_empty() {
        return source.to_string();
    }
    let (h, name, callee) = forwarders[nth % forwarders.len()].clone();
    let mut out = String::with_capacity(source.len());
    for (i, l) in lines.iter().enumerate() {
        if (h..h + 3).contains(&i) {
            continue;
        }
        out.push_str(l);
        out.push('\n');
    }
    replace_whole_word(&out, &callee, &name)
}

/// Simulates a dependency bump: a new generation of `dep_shim_g<N>_*`
/// library functions is appended and every substantial function gains a
/// dead guard calling into the new shims — the whole-tree checksum churn
/// a header-only library upgrade causes when its inlined bodies change.
/// `seed` varies the shim constants so successive bumps differ.
///
/// Trivial (single-statement) bodies are left untouched — a forwarder
/// from [`split_function`] survives a bump intact, like real glue code
/// that never touches the dependency. Behaviour-preserving: the guards
/// are dead and the shims unreachable.
pub fn bump_dependency(source: &str, seed: u64) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let generation = 1 + lines
        .iter()
        .filter_map(|l| {
            let (name, _) = parse_header(l)?;
            let digits = name.strip_prefix("dep_shim_g")?;
            digits.split('_').next()?.parse::<u64>().ok()
        })
        .max()
        .unwrap_or(0);
    let k = seed.wrapping_mul(0x9E37_79B9).wrapping_add(17) % 997;
    let guard = format!("    if (0 > 1) {{ return dep_shim_g{generation}_1({k}); }}\n");
    // Body length per multi-line function: lines between header and the
    // column-0 closing brace.
    let mut out = String::with_capacity(source.len() + 512);
    let mut i = 0;
    while i < lines.len() {
        out.push_str(lines[i]);
        out.push('\n');
        if parse_header(lines[i]).is_some() {
            let close = (i + 1..lines.len())
                .find(|&j| lines[j] == "}")
                .unwrap_or(lines.len());
            if close - i > 2 {
                out.push_str(&guard);
            }
        }
        i += 1;
    }
    out.push_str(&format!(
        "fn dep_shim_g{generation}_0(x) {{\n    let acc = x + {k};\n    if (acc > 1000) {{\n        return acc % 977;\n    }}\n    return acc * 3 + 7;\n}}\n"
    ));
    out.push_str(&format!(
        "fn dep_shim_g{generation}_1(x) {{\n    let t = dep_shim_g{generation}_0(x + {});\n    return t + 1;\n}}\n",
        k % 31
    ));
    out
}

/// The guard a compiled-in-but-disabled feature flag leaves in a body.
pub const FEATURE_FLAG_GUARD: &str = "    if (0 > 0) { return 0 - 31337; }";

/// Flips a feature flag in the `nth` function (0-based, wrapping): if the
/// flag guard is already present right after the header it is removed
/// (flag compiled out), otherwise it is inserted (flag compiled in,
/// disabled). Either direction changes that function's CFG checksum while
/// preserving behaviour — the guard never fires.
pub fn flip_feature_flag(source: &str, nth: usize) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let headers: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter_map(|(i, l)| parse_header(l).map(|_| i))
        .collect();
    if headers.is_empty() {
        return source.to_string();
    }
    let h = headers[nth % headers.len()];
    let mut out = String::with_capacity(source.len() + 64);
    for (i, l) in lines.iter().enumerate() {
        if i == h + 1 && *l == FEATURE_FLAG_GUARD {
            continue; // flag compiled out
        }
        out.push_str(l);
        out.push('\n');
        if i == h && lines.get(h + 1).copied() != Some(FEATURE_FLAG_GUARD) {
            out.push_str(FEATURE_FLAG_GUARD);
            out.push('\n');
        }
    }
    out
}

/// One source mutation, parameterized — the unit a release train composes.
/// Every variant except the test-only [`delete_statement`] is
/// behaviour-preserving, so a train of these is safe to canary against
/// result hashes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutator {
    /// [`insert_comments`]
    InsertComments,
    /// [`insert_body_comments`]
    InsertBodyComments,
    /// [`change_cfg`]
    ChangeCfg,
    /// [`rename_functions`] over every name not in the caller's keep set.
    RenameFunctions,
    /// [`insert_statement`] into the nth function.
    InsertStatement(usize),
    /// [`split_function`] on the nth eligible function.
    SplitFunction(usize),
    /// [`merge_functions`] on the nth forwarder.
    MergeFunctions(usize),
    /// [`bump_dependency`] with the given seed.
    BumpDependency(u64),
    /// [`flip_feature_flag`] on the nth function.
    FlipFeatureFlag(usize),
}

impl Mutator {
    /// Stable name, used in release labels and bench records.
    pub fn name(&self) -> &'static str {
        match self {
            Mutator::InsertComments => "insert_comments",
            Mutator::InsertBodyComments => "insert_body_comments",
            Mutator::ChangeCfg => "change_cfg",
            Mutator::RenameFunctions => "rename_functions",
            Mutator::InsertStatement(_) => "insert_statement",
            Mutator::SplitFunction(_) => "split_function",
            Mutator::MergeFunctions(_) => "merge_functions",
            Mutator::BumpDependency(_) => "bump_dependency",
            Mutator::FlipFeatureFlag(_) => "flip_feature_flag",
        }
    }

    /// Applies the mutation. `keep` is honoured by `RenameFunctions` (the
    /// entry point must keep its name) and ignored by the rest.
    pub fn apply(&self, source: &str, keep: &[&str]) -> String {
        match self {
            Mutator::InsertComments => insert_comments(source),
            Mutator::InsertBodyComments => insert_body_comments(source),
            Mutator::ChangeCfg => change_cfg(source),
            Mutator::RenameFunctions => rename_functions(source, keep),
            Mutator::InsertStatement(nth) => insert_statement(source, *nth),
            Mutator::SplitFunction(nth) => split_function(source, *nth),
            Mutator::MergeFunctions(nth) => merge_functions(source, *nth),
            Mutator::BumpDependency(seed) => bump_dependency(source, *seed),
            Mutator::FlipFeatureFlag(nth) => flip_feature_flag(source, *nth),
        }
    }
}

/// The canonical mutator for release `i` of a train: an 8-release cycle
/// of refactor churn (split, later merged back), a feature-flag flip, a
/// dependency bump, comment drift, a whole-tree rename, a local
/// statement edit, and a CFG-wide change. Parameters advance with the
/// cycle count so repeated cycles hit different functions.
pub fn release_mutator(i: usize) -> Mutator {
    let cycle = i / 8;
    match i % 8 {
        0 => Mutator::SplitFunction(cycle + 1),
        1 => Mutator::FlipFeatureFlag(cycle + 3),
        2 => Mutator::BumpDependency(i as u64),
        3 => Mutator::MergeFunctions(cycle),
        4 => Mutator::InsertBodyComments,
        5 => Mutator::RenameFunctions,
        6 => Mutator::InsertStatement(cycle + 2),
        7 => Mutator::ChangeCfg,
        _ => unreachable!(),
    }
}

/// Builds an `n`-release source lineage from `source`: release `i` is the
/// cumulative result of applying [`release_mutator`]`(0..=i)` in order.
/// Returns `(mutator name, source)` per release. `keep` is the set of
/// function names the rename step must preserve — at minimum the
/// workload's entry point.
pub fn release_chain(source: &str, n: usize, keep: &[&str]) -> Vec<(String, String)> {
    let mut out = Vec::with_capacity(n);
    let mut src = source.to_string();
    for i in 0..n {
        let m = release_mutator(i);
        src = m.apply(&src, keep);
        out.push((m.name().to_string(), src.clone()));
    }
    out
}

/// Inserts a harmless-but-CFG-visible statement (`let`-free dead loop
/// guard) after the `nth` function header (0-based, wrapping), leaving the
/// other functions untouched — a *partial* drift where only some checksums
/// mismatch. Used by the matcher soundness property tests to generate
/// varied edits.
pub fn insert_statement(source: &str, nth: usize) -> String {
    let headers = source
        .lines()
        .filter(|l| l.starts_with("fn ") && l.trim_end().ends_with('{'))
        .count();
    if headers == 0 {
        return source.to_string();
    }
    let target = nth % headers;
    let mut seen = 0usize;
    let mut out = String::with_capacity(source.len() + 64);
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("fn ") && line.trim_end().ends_with('{') {
            if seen == target {
                out.push_str("    if (1 > 2) { return 0 - 424242; }\n");
            }
            seen += 1;
        }
    }
    out
}

/// Deletes the first single-line guard (`if (...) { ...; }`) from the
/// `nth` function that has one (0-based, wrapping). CFG-changing in the
/// *shrinking* direction — the probe space loses indices instead of
/// gaining them. Unlike the other mutators this may change behaviour;
/// it exists for matcher *soundness* property tests, which only assert
/// structural invariants of the mapping, not result equality.
pub fn delete_statement(source: &str, nth: usize) -> String {
    let is_guard = |l: &str| l.trim_start().starts_with("if (") && l.trim_end().ends_with("; }");
    let mut fn_starts: Vec<usize> = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    for (i, l) in lines.iter().enumerate() {
        if l.starts_with("fn ")
            && l.trim_end().ends_with('{')
            && lines[i..].iter().any(|x| is_guard(x))
        {
            fn_starts.push(i);
        }
    }
    if fn_starts.is_empty() {
        return source.to_string();
    }
    let start = fn_starts[nth % fn_starts.len()];
    let mut removed = false;
    let mut out = String::with_capacity(source.len());
    for (i, l) in lines.iter().enumerate() {
        if !removed && i > start && is_guard(l) {
            removed = true;
            continue;
        }
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::probe::cfg_checksum;

    const SRC: &str = "fn f(a) {\n    if (a > 0) {\n        return 1;\n    }\n    return 2;\n}\n";

    fn checksums(src: &str) -> Vec<u64> {
        let m = csspgo_lang::compile(src, "t").unwrap();
        m.functions.iter().map(cfg_checksum).collect()
    }

    #[test]
    fn comment_drift_keeps_cfg_checksums() {
        assert_eq!(checksums(SRC), checksums(&insert_comments(SRC)));
        assert_eq!(checksums(SRC), checksums(&insert_body_comments(SRC)));
    }

    #[test]
    fn comment_drift_shifts_lines() {
        let drifted = insert_body_comments(SRC);
        let m0 = csspgo_lang::compile(SRC, "t").unwrap();
        let m1 = csspgo_lang::compile(&drifted, "t").unwrap();
        let first_line = |m: &csspgo_ir::Module| {
            m.functions[0]
                .iter_blocks()
                .flat_map(|(_, b)| &b.insts)
                .map(|i| i.loc.line)
                .find(|&l| l != 0)
                .unwrap()
        };
        assert_ne!(first_line(&m0), first_line(&m1));
    }

    #[test]
    fn cfg_drift_changes_checksums() {
        assert_ne!(checksums(SRC), checksums(&change_cfg(SRC)));
    }

    #[test]
    fn rename_rewrites_definition_and_call_sites() {
        let src = "fn helper(x) { return x; }\nfn main(n) { return helper(n); }\n";
        let renamed = rename_functions(src, &["main"]);
        assert!(renamed.contains("fn helper_v2(x)"), "{renamed}");
        assert!(renamed.contains("return helper_v2(n);"), "{renamed}");
        assert!(renamed.contains("fn main(n)"), "kept name must not change");
        // Behaviour-preserving: still compiles and the call resolves.
        csspgo_lang::compile(&renamed, "t").unwrap();
        // Whole-word only: `helper_fast` must not become `helper_v2_fast`.
        let tricky = "fn helper(x) { return x; }\nfn helper_fast(x) { return helper(x); }\n";
        let r = rename_functions(tricky, &["helper_fast"]);
        assert!(
            r.contains("fn helper_fast(x) { return helper_v2(x); }"),
            "{r}"
        );
    }

    #[test]
    fn statement_mutators_change_one_functions_checksum() {
        let two = "fn a(x) {\n    if (x > 0) { return 1; }\n    return 2;\n}\nfn b(x) {\n    return x;\n}\n";
        let base = checksums(two);
        let ins = checksums(&insert_statement(two, 1));
        assert_eq!(base[0], ins[0], "untargeted function untouched");
        assert_ne!(base[1], ins[1], "targeted function must drift");
        let del = checksums(&delete_statement(two, 0));
        assert_ne!(base[0], del[0], "guard removal must drift");
        assert_eq!(base[1], del[1]);
        // No-ops degrade gracefully.
        assert_eq!(
            delete_statement("fn c() { return 0; }\n", 0),
            "fn c() { return 0; }\n"
        );
    }

    #[test]
    fn split_creates_forwarder_and_twin() {
        let two =
            "fn a(x, y) {\n    let t = x + y;\n    return t * 2;\n}\nfn b(x) {\n    return x;\n}\n";
        let split = split_function(two, 0);
        assert!(
            split.contains("fn a(x, y) {\n    return a_impl(x, y);\n}"),
            "{split}"
        );
        assert!(split.contains("fn a_impl(x, y) {"), "{split}");
        csspgo_lang::compile(&split, "t").unwrap();
        // The untouched function keeps its checksum; `a` becomes a trivial
        // forwarder (checksum drifts) and a new GUID appears.
        let base = checksums(two);
        let after = checksums(&split);
        assert_eq!(after.len(), base.len() + 1);
        assert!(after.contains(&base[1]), "b untouched");
        // Splitting again skips `a` (its twin exists) and picks `b`.
        let again = split_function(&split, 0);
        assert!(again.contains("fn b_impl(x)"), "{again}");
    }

    #[test]
    fn merge_inverts_split_exactly() {
        let two = "fn a(x, y) {\n    let t = x + y;\n    return t * 2;\n}\nfn b(x) {\n    return a(x, x);\n}\n";
        assert_eq!(merge_functions(&split_function(two, 0), 0), two);
        // No forwarder → no-op.
        assert_eq!(merge_functions(two, 0), two);
    }

    #[test]
    fn bump_dependency_adds_shims_and_drifts_big_bodies() {
        let two = "fn a(x) {\n    let t = x + 1;\n    return t * 2;\n}\nfn fwd(x) {\n    return a(x);\n}\n";
        let bumped = bump_dependency(two, 7);
        assert!(bumped.contains("fn dep_shim_g1_0(x)"), "{bumped}");
        assert!(bumped.contains("fn dep_shim_g1_1(x)"), "{bumped}");
        csspgo_lang::compile(&bumped, "t").unwrap();
        let base = checksums(two);
        let after = checksums(&bumped);
        assert_ne!(base[0], after[0], "substantial body must drift");
        assert_eq!(base[1], after[1], "trivial forwarder untouched");
        // A second bump starts generation 2.
        assert!(bump_dependency(&bumped, 8).contains("fn dep_shim_g2_0(x)"));
    }

    #[test]
    fn flip_feature_flag_toggles_one_checksum() {
        let two = "fn a(x) {\n    return x;\n}\nfn b(x) {\n    return x + 1;\n}\n";
        let base = checksums(two);
        let on = flip_feature_flag(two, 1);
        assert!(on.contains(FEATURE_FLAG_GUARD), "{on}");
        let flipped = checksums(&on);
        assert_eq!(base[0], flipped[0]);
        assert_ne!(base[1], flipped[1]);
        // Flipping the same function again removes the guard: involution.
        assert_eq!(flip_feature_flag(&on, 1), two);
    }

    #[test]
    fn release_chain_is_cumulative_and_compiles() {
        let w = crate::ad_finder();
        let chain = release_chain(&w.source, 10, &[&w.entry]);
        assert_eq!(chain.len(), 10);
        assert_eq!(chain[0].0, "split_function");
        assert_eq!(chain[3].0, "merge_functions");
        let mut prev = w.source.clone();
        for (i, (name, src)) in chain.iter().enumerate() {
            csspgo_lang::compile(src, name).unwrap();
            let m = release_mutator(i);
            assert_eq!(m.name(), name);
            assert_eq!(&m.apply(&prev, &[&w.entry]), src, "cumulative at {name}");
            prev = src.clone();
        }
        // The entry function survives every release by name.
        assert!(chain
            .last()
            .unwrap()
            .1
            .contains(&format!("fn {}(", w.entry)));
    }

    #[test]
    fn release_chain_preserves_behaviour() {
        use csspgo_codegen::{lower_module, CodegenConfig};
        use csspgo_sim::{Machine, SimConfig};
        let w = crate::ad_finder();
        let run = |src: &str| {
            let m = csspgo_lang::compile(src, "t").unwrap();
            let b = lower_module(&m, &CodegenConfig::default());
            let mut machine = Machine::new(&b, SimConfig::default());
            for (name, vals) in &w.setup {
                machine.set_global(name, vals);
            }
            machine.call(&w.entry, &w.eval_calls[0]).unwrap()
        };
        let expect = run(&w.source);
        for (name, src) in release_chain(&w.source, 8, &[&w.entry]) {
            assert_eq!(expect, run(&src), "release {name} changed behaviour");
        }
    }

    #[test]
    fn drifted_sources_still_compile_for_all_workloads() {
        for w in crate::server_workloads() {
            csspgo_lang::compile(&insert_comments(&w.source), "d1").unwrap();
            csspgo_lang::compile(&insert_body_comments(&w.source), "d2").unwrap();
            csspgo_lang::compile(&change_cfg(&w.source), "d3").unwrap();
        }
    }

    #[test]
    fn drift_preserves_behaviour_for_comment_mutations() {
        // Comment drift must not change program semantics.
        use csspgo_codegen::{lower_module, CodegenConfig};
        use csspgo_sim::{Machine, SimConfig};
        let w = crate::ad_finder();
        let run = |src: &str| {
            let m = csspgo_lang::compile(src, "t").unwrap();
            let b = lower_module(&m, &CodegenConfig::default());
            let mut machine = Machine::new(&b, SimConfig::default());
            for (name, vals) in &w.setup {
                machine.set_global(name, vals);
            }
            machine.call(&w.entry, &w.eval_calls[0]).unwrap()
        };
        assert_eq!(run(&w.source), run(&insert_comments(&w.source)));
        assert_eq!(run(&w.source), run(&change_cfg(&w.source)));
    }
}
