//! Property tests for the drift mutators: every mutator — and any
//! composition of up to four of them — must produce source that still
//! parses and compiles through `csspgo_lang`, and `rename_functions`
//! must keep the `keep` set intact. The release-train harness composes
//! these mutators cumulatively over many releases, so closure under
//! composition is the invariant that keeps a train well-formed.

use csspgo_workloads::{drift, server_workloads};
use proptest::prelude::*;

/// Applies one mutator by (kind, parameter). Covers the whole module,
/// including the test-only `delete_statement` (not part of the
/// [`drift::Mutator`] release vocabulary but still required to keep
/// sources compilable).
fn apply(kind: u8, param: u8, src: &str, keep: &[&str]) -> String {
    match kind % 10 {
        0 => drift::insert_comments(src),
        1 => drift::insert_body_comments(src),
        2 => drift::change_cfg(src),
        3 => drift::rename_functions(src, keep),
        4 => drift::insert_statement(src, param as usize),
        5 => drift::delete_statement(src, param as usize),
        6 => drift::split_function(src, param as usize),
        7 => drift::merge_functions(src, param as usize),
        8 => drift::bump_dependency(src, param as u64),
        9 => drift::flip_feature_flag(src, param as usize),
        _ => unreachable!(),
    }
}

/// Function names defined in a MiniLang source (both single- and
/// multi-line definitions).
fn fn_names(src: &str) -> Vec<String> {
    src.lines()
        .filter_map(|l| l.strip_prefix("fn "))
        .filter_map(|rest| rest.split('(').next())
        .map(|n| n.trim().to_string())
        .filter(|n| !n.is_empty())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compositions of ≤4 mutators keep every prefix compilable.
    #[test]
    fn mutator_compositions_stay_compilable(
        widx in 0usize..5,
        steps in prop::collection::vec((any::<u8>(), any::<u8>()), 1..=4),
    ) {
        let workloads = server_workloads();
        let w = &workloads[widx % workloads.len()];
        let keep = [w.entry.as_str()];
        let mut src = w.source.clone();
        for (i, &(kind, param)) in steps.iter().enumerate() {
            src = apply(kind, param, &src, &keep);
            csspgo_lang::compile(&src, &w.name)
                .unwrap_or_else(|e| panic!("{} step {i} (kind {}): {e}", w.name, kind % 10));
        }
    }

    /// `rename_functions` never touches a kept name: its definition
    /// survives verbatim, the definition count is conserved, and the
    /// result still compiles.
    #[test]
    fn rename_keeps_the_keep_set(
        widx in 0usize..5,
        mask in prop::collection::vec(any::<bool>(), 32),
    ) {
        let workloads = server_workloads();
        let w = &workloads[widx % workloads.len()];
        let names = fn_names(&w.source);
        let keep: Vec<&str> = names
            .iter()
            .enumerate()
            .filter(|(i, n)| mask[i % mask.len()] || n.as_str() == w.entry)
            .map(|(_, n)| n.as_str())
            .collect();
        let renamed = drift::rename_functions(&w.source, &keep);
        for name in &keep {
            prop_assert!(
                renamed.lines().any(|l| l.starts_with(&format!("fn {name}("))),
                "kept `{name}` lost its definition"
            );
        }
        for name in names.iter().filter(|n| !keep.contains(&n.as_str())) {
            prop_assert!(
                renamed.lines().any(|l| l.starts_with(&format!("fn {name}_v2("))),
                "`{name}` not renamed"
            );
        }
        prop_assert_eq!(fn_names(&renamed).len(), names.len());
        csspgo_lang::compile(&renamed, &w.name).unwrap();
    }
}
