//! Criterion benchmarks for this PR's two hot paths, on the largest
//! shipped workload (`haas`):
//!
//! * **correlation** — per-sample context unwinding (the reference path)
//!   vs the batched fast path (sample dedup + hash-consed context trie)
//!   vs the sharded-parallel fan-out on top of it;
//! * **binprof** — the binary profile wire format vs the human-readable
//!   text format, for both the bare context profile and a live
//!   [`StreamAggregator`] snapshot/restore cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use csspgo_codegen::{lower_module, Binary};
use csspgo_core::binprof;
use csspgo_core::context::ContextProfile;
use csspgo_core::pipeline::PipelineConfig;
use csspgo_core::ranges::RangeCounts;
use csspgo_core::shard::sharded_context_profile;
use csspgo_core::stream::{SnapshotFormat, StreamAggregator};
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::textprof;
use csspgo_core::unwind::Unwinder;
use csspgo_sim::{Machine, Sample, SimConfig};

struct Profiled {
    binary: Binary,
    samples: Vec<Sample>,
    graph: TailCallGraph,
}

/// Profiles `haas` (the largest fig6 workload) with probes on, dense
/// sampling, full training traffic.
fn profiled_haas() -> Profiled {
    let w = csspgo_workloads::haas().scaled(0.4);
    let cfg = PipelineConfig::default();
    let mut m = csspgo_lang::compile(&w.source, &w.name).unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    csspgo_opt::run_pipeline(&mut m, &cfg.opt);
    let binary = lower_module(&m, &cfg.codegen);
    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: 97,
            ..SimConfig::default()
        },
    );
    for (n, v) in &w.setup {
        machine.set_global(n, v);
    }
    for args in &w.train_calls {
        machine.call(&w.entry, args).unwrap();
    }
    let samples = machine.take_samples();
    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);
    let graph = TailCallGraph::build(&binary, &rc);
    Profiled {
        binary,
        samples,
        graph,
    }
}

fn context_profile_of(p: &Profiled) -> ContextProfile {
    let mut uw = Unwinder::new(&p.binary, Some(&p.graph));
    uw.unwind_batched(&p.samples)
}

fn bench_correlation(c: &mut Criterion) {
    let p = profiled_haas();
    c.bench_function("correlate/unwind_per_sample", |b| {
        b.iter(|| {
            let mut profile = ContextProfile::new();
            let mut uw = Unwinder::new(black_box(&p.binary), Some(&p.graph));
            uw.unwind_into(&p.samples, &mut profile);
            profile.total()
        })
    });
    c.bench_function("correlate/unwind_batched", |b| {
        b.iter(|| {
            let mut uw = Unwinder::new(black_box(&p.binary), Some(&p.graph));
            uw.unwind_batched(&p.samples).total()
        })
    });
    c.bench_function("correlate/unwind_sharded_auto", |b| {
        b.iter(|| {
            sharded_context_profile(&p.binary, Some(&p.graph), &p.samples, 0)
                .profile
                .total()
        })
    });
}

fn bench_binprof_roundtrip(c: &mut Criterion) {
    let p = profiled_haas();
    let profile = context_profile_of(&p);
    let bin = binprof::encode_context(&profile);
    let text = textprof::write_context(&profile);
    println!(
        "haas context profile: {} bytes binary, {} bytes text",
        bin.len(),
        text.len()
    );
    c.bench_function("binprof/encode_context", |b| {
        b.iter(|| binprof::encode_context(black_box(&profile)).len())
    });
    c.bench_function("binprof/decode_context", |b| {
        b.iter(|| binprof::decode_context(black_box(&bin)).unwrap().total())
    });
    c.bench_function("textprof/write_context", |b| {
        b.iter(|| textprof::write_context(black_box(&profile)).len())
    });
    c.bench_function("textprof/parse_context", |b| {
        b.iter(|| textprof::parse_context(black_box(&text)).unwrap().total())
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let p = profiled_haas();
    let cfg = PipelineConfig::default();
    let mut agg = StreamAggregator::with_tail_graph(
        &p.binary,
        cfg.stream.clone(),
        cfg.ingest_shards,
        p.graph.clone(),
    );
    agg.push_batch(p.samples.clone()).unwrap();
    agg.seal_epoch();
    let bin = agg.snapshot_as(SnapshotFormat::Binary);
    let text = agg.snapshot_as(SnapshotFormat::Text);
    println!(
        "haas stream snapshot: {} bytes binary, {} bytes text",
        bin.len(),
        text.len()
    );
    c.bench_function("snapshot/binary", |b| {
        b.iter(|| agg.snapshot_as(SnapshotFormat::Binary).len())
    });
    c.bench_function("snapshot/text", |b| {
        b.iter(|| agg.snapshot_as(SnapshotFormat::Text).len())
    });
    c.bench_function("restore/binary", |b| {
        b.iter(|| {
            StreamAggregator::restore_from(&p.binary, cfg.stream.clone(), cfg.ingest_shards, &bin)
                .unwrap()
                .total_samples()
        })
    });
    c.bench_function("restore/text", |b| {
        b.iter(|| {
            StreamAggregator::restore_from(&p.binary, cfg.stream.clone(), cfg.ingest_shards, &text)
                .unwrap()
                .total_samples()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_correlation, bench_binprof_roundtrip, bench_snapshot
);
criterion_main!(benches);
