//! Criterion benchmarks for the profile-generation hot path: sample
//! correlation (`dwarf_profile` / `probe_profile`, which lean on the
//! precomputed flat frame table) and context-tree construction, in both
//! sequential and sharded-parallel form.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use csspgo_codegen::{lower_module, Binary};
use csspgo_core::context::ContextProfile;
use csspgo_core::correlate::{dwarf_profile, probe_profile};
use csspgo_core::pipeline::PipelineConfig;
use csspgo_core::ranges::RangeCounts;
use csspgo_core::shard::{sharded_context_profile, sharded_range_counts};
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::unwind::Unwinder;
use csspgo_sim::{Machine, Sample, SimConfig};

struct Profiled {
    binary: Binary,
    samples: Vec<Sample>,
    rc: RangeCounts,
}

fn profiled_hhvm(probes: bool) -> Profiled {
    let w = csspgo_workloads::hhvm().scaled(0.2);
    let cfg = PipelineConfig::default();
    let mut m = csspgo_lang::compile(&w.source, &w.name).unwrap();
    csspgo_opt::discriminators::run(&mut m);
    if probes {
        csspgo_opt::probes::run(&mut m);
    }
    csspgo_opt::run_pipeline(&mut m, &cfg.opt);
    let binary = lower_module(&m, &cfg.codegen);
    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: 97,
            ..SimConfig::default()
        },
    );
    for (n, v) in &w.setup {
        machine.set_global(n, v);
    }
    for args in &w.train_calls {
        machine.call(&w.entry, args).unwrap();
    }
    let samples = machine.take_samples();
    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);
    Profiled {
        binary,
        samples,
        rc,
    }
}

fn bench_correlate(c: &mut Criterion) {
    let dwarf = profiled_hhvm(false);
    c.bench_function("profile_gen/dwarf_profile", |b| {
        b.iter(|| dwarf_profile(black_box(&dwarf.binary), black_box(&dwarf.rc)))
    });
    let probed = profiled_hhvm(true);
    c.bench_function("profile_gen/probe_profile", |b| {
        b.iter(|| probe_profile(black_box(&probed.binary), black_box(&probed.rc)))
    });
}

/// The pre-arena frame query: synthesize a fresh `Vec` per instruction
/// (what `Binary::debug_frames` used to do). Kept as a bench-only foil so
/// the flat-table win stays measurable.
fn frames_with_alloc(binary: &Binary, idx: usize) -> Vec<(csspgo_ir::FuncId, u32, u32)> {
    let loc = &binary.insts[idx].loc;
    if loc.is_none() {
        return Vec::new();
    }
    let mut frames: Vec<_> = loc
        .inline_stack
        .iter()
        .map(|s| (s.func, s.line, s.discriminator))
        .collect();
    let leaf_scope = if loc.scope == csspgo_ir::FuncId::INVALID {
        binary.func_at(idx).id
    } else {
        loc.scope
    };
    frames.push((leaf_scope, loc.line, loc.discriminator));
    frames
}

fn bench_frame_queries(c: &mut Criterion) {
    let p = profiled_hhvm(false);
    let n = p.binary.len();
    c.bench_function("profile_gen/debug_frames_flat_table", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for idx in 0..n {
                acc += p.binary.debug_frames(idx).len();
            }
            acc
        })
    });
    c.bench_function("profile_gen/debug_frames_alloc_per_query", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for idx in 0..n {
                acc += frames_with_alloc(&p.binary, idx).len();
            }
            acc
        })
    });
}

fn bench_range_counts(c: &mut Criterion) {
    let p = profiled_hhvm(true);
    c.bench_function("profile_gen/range_counts_sequential", |b| {
        b.iter(|| {
            let mut rc = RangeCounts::default();
            rc.add_samples(&p.binary, &p.samples);
            rc.ranges.len()
        })
    });
    c.bench_function("profile_gen/range_counts_sharded_auto", |b| {
        b.iter(|| sharded_range_counts(&p.binary, &p.samples, 0).ranges.len())
    });
}

fn bench_context_tree(c: &mut Criterion) {
    let p = profiled_hhvm(true);
    let graph = TailCallGraph::build(&p.binary, &p.rc);
    c.bench_function("profile_gen/context_tree_sequential", |b| {
        b.iter(|| {
            let mut profile = ContextProfile::new();
            let mut uw = Unwinder::new(&p.binary, Some(&graph));
            uw.unwind_into(&p.samples, &mut profile);
            profile.total()
        })
    });
    c.bench_function("profile_gen/context_tree_sharded_auto", |b| {
        b.iter(|| {
            sharded_context_profile(&p.binary, Some(&graph), &p.samples, 0)
                .profile
                .total()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_correlate, bench_frame_queries, bench_range_counts, bench_context_tree
);
criterion_main!(benches);
